//! Integration tests over the §6 and §7.1 datasets: the Cloudflare rules
//! snapshot against Table 9's shape, and the OONI scan against §7.1's
//! confound structure.

use std::sync::Arc;

use geoblock::analysis::ooni_scan;
use geoblock::analysis::tables;
use geoblock::prelude::*;
use geoblock::worldgen::cloudflare_rules::day_number;
use geoblock::worldgen::ooni::{self, OoniConfig};

#[test]
fn table9_shape_holds_at_scale() {
    let snapshot = RulesSnapshot::generate(42, 0.1);

    // Enterprise couples to OFAC: KP/IR/SY/SD far above Russia/China.
    let ent = |c: &str| snapshot.rate(CfTier::Enterprise, cc(c));
    assert!(
        ent("KP") > 3.0 * ent("RU"),
        "KP {} RU {}",
        ent("KP"),
        ent("RU")
    );
    assert!(ent("IR") > 3.0 * ent("CN"));
    // Free tier flips: abuse countries above sanctioned ones.
    let free = |c: &str| snapshot.rate(CfTier::Free, cc(c));
    assert!(free("CN") > 2.0 * free("SY"));
    assert!(free("RU") > 2.0 * free("SD"));
    // Baselines ordered: Enterprise ≫ Business ≈ Pro > Free.
    assert!(
        snapshot.baseline_rate(CfTier::Enterprise)
            > 10.0 * snapshot.baseline_rate(CfTier::Business)
    );
    assert!(snapshot.baseline_rate(CfTier::Business) > snapshot.baseline_rate(CfTier::Free));

    // The rendered table carries all 17 rows (16 + baseline).
    let rendered = tables::table9(&snapshot).render();
    assert_eq!(rendered.lines().count(), 3 + 17, "{rendered}");
}

#[test]
fn figure5_sanctioned_countries_accumulate_together() {
    let snapshot = RulesSnapshot::generate(42, 0.1);
    let countries = [cc("KP"), cc("IR"), cc("SY"), cc("SD"), cc("CU")];
    let fig = geoblock::analysis::figures::Figure5::new(&snapshot, &countries);
    let snapshot_day = day_number(2018, 7, 15);
    let midpoint = day_number(2017, 6, 1);

    // All five sanctioned countries have substantial rule counts, with
    // similar cumulative shape (midpoint fraction within a band).
    for c in countries {
        let total = fig.cumulative(c, snapshot_day);
        assert!(total > 50, "{c}: {total}");
        let mid_frac = fig.cumulative(c, midpoint) as f64 / total as f64;
        assert!(
            (0.10..0.60).contains(&mid_frac),
            "{c}: midpoint fraction {mid_frac}"
        );
    }
    // Non-Enterprise *block* rules never predate the April 2018 regression
    // (challenge actions were always available to every tier).
    for rule in &snapshot.rules {
        if rule.tier != CfTier::Enterprise
            && rule.action == geoblock::worldgen::RuleAction::Block
            && countries.contains(&rule.country)
        {
            assert!(rule.activated_day >= day_number(2018, 4, 9));
        }
    }
}

#[test]
fn ooni_scan_reproduces_the_confound_structure() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let corpus = ooni::generate(
        42,
        &world.population,
        &world.citizenlab,
        &OoniConfig {
            measurements: 60_000,
            ..OoniConfig::default()
        },
    );
    let report = ooni_scan::scan(
        &corpus,
        &CompiledFingerprintSet::paper(),
        world.citizenlab.len(),
    );

    // Geoblock fingerprints appear in the "censorship" corpus…
    assert!(report.explicit_matches > 10, "{}", report.explicit_matches);
    // …across a spread of countries…
    assert!(report.countries.len() >= 5, "{}", report.countries.len());
    // …from a single-digit share of test-list domains (§7.1: ≈9%).
    let share = report.domain_share();
    assert!((0.02..0.25).contains(&share), "share {share}");
    // Control-side blocking dwarfs genuine local anomalies on CDN infra.
    assert!(
        report.control_403_cdn > report.local_blocked_control_ok,
        "control {} vs local {}",
        report.control_403_cdn,
        report.local_blocked_control_ok
    );

    // Every matched domain truly geoblocks per ground truth (fingerprints
    // never fire on censor or firewall pages).
    for domain in &report.domains {
        let spec = world.population.spec_of(domain);
        assert!(
            spec.map(|s| s.policy.geoblocks() || !s.policy.origin_blocked.is_empty())
                .unwrap_or(false),
            "{domain} matched but does not geoblock"
        );
    }
}
