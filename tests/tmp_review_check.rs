//! Temporary review reproduction: resume from a round-boundary checkpoint
//! (the one on disk if the process dies during the confirmation round)
//! and compare the final ledger to an uninterrupted run's.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use geoblock::orchestrator::{Checkpoint, Orchestrator, OrchestratorConfig};
use geoblock::prelude::{
    FaultPlan, FaultyTransport, Lumscan, PaperExact, ProbeBudget, RoundSpend,
};
use geoblock::simtest::{scenario_config, scenario_domains, scenario_engine_config, SimWeb, GOLDEN_SEED};

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("tmp_review_check");
    fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn orch(config: OrchestratorConfig) -> Orchestrator<FaultyTransport<SimWeb>> {
    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(GOLDEN_SEED));
    let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(2)));
    Orchestrator::new(engine, scenario_config(), config)
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn resume_from_round_boundary_checkpoint_double_charges() {
    let path = tmp("boundary.ckpt");

    // Uninterrupted reference run (writes checkpoints along the way).
    let uninterrupted = orch(OrchestratorConfig::default()
        .shards(1)
        .checkpoint_path(&path))
        .run_policy(&scenario_domains(), &mut PaperExact, ProbeBudget::unlimited())
        .await
        .expect("uninterrupted run");
    assert!(!uninterrupted.interrupted);

    // Reconstruct the round-0-boundary checkpoint: all grid units done,
    // ledger charged for round 0 only — exactly what drive_policy writes
    // after the grid round, i.e. what's on disk if the process is killed
    // during round 1 (the confirmation resample).
    let final_cp = Checkpoint::load(&path).expect("final checkpoint");
    let mut boundary = final_cp.clone();
    let round0 = uninterrupted.budget.rounds[0];
    boundary.budget = Some(ProbeBudget {
        cap: None,
        spent: round0.probes,
        rounds: vec![RoundSpend { round: 0, probes: round0.probes }],
    });

    let resumed = orch(OrchestratorConfig::default().shards(1))
        .resume_policy(&scenario_domains(), boundary, &mut PaperExact)
        .await
        .expect("resumed run");

    eprintln!("uninterrupted ledger: {:?}", uninterrupted.budget);
    eprintln!("resumed ledger:       {:?}", resumed.budget);
    assert_eq!(
        resumed.budget, uninterrupted.budget,
        "resume from a round-boundary checkpoint must replay the identical ledger"
    );
    fs::remove_file(&path).ok();
}
