//! Integration tests for the `geoblock` CLI binary.

use std::process::{Command, Stdio};

fn geoblock() -> Command {
    Command::new(env!("CARGO_BIN_EXE_geoblock"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = geoblock().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
        output.status.success(),
    )
}

#[test]
fn fingerprints_lists_all_seventeen() {
    let (stdout, _, ok) = run(&["fingerprints"]);
    assert!(ok);
    for label in [
        "Cloudflare",
        "Akamai",
        "Airbnb",
        "Varnish",
        "nginx",
        "Distil Captcha",
        "Akamai Bot Manager",
        "Incapsula Captcha",
        "CloudFront Fronting Mismatch",
    ] {
        assert!(stdout.contains(label), "missing {label}:\n{stdout}");
    }
    assert_eq!(stdout.lines().count(), 18); // header + 17
}

#[test]
fn fingerprints_json_round_trips() {
    let (stdout, _, ok) = run(&["fingerprints", "--json"]);
    assert!(ok);
    let parsed: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(parsed.as_array().map(Vec::len), Some(17));
}

#[test]
fn classify_recognises_a_block_page_from_stdin() {
    let mut child = geoblock()
        .args(["classify", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn");
    use std::io::Write;
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(b"Request unsuccessful. Incapsula incident ID: 443000190")
        .expect("write");
    let output = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("Incapsula"), "{stdout}");
}

#[test]
fn world_lookup_reports_ground_truth() {
    let (stdout, _, ok) = run(&["world", "pbskids.com", "--size", "10000"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Child Education"));
    assert!(stdout.contains("geoblocks:"));
    assert!(stdout.contains("IR"));
}

#[test]
fn world_lookup_fails_cleanly_for_unknown_domains() {
    let (_, stderr, ok) = run(&["world", "definitely-not-generated.example"]);
    assert!(!ok);
    assert!(stderr.contains("not in this world"), "{stderr}");
}

#[test]
fn dns_walks_the_netblock_tree() {
    let (stdout, _, ok) = run(&[
        "dns",
        "_cloud-netblocks1.googleusercontent.com",
        "--size",
        "5000",
    ]);
    assert!(ok);
    assert!(stdout.contains("ip4:172."), "{stdout}");
}

#[test]
fn unknown_subcommands_and_flags_error_out() {
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
    let (_, stderr, ok) = run(&["world", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
}

#[test]
fn study_exports_and_diff_reads_back() {
    let dir = std::env::temp_dir().join("geoblock-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let out = dir.join("study.json");
    let out_str = out.to_str().expect("utf-8 path");

    let (_, stderr, ok) = run(&[
        "study", "--top", "150", "--size", "20000", "--from", "IR,SY,US", "--out", out_str,
    ]);
    assert!(ok, "{stderr}");
    assert!(out.exists());
    assert!(dir.join("study.json.csv").exists());

    // Diffing a study against itself: no deltas, stable pairs preserved.
    let (stdout, stderr, ok) = run(&["diff", out_str, out_str]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("newly blocked: 0"), "{stdout}");
    assert!(stdout.contains("unblocked: 0"), "{stdout}");
}
