//! Acceptance tests for the fault-injection harness and the adaptive
//! retry subsystem:
//!
//! * a fixed-seed [`FaultPlan`] yields **byte-identical** `BatchStats`
//!   across two runs (the determinism contract, checked at a fixed seed
//!   and property-tested across seeds);
//! * hardened probing recovers ≥95% of the probes that naive (no-retry)
//!   probing loses under the standard fault plan (the PR's acceptance
//!   bar);
//! * the circuit breaker quarantines an always-failing exit within
//!   `retries + 1` attempts.

use std::sync::Arc;

use geoblock::lumscan::TransportRequest;
use geoblock::prelude::*;
use geoblock::proxynet::LUMTEST_HOST;
use proptest::prelude::*;

/// An inner transport with no weather of its own: echo pages report the
/// requested country, every other host serves a stable page. All failures
/// observed through a [`FaultyTransport`] wrapper are injected.
struct Perfect;

impl Transport for Perfect {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let body = if req.request.url.host.as_str() == LUMTEST_HOST {
            format!("ip=10.0.0.1&country={}", req.country)
        } else {
            format!(
                "<html><body>{} as seen from anywhere</body></html>",
                req.request.url.host.as_str()
            )
        };
        Ok(Response::builder(StatusCode::OK)
            .body(body)
            .finish(req.request.url))
    }
}

fn targets(n: usize) -> Vec<ProbeTarget> {
    (0..n)
        .map(|i| ProbeTarget::http(&format!("host-{i}.example"), cc("US")))
        .collect()
}

fn engine(
    plan: FaultPlan,
    retry: RetryPolicy,
    concurrency: usize,
) -> Arc<Lumscan<FaultyTransport<Perfect>>> {
    let config = LumscanConfig::builder()
        .retry(retry)
        .concurrency(concurrency)
        .build()
        .expect("valid test config");
    Arc::new(Lumscan::new(FaultyTransport::new(Perfect, plan), config))
}

/// One full probe batch under `plan` at concurrency 1 (breaker state is
/// probe-order-dependent, so the determinism contract is strongest when
/// probes run in order).
fn run_batch(plan: FaultPlan, retry: RetryPolicy) -> BatchStats {
    let rt = tokio::runtime::Builder::new_current_thread()
        .enable_all()
        .build()
        .expect("tokio runtime");
    let engine = engine(plan, retry, 1);
    let results = rt.block_on(engine.probe_all(&targets(150)));
    engine.batch_stats(&results)
}

#[test]
fn fixed_seed_fault_plan_is_deterministic() {
    let a = run_batch(
        FaultPlan::standard(0xbeef),
        RetryPolicy::with_max_retries(3),
    );
    let b = run_batch(
        FaultPlan::standard(0xbeef),
        RetryPolicy::with_max_retries(3),
    );
    assert_eq!(a, b, "identically-seeded runs must agree field for field");
    // And the run is not trivially clean — faults actually happened.
    assert!(!a.fault_counts.is_empty(), "standard plan injected nothing");
    assert!(a.attempts > a.total, "no retries were ever needed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The determinism contract holds for arbitrary seeds, not just the
    /// blessed one.
    #[test]
    fn any_seed_fault_plan_is_deterministic(seed in 0u64..1_000_000) {
        let a = run_batch(FaultPlan::standard(seed), RetryPolicy::default());
        let b = run_batch(FaultPlan::standard(seed), RetryPolicy::default());
        prop_assert_eq!(a, b);
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn hardened_probing_recovers_95_percent_of_naive_losses() {
    let plan = FaultPlan::standard(42);
    let batch = targets(600);

    let naive = engine(plan.clone(), RetryPolicy::none(), 32);
    let naive_results = naive.probe_all(&batch).await;
    let naive_stats = naive.batch_stats(&naive_results);

    let hardened = engine(plan, RetryPolicy::with_max_retries(4), 32);
    let hardened_results = hardened.probe_all(&batch).await;
    let hardened_stats = hardened.batch_stats(&hardened_results);

    // The inner transport is perfect, so every naive loss is an injected
    // fault the retry layer could in principle absorb.
    let lost = naive_stats.failed;
    assert!(
        lost >= 20,
        "standard plan should visibly hurt naive probing, lost only {lost}"
    );
    let recovered = hardened_stats
        .responded
        .saturating_sub(naive_stats.responded);
    let share = recovered as f64 / lost as f64;
    assert!(
        share >= 0.95,
        "hardened probing recovered only {:.1}% of {} naive losses",
        share * 100.0,
        lost
    );

    // The reliability ledger surfaces what happened.
    assert!(hardened_stats.recovered > 0, "recoveries must be counted");
    assert!(
        hardened_stats.attempts_histogram.len() > 1,
        "histogram must show multi-attempt probes: {:?}",
        hardened_stats.attempts_histogram
    );
    assert!(
        hardened_stats.fault_counts.values().sum::<usize>() > 0,
        "absorbed faults must be ledgered"
    );
}

/// Verification succeeds but every real fetch dies: the exit looks fine,
/// then fails persistently.
struct VerifyThenFail;

impl Transport for VerifyThenFail {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        if req.request.url.host.as_str() == LUMTEST_HOST {
            return Ok(Response::builder(StatusCode::OK)
                .body(format!("ip=10.0.0.1&country={}", req.country))
                .finish(req.request.url));
        }
        Err(FetchError::ConnectionReset)
    }
}

#[tokio::test]
async fn breaker_quarantines_always_failing_exits_within_the_attempt_budget() {
    let retry = RetryPolicy {
        max_retries: 3,
        breaker_threshold: 1,
        ..RetryPolicy::default()
    };
    let max_attempts = retry.max_attempts();
    let config = LumscanConfig::builder()
        .retry(retry)
        .concurrency(1)
        .build()
        .expect("valid test config");
    let engine = Arc::new(Lumscan::new(VerifyThenFail, config));

    let results = engine
        .probe_all(&[ProbeTarget::http("dead.example", cc("US"))])
        .await;
    let probe = &results[0];
    assert!(probe.outcome.is_err(), "every fetch fails");
    assert_eq!(
        probe.attempts, max_attempts,
        "transient failures must consume the whole budget"
    );
    let quarantined = engine.breaker().quarantined_count();
    assert!(
        quarantined >= 1 && quarantined <= max_attempts as usize,
        "breaker quarantined {quarantined} exits over {max_attempts} attempts"
    );
    let stats = engine.batch_stats(&results);
    assert_eq!(stats.quarantined_exits, quarantined);
    assert_eq!(stats.attempts_histogram, vec![0, 0, 0, 1]);
}
