//! The orchestrator's contract, end to end: sharding and kill/resume are
//! invisible to the study.
//!
//! Three layers of evidence:
//!
//! * **shard sweep** — for a fixed seed, the DST scenario's
//!   `StudyFingerprint` is identical at shard counts {1, 2, 8} and equal
//!   to the single-stream run's (`SHARD_SWEEP_SEEDS` widens the sweep);
//! * **kill/resume** — a run stopped at half its work units and resumed
//!   from the checkpoint file on a fresh engine fingerprints identically
//!   to an uninterrupted run;
//! * **checkpoint integrity** — corruption, truncation, tampering, a
//!   foreign study config, and wrong versions all surface as typed
//!   [`CheckpointError`]s, never panics and never silent acceptance.

use std::fs;
use std::path::{Path, PathBuf};

use geoblock::orchestrator::{Checkpoint, CheckpointError, OrchestratorError};
use geoblock::simtest::{
    run_scenario, run_sharded_scenario, run_sharded_scenario_resumed, run_sweep, scenario_config,
    scenario_domains, GOLDEN_SEED,
};

fn tmp(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("orchestrator_resume");
    fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

/// The acceptance criterion, verbatim: for a fixed seed the fingerprint is
/// identical across shard counts {1, 2, 8}, and identical to the
/// single-stream scenario the golden corpus pins.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn fingerprint_is_identical_across_shard_counts() {
    let single = run_scenario(GOLDEN_SEED, 1).await;
    for shards in [1usize, 2, 8] {
        let sharded = run_sharded_scenario(GOLDEN_SEED, shards).await;
        assert_eq!(
            sharded.fingerprint, single.fingerprint,
            "shards={shards} diverged from the single-stream run"
        );
        assert_eq!(
            sharded.trace.canonical_text(),
            single.trace.canonical_text(),
            "shards={shards} trace text diverged"
        );
        assert_eq!(sharded.flagged, single.flagged);
    }
}

/// The sweep form of the same property, across seeds: `SHARD_SWEEP_SEEDS`
/// tunes the width (CI runs a reduced sweep per PR). The sweep runner
/// compares fingerprints across the "concurrency" axis, which here carries
/// the shard count.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn shard_sweep_is_shard_count_independent() {
    let n: u64 = std::env::var("SHARD_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let seeds: Vec<u64> = (0..n).map(|i| 0x5aa_0000 + i * 6151).collect();
    let report = run_sweep(&seeds, &[1, 2, 8], |seed, shards| async move {
        run_sharded_scenario(seed, shards).await.fingerprint
    })
    .await;
    assert_eq!(report.runs as u64, n * 3);
    assert!(report.is_deterministic(), "{}", report.summary());
}

/// Kill at half the work units, resume from the checkpoint file on a fresh
/// engine: the finished study fingerprints identically to one that was
/// never interrupted.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn kill_and_resume_matches_the_uninterrupted_run() {
    let uninterrupted = run_sharded_scenario(GOLDEN_SEED, 2).await;
    let path = tmp("kill_resume.ckpt");
    let resumed = run_sharded_scenario_resumed(GOLDEN_SEED, 2, &path).await;
    assert_eq!(
        resumed.fingerprint, uninterrupted.fingerprint,
        "kill-at-50%-then-resume must be invisible"
    );
    assert_eq!(
        resumed.trace.canonical_text(),
        uninterrupted.trace.canonical_text()
    );
    assert_eq!(resumed.flagged, uninterrupted.flagged);
    // The checkpoint left behind covers the complete pass.
    let cp = Checkpoint::load(&path).expect("final checkpoint");
    let config = scenario_config();
    let expected =
        scenario_domains().len() * config.countries.len() * config.baseline_samples as usize;
    assert_eq!(cp.completed_probes(), expected);
    fs::remove_file(&path).ok();
}

/// A valid checkpoint file for integrity tests, produced by an interrupted
/// scenario run.
async fn write_checkpoint(name: &str) -> PathBuf {
    let path = tmp(name);
    // The resumed runner both writes and consumes the file; afterwards the
    // final checkpoint is on disk, valid, and complete.
    run_sharded_scenario_resumed(GOLDEN_SEED, 1, &path).await;
    path
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn corrupt_checkpoints_are_typed_errors_not_panics() {
    let path = write_checkpoint("integrity.ckpt").await;
    let full = fs::read_to_string(&path).expect("checkpoint text");

    // Garbage bytes: malformed.
    fs::write(&path, b"\x00\xffnot json at all").unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Malformed(_))
    ));

    // Truncation (a crash mid-write of a non-atomic copy): malformed.
    fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Malformed(_))
    ));

    // A tampered record: the trace hash no longer matches.
    let tampered = full.replacen("\"attempts\":1", "\"attempts\":9", 1);
    assert_ne!(tampered, full, "fixture must contain a 1-attempt record");
    fs::write(&path, &tampered).unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Integrity { .. })
    ));

    // A future format version is refused, not misread.
    let versioned = full.replacen("\"version\":1", "\"version\":999", 1);
    assert_ne!(versioned, full);
    fs::write(&path, &versioned).unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Version { found: 999, .. })
    ));

    // A missing file is an I/O error.
    fs::remove_file(&path).unwrap();
    assert!(matches!(
        Checkpoint::load(&path),
        Err(CheckpointError::Io(_))
    ));
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn resume_refuses_a_checkpoint_from_a_different_study() {
    use std::sync::Arc;

    use geoblock::orchestrator::{Orchestrator, OrchestratorConfig};
    use geoblock::prelude::{FaultPlan, FaultyTransport, Lumscan};
    use geoblock::simtest::{scenario_engine_config, SimWeb};

    let path = write_checkpoint("config_mismatch.ckpt").await;
    let checkpoint = Checkpoint::load(&path).expect("valid checkpoint");

    // Same study config, different domain list: a different study.
    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(GOLDEN_SEED));
    let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(1)));
    let orch = Orchestrator::new(engine, scenario_config(), OrchestratorConfig::default());
    let mut other_domains = scenario_domains();
    other_domains.push("straggler.example".to_string());
    let err = orch
        .resume(&other_domains, checkpoint)
        .await
        .err()
        .expect("a foreign checkpoint must be refused");
    assert!(matches!(
        err,
        OrchestratorError::Checkpoint(CheckpointError::ConfigMismatch { .. })
    ));
    fs::remove_file(&path).ok();
}

/// The orchestrated policy driver's resume contract, end to end: a
/// `PaperExact` pass killed mid-grid and resumed from its checkpoint on a
/// fresh engine finishes with the identical probe-budget ledger — same
/// spend, same per-round charges — and the identical study data, so a
/// resumed run can *prove* it replayed rather than re-spent.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn policy_resume_replays_the_identical_budget_ledger() {
    use std::sync::Arc;

    use geoblock::orchestrator::{Orchestrator, OrchestratorConfig};
    use geoblock::prelude::{
        FaultPlan, FaultyTransport, Lumscan, PaperExact, ProbeBudget, StudyFingerprint, StudyTrace,
    };
    use geoblock::simtest::{scenario_engine_config, SimWeb};

    fn orch(config: OrchestratorConfig) -> Orchestrator<FaultyTransport<SimWeb>> {
        let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(GOLDEN_SEED));
        let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(2)));
        Orchestrator::new(engine, scenario_config(), config)
    }

    let uninterrupted = orch(OrchestratorConfig::default().shards(2))
        .run_policy(
            &scenario_domains(),
            &mut PaperExact,
            ProbeBudget::unlimited(),
        )
        .await
        .expect("uninterrupted policy run");
    assert!(!uninterrupted.interrupted);
    assert!(uninterrupted.budget.spent > 0);

    // Leg 1: killed after one grid work unit; the checkpoint carries the
    // completed unit and the (not-yet-charged) ledger.
    let path = tmp("policy_ledger.ckpt");
    let leg1 = orch(
        OrchestratorConfig::default()
            .shards(1)
            .checkpoint_path(&path)
            .stop_after_units(1),
    )
    .run_policy(
        &scenario_domains(),
        &mut PaperExact,
        ProbeBudget::unlimited(),
    )
    .await
    .expect("interrupted policy run");
    assert!(leg1.interrupted);
    assert_eq!(leg1.budget.spent, 0, "rounds charge only on completion");

    // Leg 2: a fresh engine (same seed, so the weather replays) resumes
    // from the file and finishes the whole protocol.
    let checkpoint = Checkpoint::load(&path).expect("mid-grid checkpoint");
    let resumed = orch(
        OrchestratorConfig::default()
            .shards(2)
            .checkpoint_path(&path),
    )
    .resume_policy(&scenario_domains(), checkpoint, &mut PaperExact)
    .await
    .expect("resumed policy run");
    assert!(!resumed.interrupted);
    assert!(resumed.restored_units >= 1);

    assert_eq!(
        resumed.budget, uninterrupted.budget,
        "the resumed ledger must replay the uninterrupted spend exactly"
    );
    assert_eq!(resumed.flagged, uninterrupted.flagged);
    let empty = StudyTrace { events: Vec::new() };
    let config = scenario_config();
    assert_eq!(
        StudyFingerprint::capture(&empty, &resumed.result, &config.confirm),
        StudyFingerprint::capture(&empty, &uninterrupted.result, &config.confirm),
        "kill/resume must be invisible in the study data"
    );

    // The final checkpoint on disk holds the fully-charged ledger.
    let final_cp = Checkpoint::load(&path).expect("final checkpoint");
    assert_eq!(final_cp.budget, Some(resumed.budget.clone()));
    fs::remove_file(&path).ok();
}

/// Resume from a *round-boundary* checkpoint — the file on disk if the
/// process dies during the confirmation round: all grid units complete,
/// ledger charged for round 0 only. The resumed run must replay the
/// remaining rounds and land on the uninterrupted ledger exactly, not
/// double-charge the grid it restored.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn resume_from_a_round_boundary_checkpoint_does_not_double_charge() {
    use std::sync::Arc;

    use geoblock::orchestrator::{Orchestrator, OrchestratorConfig};
    use geoblock::prelude::{
        FaultPlan, FaultyTransport, Lumscan, PaperExact, ProbeBudget, RoundSpend,
    };
    use geoblock::simtest::{scenario_engine_config, SimWeb};

    fn orch(config: OrchestratorConfig) -> Orchestrator<FaultyTransport<SimWeb>> {
        let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(GOLDEN_SEED));
        let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(2)));
        Orchestrator::new(engine, scenario_config(), config)
    }

    let path = tmp("boundary.ckpt");
    let uninterrupted = orch(
        OrchestratorConfig::default()
            .shards(1)
            .checkpoint_path(&path),
    )
    .run_policy(
        &scenario_domains(),
        &mut PaperExact,
        ProbeBudget::unlimited(),
    )
    .await
    .expect("uninterrupted run");
    assert!(!uninterrupted.interrupted);

    // Reconstruct the round-0-boundary checkpoint from the final one: all
    // grid units done, the ledger holding exactly round 0's charge —
    // what drive_policy writes after the grid round completes.
    let final_cp = Checkpoint::load(&path).expect("final checkpoint");
    let mut boundary = final_cp.clone();
    let round0 = uninterrupted.budget.rounds[0];
    boundary.budget = Some(ProbeBudget {
        cap: None,
        spent: round0.probes,
        rounds: vec![RoundSpend {
            round: 0,
            probes: round0.probes,
        }],
    });

    let resumed = orch(OrchestratorConfig::default().shards(1))
        .resume_policy(&scenario_domains(), boundary, &mut PaperExact)
        .await
        .expect("resumed run");
    assert_eq!(
        resumed.budget, uninterrupted.budget,
        "resume from a round-boundary checkpoint must replay the identical ledger"
    );
    fs::remove_file(&path).ok();
}

/// Work-unit geometry is what the study config says it is: the scenario's
/// five domains at two domains per unit make three units.
#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn work_unit_size_comes_from_the_study_config() {
    use std::sync::Arc;

    use geoblock::orchestrator::{Orchestrator, OrchestratorConfig};
    use geoblock::prelude::{FaultPlan, FaultyTransport, Lumscan};
    use geoblock::simtest::{scenario_engine_config, SimWeb};

    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(GOLDEN_SEED));
    let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(2)));
    let orch = Orchestrator::new(
        engine,
        scenario_config(),
        OrchestratorConfig::default().shards(2),
    );
    let plan = orch.shard_plan(&scenario_domains());
    assert_eq!(plan.total_units(), 3, "5 domains at 2 per unit");
    let run = orch.baseline(&scenario_domains()).await.expect("baseline");
    assert_eq!(run.total_units, 3);
    assert_eq!(run.fresh_units, 3);
    assert!(!run.interrupted);
}
