//! Deterministic simulation testing of the full study pipeline.
//!
//! Four layers of evidence that a study is a pure function of its seed:
//!
//! * **golden trace** — the canonical probe trace of the pinned scenario
//!   (seed 42, concurrency 1, virtual-clock timestamps) matches the
//!   committed corpus under `tests/golden/` byte for byte;
//! * **seed sweep** — `SEED_SWEEP_SEEDS` seeds (default 32) × concurrency
//!   {1, 4, 16} produce identical trace/cells/archive/verdict fingerprints
//!   per seed;
//! * **caught-and-shrunk** — a deliberately schedule-coupled fault
//!   injector diverges across concurrency levels, the sweep catches it,
//!   and delta-debugging shrinks its recorded schedule to a ≤5-event
//!   scripted fixture that replays the divergence;
//! * **invariants** — every replay re-derives the paper's arithmetic
//!   (agreement thresholds, body retention, retry/exit budgets) from raw
//!   trace and store evidence.

use std::fs;
use std::path::Path;

use geoblock::prelude::AdaptiveBandit;
use geoblock::proxynet::ScriptedFaults;
use geoblock::simtest::{
    canonical_events, check_flagged_floor, check_study, check_trace, ddmin_async,
    run_clocked_scenario, run_policy_scenario, run_scenario, run_scenario_on, run_sweep,
    scenario_config, scenario_engine_config, scenario_plan_len, ArrivalOrderFaults, ProbeLimits,
    ReproFixture, SimWeb, GOLDEN_SEED,
};

/// The golden corpus: bootstrap on first run, byte-compare ever after.
/// Regenerate intentionally by deleting the file and rerunning.
#[tokio::test(flavor = "current_thread")]
async fn golden_trace_matches_the_corpus() {
    let run = run_clocked_scenario(GOLDEN_SEED).await;
    let again = run_clocked_scenario(GOLDEN_SEED).await;
    assert_eq!(
        run.trace.content_hash(),
        again.trace.content_hash(),
        "the clocked scenario must repeat itself within one process"
    );
    assert_eq!(run.trace.len(), scenario_plan_len());

    let text = run.trace.canonical_text();
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(format!("scenario_seed{GOLDEN_SEED}_c1.trace"));
    if path.exists() {
        let pinned = fs::read_to_string(&path).expect("golden trace is readable");
        assert_eq!(
            pinned,
            text,
            "study trace diverged from the golden corpus (hash {}); if this \
             change is intentional, delete {} and rerun to regenerate",
            run.trace.hash_hex(),
            path.display()
        );
    } else {
        fs::create_dir_all(&dir).expect("golden dir");
        fs::write(&path, &text).expect("bootstrap golden trace");
    }
}

/// The tentpole sweep: every seed's study is identical at concurrency 1,
/// 4, and 16 — trace, observation cells, archived bodies, and verdicts.
/// `SEED_SWEEP_SEEDS` tunes the width (CI runs a reduced sweep per PR).
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn seed_sweep_is_concurrency_independent() {
    let n: u64 = std::env::var("SEED_SWEEP_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let seeds: Vec<u64> = (0..n).map(|i| 0xd57_0000 + i * 7919).collect();
    let report = run_sweep(&seeds, &[1, 4, 16], |seed, concurrency| async move {
        run_scenario(seed, concurrency).await.fingerprint
    })
    .await;
    assert_eq!(report.runs as u64, n * 3);
    assert!(report.is_deterministic(), "{}", report.summary());
}

/// The harness catches what it exists to catch: an arrival-order-coupled
/// fault injector diverges across concurrency levels, the sweep flags the
/// trace, and ddmin shrinks the recorded schedule to a ≤5-event scripted
/// fixture that still reproduces the divergence after a JSON round trip.
#[tokio::test(flavor = "current_thread")]
async fn injected_nondeterminism_is_caught_and_shrunk() {
    const PERIOD: u64 = 13;

    // Caught: same scenario, same (zero-seed) weather, different schedules.
    let report = run_sweep(&[0], &[1, 4], |_seed, concurrency| async move {
        let run =
            run_scenario_on(ArrivalOrderFaults::new(SimWeb::new(), PERIOD), concurrency).await;
        run.fingerprint
    })
    .await;
    assert!(
        !report.is_deterministic(),
        "the arrival-order adversary must diverge across schedules"
    );
    assert!(
        report.divergences[0].fields.contains(&"trace"),
        "divergence should show up in the probe trace: {}",
        report.summary()
    );

    // Harvest the adversary's strike schedule from a fixed-schedule run.
    let adversary = ArrivalOrderFaults::new(SimWeb::new(), PERIOD);
    let log = adversary.log_handle();
    let faulted = run_scenario_on(adversary, 1).await;
    let clean = run_scenario_on(SimWeb::new(), 1).await;
    let clean_hash = clean.fingerprint.trace_hash;
    assert_ne!(faulted.fingerprint.trace_hash, clean_hash);

    let schedule = canonical_events(log.lock().clone());
    assert!(
        schedule.len() > 5,
        "want a non-trivial schedule to shrink, got {} events",
        schedule.len()
    );

    // Shrunk: a 1-minimal sub-schedule that still perturbs the study.
    let minimal = ddmin_async(&schedule, |events| async move {
        let replay = run_scenario_on(ScriptedFaults::new(SimWeb::new(), events), 1).await;
        replay.fingerprint.trace_hash != clean_hash
    })
    .await;
    assert!(
        !minimal.is_empty() && minimal.len() <= 5,
        "shrinker stopped at {} events: {minimal:?}",
        minimal.len()
    );

    // Emitted and replayable: the fixture survives serialization and still
    // reproduces the divergence when scripted back over the clean web.
    let fixture = ReproFixture::new(
        "arrival-order fault schedule perturbing the DST scenario trace",
        0,
        minimal,
    );
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("shrunk_repro.json");
    fs::write(&path, fixture.to_json()).expect("emit fixture");
    let parsed = ReproFixture::from_json(&fs::read_to_string(&path).expect("read fixture"))
        .expect("fixture parses");
    assert_eq!(parsed, fixture);
    let replay = run_scenario_on(ScriptedFaults::new(SimWeb::new(), parsed.events), 1).await;
    assert_ne!(
        replay.fingerprint.trace_hash, clean_hash,
        "replayed fixture no longer reproduces the divergence"
    );
}

/// The sampling-policy refactor is invisible where it must be and bounded
/// where it may differ: driving the scenario through [`PaperExact`]'s
/// round loop reproduces the pre-policy study bit for bit (trace, cells,
/// archive, verdicts), and [`AdaptiveBandit`] — which *is* allowed to
/// probe less — still never leaves a flagged pair below the paper's full
/// 23-sample floor.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sampling_policies_replay_exactly_and_respect_the_floor() {
    for seed in [GOLDEN_SEED, 7] {
        let classic = run_scenario(seed, 2).await;
        let exact = run_policy_scenario(seed, 2, None).await;
        assert_eq!(
            exact.fingerprint, classic.fingerprint,
            "PaperExact diverged from the fixed protocol at seed {seed}"
        );
        assert_eq!(exact.trace.canonical_text(), classic.trace.canonical_text());
        assert_eq!(exact.flagged, classic.flagged);
    }

    let adaptive =
        run_policy_scenario(GOLDEN_SEED, 2, Some(Box::new(AdaptiveBandit::default()))).await;
    assert!(adaptive.flagged >= 1, "the scenario has blocked pairs");
    let violations = check_flagged_floor(&adaptive.result, &scenario_config());
    assert!(violations.is_empty(), "{violations:?}");
}

/// Invariant checkers pass on a clean replay and catch tampered evidence.
#[tokio::test(flavor = "current_thread")]
async fn invariants_hold_on_replays_and_catch_tampering() {
    let run = run_scenario(7, 1).await;
    let limits = ProbeLimits::of(&scenario_engine_config(1));

    let violations = check_trace(&run.trace, scenario_plan_len(), &limits);
    assert!(violations.is_empty(), "{violations:?}");
    let violations = check_study(&run.result, &scenario_config());
    assert!(violations.is_empty(), "{violations:?}");

    // A cooked attempt ledger is caught…
    let mut tampered = run.trace.clone();
    tampered.events[0].attempts = 99;
    let violations = check_trace(&tampered, scenario_plan_len(), &limits);
    assert!(
        violations.iter().any(|v| v.invariant == "attempt-budget"),
        "{violations:?}"
    );

    // …and so is a duplicated completion.
    let mut duplicated = run.trace.clone();
    let extra = duplicated.events[0].clone();
    duplicated.events.push(extra);
    let violations = check_trace(&duplicated, scenario_plan_len(), &limits);
    assert!(
        violations.iter().any(|v| v.invariant == "completeness"),
        "{violations:?}"
    );
}
