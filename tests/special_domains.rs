//! The paper's named anecdotes, end to end through the proxy stack:
//! `fasttech.com` (Baidu page in China), the Airbnb ccTLD family (Iran and
//! Syria only), `pbskids.com` (the Child Education geoblocker), and
//! `zales.com` (dual Incapsula + Akamai headers).

use std::sync::Arc;

use geoblock::core::population::{identify_populations, PopulationProbe};
use geoblock::prelude::*;

fn stack() -> (Arc<World>, Arc<SimInternet>, Arc<Lumscan<LuminatiNetwork>>) {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::builder()
            .build()
            .expect("valid engine config"),
    ));
    (world, internet, engine)
}

async fn observed_kinds(
    engine: &Arc<Lumscan<LuminatiNetwork>>,
    domain: &str,
    country: CountryCode,
    samples: usize,
) -> Vec<Option<PageKind>> {
    let fingerprints = CompiledFingerprintSet::paper();
    let targets = vec![ProbeTarget::http(domain, country); samples];
    engine
        .probe_all(&targets)
        .await
        .into_iter()
        .map(|r| {
            r.outcome.ok().and_then(|chain| {
                fingerprints
                    .classify(chain.final_response())
                    .map(|m| m.kind)
            })
        })
        .collect()
}

#[tokio::test(flavor = "multi_thread")]
async fn fasttech_serves_the_baidu_page_in_china_only() {
    let (_, _, engine) = stack();
    let china = observed_kinds(&engine, "fasttech.com", cc("CN"), 8).await;
    let baidu = china
        .iter()
        .filter(|k| **k == Some(PageKind::Baidu))
        .count();
    assert!(baidu >= 5, "china: {china:?}");

    let us = observed_kinds(&engine, "fasttech.com", cc("US"), 8).await;
    assert!(us.iter().all(|k| *k != Some(PageKind::Baidu)), "us: {us:?}");
}

#[tokio::test(flavor = "multi_thread")]
async fn airbnb_family_blocks_exactly_iran_and_syria() {
    let (_, _, engine) = stack();
    for domain in ["airbnb.com", "airbnb.de", "airbnb.com.au"] {
        for country in ["IR", "SY"] {
            let kinds = observed_kinds(&engine, domain, cc(country), 6).await;
            let airbnb = kinds
                .iter()
                .filter(|k| **k == Some(PageKind::Airbnb))
                .count();
            assert!(airbnb >= 4, "{domain} in {country}: {kinds:?}");
        }
        // Cuba and Sudan are sanctioned but NOT on Airbnb's list (§4.2.2).
        for country in ["CU", "SD", "US"] {
            let kinds = observed_kinds(&engine, domain, cc(country), 4).await;
            assert!(
                kinds.iter().all(|k| *k != Some(PageKind::Airbnb)),
                "{domain} in {country}: {kinds:?}"
            );
        }
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn pbskids_blocks_the_sanctioned_countries() {
    let (_, _, engine) = stack();
    for country in ["IR", "SY", "SD", "CU"] {
        // Partially-enforcing pairs and Syrian network noise are part of
        // the model; a majority of samples blocking is the bar.
        let kinds = observed_kinds(&engine, "pbskids.com", cc(country), 10).await;
        let blocked = kinds
            .iter()
            .filter(|k| **k == Some(PageKind::Cloudflare))
            .count();
        assert!(blocked >= 4, "{country}: {kinds:?}");
    }
    let de = observed_kinds(&engine, "pbskids.com", cc("DE"), 6).await;
    assert!(de.iter().all(|k| k.is_none()), "{de:?}");
}

#[tokio::test(flavor = "multi_thread")]
async fn zales_shows_both_cdn_headers_to_the_population_scan() {
    let (world, internet, _) = stack();
    let dns = DnsDb::new(world);
    let vps = Arc::new(VpsTransport::new(internet, cc("US")));
    let report = identify_populations(
        vps,
        &dns,
        &["zales.com".to_string()],
        &PopulationProbe {
            country: cc("US"),
            concurrency: 1,
        },
    )
    .await;
    assert_eq!(report.of(Provider::Incapsula), ["zales.com"]);
    assert_eq!(report.of(Provider::Akamai), ["zales.com"]);
    assert_eq!(report.dual, ["zales.com"]);
}
