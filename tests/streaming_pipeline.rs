//! Acceptance tests for the streaming probe pipeline:
//!
//! * **fixed-seed equivalence** — the streaming study baseline produces the
//!   same observations, byte-identical archived bodies, and the same
//!   verdicts as a shim replicating the old chunked-batch driver. Run at
//!   concurrency 1: breaker and fault state are probe-order-dependent, so
//!   the contract is "same probe order ⇒ same study", not "any schedule ⇒
//!   same study";
//! * **bounded memory** — in-flight targets never exceed the engine's
//!   concurrency and no body from a non-representative country survives a
//!   baseline pass;
//! * **panic isolation** — a panicking transport poisons one slot, not the
//!   stream.

use std::sync::Arc;

use geoblock::blockpages::{render, PageParams};
use geoblock::core::{classify_chain, BodyArchive, StudyResult};
use geoblock::lumscan::TransportRequest;
use geoblock::prelude::*;
use geoblock::proxynet::LUMTEST_HOST;

/// A little deterministic web: `blocked-*` hosts serve a Cloudflare 1009
/// page in IR and SY and content elsewhere; `plain-*` hosts always serve
/// content. All failures observed through a [`FaultyTransport`] wrapper
/// are injected.
struct MiniWeb;

impl Transport for MiniWeb {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let host = req.request.url.host.as_str().to_string();
        if host == LUMTEST_HOST {
            return Ok(Response::builder(StatusCode::OK)
                .body(format!("ip=10.0.0.1&country={}", req.country))
                .finish(req.request.url));
        }
        if host.starts_with("blocked-") && (req.country == cc("IR") || req.country == cc("SY")) {
            let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
            return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
        }
        Ok(Response::builder(StatusCode::OK)
            .body(format!(
                "<html><body>{host} serves {}</body></html>",
                "content ".repeat(40 + host.len())
            ))
            .finish(req.request.url))
    }
}

fn domains() -> Vec<String> {
    vec![
        "blocked-0.example".to_string(),
        "plain-0.example".to_string(),
        "blocked-1.example".to_string(),
        "plain-1.example".to_string(),
        "plain-2.example".to_string(),
    ]
}

fn study_config(work_unit_domains: usize) -> StudyConfig {
    StudyConfig::builder()
        .countries([cc("IR"), cc("SY"), cc("US"), cc("DE")])
        .rep_countries([cc("IR"), cc("US")])
        .work_unit_domains(work_unit_domains)
        .build()
        .expect("valid study config")
}

fn faulty_engine(seed: u64, concurrency: usize) -> Arc<Lumscan<FaultyTransport<MiniWeb>>> {
    let config = LumscanConfig::builder()
        .retry(RetryPolicy::with_max_retries(3))
        .concurrency(concurrency)
        .build()
        .expect("valid engine config");
    Arc::new(Lumscan::new(
        FaultyTransport::new(MiniWeb, FaultPlan::standard(seed)),
        config,
    ))
}

/// The old batch driver, preserved as a test shim: materialize each chunk's
/// full target vector, `probe_all` it behind a barrier, then classify the
/// results with the historical index arithmetic.
async fn chunked_batch_baseline<T: Transport + 'static>(
    engine: &Arc<Lumscan<T>>,
    config: &StudyConfig,
    domains: &[String],
) -> StudyResult {
    let fingerprints = CompiledFingerprintSet::paper();
    let mut store = SampleStore::new(domains.to_vec(), config.countries.clone());
    let mut archive = BodyArchive::new();
    let nc = config.countries.len();
    let ns = config.baseline_samples as usize;
    let rep_idx: Vec<bool> = config
        .countries
        .iter()
        .map(|c| config.rep_countries.contains(c))
        .collect();
    for (chunk_no, chunk) in domains.chunks(config.work_unit_domains).enumerate() {
        let mut targets = Vec::with_capacity(chunk.len() * nc * ns);
        for domain in chunk {
            for country in &config.countries {
                for _ in 0..ns {
                    targets.push(ProbeTarget::http(domain, *country));
                }
            }
        }
        let results = engine.probe_all(&targets).await;
        for (i, result) in results.into_iter().enumerate() {
            let local_d = i / (nc * ns);
            let c = (i / ns) % nc;
            let s = i % ns;
            let d = chunk_no * config.work_unit_domains + local_d;
            let obs = classify_chain(&fingerprints, &result.outcome);
            if rep_idx[c] {
                if let Ok(chain) = &result.outcome {
                    let resp = chain.final_response();
                    archive.offer(
                        d as u32,
                        c as u16,
                        s as u16,
                        resp.body.len() as u32,
                        resp.body.bytes(),
                    );
                }
            }
            store.push(d, c, obs);
        }
    }
    StudyResult { store, archive }
}

fn sorted_archive(result: &StudyResult) -> Vec<((u32, u16, u16), Vec<u8>)> {
    let mut docs: Vec<((u32, u16, u16), Vec<u8>)> = result
        .archive
        .iter()
        .map(|(key, body)| (key, body.as_ref().to_vec()))
        .collect();
    docs.sort();
    docs
}

#[tokio::test]
async fn fixed_seed_streaming_baseline_matches_chunked_batch() {
    let domains = domains();
    let config = study_config(2); // 3 chunks over 5 domains in the shim.
    let seed = 0x5eed_cafe;

    let batch = chunked_batch_baseline(&faulty_engine(seed, 1), &config, &domains).await;
    let mut session = StudySession::new(faulty_engine(seed, 1), config);
    let streamed = session.baseline(&domains).await;

    // Every observation cell agrees, field for field.
    let batch_cells: Vec<(usize, usize, Vec<Obs>)> = batch
        .store
        .iter_cells()
        .map(|(d, c, obs)| (d, c, obs.to_vec()))
        .collect();
    let stream_cells: Vec<(usize, usize, Vec<Obs>)> = streamed
        .store
        .iter_cells()
        .map(|(d, c, obs)| (d, c, obs.to_vec()))
        .collect();
    assert_eq!(batch_cells, stream_cells);
    assert_eq!(batch.store.total_samples(), domains.len() * 4 * 3);

    // The retained bodies are byte-identical — archive retention is order-
    // dependent, so this is the strongest statement that the streaming
    // pipeline replays the exact probe-and-offer sequence.
    let batch_docs = sorted_archive(&batch);
    let stream_docs = sorted_archive(&streamed);
    assert!(!batch_docs.is_empty(), "the shim retained nothing");
    assert_eq!(batch_docs, stream_docs);

    // And the study-level conclusions agree.
    let confirm = ConfirmConfig::default();
    assert_eq!(batch.verdicts(&confirm), streamed.verdicts(&confirm));
}

#[tokio::test(flavor = "multi_thread")]
async fn streaming_baseline_is_bounded_and_keeps_only_rep_bodies() {
    let domains = domains();
    let mut gauge = GaugeSink::new();
    let mut session = StudySession::new(faulty_engine(7, 8), study_config(256)).sink(&mut gauge);
    let result = session.baseline(&domains).await;
    let config = session.config().clone();
    drop(session);

    let expected = domains.len() * config.countries.len() * 3;
    assert_eq!(gauge.started, expected);
    assert_eq!(gauge.completed, expected);
    assert!(gauge.finished, "the sink must see the end of the stream");
    assert!(
        gauge.peak_in_flight <= 8,
        "in-flight {} exceeded the engine concurrency",
        gauge.peak_in_flight
    );

    // Bodies survive only from representative countries — everything else
    // was classified and dropped on arrival.
    let rep: Vec<u16> = config
        .countries
        .iter()
        .enumerate()
        .filter(|(_, c)| config.rep_countries.contains(c))
        .map(|(i, _)| i as u16)
        .collect();
    assert!(
        !result.archive.is_empty(),
        "rep-country bodies were retained"
    );
    for ((domain, country, sample), _) in result.archive.iter() {
        assert!(
            rep.contains(&country),
            "body ({domain}, {country}, {sample}) is from a non-representative country"
        );
    }
}

/// Panics on the middle target, serves the rest.
struct PanicMiddle;

impl Transport for PanicMiddle {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let host = req.request.url.host.as_str().to_string();
        if host.contains("boom") {
            panic!("transport exploded on {host}");
        }
        let body = if host == LUMTEST_HOST {
            format!("ip=10.0.0.1&country={}", req.country)
        } else {
            format!("<html>{host}</html>")
        };
        Ok(Response::builder(StatusCode::OK)
            .body(body)
            .finish(req.request.url))
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn panicking_probe_does_not_abort_the_stream() {
    let engine = Arc::new(Lumscan::new(
        PanicMiddle,
        LumscanConfig::builder()
            .concurrency(4)
            .build()
            .expect("valid engine config"),
    ));
    let targets: Vec<ProbeTarget> = (0..9)
        .map(|i| {
            let host = if i == 4 {
                "boom.example".to_string()
            } else {
                format!("ok-{i}.example")
            };
            ProbeTarget::http(&host, cc("US"))
        })
        .collect();

    let mut stream = engine.probe_stream(targets).ordered();
    let mut outcomes = Vec::new();
    while let Some((idx, result)) = stream.next().await {
        outcomes.push((idx, result));
    }
    assert_eq!(outcomes.len(), 9, "the stream must yield every slot");
    for (idx, result) in &outcomes {
        if *idx == 4 {
            match result.error() {
                Some(FetchError::ProbePanicked { detail }) => {
                    assert!(detail.contains("boom.example"), "payload carried: {detail}");
                }
                other => panic!("slot 4 should be probe-fatal, got {other:?}"),
            }
        } else {
            assert!(result.responded(), "slot {idx} was poisoned by the panic");
        }
    }
    let stats = stream.into_stats();
    assert_eq!(stats.total, 9);
    assert_eq!(stats.responded, 8);
    assert_eq!(stats.failed, 1);
}
