//! Prober-bias differential: one evasive world, two client profiles.
//!
//! The §3.1 lesson is that the measuring client's fingerprint is part of
//! the measurement. These tests probe the *same* deterministic web twice —
//! once presenting a full browser, once presenting a ZGrab-style scanner —
//! and pin the divergence: the browser measures the domains' actual geo
//! policy, while the scanner measures the bot-detection front instead,
//! and the classifier must never launder those challenge pages into
//! geoblocking verdicts.

use geoblock::prelude::*;

fn engine_config(profile: ClientProfile) -> LumscanConfig {
    LumscanConfig::builder()
        .retry(RetryPolicy::with_max_retries(3))
        .concurrency(1)
        .profile(profile)
        .build()
        .expect("valid engine config")
}

#[tokio::test]
async fn browser_sees_geo_policy_where_the_scanner_sees_bot_detection() {
    let config = scenario_config();

    // A full browser passes every detection tier, so the study resolves
    // the ground-truth geo policy: both blocked-* domains confirmed from
    // both censoring countries.
    let browser =
        run_scenario_with_config(SimWeb::evasive(), engine_config(ClientProfile::browser())).await;
    let verdicts = browser.result.verdicts(&config.confirm);
    assert_eq!(verdicts.len(), 4, "{verdicts:?}");
    assert!(verdicts.iter().all(|v| v.kind == PageKind::Cloudflare));
    assert!(verdicts.iter().all(|v| v.kind.is_explicit_geoblock()));

    // The scanner never reaches the geo layer: every observation that
    // matched a fingerprint is a bot-detection page, and none of them
    // confirm as geoblocking.
    let scanner =
        run_scenario_with_config(SimWeb::evasive(), engine_config(ClientProfile::zgrab())).await;
    assert!(scanner.result.verdicts(&config.confirm).is_empty());
    assert_eq!(scanner.flagged, 0, "no pair may reach confirmation");
    let mut observed = 0;
    for event in &scanner.trace.events {
        if let Obs::Response {
            page: Some(page), ..
        } = event.obs
        {
            observed += 1;
            assert!(
                matches!(page.class(), PageClass::Captcha | PageClass::JsChallenge),
                "{page:?} is not a bot-detection page"
            );
            assert!(!page.is_explicit_geoblock(), "{page:?}");
        }
    }
    assert!(observed > 0, "the scanner must trip the detection front");

    // Both runs kept the study invariants despite measuring different
    // layers of the same world.
    assert!(check_study(&browser.result, &config).is_empty());
    assert!(check_study(&scanner.result, &config).is_empty());
}

#[tokio::test]
async fn profiled_runs_are_byte_stable() {
    for profile in [
        ClientProfile::browser(),
        ClientProfile::headless(),
        ClientProfile::zgrab(),
    ] {
        let a = run_scenario_with_config(SimWeb::evasive(), engine_config(profile)).await;
        let b = run_scenario_with_config(SimWeb::evasive(), engine_config(profile)).await;
        assert_eq!(a.fingerprint, b.fingerprint, "{profile:?}");
        assert_eq!(
            a.trace.canonical_text(),
            b.trace.canonical_text(),
            "{profile:?}"
        );
    }
}

#[tokio::test]
async fn headless_browser_fails_only_the_js_tier() {
    // A headless browser carries full browser headers (likeness above the
    // CAPTCHA band) but cannot execute a challenge: the evasive web serves
    // it the JS interstitial on every page, never the CAPTCHA and never a
    // geoblock page.
    let run =
        run_scenario_with_config(SimWeb::evasive(), engine_config(ClientProfile::headless())).await;
    assert!(run.result.verdicts(&scenario_config().confirm).is_empty());
    let mut observed = 0;
    for event in &run.trace.events {
        if let Obs::Response {
            page: Some(page), ..
        } = event.obs
        {
            observed += 1;
            assert_eq!(page, PageKind::CloudflareJs, "JS tier only");
        }
    }
    assert!(observed > 0);
}
