//! Domain fronting through the evasive scenario web.
//!
//! A fronted request names one host on the connection (the URL host — our
//! SNI analogue) and another in the `Host` header. Fronting-tolerant
//! origins route on `Host` alone, so the fronted fetch returns the same
//! body as a direct one; fronting-intolerant origins notice the
//! certificate mismatch and answer with a dedicated error page that the
//! classifier must report as a fronting mismatch — never as geoblocking.

use geoblock::prelude::*;

const FRONT: &str = "plain-0.example";

fn fronted_config(front: &str) -> LumscanConfig {
    LumscanConfig::builder()
        .retry(RetryPolicy::with_max_retries(3))
        .concurrency(1)
        .profile(ClientProfile::browser())
        .front_host(front)
        .build()
        .expect("valid engine config")
}

async fn fetch(web: &SimWeb, request: Request, country: &str) -> Response {
    web.fetch_one(TransportRequest {
        request,
        country: cc(country),
        session: SessionId(0),
    })
    .await
    .expect("SimWeb never errors")
}

#[tokio::test]
async fn tolerant_origins_serve_the_fronted_host_verbatim() {
    let web = SimWeb::evasive();
    let target = "plain-1.example";
    let direct = fetch(
        &web,
        Request::get(Url::http(target)).client_profile(&ClientProfile::browser()),
        "US",
    )
    .await;
    let fronted = fetch(
        &web,
        Request::get(Url::http(target))
            .client_profile(&ClientProfile::browser())
            .fronted(FRONT),
        "US",
    )
    .await;
    assert_eq!(fronted.status, StatusCode::OK);
    assert_eq!(
        fronted.body.as_text(),
        direct.body.as_text(),
        "fronting must be invisible on a tolerant origin"
    );
    assert!(fronted.body.as_text().contains(target));
}

#[tokio::test]
async fn intolerant_origins_reject_with_a_fronting_mismatch_page() {
    let web = SimWeb::evasive();
    let set = FingerprintSet::paper();
    // blocked-* origins check the certificate; the mismatch page shows
    // from every country — it is a transport-layer refusal, not policy.
    for country in ["US", "DE", "IR"] {
        let resp = fetch(
            &web,
            Request::get(Url::http("blocked-0.example"))
                .client_profile(&ClientProfile::browser())
                .fronted(FRONT),
            country,
        )
        .await;
        let outcome = set.classify(&resp).expect("the mismatch page classifies");
        assert_eq!(outcome.kind, PageKind::CloudFrontFronting, "{country}");
        assert_eq!(outcome.kind.class(), PageClass::FrontingMismatch);
        assert!(!outcome.kind.is_explicit_geoblock());
    }
}

#[tokio::test]
async fn fronted_study_confirms_no_geoblocking_and_keeps_invariants() {
    // A whole study probed through the front: the intolerant blocked-*
    // pairs all observe the mismatch page (uniformly, in every country),
    // so nothing confirms as geoblocking, and the study's structural
    // invariants hold as for any other run.
    let config = scenario_config();
    let run = run_scenario_with_config(SimWeb::evasive(), fronted_config(FRONT)).await;
    assert!(run.result.verdicts(&config.confirm).is_empty());
    assert_eq!(run.flagged, 0);
    assert!(check_study(&run.result, &config).is_empty());

    let mut mismatches = 0;
    for event in &run.trace.events {
        if let Obs::Response {
            page: Some(page), ..
        } = event.obs
        {
            assert_eq!(page, PageKind::CloudFrontFronting, "{event:?}");
            mismatches += 1;
        }
    }
    // Two intolerant domains x four countries x three baseline samples.
    assert_eq!(mismatches, 24);

    // Same study, byte-stable.
    let again = run_scenario_with_config(SimWeb::evasive(), fronted_config(FRONT)).await;
    assert_eq!(run.fingerprint, again.fingerprint);
}
