//! End-to-end integration test: a miniature Top-10K study over a tiny
//! world, exercising every stage — world build, proxy network, Lumscan,
//! baseline, confirmation, outlier extraction, discovery clustering, and
//! verdicts — and checking the measured results against ground truth.

use std::sync::Arc;

use geoblock::analysis::coverage::CoverageStats;
use geoblock::core::discovery::{discover, DiscoveryConfig};
use geoblock::core::outliers::{extract_outliers, OutlierConfig};
use geoblock::prelude::*;
use geoblock::worldgen::country::sanctioned_reachable;

/// A 12-country panel covering sanctioned, abusive, and clean countries.
fn panel() -> Vec<CountryCode> {
    [
        "IR", "SY", "SD", "CU", "CN", "RU", "NG", "BR", "US", "DE", "JP", "KM",
    ]
    .iter()
    .map(|c| cc(c))
    .collect()
}

fn rep_countries() -> Vec<CountryCode> {
    ["IR", "SY", "SD", "CU", "CN", "RU"]
        .iter()
        .map(|c| cc(c))
        .collect()
}

struct Fixture {
    world: Arc<World>,
    study: StudySession<'static, LuminatiNetwork>,
    domains: Vec<String>,
}

fn fixture() -> Fixture {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let luminati = LuminatiNetwork::new(internet);
    let engine = Arc::new(Lumscan::new(luminati, LumscanConfig::default()));
    let config = StudyConfig::builder()
        .countries(panel())
        .rep_countries(rep_countries())
        .build()
        .expect("valid study config");
    let fg = Fortiguard::new(&world);
    // 600 domains keeps the test under a few seconds while covering every
    // provider.
    let domains: Vec<String> = fg.safe_toplist(750).into_iter().take(600).collect();
    Fixture {
        world: world.clone(),
        study: StudySession::new(engine, config),
        domains,
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn miniature_study_recovers_ground_truth() {
    let mut fx = fixture();
    let mut result = fx.study.baseline(&fx.domains).await;

    // --- coverage sanity (§4.1.1 shape) ---
    assert_eq!(
        result.store.total_samples(),
        fx.domains.len() * panel().len() * 3
    );
    let coverage = CoverageStats::compute(&result.store);
    assert!(
        coverage.error_rate_p90 < 0.35,
        "p90 error rate too high: {}",
        coverage.error_rate_p90
    );

    // --- confirmation & verdicts ---
    let flagged = fx.study.confirm(&mut result).await;
    assert!(flagged > 0, "no pairs flagged in the tiny world");
    let verdicts = result.verdicts(&ConfirmConfig::default());
    assert!(!verdicts.is_empty(), "no confirmed geoblocking");

    // Every verdict must be true per ground truth (no false positives):
    let mut checked = 0;
    for v in &verdicts {
        let spec = fx
            .world
            .population
            .spec_of(&v.domain)
            .expect("known domain");
        let truly_blocked = spec.policy.geoblocked.contains(v.country)
            || (spec.policy.appengine_sanctions && sanctioned_reachable().contains(v.country))
            || spec.policy.origin_blocked.contains(v.country);
        assert!(
            truly_blocked,
            "false positive: {} in {} via {:?}",
            v.domain, v.country, v.kind
        );
        checked += 1;
    }
    assert!(checked >= 3, "too few verdicts to be meaningful: {checked}");

    // Recall on the explicit geoblockers: every ground-truth Cloudflare /
    // CloudFront / AppEngine blocker × panel country pair whose domain we
    // probed should be found (the confirmation design makes misses rare;
    // allow a small slack for proxy noise).
    let mut truth_pairs = 0;
    let mut found_pairs = 0;
    for domain in &fx.domains {
        let spec = fx.world.population.spec_of(domain).expect("known");
        let explicit = spec.uses(Provider::Cloudflare)
            || spec.uses(Provider::CloudFront)
            || spec.uses(Provider::AppEngine);
        if !explicit {
            continue;
        }
        for country in panel() {
            let blocked = spec.policy.geoblocked.contains(country)
                || (spec.policy.appengine_sanctions && sanctioned_reachable().contains(country));
            if blocked {
                truth_pairs += 1;
                if verdicts
                    .iter()
                    .any(|v| v.domain == *domain && v.country == country)
                {
                    found_pairs += 1;
                }
            }
        }
    }
    assert!(
        truth_pairs >= 5,
        "tiny world has too few blocked pairs: {truth_pairs}"
    );
    let recall = found_pairs as f64 / truth_pairs as f64;
    assert!(
        recall >= 0.8,
        "recall {recall} ({found_pairs}/{truth_pairs})"
    );

    // --- sanctioned countries dominate, as in Table 5 ---
    let sanctioned_count = verdicts
        .iter()
        .filter(|v| sanctioned_reachable().contains(v.country))
        .count();
    assert!(
        sanctioned_count * 2 >= verdicts.len(),
        "sanctioned countries should dominate: {sanctioned_count}/{}",
        verdicts.len()
    );

    // --- outlier extraction + discovery clustering ---
    let outlier_report = extract_outliers(
        &result.store,
        &OutlierConfig {
            cutoff: 0.30,
            rep_countries: rep_countries(),
        },
    );
    assert!(!outlier_report.outliers.is_empty(), "no outliers extracted");
    let discovery = discover(
        &outlier_report.outliers,
        &result.archive,
        &CompiledFingerprintSet::paper(),
        &DiscoveryConfig::default(),
    );
    assert!(discovery.corpus_size > 0);
    let kinds = discovery.discovered_kinds();
    assert!(
        !kinds.is_empty(),
        "discovery found no known block-page families"
    );
    // The explicit families present in verdicts must be rediscoverable.
    for v in verdicts.iter().take(5) {
        assert!(
            kinds.contains(&v.kind) || discovery.missing_bodies > 0,
            "verdict kind {:?} not discovered (kinds: {kinds:?})",
            v.kind
        );
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn studies_replay_identically() {
    // Two runs over identically-seeded stacks must agree observation for
    // observation — the determinism contract that makes experiments
    // reproducible.
    async fn run() -> Vec<(String, String, usize)> {
        let world = Arc::new(World::build(WorldConfig::tiny(7)));
        let internet = Arc::new(SimInternet::new(world.clone()));
        let luminati = LuminatiNetwork::new(internet);
        let engine = Arc::new(Lumscan::new(luminati, LumscanConfig::default()));
        let config = StudyConfig::builder()
            .countries(panel())
            .rep_countries(rep_countries())
            .build()
            .expect("valid study config");
        let mut session = StudySession::new(engine, config);
        let domains: Vec<String> = (1..=60).map(|r| world.population.spec(r).name).collect();
        let result = session.baseline(&domains).await;
        result
            .verdicts(&ConfirmConfig {
                confirm_samples: 0,
                threshold: 0.5,
            })
            .into_iter()
            .map(|v| (v.domain, v.country.to_string(), v.block_count as usize))
            .collect()
    }
    let a = run().await;
    let b = run().await;
    assert_eq!(a, b);
}
