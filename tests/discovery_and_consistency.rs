//! Integration tests for the discovery clustering (§4.1.3) and the
//! ambiguous-blocker consistency analysis (§5.2.2) on a small world.

use std::sync::Arc;

use geoblock::core::consistency::{confirmed_geoblockers, consistency_scores};
use geoblock::core::discovery::{discover, DiscoveryConfig};
use geoblock::core::outliers::{extract_outliers, OutlierConfig};
use geoblock::prelude::*;

fn panel() -> Vec<CountryCode> {
    [
        "IR", "SY", "SD", "CU", "CN", "RU", "US", "DE", "JP", "FR", "GB", "BR",
    ]
    .iter()
    .map(|c| cc(c))
    .collect()
}

#[tokio::test(flavor = "multi_thread")]
async fn discovery_finds_block_page_families_with_pure_clusters() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet),
        LumscanConfig::default(),
    ));
    let fg = Fortiguard::new(&world);
    let domains: Vec<String> = fg.safe_toplist(900);
    let rep = panel()[..6].to_vec();
    let mut session = StudySession::new(
        engine,
        StudyConfig::builder()
            .countries(panel())
            .rep_countries(rep.clone())
            .build()
            .expect("valid study config"),
    );
    let result = session.baseline(&domains).await;

    let outliers = extract_outliers(
        &result.store,
        &OutlierConfig {
            cutoff: 0.30,
            rep_countries: rep,
        },
    );
    assert!(
        outliers.outlier_rate() > 0.01 && outliers.outlier_rate() < 0.15,
        "outlier rate {}",
        outliers.outlier_rate()
    );

    let report = discover(
        &outliers.outliers,
        &result.archive,
        &CompiledFingerprintSet::paper(),
        &DiscoveryConfig::default(),
    );
    assert!(report.corpus_size > 50, "corpus {}", report.corpus_size);
    // Several distinct families must surface as labelled clusters…
    let kinds = report.discovered_kinds();
    assert!(kinds.len() >= 3, "kinds {kinds:?}");
    // …and labelled clusters must be dominated by their label.
    for cluster in report.clusters.iter().filter(|c| c.label.is_some()) {
        if cluster.size >= 5 {
            assert!(
                cluster.purity >= 0.7,
                "cluster {} ({:?}) purity {}",
                cluster.id,
                cluster.label,
                cluster.purity
            );
        }
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn consistency_rule_separates_geoblockers_from_bot_noise() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet),
        LumscanConfig::default(),
    ));
    // Probe the Akamai customers among the first 4,000 ranks.
    let akamai_domains: Vec<String> = (1..=4_000)
        .map(|r| world.population.spec(r))
        .filter(|s| s.uses(Provider::Akamai) && !s.filtered_out())
        .map(|s| s.name)
        .collect();
    assert!(akamai_domains.len() > 30, "{}", akamai_domains.len());

    let rep = panel()[..4].to_vec();
    let mut session = StudySession::new(
        engine,
        StudyConfig::builder()
            .countries(panel())
            .rep_countries(rep)
            .build()
            .expect("valid study config"),
    );
    let mut result = session.baseline(&akamai_domains).await;
    session
        .confirm_ambiguous(&mut result, &[PageKind::Akamai])
        .await;

    let reports = consistency_scores(&result.store, PageKind::Akamai);
    assert!(!reports.is_empty(), "no Akamai pages observed at all");
    let confirmed = confirmed_geoblockers(&reports);

    // Everything confirmed must be a true geoblocker with a matching set.
    for r in &confirmed {
        let spec = world.population.spec_of(&r.domain).expect("known");
        assert!(
            !spec.policy.geoblocked.is_empty(),
            "{} confirmed but does not geoblock",
            r.domain
        );
        for country in &r.consistent_countries {
            assert!(
                spec.policy.geoblocked.contains(*country),
                "{} marked consistent in non-blocked {country}",
                r.domain
            );
        }
    }

    // Pure bot-detection domains (sensitive, no geoblocking) must never be
    // confirmed.
    for r in &reports {
        let spec = world.population.spec_of(&r.domain).expect("known");
        if spec.policy.geoblocked.is_empty() {
            assert!(
                !r.is_confirmed_geoblocker(),
                "bot-noise domain {} confirmed with score {}",
                r.domain,
                r.score
            );
        }
    }
}
