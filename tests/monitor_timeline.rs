//! Acceptance tests for the longitudinal monitoring pipeline, driven
//! entirely through the `geoblock` facade:
//!
//! * **timeline determinism** — the same (transport, config, horizon)
//!   produces bit-identical snapshot content hashes whatever the shard
//!   count, and a scan killed mid-flight and resumed from its checkpoint
//!   commits the same timeline as an uninterrupted run;
//! * **query freshness** — the cached query API returns the same `Arc`
//!   until a scan commit publishes a new generation, and never after;
//! * **delta semantics** — cheap re-scans observe retreats among the
//!   previously-flagged pairs but are structurally blind to new blockers;
//! * **error lifting** — monitor failures ride `?` into [`geoblock::Error`].

use std::sync::Arc;

use geoblock::blockpages::{render, PageParams};
use geoblock::lumscan::TransportRequest;
use geoblock::monitor::{MonitorError, ScanStep};
use geoblock::prelude::*;

/// A deterministic evolving web, scan day injected at construction (the
/// monitor's engine factory passes the day). `makro.example` replays the
/// §4.2 arc — blocks IR and SY on days 0–1 then fully retreats;
/// `riser.example` starts blocking IR on day 2; `bedrock.example` always
/// blocks IR; `open.example` never blocks.
struct ShiftingWeb {
    day: u32,
}

impl ShiftingWeb {
    fn blocks(&self, host: &str, country: CountryCode) -> bool {
        match host {
            "makro.example" => self.day < 2 && (country == cc("IR") || country == cc("SY")),
            "riser.example" => self.day >= 2 && country == cc("IR"),
            "bedrock.example" => country == cc("IR"),
            _ => false,
        }
    }
}

impl Transport for ShiftingWeb {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let host = req.request.effective_host();
        if self.blocks(&host, req.country) {
            let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
            return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
        }
        Ok(Response::builder(StatusCode::OK)
            .body(format!(
                "<html><body>{host} day content {}</body></html>",
                "filler ".repeat(600)
            ))
            .finish(req.request.url))
    }
}

fn domains() -> Vec<String> {
    vec![
        "bedrock.example".to_string(),
        "makro.example".to_string(),
        "open.example".to_string(),
        "riser.example".to_string(),
    ]
}

fn study() -> StudyConfig {
    StudyConfig::builder()
        .countries([cc("IR"), cc("SY"), cc("US")])
        .rep_countries([cc("IR")])
        .work_unit_domains(1)
        .build()
        .expect("valid study config")
}

fn monitor(
    config: MonitorConfig,
) -> Monitor<ShiftingWeb, impl Fn(u32) -> Arc<Lumscan<ShiftingWeb>>> {
    let factory = |day: u32| Arc::new(Lumscan::new(ShiftingWeb { day }, LumscanConfig::default()));
    Monitor::new(factory, domains(), study(), config)
}

#[tokio::test]
async fn shard_width_never_changes_the_snapshot_hashes() {
    let mut narrow = SnapshotStore::in_memory();
    monitor(MonitorConfig::default().scans(3).shards(1))
        .run(&mut narrow, None)
        .await
        .expect("1-shard run");
    let mut wide = SnapshotStore::in_memory();
    monitor(MonitorConfig::default().scans(3).shards(4))
        .run(&mut wide, None)
        .await
        .expect("4-shard run");

    assert_eq!(narrow.len(), 3);
    for (a, b) in narrow.snapshots().iter().zip(wide.snapshots()) {
        assert_eq!(
            a.content_hash, b.content_hash,
            "scan {} diverged across shard widths",
            a.scan_index
        );
    }
    assert_eq!(narrow.timeline_hash(), wide.timeline_hash());
}

#[tokio::test]
async fn killed_and_resumed_scan_commits_the_uninterrupted_timeline() {
    let mut uninterrupted = SnapshotStore::in_memory();
    monitor(MonitorConfig::default().scans(3))
        .run(&mut uninterrupted, None)
        .await
        .expect("uninterrupted run");

    // Kill scan 0 after two of four work units; the interruption hands
    // back a checkpoint instead of committing a partial snapshot.
    let mut resumed = SnapshotStore::in_memory();
    let killer = monitor(MonitorConfig::default().scans(3).stop_after_units(2));
    let checkpoint = match killer.run_scan(&resumed, None).await.expect("partial scan") {
        ScanStep::Interrupted(checkpoint) => checkpoint,
        ScanStep::Committed(_) => panic!("stop_after_units must interrupt the scan"),
    };
    assert!(resumed.is_empty(), "an interrupted scan must not commit");

    let finisher = monitor(MonitorConfig::default().scans(3));
    match finisher
        .run_scan(&resumed, Some(checkpoint))
        .await
        .expect("resumed scan")
    {
        ScanStep::Committed(snapshot) => resumed.append(snapshot).expect("commit scan 0"),
        ScanStep::Interrupted(_) => panic!("the resumed scan must run to completion"),
    }
    finisher
        .run(&mut resumed, None)
        .await
        .expect("rest of the horizon");

    assert_eq!(
        uninterrupted.timeline_hash(),
        resumed.timeline_hash(),
        "kill/resume must be invisible in the committed timeline"
    );
}

#[tokio::test]
async fn query_answers_stay_cached_within_a_generation_and_refresh_on_publish() {
    let query = QueryService::new();
    let mut store = SnapshotStore::in_memory();
    monitor(MonitorConfig::default().scans(2))
        .run(&mut store, Some(&query))
        .await
        .expect("monitored run");
    // One publish per committed scan, none before, none after.
    assert_eq!(query.generation().await, 2);
    assert_eq!(query.scans_visible().await, 2);

    let first = query.domain_history("makro.example").await;
    let second = query.domain_history("makro.example").await;
    assert!(
        Arc::ptr_eq(&first, &second),
        "a repeat query inside one generation must hit the cache"
    );
    assert!(first.currently_blocking(), "makro still blocks on day 1");
    let stats = query.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // A third scan commits and publishes: the cache entry is stale by
    // generation and must be recomputed against the longer history.
    monitor(MonitorConfig::default().scans(3))
        .run(&mut store, Some(&query))
        .await
        .expect("one more scan");
    assert_eq!(query.generation().await, 3);
    let third = query.domain_history("makro.example").await;
    assert!(
        !Arc::ptr_eq(&second, &third),
        "a publish must invalidate every cached answer"
    );
    assert_eq!(third.scans.len(), 3);
    assert!(!third.currently_blocking(), "day 2 saw the full retreat");

    // The wire surface serves the same freshness-checked answers.
    let text = query
        .serve_text("GET /domains/makro.example HTTP/1.1\r\nHost: monitor\r\n\r\n")
        .await;
    assert!(text.starts_with("HTTP/1.1 200"), "got: {text}");
    assert!(text.contains("makro.example"));
}

#[tokio::test]
async fn delta_scans_surface_retreats_but_not_new_blockers() {
    // Scan 0 is full; scans 1-2 are deltas that only re-probe the pairs
    // the previous snapshot flagged.
    let query = QueryService::new();
    let mut store = SnapshotStore::in_memory();
    monitor(MonitorConfig::default().scans(3).full_every(3))
        .run(&mut store, Some(&query))
        .await
        .expect("delta horizon");

    let snaps = store.snapshots();
    assert_eq!(snaps[0].mode, ScanMode::Full);
    assert_eq!(snaps[1].mode, ScanMode::Delta);
    assert_eq!(snaps[2].mode, ScanMode::Delta);

    let feed = query.changes_since(2).await;
    let retreat = feed
        .events
        .iter()
        .find(|e| e.domain == "makro.example")
        .expect("the day-2 delta must record makro's retreat");
    assert!(retreat.full_retreat);
    assert!(!retreat.provider_changed);
    assert_eq!(retreat.unblocked.len(), 2, "IR and SY both unblocked");
    assert!(
        !feed.events.iter().any(|e| e.domain == "riser.example"),
        "a delta scan cannot see a domain start blocking"
    );

    // The country dashboard tells the same story from the IR axis.
    let dashboard = query.country_dashboard(cc("IR")).await;
    assert_eq!(dashboard.currently_blocked, vec!["bedrock.example"]);
    assert_eq!(dashboard.scans.last().expect("3 scans").blocked_domains, 1);
}

/// The delta scan *is* the `DeltaPolicy` now, and the policy's budget
/// arithmetic is observable at the transport: a delta scan spends exactly
/// one round over the previously-confirmed pairs at full protocol depth
/// (baseline + confirmation samples) — nothing for the rest of the grid.
#[tokio::test]
async fn delta_scans_spend_exactly_the_delta_policy_budget() {
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingWeb {
        inner: ShiftingWeb,
        count: Arc<AtomicU64>,
    }
    impl Transport for CountingWeb {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            self.count.fetch_add(1, Ordering::SeqCst);
            self.inner.fetch_one(req).await
        }
    }

    let count = Arc::new(AtomicU64::new(0));
    let factory = {
        let count = Arc::clone(&count);
        move |day: u32| {
            Arc::new(Lumscan::new(
                CountingWeb {
                    inner: ShiftingWeb { day },
                    count: Arc::clone(&count),
                },
                LumscanConfig::default(),
            ))
        }
    };
    let m = Monitor::new(
        factory,
        domains(),
        study(),
        MonitorConfig::default().scans(2).full_every(3),
    );
    let mut store = SnapshotStore::in_memory();

    // Scan 0 is full; note the spend, then run the day-1 delta.
    match m.run_scan(&store, None).await.expect("full scan") {
        ScanStep::Committed(snapshot) => store.append(snapshot).expect("commit scan 0"),
        ScanStep::Interrupted(_) => panic!("an unbounded scan must commit"),
    }
    let after_full = count.load(Ordering::SeqCst);
    match m.run_scan(&store, None).await.expect("delta scan") {
        ScanStep::Committed(snapshot) => store.append(snapshot).expect("commit scan 1"),
        ScanStep::Interrupted(_) => panic!("an unbounded scan must commit"),
    }
    let delta_spend = count.load(Ordering::SeqCst) - after_full;

    let snaps = store.snapshots();
    assert_eq!(snaps[1].mode, ScanMode::Delta);
    let flagged = snaps[0].verdicts.len() as u64;
    assert!(flagged >= 3, "bedrock(IR) + makro(IR, SY) on day 0");
    let config = study();
    let full_depth = (config.baseline_samples + config.confirm.confirm_samples) as u64;
    assert_eq!(
        delta_spend,
        flagged * full_depth,
        "one DeltaPolicy round: every previously-confirmed pair at \
         baseline + confirmation depth, nothing else"
    );
}

#[tokio::test]
async fn monitor_failures_lift_into_the_workspace_error() {
    async fn drive() -> Result<(), geoblock::Error> {
        let m = monitor(MonitorConfig::default().cadence_days(0));
        let mut store = SnapshotStore::in_memory();
        m.run(&mut store, None).await?;
        Ok(())
    }
    match drive().await {
        Err(geoblock::Error::Monitor(MonitorError::Config(_))) => {}
        other => panic!("expected a lifted monitor config error, got {other:?}"),
    }
}
