//! Integration test: the §5.1.1 CDN-population identification must recover
//! the ground-truth provider assignments from headers, the Akamai Pragma
//! poke, and the AppEngine netblock walk — with high precision and recall.

use std::collections::BTreeSet;
use std::sync::Arc;

use geoblock::core::population::{
    discover_appengine_netblocks, identify_by_ns, identify_populations, PopulationProbe,
};
use geoblock::prelude::*;

#[tokio::test(flavor = "multi_thread")]
async fn header_identification_matches_ground_truth() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let dns = DnsDb::new(world.clone());
    let domains: Vec<String> = (1..=4_000).map(|r| world.population.spec(r).name).collect();

    let vps = Arc::new(VpsTransport::new(internet, cc("US")));
    let report = identify_populations(
        vps,
        &dns,
        &domains,
        &PopulationProbe {
            country: cc("US"),
            concurrency: 256,
        },
    )
    .await;

    for provider in [
        Provider::Cloudflare,
        Provider::CloudFront,
        Provider::Incapsula,
        Provider::Akamai,
        Provider::AppEngine,
    ] {
        let truth: BTreeSet<String> = domains
            .iter()
            .filter(|d| {
                world
                    .population
                    .spec_of(d)
                    .map(|s| s.providers.first() == Some(&provider) || s.uses(provider))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        let found: BTreeSet<String> = report.of(provider).iter().cloned().collect();

        // Precision: everything found is truly a customer.
        for d in &found {
            assert!(truth.contains(d), "{provider}: false customer {d}");
        }
        // Recall: the probe misses only domains that never answered
        // (dead sites, broken pairs). Allow a modest miss budget.
        let missed = truth.difference(&found).count();
        let recall = 1.0 - missed as f64 / truth.len().max(1) as f64;
        assert!(
            recall > 0.85,
            "{provider}: recall {recall:.2} ({missed} of {} missed)",
            truth.len()
        );
    }
}

#[test]
fn appengine_netblock_walk_returns_sixty_five_blocks() {
    let world = Arc::new(World::build(WorldConfig::tiny(7)));
    let dns = DnsDb::new(world);
    let blocks = discover_appengine_netblocks(&dns);
    assert_eq!(blocks.len(), 65, "§5.1.1 found 65 netblocks");
    assert!(blocks.iter().all(|b| b.ends_with("/16")));
}

#[test]
fn ns_identification_is_a_biased_subset() {
    // §3.1's DNS method exposes only a fraction of customers; everything it
    // exposes must truly be a customer.
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let dns = DnsDb::new(world.clone());
    let domains: Vec<String> = (1..=8_000).map(|r| world.population.spec(r).name).collect();
    let (cf, akamai) = identify_by_ns(&dns, &domains);

    for d in &cf {
        let spec = world.population.spec_of(d).expect("known");
        assert!(spec.uses(Provider::Cloudflare), "{d} is not a CF customer");
    }
    for d in &akamai {
        let spec = world.population.spec_of(d).expect("known");
        assert!(spec.uses(Provider::Akamai), "{d} is not an Akamai customer");
    }
    let cf_total = domains
        .iter()
        .filter(|d| {
            world
                .population
                .spec_of(d)
                .map(|s| s.uses(Provider::Cloudflare))
                .unwrap_or(false)
        })
        .count();
    assert!(
        cf.len() * 5 < cf_total,
        "NS-visible CF ({}) should be a small fraction of {cf_total}",
        cf.len()
    );
}
