//! Longitudinal integration test: two study snapshots straddling the
//! `makro.co.za` policy flip, compared with the diff tool.

use std::sync::Arc;

use geoblock::core::diffing::diff_studies;
use geoblock::prelude::*;

#[tokio::test(flavor = "multi_thread")]
async fn diff_detects_the_makro_policy_flip() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::default(),
    ));

    // Probe makro.co.za plus a stable AppEngine blocker across the
    // countries makro blocks (plus controls).
    let makro = world
        .population
        .spec_of("makro.co.za")
        .expect("special domain");
    let mut countries: Vec<CountryCode> = makro.policy.geoblocked.iter().take(6).collect();
    countries.extend([cc("IR"), cc("US")]);
    // Several AppEngine enforcers as stable controls (any single one may
    // be dark in Iran — censorship and broken pairs are part of the model).
    let stable: Vec<String> = (1..=world.config.population_size)
        .map(|r| world.population.spec(r))
        .filter(|s| s.policy.appengine_sanctions && !s.filtered_out())
        .map(|s| s.name)
        .take(4)
        .collect();
    assert!(stable.len() >= 2, "tiny world lacks AppEngine enforcers");
    let mut domains = vec!["makro.co.za".to_string()];
    domains.extend(stable.iter().cloned());

    let config = StudyConfig::builder()
        .countries(countries.clone())
        .rep_countries(countries[..2].to_vec())
        .build()
        .expect("valid study config");
    let mut session = StudySession::new(engine.clone(), config.clone());

    // Snapshot 1: during the baseline window (day 0), confirmed same-day.
    let mut first = session.baseline(&domains).await;
    session.confirm(&mut first).await;
    let before = first.verdicts(&ConfirmConfig::default());
    assert!(
        before.iter().any(|v| v.domain == "makro.co.za"),
        "makro must be blocking during the baseline window"
    );
    let stable_before = before.iter().filter(|v| stable.contains(&v.domain)).count();
    assert!(
        stable_before >= 1,
        "no stable enforcer verdicts: {before:?}"
    );

    // Days pass; the operator drops the rules.
    internet.clock().advance_days(3);

    // Snapshot 2: a fresh study after the flip.
    let mut second = session.baseline(&domains).await;
    session.confirm(&mut second).await;
    let after = second.verdicts(&ConfirmConfig::default());
    assert!(
        !after.iter().any(|v| v.domain == "makro.co.za"),
        "makro must have retreated after the flip"
    );

    // The diff narrates exactly that.
    let diff = diff_studies(&before, &after);
    let retreats = diff.full_retreats();
    assert_eq!(retreats.len(), 1, "{:?}", diff.deltas);
    assert_eq!(retreats[0].domain, "makro.co.za");
    assert!(retreats[0].unblocked.len() >= 2);
    // The stable AppEngine enforcers keep their pairs; none fully retreat.
    assert!(diff.stable_pairs >= 1, "{diff:?}");
    assert!(diff
        .full_retreats()
        .iter()
        .all(|d| !stable.contains(&d.domain)));
}
