//! A miniature §5-style study: identify CDN customers by probing headers,
//! the Akamai `Pragma` poke, and the AppEngine netblock walk; then probe a
//! sample of the customers and separate explicit geoblockers from
//! bot-detection noise with the consistency score.
//!
//! The baseline pass runs through the sharded orchestrator — the shape a
//! real multi-hour Top-1M pass needs: killable, resumable, checkpointed.
//!
//! ```text
//! cargo run --release --example top1m_study -- [--shards N] \
//!     [--checkpoint PATH] [--resume]
//! ```
//!
//! With `--checkpoint`, progress persists every few work units; kill the
//! process and rerun with `--resume` to continue where it stopped — the
//! finished study is identical to an uninterrupted run.

use std::path::PathBuf;
use std::sync::Arc;

use geoblock::core::consistency::{confirmed_geoblockers, consistency_scores};
use geoblock::core::population::{identify_populations, PopulationProbe};
use geoblock::prelude::*;

/// `--shards N --checkpoint PATH --resume`, hand-parsed: the example has
/// no CLI dependency.
struct Args {
    shards: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 4,
        checkpoint: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--shards" => {
                let v = it.next().expect("--shards needs a value");
                args.shards = v.parse().expect("--shards must be a positive integer");
            }
            "--checkpoint" => {
                let v = it.next().expect("--checkpoint needs a path");
                args.checkpoint = Some(PathBuf::from(v));
            }
            "--resume" => args.resume = true,
            other => panic!("unknown flag {other}; known: --shards --checkpoint --resume"),
        }
    }
    if args.resume && args.checkpoint.is_none() {
        panic!("--resume needs --checkpoint to know where the progress lives");
    }
    args
}

#[tokio::main]
async fn main() {
    let args = parse_args();
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let dns = DnsDb::new(world.clone());

    // --- §5.1.1: population identification from a US control box ---
    let domains: Vec<String> = (1..=world.config.population_size)
        .map(|r| world.population.spec(r).name)
        .collect();
    let vps = Arc::new(VpsTransport::new(internet.clone(), cc("US")));
    let report = identify_populations(
        vps,
        &dns,
        &domains,
        &PopulationProbe {
            country: cc("US"),
            concurrency: 128,
        },
    )
    .await;
    println!("CDN populations in the {}-domain world:", domains.len());
    for (provider, customers) in &report.by_provider {
        println!("  {:12} {}", provider.to_string(), customers.len());
    }
    println!(
        "  unique: {}, dual-service: {}",
        report.total_unique(),
        report.dual.len()
    );

    // --- §5.1.2: safety filter + sample ---
    let fg = Fortiguard::new(&world);
    let mut customers: Vec<String> = report.by_provider.values().flatten().cloned().collect();
    customers.sort();
    customers.dedup();
    let sample = fg.filter_and_sample(&customers, 0.25, 7);
    println!(
        "\nprobing a {}-domain sample from 10 countries...",
        sample.len()
    );

    let panel: Vec<CountryCode> = ["IR", "SY", "SD", "CU", "CN", "RU", "US", "DE", "JP", "BR"]
        .iter()
        .map(|c| cc(c))
        .collect();
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::builder()
            .build()
            .expect("valid engine config"),
    ));
    let config = StudyConfig::builder()
        .countries(panel.clone())
        .rep_countries(panel[..4].to_vec())
        .build()
        .expect("valid study config");
    // The baseline runs through the orchestrator: the sample is cut into
    // domain-aligned work units dispatched to `--shards` concurrent
    // streams, progress checkpoints to `--checkpoint`, and `--resume`
    // picks up an interrupted pass — with results bit-identical to a
    // single uninterrupted stream.
    let mut orch_config = OrchestratorConfig::default()
        .shards(args.shards)
        .checkpoint_every(2);
    if let Some(path) = &args.checkpoint {
        orch_config = orch_config.checkpoint_path(path);
    }
    let orch = Orchestrator::new(engine.clone(), config.clone(), orch_config);
    let run = if args.resume {
        let path = args.checkpoint.as_ref().expect("checked in parse_args");
        let checkpoint = Checkpoint::load(path).expect("readable, untampered checkpoint");
        println!(
            "resuming: {}/{} work units already complete",
            checkpoint.completed_ids().len(),
            checkpoint.total_units
        );
        orch.resume(&sample, checkpoint)
            .await
            .expect("resumed baseline")
    } else {
        orch.baseline(&sample).await.expect("sharded baseline")
    };
    println!(
        "baseline: {} units ({} fresh, {} restored) across {} shards",
        run.total_units, run.fresh_units, run.restored_units, args.shards
    );
    let mut result = run.result;

    // Confirmation passes reuse the same engine via a study session;
    // they stream as before.
    let mut session = StudySession::new(engine, config);
    session.confirm(&mut result).await;
    session
        .confirm_ambiguous(&mut result, &[PageKind::Akamai, PageKind::Incapsula])
        .await;

    let verdicts = result.verdicts(&ConfirmConfig::default());
    println!("explicit geoblocking instances: {}", verdicts.len());

    // --- §5.2.2: the consistency analysis for ambiguous blockers ---
    for kind in [PageKind::Akamai, PageKind::Incapsula] {
        let reports = consistency_scores(&result.store, kind);
        let confirmed = confirmed_geoblockers(&reports);
        println!(
            "\n{kind}: {} domains showed the block page; {} pass the 100%-consistency rule",
            reports.len(),
            confirmed.len()
        );
        for r in confirmed.iter().take(5) {
            let countries: Vec<String> = r
                .consistent_countries
                .iter()
                .map(|c| c.to_string())
                .collect();
            println!("  {} blocks {}", r.domain, countries.join(", "));
        }
    }
}
