//! A miniature §5-style study: identify CDN customers by probing headers,
//! the Akamai `Pragma` poke, and the AppEngine netblock walk; then probe a
//! sample of the customers and separate explicit geoblockers from
//! bot-detection noise with the consistency score.
//!
//! ```text
//! cargo run --release --example top1m_study
//! ```

use std::sync::Arc;

use geoblock::core::consistency::{confirmed_geoblockers, consistency_scores};
use geoblock::core::population::{identify_populations, PopulationProbe};
use geoblock::prelude::*;

#[tokio::main]
async fn main() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let dns = DnsDb::new(world.clone());

    // --- §5.1.1: population identification from a US control box ---
    let domains: Vec<String> = (1..=world.config.population_size)
        .map(|r| world.population.spec(r).name)
        .collect();
    let vps = Arc::new(VpsTransport::new(internet.clone(), cc("US")));
    let report = identify_populations(
        vps,
        &dns,
        &domains,
        &PopulationProbe {
            country: cc("US"),
            concurrency: 128,
        },
    )
    .await;
    println!("CDN populations in the {}-domain world:", domains.len());
    for (provider, customers) in &report.by_provider {
        println!("  {:12} {}", provider.to_string(), customers.len());
    }
    println!(
        "  unique: {}, dual-service: {}",
        report.total_unique(),
        report.dual.len()
    );

    // --- §5.1.2: safety filter + sample ---
    let fg = Fortiguard::new(&world);
    let mut customers: Vec<String> = report.by_provider.values().flatten().cloned().collect();
    customers.sort();
    customers.dedup();
    let sample = fg.filter_and_sample(&customers, 0.25, 7);
    println!(
        "\nprobing a {}-domain sample from 10 countries...",
        sample.len()
    );

    let panel: Vec<CountryCode> = ["IR", "SY", "SD", "CU", "CN", "RU", "US", "DE", "JP", "BR"]
        .iter()
        .map(|c| cc(c))
        .collect();
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::builder()
            .build()
            .expect("valid engine config"),
    ));
    let config = StudyConfig::builder()
        .countries(panel.clone())
        .rep_countries(panel[..4].to_vec())
        .build()
        .expect("valid study config");
    let study = Top1mStudy::new(engine, config);
    // Both passes run on the streaming pipeline: targets are pulled lazily
    // and every completion is classified and dropped on arrival, which is
    // what makes the full §5 sample sizes tractable in memory.
    let mut result = study.baseline(&sample).await;
    study.confirm_explicit(&mut result).await;
    study
        .confirm_ambiguous(&mut result, &[PageKind::Akamai, PageKind::Incapsula])
        .await;

    let verdicts = result.verdicts(&ConfirmConfig::default());
    println!("explicit geoblocking instances: {}", verdicts.len());

    // --- §5.2.2: the consistency analysis for ambiguous blockers ---
    for kind in [PageKind::Akamai, PageKind::Incapsula] {
        let reports = consistency_scores(&result.store, kind);
        let confirmed = confirmed_geoblockers(&reports);
        println!(
            "\n{kind}: {} domains showed the block page; {} pass the 100%-consistency rule",
            reports.len(),
            confirmed.len()
        );
        for r in confirmed.iter().take(5) {
            let countries: Vec<String> = r
                .consistent_countries
                .iter()
                .map(|c| c.to_string())
                .collect();
            println!("  {} blocks {}", r.domain, countries.join(", "));
        }
    }
}
