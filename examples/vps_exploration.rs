//! The §3 exploration: identify Akamai/Cloudflare customers via NS
//! delegation, sweep them from VPSes with a ZGrab-style (User-Agent-only)
//! client, then verify flagged blocks "in a browser" — a refetch with a
//! complete header set that makes bot-detection false positives vanish.
//!
//! ```text
//! cargo run --release --example vps_exploration
//! ```

use std::sync::Arc;

use geoblock::core::exploration::{sweep, verify_in_browser};
use geoblock::core::population::identify_by_ns;
use geoblock::prelude::*;

#[tokio::main]
async fn main() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let dns = DnsDb::new(world.clone());

    // NS-based identification (§3.1): exposes only a fraction of each
    // CDN's customers, biased toward enterprise zones.
    let all: Vec<String> = (1..=world.config.population_size)
        .map(|r| world.population.spec(r).name)
        .collect();
    let (cloudflare, akamai) = identify_by_ns(&dns, &all);
    println!(
        "NS-identified customers: {} Cloudflare, {} Akamai",
        cloudflare.len(),
        akamai.len()
    );
    let targets: Vec<String> = cloudflare.iter().chain(&akamai).cloned().collect();

    // Sweep from an Iranian and a US VPS with the crawler profile. At
    // exploration time only the Akamai and Cloudflare pages were known.
    let known = [PageKind::Akamai, PageKind::Cloudflare];
    let mut flagged = Vec::new();
    for country in ["IR", "US", "TR", "RU"] {
        let vps = Arc::new(VpsTransport::new(internet.clone(), cc(country)));
        let result = sweep(
            vps,
            cc(country),
            &targets,
            HeaderProfile::ZgrabUserAgentOnly,
            &known,
            64,
        )
        .await;
        println!(
            "  {country}: {} responses, {} HTTP 403s, {} recognisable block pages",
            result.responses.get(&cc(country)).copied().unwrap_or(0),
            result.status_403.get(&cc(country)).copied().unwrap_or(0),
            result.flagged.len()
        );
        flagged.extend(result.flagged);
    }

    // "Manual" verification: a real browser header set, three attempts.
    let verification = verify_in_browser(
        |country| Arc::new(VpsTransport::new(internet.clone(), country)),
        &flagged,
    )
    .await;
    println!(
        "\nverification: {} genuine geoblocks, {} crawler false positives ({:.0}%)",
        verification.genuine.len(),
        verification.false_positives.len(),
        100.0 * verification.fp_rate()
    );
    for (provider, count) in verification.fp_by_provider() {
        println!("  false positives from {provider}: {count} (the paper: all from Akamai)");
    }
}
