//! A miniature §4-style study: safety-filter a top list, probe it from a
//! country panel, confirm flagged pairs with 20 extra samples, and print
//! the Table 5/6-style result.
//!
//! ```text
//! cargo run --release --example top10k_study
//! ```

use std::sync::Arc;

use geoblock::analysis::tables;
use geoblock::prelude::*;

#[tokio::main]
async fn main() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let engine = Arc::new(Lumscan::new(
        LuminatiNetwork::new(internet.clone()),
        LumscanConfig::builder()
            .retry(RetryPolicy::with_max_retries(3))
            .build()
            .expect("valid engine config"),
    ));

    // The study's safety filter: drop risky categories and Citizen-Lab
    // domains, exactly as §4.1.1 does.
    let fg = Fortiguard::new(&world);
    let domains: Vec<String> = fg.safe_toplist(1_200);
    println!(
        "test list: {} safe domains of the top 1,200 ({} filtered)",
        domains.len(),
        1_200 - domains.len()
    );

    // A 14-country panel: the sanctioned four, high-abuse countries, and
    // controls.
    let panel: Vec<CountryCode> = [
        "IR", "SY", "SD", "CU", "CN", "RU", "UA", "NG", "BR", "IN", "US", "DE", "JP", "FR",
    ]
    .iter()
    .map(|c| cc(c))
    .collect();
    let rep = panel[..6].to_vec();

    let config = StudyConfig::builder()
        .countries(panel)
        .rep_countries(rep)
        .build()
        .expect("valid study config");
    println!("baseline: 3 samples x {} pairs...", domains.len() * 14);
    // A GaugeSink watches the probe stream: the baseline classifies and
    // drops each completion as it lands, so in-flight work stays at the
    // engine's concurrency no matter how large the study is. The session
    // carries the observer through every pass.
    let mut gauge = GaugeSink::new();
    let mut session = StudySession::new(engine, config).sink(&mut gauge);
    let mut result = session.baseline(&domains).await;

    // Days pass; then the confirmation resample.
    internet.clock().advance_days(3);
    let flagged = session.confirm(&mut result).await;
    drop(session);
    println!(
        "  streamed {} probes, peak {} in flight, {} recovered by retries",
        gauge.completed, gauge.peak_in_flight, gauge.recovered
    );
    println!("flagged {} pairs for 20-sample confirmation", flagged);

    let verdicts = result.verdicts(&ConfirmConfig::default());
    println!("\nconfirmed geoblocking instances: {}", verdicts.len());
    for v in verdicts.iter().take(12) {
        println!(
            "  {:28} blocked in {} via {} ({}/{} samples)",
            v.domain, v.country, v.kind, v.block_count, v.total
        );
    }
    if verdicts.len() > 12 {
        println!("  ... and {} more", verdicts.len() - 12);
    }

    println!();
    println!("{}", tables::table5(&verdicts).render());
    println!(
        "{}",
        tables::table_country_provider("Geoblocking by country x CDN", &verdicts).render()
    );
}
