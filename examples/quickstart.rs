//! Quickstart: stand up a small simulated Internet, probe one domain from
//! several countries through the residential proxy network, and classify
//! what comes back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use geoblock::prelude::*;

#[tokio::main]
async fn main() {
    // A deterministic world: domains, CDN assignments, and ground-truth
    // geoblocking policies all derive from the seed.
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let luminati = LuminatiNetwork::new(internet);
    let config = LumscanConfig::builder()
        .build()
        .expect("valid engine config");
    let engine = Arc::new(Lumscan::new(luminati, config));

    // Find a domain that actually geoblocks, so the demo shows something.
    let domain = (1..=world.config.population_size)
        .map(|r| world.population.spec(r))
        .find(|s| !s.policy.geoblocked.is_empty() && !s.filtered_out())
        .map(|s| s.name)
        .expect("the tiny world contains geoblockers");
    println!("probing {domain} from five countries...\n");

    let countries = ["US", "DE", "IR", "SY", "CN"];
    let targets: Vec<ProbeTarget> = countries
        .iter()
        .map(|c| ProbeTarget::http(&domain, cc(c)))
        .collect();

    // Stream the probes: completions are classified and dropped as they
    // land, yielded in target order by `.ordered()`.
    let fingerprints = FingerprintSet::paper();
    let mut stream = engine.probe_stream(targets).ordered();
    while let Some((_, result)) = stream.next().await {
        let country = result.target.country;
        match &result.outcome {
            Err(e) => println!("  {country}: error — {e}"),
            Ok(chain) => {
                let resp = chain.final_response();
                match fingerprints.classify(resp) {
                    Some(outcome) => println!(
                        "  {country}: {} — {} block page ({} bytes)",
                        resp.status,
                        outcome.kind,
                        resp.body.len()
                    ),
                    None => println!(
                        "  {country}: {} — ordinary page ({} bytes, {} redirects)",
                        resp.status,
                        resp.body.len(),
                        chain.redirect_count()
                    ),
                }
            }
        }
    }

    println!("\nground truth for {domain}:");
    let spec = world.population.spec_of(&domain).expect("known domain");
    let blocked: Vec<String> = spec
        .policy
        .geoblocked
        .iter()
        .map(|c| c.to_string())
        .collect();
    println!(
        "  providers: {:?}\n  blocks: {}",
        spec.providers,
        blocked.join(", ")
    );
}
