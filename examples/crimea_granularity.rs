//! The §4.2.2 anecdote, reproduced: `geniusdisplay.com` serves an nginx
//! block page across Russia, but Google AppEngine's sanctions page appears
//! only when the Ukrainian exit node happens to sit in Crimea. This example
//! runs the §7.3-style *regional* analysis: attribute every probe to its
//! exit address and test whether blocking concentrates in a sub-country
//! address range.
//!
//! ```text
//! cargo run --release --example crimea_granularity
//! ```

use std::sync::Arc;

use geoblock::core::regional::probe_regional;
use geoblock::netsim::geoip;
use geoblock::prelude::*;

#[tokio::main]
async fn main() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let internet = Arc::new(SimInternet::new(world.clone()));
    let luminati = LuminatiNetwork::new(internet.clone());

    let echo: Url = format!("http://{}/", geoblock::proxynet::LUMTEST_HOST)
        .parse()
        .expect("valid echo url");

    // geniusdisplay.com: AppEngine sanctions enforcement, observable only
    // from Crimean exits within Ukraine.
    println!("probing geniusdisplay.com from 400 Ukrainian exits...\n");
    let report = probe_regional(&luminati, &echo, "geniusdisplay.com", cc("UA"), 400).await;

    let in_crimea = |ip: &str| {
        geoip::locate(ip)
            .map(|a| a.region == Some(geoblock::netsim::Region::Crimea))
            .unwrap_or(false)
    };
    let (crimea_rate, elsewhere_rate) = report.split_rates(in_crimea);
    let crimean_exits = report
        .observations
        .iter()
        .filter(|o| in_crimea(&o.exit_ip))
        .count();

    println!("  observations: {}", report.observations.len());
    println!("  exits located in Crimea: {crimean_exits}");
    println!(
        "  block rate from Crimean exits:    {:.0}%",
        100.0 * crimea_rate
    );
    println!(
        "  block rate from the rest of UA:   {:.0}%",
        100.0 * elsewhere_rate
    );
    println!(
        "  country-wide rate (what a country-granular study sees): {:.1}%",
        100.0 * report.block_rate()
    );
    println!(
        "\n  region-granular blocking detected: {}",
        report.is_region_granular(in_crimea)
    );

    // For contrast: the same analysis on a country-wide geoblocker shows a
    // uniform block rate across all exits. (Skip candidates whose China
    // path is dark — consistent timeouts are their own phenomenon, §7.3.)
    let candidates = (1..=world.config.population_size)
        .map(|r| world.population.spec(r))
        .filter(|s| s.policy.geoblocked.contains(cc("CN")) && !s.filtered_out())
        .take(6);
    for blocker in candidates {
        let report = probe_regional(&luminati, &echo, &blocker.name, cc("CN"), 120).await;
        if report.observations.len() < 30 {
            continue;
        }
        println!("\ncontrast: {} (blocks all of China)...", blocker.name);
        println!(
            "  block rate across Chinese exits: {:.0}% (uniform, as expected)",
            100.0 * report.block_rate()
        );
        break;
    }
}
