//! The §7.1 cross-check: scan a synthetic OONI measurement corpus for CDN
//! geoblock fingerprints and quantify how geoblocking confounds censorship
//! measurement.
//!
//! ```text
//! cargo run --release --example ooni_crosscheck
//! ```

use std::sync::Arc;

use geoblock::analysis::ooni_scan;
use geoblock::prelude::*;
use geoblock::worldgen::ooni::{self, OoniConfig};

fn main() {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    println!("Citizen Lab test list: {} domains", world.citizenlab.len());

    let corpus = ooni::generate(
        42,
        &world.population,
        &world.citizenlab,
        &OoniConfig {
            measurements: 80_000,
            ..OoniConfig::default()
        },
    );
    println!("generated {} OONI-style measurements", corpus.len());

    let report = ooni_scan::scan(
        &corpus,
        &CompiledFingerprintSet::paper(),
        world.citizenlab.len(),
    );

    println!("\nexplicit geoblock fingerprints in 'censorship' data:");
    println!(
        "  {} matches across {} countries",
        report.explicit_matches,
        report.countries.len()
    );
    println!(
        "  {} test-list domains geoblock somewhere = {:.1}% of the list",
        report.domains.len(),
        100.0 * report.domain_share()
    );

    println!("\nthe control-side confound (Tor exits are blocked too):");
    println!(
        "  control 403s on CDN infrastructure:   {}",
        report.control_403_cdn
    );
    println!(
        "  locally blocked with healthy control: {}",
        report.local_blocked_control_ok
    );
    println!(
        "  → {:.1}x more block pages come from the control side than from\n    genuine local anomalies, matching the paper's warning.",
        report.control_403_cdn as f64 / report.local_blocked_control_ok.max(1) as f64
    );

    println!("\ndomains a censorship study would misattribute:");
    for d in report.domains.iter().take(8) {
        println!("  {d}");
    }
}
