//! The sharded study orchestrator: killable, resumable study passes.
//!
//! A full-scale baseline pass (§5: 50,000 sampled domains × 177 countries
//! × 3 samples) runs for hours through a residential proxy network. One
//! [`ProbeStream`](geoblock_lumscan::ProbeStream) survives transient
//! weather, but it cannot survive the *process* dying — and a study that
//! must restart from probe zero after an interruption at 90% is not a
//! practical instrument. This crate makes the pass both **sharded** and
//! **resumable**:
//!
//! * [`ShardPlan`] partitions a grid [`TargetPlan`]'s index space into
//!   *domain-aligned* work units ([`WorkUnit`]) of
//!   [`work_unit_domains`] domains each;
//! * [`Orchestrator`] dispatches units to at most `shards` concurrent
//!   per-unit probe streams — work-stealing, in that each finished worker
//!   immediately claims the next pending unit — and folds every completed
//!   unit into a [`UnitResult`];
//! * completed units are persisted to a [`Checkpoint`] (serde-JSON,
//!   written atomically every `checkpoint_every` units), which records the
//!   study's config hash and a running trace hash over every completed
//!   probe;
//! * [`Orchestrator::resume`] restores a checkpoint into a fresh engine —
//!   validating config hash and record integrity, winding per-pair
//!   invocation counters forward — and probes only the remaining units;
//! * [`Orchestrator::run_policy`] drives a whole
//!   [`SamplingPolicy`](geoblock_core::SamplingPolicy) protocol: the
//!   policy's grid round shards through the same dispatcher, later pair
//!   rounds run on the same engine, every checkpoint carries the
//!   [`ProbeBudget`](geoblock_core::ProbeBudget) ledger, and
//!   [`Orchestrator::resume_policy`] finishes an interrupted protocol with
//!   a final ledger identical to an uninterrupted run's.
//!
//! # Why domain alignment makes the merge deterministic
//!
//! The baseline grid is domain-major: all `countries × samples` probes of
//! one domain occupy a contiguous index range. Cutting the plan only on
//! domain boundaries therefore guarantees two properties:
//!
//! 1. **every (domain, country) pair lives in exactly one unit**, whose
//!    stream yields ordered — so the pair's samples are probed in sample
//!    order by a single stream, claim consecutive invocation numbers, and
//!    ride the same exit sessions as a sequential run;
//! 2. **body-retention ceilings are unit-local**: the
//!    [`BodyArchive`](geoblock_core::BodyArchive)'s per-domain length
//!    ceiling only ever compares bodies of the same domain, and a domain
//!    never spans units — each unit's retention decisions equal the
//!    sequential run's.
//!
//! Merging is then pure bookkeeping: sort units by plan offset, replay
//! each record's observation into a global
//! [`SampleStore`](geoblock_core::SampleStore), and insert each retained
//! body verbatim. For any shard count — and for any kill/resume split —
//! the merged [`StudyResult`](geoblock_core::StudyResult) is bit-identical
//! to a single-stream pass, a property the simtest shard sweep asserts by
//! fingerprint.
//!
//! [`TargetPlan`]: geoblock_core::TargetPlan
//! [`work_unit_domains`]: geoblock_core::StudyConfig::work_unit_domains

pub mod checkpoint;
pub mod orchestrator;
pub mod record;
pub mod shard;

pub use checkpoint::{hash_study_config, ArchivedDoc, Checkpoint, CheckpointError, UnitResult};
pub use orchestrator::{
    Orchestrator, OrchestratorConfig, OrchestratorError, OrchestratorRun, PolicyRun,
};
pub use record::ProbeRecord;
pub use shard::{ShardPlan, WorkUnit};

/// FNV-1a 64-bit over `bytes` — the checkpoint's integrity hash. A local
/// copy of the simtest trace hash (this crate sits *below* simtest in the
/// dependency graph): same constants, same published test vectors, so the
/// two hash the same bytes to the same value.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::fnv1a;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
