//! Domain-aligned partitioning of a grid plan into work units.
//!
//! The baseline grid is domain-major (`per_domain = countries × samples`
//! consecutive indices per domain), so cutting only on domain boundaries
//! keeps every (domain, country) pair — and every per-domain retention
//! ceiling — inside exactly one unit. That alignment is what lets the
//! orchestrator's merge reproduce a sequential pass bit for bit; see the
//! crate docs for the full argument.

/// One contiguous slice of a grid plan: `unit_domains` (or fewer, for the
/// final unit) whole domains and every probe index they own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Unit number, counting from 0 in plan order.
    pub id: usize,
    /// First domain index covered (inclusive).
    pub domain_start: usize,
    /// One past the last domain index covered.
    pub domain_end: usize,
    /// First plan index covered (inclusive).
    pub start: usize,
    /// One past the last plan index covered.
    pub end: usize,
}

impl WorkUnit {
    /// Probes in this unit.
    pub fn probes(&self) -> usize {
        self.end - self.start
    }

    /// Domains in this unit.
    pub fn domains(&self) -> usize {
        self.domain_end - self.domain_start
    }
}

/// The partition of a `domains × countries × samples` grid into
/// domain-aligned [`WorkUnit`]s.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Total domains in the grid.
    pub domains: usize,
    /// Countries per domain.
    pub countries: usize,
    /// Samples per (domain, country) pair.
    pub samples: usize,
    /// Domains per unit (the last unit may hold fewer).
    pub unit_domains: usize,
    units: Vec<WorkUnit>,
}

impl ShardPlan {
    /// Partition a grid of `domains × countries × samples` probes into
    /// units of `unit_domains` whole domains each.
    ///
    /// # Panics
    ///
    /// Panics if `unit_domains` is zero — [`StudyConfig`]'s builder
    /// rejects that value, so reaching here with it is a driver bug.
    ///
    /// [`StudyConfig`]: geoblock_core::StudyConfig
    pub fn new(domains: usize, countries: usize, samples: usize, unit_domains: usize) -> ShardPlan {
        assert!(unit_domains > 0, "a work unit needs at least one domain");
        let per_domain = countries * samples;
        let units = (0..domains)
            .step_by(unit_domains)
            .enumerate()
            .map(|(id, domain_start)| {
                let domain_end = (domain_start + unit_domains).min(domains);
                WorkUnit {
                    id,
                    domain_start,
                    domain_end,
                    start: domain_start * per_domain,
                    end: domain_end * per_domain,
                }
            })
            .collect();
        ShardPlan {
            domains,
            countries,
            samples,
            unit_domains,
            units,
        }
    }

    /// The units, in plan order.
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of units.
    pub fn total_units(&self) -> usize {
        self.units.len()
    }

    /// Total probes across all units (the grid plan's length).
    pub fn total_probes(&self) -> usize {
        self.domains * self.countries * self.samples
    }

    /// The unit covering plan index `i`, if any.
    pub fn unit_of(&self, i: usize) -> Option<&WorkUnit> {
        self.units.iter().find(|u| u.start <= i && i < u.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_tile_the_plan_exactly() {
        // 5 domains × 4 countries × 3 samples, 2 domains per unit.
        let plan = ShardPlan::new(5, 4, 3, 2);
        assert_eq!(plan.total_units(), 3);
        assert_eq!(plan.total_probes(), 60);
        let units = plan.units();
        assert_eq!(
            units[0],
            WorkUnit {
                id: 0,
                domain_start: 0,
                domain_end: 2,
                start: 0,
                end: 24
            }
        );
        assert_eq!(
            units[1],
            WorkUnit {
                id: 1,
                domain_start: 2,
                domain_end: 4,
                start: 24,
                end: 48
            }
        );
        // The last unit holds the one leftover domain.
        assert_eq!(
            units[2],
            WorkUnit {
                id: 2,
                domain_start: 4,
                domain_end: 5,
                start: 48,
                end: 60
            }
        );
        assert_eq!(units.iter().map(WorkUnit::probes).sum::<usize>(), 60);
        // Every index belongs to exactly one unit.
        for i in 0..60 {
            let owners = units.iter().filter(|u| u.start <= i && i < u.end).count();
            assert_eq!(owners, 1, "index {i} owned by {owners} units");
        }
        assert_eq!(plan.unit_of(24).unwrap().id, 1);
        assert_eq!(plan.unit_of(60), None);
    }

    #[test]
    fn oversized_units_collapse_to_one() {
        let plan = ShardPlan::new(3, 2, 1, 4096);
        assert_eq!(plan.total_units(), 1);
        assert_eq!(plan.units()[0].probes(), 6);
        assert_eq!(plan.units()[0].domains(), 3);
    }

    #[test]
    fn empty_grids_have_no_units() {
        let plan = ShardPlan::new(0, 4, 3, 2);
        assert_eq!(plan.total_units(), 0);
        assert_eq!(plan.total_probes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one domain")]
    fn zero_unit_domains_is_a_bug() {
        ShardPlan::new(5, 4, 3, 0);
    }
}
