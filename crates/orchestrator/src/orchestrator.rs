//! The dispatcher: work-stealing unit execution, checkpointing, merge.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use bytes::Bytes;
use geoblock_blockpages::CompiledFingerprintSet;
use geoblock_core::confirm::flagged_explicit_pairs;
use geoblock_core::{
    classify_chain, BodyArchive, EvidenceState, ProbeBudget, SampleRequest, SampleStore,
    SamplingPolicy, StudyConfig, StudyResult, StudySession, TargetPlan,
};
use geoblock_lumscan::{
    BatchStats, Lumscan, NoopSink, ProbeSink, ProbeTarget, SharedSink, Transport,
};
use geoblock_worldgen::CountryCode;
use tokio::task::JoinSet;

use crate::checkpoint::{hash_study_config, ArchivedDoc, Checkpoint, CheckpointError, UnitResult};
use crate::record::ProbeRecord;
use crate::shard::{ShardPlan, WorkUnit};

/// How the orchestrator dispatches and persists a pass.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Work units probed concurrently. Each holds one per-unit stream of
    /// the engine's configured concurrency, so total in-flight probes are
    /// `shards × engine concurrency`.
    pub shards: usize,
    /// Completed units between checkpoint writes (when a path is set).
    pub checkpoint_every: usize,
    /// Where to persist progress; `None` disables checkpointing.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop launching new units after this many have been *started* this
    /// run — the graceful-kill knob. In-flight units still drain and are
    /// checkpointed, so a stopped run resumes without losing work.
    pub stop_after_units: Option<usize>,
}

impl Default for OrchestratorConfig {
    fn default() -> OrchestratorConfig {
        OrchestratorConfig {
            shards: 1,
            checkpoint_every: 1,
            checkpoint_path: None,
            stop_after_units: None,
        }
    }
}

impl OrchestratorConfig {
    /// Set the concurrent-unit count.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Set the checkpoint cadence (units between writes).
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Persist progress to `path`.
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Stop launching new units after `n` have started this run.
    pub fn stop_after_units(mut self, n: usize) -> Self {
        self.stop_after_units = Some(n);
        self
    }
}

/// What a sharded (or resumed) pass produced.
pub struct OrchestratorRun {
    /// The merged study data — for a complete run, bit-identical to a
    /// single-stream [`StudySession::baseline`] pass.
    ///
    /// [`StudySession::baseline`]: geoblock_core::StudySession::baseline
    pub result: StudyResult,
    /// Statistics over the probes *this process* ran. Restored units were
    /// counted by the interrupted run that probed them, so a resumed run's
    /// stats cover only its fresh work.
    pub stats: BatchStats,
    /// Every completed unit (restored + fresh), sorted by plan offset —
    /// the input to trace reconstruction and further checkpoints.
    pub units: Vec<UnitResult>,
    /// Units probed by this run.
    pub fresh_units: usize,
    /// Units restored from the checkpoint.
    pub restored_units: usize,
    /// Units in the full shard plan.
    pub total_units: usize,
    /// Whether the run stopped before completing every unit
    /// (`stop_after_units` engaged); resume from the checkpoint to finish.
    pub interrupted: bool,
}

/// What an orchestrated policy run produced: the merged study data, the
/// pairs the evidence flagged, and the probe-budget ledger the run charged
/// round by round. For [`PaperExact`](geoblock_core::PaperExact) the
/// result is bit-identical to the sharded baseline followed by a session
/// confirmation pass on the same engine.
pub struct PolicyRun {
    /// Every round's observations and retained bodies, merged.
    pub result: StudyResult,
    /// (domain, country) pairs flagged as explicit blockers by the end.
    pub flagged: Vec<(usize, usize)>,
    /// The final probe-budget ledger. A killed-and-resumed run finishes
    /// with a ledger identical to an uninterrupted run's.
    pub budget: ProbeBudget,
    /// Completed policy rounds.
    pub rounds: usize,
    /// Grid-round units probed by this process.
    pub fresh_units: usize,
    /// Grid-round units restored from a checkpoint.
    pub restored_units: usize,
    /// Units in the grid round's shard plan (0 if the policy never asked
    /// for a grid).
    pub total_units: usize,
    /// Whether the grid round stopped early (`stop_after_units`); resume
    /// from the checkpoint to finish the protocol.
    pub interrupted: bool,
}

/// Why an orchestrated pass could not run.
#[derive(Debug)]
pub enum OrchestratorError {
    /// The orchestrator configuration is invalid.
    Config(String),
    /// The checkpoint could not be written, or refused to restore.
    Checkpoint(CheckpointError),
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::Config(msg) => write!(f, "invalid orchestrator config: {msg}"),
            OrchestratorError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::Checkpoint(e) => Some(e),
            OrchestratorError::Config(_) => None,
        }
    }
}

impl From<CheckpointError> for OrchestratorError {
    fn from(e: CheckpointError) -> OrchestratorError {
        OrchestratorError::Checkpoint(e)
    }
}

/// Shards a study's baseline pass across in-process workers and makes it
/// killable and resumable. Classification uses the same paper fingerprint
/// set as [`StudySession`], and unit sizing comes from the study's
/// `work_unit_domains` knob.
///
/// [`StudySession`]: geoblock_core::StudySession
pub struct Orchestrator<T: Transport + 'static> {
    engine: Arc<Lumscan<T>>,
    study: StudyConfig,
    fingerprints: CompiledFingerprintSet,
    config: OrchestratorConfig,
}

impl<T: Transport + 'static> Orchestrator<T> {
    /// An orchestrator over `engine` for `study`, dispatched per `config`.
    pub fn new(
        engine: Arc<Lumscan<T>>,
        study: StudyConfig,
        config: OrchestratorConfig,
    ) -> Orchestrator<T> {
        Orchestrator {
            engine,
            study,
            fingerprints: CompiledFingerprintSet::paper(),
            config,
        }
    }

    /// The study configuration.
    pub fn study(&self) -> &StudyConfig {
        &self.study
    }

    /// The probing engine.
    pub fn engine(&self) -> &Arc<Lumscan<T>> {
        &self.engine
    }

    /// The shard plan a baseline pass over `domains` will use.
    pub fn shard_plan(&self, domains: &[String]) -> ShardPlan {
        self.shard_plan_for(domains, self.study.baseline_samples as usize)
    }

    /// The shard plan of a grid round at `samples` per pair — the baseline
    /// plan when `samples == baseline_samples`, a policy's scouting plan
    /// otherwise.
    fn shard_plan_for(&self, domains: &[String], samples: usize) -> ShardPlan {
        ShardPlan::new(
            domains.len(),
            self.study.countries.len(),
            samples,
            self.study.work_unit_domains,
        )
    }

    /// The config hash a checkpoint of this pass carries.
    pub fn config_hash(&self, domains: &[String]) -> u64 {
        hash_study_config(domains, &self.study)
    }

    /// Run the sharded baseline pass from scratch.
    pub async fn baseline(&self, domains: &[String]) -> Result<OrchestratorRun, OrchestratorError> {
        self.baseline_with(domains, SharedSink::new(NoopSink)).await
    }

    /// [`baseline`](Orchestrator::baseline) with an observer: every unit
    /// stream forwards spawns and completions into `sink` at global plan
    /// indices; its `finished` fires exactly once, after the last unit.
    pub async fn baseline_with<S: ProbeSink + 'static>(
        &self,
        domains: &[String],
        sink: SharedSink<S>,
    ) -> Result<OrchestratorRun, OrchestratorError> {
        self.run(
            domains,
            self.study.baseline_samples as usize,
            Vec::new(),
            sink,
            None,
        )
        .await
    }

    /// Resume an interrupted pass: validate the checkpoint against this
    /// study, wind the engine's per-pair invocation counters forward over
    /// the restored records, and probe only the units the checkpoint has
    /// not completed. For a fixed seed the finished run's fingerprint is
    /// identical to an uninterrupted run's.
    pub async fn resume(
        &self,
        domains: &[String],
        checkpoint: Checkpoint,
    ) -> Result<OrchestratorRun, OrchestratorError> {
        self.resume_with(domains, checkpoint, SharedSink::new(NoopSink))
            .await
    }

    /// [`resume`](Orchestrator::resume) with an observer (fresh units
    /// only — restored probes happened in another process and are not
    /// replayed through the sink).
    pub async fn resume_with<S: ProbeSink + 'static>(
        &self,
        domains: &[String],
        checkpoint: Checkpoint,
        sink: SharedSink<S>,
    ) -> Result<OrchestratorRun, OrchestratorError> {
        let expected = self.config_hash(domains);
        if checkpoint.config_hash != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: checkpoint.config_hash,
            }
            .into());
        }
        let plan = self.shard_plan(domains);
        if checkpoint.plan_len != plan.total_probes()
            || checkpoint.total_units != plan.total_units()
        {
            return Err(CheckpointError::Malformed(format!(
                "checkpoint geometry ({} probes, {} units) does not match the plan \
                 ({} probes, {} units)",
                checkpoint.plan_len,
                checkpoint.total_units,
                plan.total_probes(),
                plan.total_units()
            ))
            .into());
        }

        self.wind_invocations(&checkpoint.units);
        self.run(
            domains,
            self.study.baseline_samples as usize,
            checkpoint.units,
            sink,
            None,
        )
        .await
    }

    /// Drive a [`SamplingPolicy`] to completion, sharding its grid round
    /// across workers: round 0's grid runs through the same work-stealing
    /// dispatcher as [`baseline`](Orchestrator::baseline) (checkpointed,
    /// killable), later pair rounds run through a [`StudySession`] on the
    /// same engine. Every completed round charges `budget`, and every
    /// checkpoint carries the ledger, so a resumed run can prove it
    /// replayed to the identical spend.
    ///
    /// Policies may request a grid only as their opening round (all
    /// shipped policies do); a later grid request is a config error.
    pub async fn run_policy(
        &self,
        domains: &[String],
        policy: &mut dyn SamplingPolicy,
        budget: ProbeBudget,
    ) -> Result<PolicyRun, OrchestratorError> {
        self.drive_policy(domains, policy, budget, Vec::new()).await
    }

    /// Resume an interrupted [`run_policy`](Orchestrator::run_policy)
    /// pass: validate the checkpoint, restore its budget ledger and
    /// completed grid units, wind the engine's invocation counters, and
    /// drive the policy to completion. The finished ledger and result are
    /// identical to an uninterrupted run's for a fixed engine seed.
    pub async fn resume_policy(
        &self,
        domains: &[String],
        checkpoint: Checkpoint,
        policy: &mut dyn SamplingPolicy,
    ) -> Result<PolicyRun, OrchestratorError> {
        let expected = self.config_hash(domains);
        if checkpoint.config_hash != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: checkpoint.config_hash,
            }
            .into());
        }
        let budget = checkpoint.budget.clone().unwrap_or_default();
        // Round-0 geometry: ask the policy for its opening request against
        // an empty store — exactly what a fresh run asks, so a
        // deterministic policy answers identically here.
        let empty = SampleStore::new(domains.to_vec(), self.study.countries.clone());
        let opening = policy.next_round(&EvidenceState::new(&empty, &self.study, 0), &budget);
        let SampleRequest::Grid { samples } = opening else {
            return Err(OrchestratorError::Config(
                "resume_policy needs a policy whose opening round is a grid".to_string(),
            ));
        };
        let plan = self.shard_plan_for(domains, samples);
        if checkpoint.plan_len != plan.total_probes()
            || checkpoint.total_units != plan.total_units()
        {
            return Err(CheckpointError::Malformed(format!(
                "checkpoint geometry ({} probes, {} units) does not match the policy's \
                 grid round ({} probes, {} units)",
                checkpoint.plan_len,
                checkpoint.total_units,
                plan.total_probes(),
                plan.total_units()
            ))
            .into());
        }
        self.wind_invocations(&checkpoint.units);
        self.drive_policy(domains, policy, budget, checkpoint.units)
            .await
    }

    /// The policy loop: ask, execute, charge, checkpoint — until done.
    async fn drive_policy(
        &self,
        domains: &[String],
        policy: &mut dyn SamplingPolicy,
        mut budget: ProbeBudget,
        restored: Vec<UnitResult>,
    ) -> Result<PolicyRun, OrchestratorError> {
        let mut result = StudyResult {
            store: SampleStore::new(domains.to_vec(), self.study.countries.clone()),
            archive: BodyArchive::new(),
        };
        let mut session = StudySession::new(Arc::clone(&self.engine), self.study.clone());
        let mut restored = Some(restored);
        let mut units: Vec<UnitResult> = Vec::new();
        let mut grid_samples: Option<usize> = None;
        let mut fresh_units = 0;
        let mut restored_units = 0;
        let mut total_units = 0;
        let mut interrupted = false;
        let mut rounds = 0;

        for round in 0.. {
            let request = {
                let evidence = EvidenceState::new(&result.store, &self.study, round);
                policy.next_round(&evidence, &budget)
            };
            // Protocol spend, not per-process accounting: a resumed grid
            // round still charges the full grid, so the final ledger is
            // identical to an uninterrupted run's.
            let probes = request.probes(result.store.domains.len(), result.store.countries.len());
            match request {
                SampleRequest::Done => break,
                SampleRequest::Grid { samples } => {
                    if round != 0 {
                        return Err(OrchestratorError::Config(
                            "orchestrated policies may request a grid only as round 0".to_string(),
                        ));
                    }
                    let run = self
                        .run(
                            domains,
                            samples,
                            restored.take().unwrap_or_default(),
                            SharedSink::new(NoopSink),
                            Some(&budget),
                        )
                        .await?;
                    grid_samples = Some(samples);
                    fresh_units = run.fresh_units;
                    restored_units = run.restored_units;
                    total_units = run.total_units;
                    units = run.units;
                    result = run.result;
                    if run.interrupted {
                        interrupted = true;
                        break;
                    }
                }
                SampleRequest::Pairs { pairs, samples } => {
                    session.resample(&mut result, &pairs, samples).await;
                }
            }
            budget.charge(round, probes as u64);
            rounds = round + 1;
            // Persist the round boundary: the grid round's units plus the
            // ledger as charged so far.
            if let (Some(path), Some(samples)) = (&self.config.checkpoint_path, grid_samples) {
                let plan = self.shard_plan_for(domains, samples);
                Checkpoint::snapshot(
                    self.config_hash(domains),
                    plan.total_probes(),
                    self.study.work_unit_domains,
                    plan.total_units(),
                    &units,
                )
                .with_budget(budget.clone())
                .save(path)?;
            }
        }

        let flagged = if interrupted {
            Vec::new()
        } else {
            flagged_explicit_pairs(&result.store)
        };
        Ok(PolicyRun {
            result,
            flagged,
            budget,
            rounds,
            fresh_units,
            restored_units,
            total_units,
            interrupted,
        })
    }

    /// Wind invocation counters forward over restored units: each restored
    /// record claimed exactly one invocation of its (host, country) pair,
    /// and exit sessions derive from those counters — without this, later
    /// passes (confirmation) would re-derive the interrupted run's
    /// sessions.
    fn wind_invocations(&self, units: &[UnitResult]) {
        let mut claimed: BTreeMap<(&str, CountryCode), u32> = BTreeMap::new();
        for unit in units {
            for record in &unit.records {
                *claimed.entry((&record.host, record.country)).or_insert(0) += 1;
            }
        }
        for ((host, country), n) in claimed {
            self.engine
                .advance_invocations(&ProbeTarget::http(host, country), n);
        }
    }

    /// The dispatcher: seed up to `shards` unit workers, and as each unit
    /// completes, fold it in, checkpoint on cadence, and hand the freed
    /// worker slot the next pending unit. `samples` is the grid depth per
    /// pair (the baseline's for plain passes, a policy round's otherwise);
    /// `ledger` is attached to every checkpoint when this grid round
    /// belongs to a policy run.
    async fn run<S: ProbeSink + 'static>(
        &self,
        domains: &[String],
        samples: usize,
        restored: Vec<UnitResult>,
        sink: SharedSink<S>,
        ledger: Option<&ProbeBudget>,
    ) -> Result<OrchestratorRun, OrchestratorError> {
        if self.config.shards == 0 {
            return Err(OrchestratorError::Config(
                "shards must be at least 1".to_string(),
            ));
        }
        if self.config.checkpoint_every == 0 {
            return Err(OrchestratorError::Config(
                "checkpoint_every must be at least 1".to_string(),
            ));
        }

        let plan = self.shard_plan_for(domains, samples);
        let config_hash = self.config_hash(domains);
        let restored_units = restored.len();
        let done = restored
            .iter()
            .map(|u| u.id)
            .collect::<std::collections::BTreeSet<_>>();
        let pending: Vec<WorkUnit> = plan
            .units()
            .iter()
            .filter(|u| !done.contains(&u.id))
            .copied()
            .collect();

        // Owned, shareable copies of the plan axes for the unit tasks.
        let domains_arc: Arc<Vec<String>> = Arc::new(domains.to_vec());
        let countries_arc: Arc<Vec<CountryCode>> = Arc::new(self.study.countries.clone());
        let rep: Arc<Vec<bool>> = Arc::new(
            self.study
                .countries
                .iter()
                .map(|c| self.study.rep_countries.contains(c))
                .collect(),
        );

        let budget = self.config.stop_after_units.unwrap_or(usize::MAX);
        let mut join: JoinSet<(UnitResult, BatchStats)> = JoinSet::new();
        let mut next = 0usize;
        let mut launched = 0usize;
        let mut completed = restored;
        let mut stats = BatchStats::default();
        let mut since_checkpoint = 0usize;

        let spawn_next = |join: &mut JoinSet<(UnitResult, BatchStats)>, unit: WorkUnit| {
            let engine = Arc::clone(&self.engine);
            let domains = Arc::clone(&domains_arc);
            let countries = Arc::clone(&countries_arc);
            let rep = Arc::clone(&rep);
            let fingerprints = self.fingerprints.clone();
            let view = sink.at_offset(unit.start);
            join.spawn(async move {
                run_unit(
                    engine,
                    domains,
                    countries,
                    rep,
                    samples,
                    unit,
                    fingerprints,
                    view,
                )
                .await
            });
        };

        while join.len() < self.config.shards && next < pending.len() && launched < budget {
            spawn_next(&mut join, pending[next]);
            next += 1;
            launched += 1;
        }

        while let Some(joined) = join.join_next().await {
            let (unit, unit_stats) = joined.expect("work-unit task must not panic");
            stats.merge(&unit_stats);
            completed.push(unit);
            since_checkpoint += 1;
            if let Some(path) = &self.config.checkpoint_path {
                if since_checkpoint >= self.config.checkpoint_every {
                    let mut snap = Checkpoint::snapshot(
                        config_hash,
                        plan.total_probes(),
                        self.study.work_unit_domains,
                        plan.total_units(),
                        &completed,
                    );
                    if let Some(ledger) = ledger {
                        snap = snap.with_budget(ledger.clone());
                    }
                    snap.save(path)?;
                    since_checkpoint = 0;
                }
            }
            if next < pending.len() && launched < budget {
                spawn_next(&mut join, pending[next]);
                next += 1;
                launched += 1;
            }
        }

        // Trailing units that landed since the last cadence write.
        if since_checkpoint > 0 {
            if let Some(path) = &self.config.checkpoint_path {
                let mut snap = Checkpoint::snapshot(
                    config_hash,
                    plan.total_probes(),
                    self.study.work_unit_domains,
                    plan.total_units(),
                    &completed,
                );
                if let Some(ledger) = ledger {
                    snap = snap.with_budget(ledger.clone());
                }
                snap.save(path)?;
            }
        }

        completed.sort_by_key(|u| u.start);
        stats.quarantined_exits = self.engine.breaker().quarantined_count();
        // This process's pass is over (even if interrupted): fire the
        // shared sink's exactly-once `finished`.
        sink.finish(&stats);

        let fresh_units = completed.len() - restored_units;
        let interrupted = completed.len() < plan.total_units();
        let result = merge_units(domains, &self.study, &completed);
        Ok(OrchestratorRun {
            result,
            stats,
            units: completed,
            fresh_units,
            restored_units,
            total_units: plan.total_units(),
            interrupted,
        })
    }
}

/// Probe one work unit through its own ordered stream: classify each
/// completion, offer representative-country bodies to a unit-local archive
/// (per-domain ceilings never cross units — domains never span units), and
/// record every probe for checkpointing.
#[allow(clippy::too_many_arguments)]
async fn run_unit<T: Transport + 'static, S: ProbeSink + 'static>(
    engine: Arc<Lumscan<T>>,
    domains: Arc<Vec<String>>,
    countries: Arc<Vec<CountryCode>>,
    rep: Arc<Vec<bool>>,
    samples: usize,
    unit: WorkUnit,
    fingerprints: CompiledFingerprintSet,
    mut sink: SharedSink<S>,
) -> (UnitResult, BatchStats) {
    let plan = TargetPlan::grid(&domains, &countries, samples);
    let mut records = Vec::with_capacity(unit.probes());
    let mut archive = BodyArchive::new();
    // Ordered, like every study pass: archive retention and record order
    // must replay identically between runs.
    let mut stream = engine
        .probe_stream_with(plan.iter_range(unit.start..unit.end), &mut sink)
        .ordered();
    while let Some((local, result)) = stream.next().await {
        let index = unit.start + local;
        let coord = plan.coord(index);
        let obs = classify_chain(&fingerprints, &result.outcome);
        if rep[coord.country] {
            if let Ok(chain) = &result.outcome {
                let resp = chain.final_response();
                archive.offer(
                    coord.domain as u32,
                    coord.country as u16,
                    coord.sample as u16,
                    resp.body.len() as u32,
                    resp.body.bytes(),
                );
            }
        }
        records.push(ProbeRecord::capture(index, &result, obs));
    }
    let stats = stream.into_stats();
    let mut docs: Vec<ArchivedDoc> = archive
        .iter()
        .map(|((domain, country, sample), body)| ArchivedDoc {
            domain,
            country,
            sample,
            body: String::from_utf8_lossy(body).into_owned(),
        })
        .collect();
    // HashMap iteration order is arbitrary; checkpoints must be
    // byte-stable for a given set of completed units.
    docs.sort_by_key(|d| (d.domain, d.country, d.sample));
    (
        UnitResult {
            id: unit.id,
            start: unit.start,
            end: unit.end,
            domain_start: unit.domain_start,
            domain_end: unit.domain_end,
            records,
            docs,
        },
        stats,
    )
}

/// Deterministically merge completed units into one [`StudyResult`]:
/// replay each record's observation at its plan coordinate (units sorted
/// by offset, records in index order — the sequential pass's order) and
/// insert each retained body verbatim. Restored and fresh units merge
/// identically; the merge never re-probes and never re-judges retention.
fn merge_units(domains: &[String], study: &StudyConfig, units: &[UnitResult]) -> StudyResult {
    let plan = TargetPlan::grid(domains, &study.countries, study.baseline_samples as usize);
    let mut store = SampleStore::new(domains.to_vec(), study.countries.clone());
    let mut archive = BodyArchive::new();
    for unit in units {
        for record in &unit.records {
            let coord = plan.coord(record.index);
            store.push(coord.domain, coord.country, record.obs);
        }
        for doc in &unit.docs {
            archive.insert(
                doc.domain,
                doc.country,
                doc.sample,
                Bytes::copy_from_slice(doc.body.as_bytes()),
            );
        }
    }
    StudyResult { store, archive }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::{render, PageKind, PageParams};
    use geoblock_core::StudySession;
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::{GaugeSink, LumscanConfig, TransportRequest};
    use geoblock_worldgen::cc;

    /// The study-module toy internet: `blocked.com` serves a Cloudflare
    /// 1009 page in IR, content elsewhere; everything else serves content.
    struct ToyNet;

    impl Transport for ToyNet {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            if host == "lumtest.io" {
                return Ok(Response::builder(StatusCode::OK)
                    .body(format!("country={}", req.country))
                    .finish(req.request.url));
            }
            if host.starts_with("blocked") && req.country == cc("IR") {
                let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
                return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
            }
            Ok(Response::builder(StatusCode::OK)
                .body("<html><body>".to_string() + &"content ".repeat(500) + "</body></html>")
                .finish(req.request.url))
        }
    }

    fn toy_domains() -> Vec<String> {
        vec![
            "blocked-a.com".to_string(),
            "plain-a.com".to_string(),
            "blocked-b.com".to_string(),
            "plain-b.com".to_string(),
            "plain-c.com".to_string(),
        ]
    }

    fn toy_study() -> StudyConfig {
        StudyConfig::builder()
            .countries([cc("IR"), cc("US"), cc("DE")])
            .rep_countries([cc("IR")])
            .work_unit_domains(2)
            .build()
            .unwrap()
    }

    fn toy_engine() -> Arc<Lumscan<ToyNet>> {
        Arc::new(Lumscan::new(
            ToyNet,
            LumscanConfig::builder().concurrency(2).build().unwrap(),
        ))
    }

    async fn single_stream_result() -> StudyResult {
        let mut session = StudySession::new(toy_engine(), toy_study());
        session.baseline(&toy_domains()).await
    }

    fn assert_same_result(a: &StudyResult, b: &StudyResult) {
        assert_eq!(a.store.domains, b.store.domains);
        assert_eq!(a.store.countries, b.store.countries);
        for ((d, c, cell_a), (_, _, cell_b)) in a.store.iter_cells().zip(b.store.iter_cells()) {
            assert_eq!(cell_a, cell_b, "cell ({d}, {c}) differs");
        }
        assert_eq!(a.archive.len(), b.archive.len(), "archive sizes differ");
        let mut docs_a: Vec<_> = a.archive.iter().map(|(k, v)| (k, v.as_ref())).collect();
        docs_a.sort();
        let mut docs_b: Vec<_> = b.archive.iter().map(|(k, v)| (k, v.as_ref())).collect();
        docs_b.sort();
        assert_eq!(docs_a, docs_b, "archived documents differ");
    }

    #[tokio::test]
    async fn sharded_baseline_matches_single_stream_for_any_shard_count() {
        let single = single_stream_result().await;
        for shards in [1, 2, 8] {
            let orch = Orchestrator::new(
                toy_engine(),
                toy_study(),
                OrchestratorConfig::default().shards(shards),
            );
            let run = orch.baseline(&toy_domains()).await.unwrap();
            assert_eq!(run.total_units, 3, "5 domains / 2 per unit");
            assert_eq!(run.fresh_units, 3);
            assert_eq!(run.restored_units, 0);
            assert!(!run.interrupted);
            assert_eq!(run.stats.total, 5 * 3 * 3);
            assert_same_result(&run.result, &single);
        }
    }

    #[tokio::test]
    async fn shared_sink_sees_one_finished_pass_at_global_indices() {
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default().shards(2),
        );
        let sink = SharedSink::new(GaugeSink::new());
        let run = orch
            .baseline_with(&toy_domains(), sink.clone())
            .await
            .unwrap();
        let gauge = sink.with(|g| g.clone());
        assert_eq!(gauge.started, run.stats.total);
        assert_eq!(gauge.completed, run.stats.total);
        assert!(gauge.finished, "owner-driven finished must fire once");
    }

    #[tokio::test]
    async fn kill_and_resume_reproduces_the_uninterrupted_run() {
        let dir = std::env::temp_dir().join(format!("geoblock-orch-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt");

        // Leg 1: stop after one launched unit; the checkpoint has its work.
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default()
                .shards(1)
                .checkpoint_path(&path)
                .stop_after_units(1),
        );
        let leg1 = orch.baseline(&toy_domains()).await.unwrap();
        assert!(leg1.interrupted);
        assert_eq!(leg1.fresh_units, 1);

        // Leg 2: a fresh engine resumes from the file and finishes.
        let checkpoint = Checkpoint::load(&path).unwrap();
        assert_eq!(checkpoint.completed_ids().len(), 1);
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default()
                .shards(2)
                .checkpoint_path(&path),
        );
        let resumed = orch.resume(&toy_domains(), checkpoint).await.unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.restored_units, 1);
        assert_eq!(resumed.fresh_units, 2);
        // Fresh-only stats: two units' worth of probes.
        assert_eq!(resumed.stats.total, 2 * 2 * 3 * 3 - 3 * 3);

        assert_same_result(&resumed.result, &single_stream_result().await);

        // The final checkpoint on disk now holds the complete pass.
        let final_cp = Checkpoint::load(&path).unwrap();
        assert_eq!(final_cp.completed_probes(), 5 * 3 * 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[tokio::test]
    async fn policy_run_matches_baseline_plus_session_confirm() {
        use geoblock_core::PaperExact;
        // The pre-policy orchestrated protocol: sharded baseline, then a
        // session confirmation pass on the same engine.
        let legacy = {
            let engine = toy_engine();
            let orch = Orchestrator::new(
                Arc::clone(&engine),
                toy_study(),
                OrchestratorConfig::default().shards(2),
            );
            let mut result = orch.baseline(&toy_domains()).await.unwrap().result;
            let mut session = StudySession::new(engine, toy_study());
            session.confirm(&mut result).await;
            result
        };
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default().shards(2),
        );
        let run = orch
            .run_policy(
                &toy_domains(),
                &mut PaperExact,
                geoblock_core::ProbeBudget::unlimited(),
            )
            .await
            .unwrap();
        assert_same_result(&run.result, &legacy);
        assert_eq!(run.rounds, 2);
        assert_eq!(
            run.flagged,
            vec![(0, 0), (2, 0)],
            "both blocked-* domains in IR"
        );
        // Ledger: a full grid round plus two pairs × 20 confirmations.
        assert_eq!(run.budget.spent, (5 * 3 * 3 + 2 * 20) as u64);
        assert_eq!(run.budget.rounds.len(), 2);
    }

    #[tokio::test]
    async fn policy_kill_and_resume_replays_an_identical_ledger() {
        use geoblock_core::PaperExact;
        let dir =
            std::env::temp_dir().join(format!("geoblock-policy-resume-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.ckpt");

        let uninterrupted = {
            let orch = Orchestrator::new(toy_engine(), toy_study(), OrchestratorConfig::default());
            orch.run_policy(
                &toy_domains(),
                &mut PaperExact,
                geoblock_core::ProbeBudget::unlimited(),
            )
            .await
            .unwrap()
        };

        // Leg 1: killed after one grid unit. The checkpoint carries the
        // (still-uncharged) ledger.
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default()
                .shards(1)
                .checkpoint_path(&path)
                .stop_after_units(1),
        );
        let leg1 = orch
            .run_policy(
                &toy_domains(),
                &mut PaperExact,
                geoblock_core::ProbeBudget::unlimited(),
            )
            .await
            .unwrap();
        assert!(leg1.interrupted);
        assert_eq!(leg1.budget.spent, 0, "rounds charge only on completion");

        // Leg 2: a fresh engine resumes and finishes the whole protocol.
        let checkpoint = Checkpoint::load(&path).unwrap();
        assert_eq!(
            checkpoint.budget,
            Some(geoblock_core::ProbeBudget::unlimited())
        );
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default()
                .shards(2)
                .checkpoint_path(&path),
        );
        let resumed = orch
            .resume_policy(&toy_domains(), checkpoint, &mut PaperExact)
            .await
            .unwrap();
        assert!(!resumed.interrupted);
        assert_same_result(&resumed.result, &uninterrupted.result);
        assert_eq!(
            resumed.budget, uninterrupted.budget,
            "identical ledger replay"
        );
        assert_eq!(resumed.flagged, uninterrupted.flagged);

        // The final checkpoint holds the fully-charged ledger.
        let final_cp = Checkpoint::load(&path).unwrap();
        assert_eq!(final_cp.budget, Some(resumed.budget.clone()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[tokio::test]
    async fn adaptive_policy_floors_flagged_pairs_under_orchestration() {
        use geoblock_core::AdaptiveBandit;
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default().shards(2),
        );
        let run = orch
            .run_policy(
                &toy_domains(),
                &mut AdaptiveBandit::default(),
                geoblock_core::ProbeBudget::unlimited(),
            )
            .await
            .unwrap();
        // Both blocked-* × IR pairs reach the full 23-sample floor; clean
        // pairs stop at one scout sample on the deterministic ToyNet.
        for &(d, c) in &run.flagged {
            assert_eq!(run.result.store.cell(d, c).len(), 23);
        }
        assert_eq!(run.result.store.cell(1, 1).len(), 1);
        assert!(
            run.budget.spent < (5 * 3 * 3 + 2 * 20) as u64,
            "spends less than fixed"
        );
    }

    #[tokio::test]
    async fn resume_refuses_a_foreign_checkpoint() {
        let orch = Orchestrator::new(toy_engine(), toy_study(), OrchestratorConfig::default());
        let checkpoint = Checkpoint::snapshot(0xdead_beef, 45, 2, 3, &[]);
        let err = orch
            .resume(&toy_domains(), checkpoint)
            .await
            .err()
            .expect("mismatched config hash must refuse");
        assert!(matches!(
            err,
            OrchestratorError::Checkpoint(CheckpointError::ConfigMismatch { .. })
        ));
        assert!(err.to_string().contains("different study"), "{err}");
    }

    #[tokio::test]
    async fn zero_shards_is_a_config_error() {
        let orch = Orchestrator::new(
            toy_engine(),
            toy_study(),
            OrchestratorConfig::default().shards(0),
        );
        assert!(matches!(
            orch.baseline(&toy_domains()).await,
            Err(OrchestratorError::Config(_))
        ));
    }
}
