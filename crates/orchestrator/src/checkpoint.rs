//! Resumable study checkpoints: serde-JSON snapshots of completed work.
//!
//! A checkpoint is written atomically (temp file + rename) every
//! `checkpoint_every` completed units, and carries two self-describing
//! hashes:
//!
//! * `config_hash` — FNV-1a over a canonical rendering of the study shape
//!   (domain list, vantage panel, representative panel, samples per pair,
//!   work-unit size). Resume refuses a checkpoint whose hash disagrees
//!   with the study it is being restored into: resuming a different
//!   study's progress would silently misfile every record.
//! * `trace_hash` — FNV-1a over every completed record's
//!   [`canonical_line`](crate::record::ProbeRecord::canonical_line) in
//!   index order. [`Checkpoint::load`] recomputes it, so a record tampered
//!   with (or bit-rotted) after the write surfaces as a typed
//!   [`CheckpointError::Integrity`] instead of corrupting the merge.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

use geoblock_core::{ProbeBudget, StudyConfig};
use serde::{Deserialize, Serialize};

use crate::fnv1a;
use crate::record::ProbeRecord;

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A body the unit's archive retained, keyed by *global* plan coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchivedDoc {
    /// Global domain index.
    pub domain: u32,
    /// Country index.
    pub country: u16,
    /// Sample number.
    pub sample: u16,
    /// The retained (already truncated) body.
    pub body: String,
}

/// Everything one completed work unit produced: its plan geometry, one
/// [`ProbeRecord`] per probe in index order, and the bodies its archive
/// retained. This is the single merge currency — freshly probed and
/// checkpoint-restored units are indistinguishable downstream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitResult {
    /// Unit number in the shard plan.
    pub id: usize,
    /// First plan index covered.
    pub start: usize,
    /// One past the last plan index covered.
    pub end: usize,
    /// First domain index covered.
    pub domain_start: usize,
    /// One past the last domain index covered.
    pub domain_end: usize,
    /// One record per probe, in index order.
    pub records: Vec<ProbeRecord>,
    /// Bodies retained by the unit's archive, sorted by coordinate.
    pub docs: Vec<ArchivedDoc>,
}

/// A persisted snapshot of a partially (or fully) completed study pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Hash of the study shape this progress belongs to.
    pub config_hash: u64,
    /// Total probes in the study's grid plan.
    pub plan_len: usize,
    /// Domains per work unit when the progress was made.
    pub work_unit_domains: usize,
    /// Units in the full shard plan (completed + remaining).
    pub total_units: usize,
    /// Integrity hash over every completed record's canonical line.
    pub trace_hash: u64,
    /// Completed units, sorted by plan offset.
    pub units: Vec<UnitResult>,
    /// The probe-budget ledger as of this snapshot — present for
    /// policy-driven passes ([`run_policy`]), absent (and omitted from the
    /// JSON, keeping plain baseline checkpoints byte-identical to version
    /// 1 writers) otherwise. A resumed policy run restores this ledger and
    /// must finish with the same final ledger an uninterrupted run
    /// produces.
    ///
    /// [`run_policy`]: crate::Orchestrator::run_policy
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub budget: Option<ProbeBudget>,
}

impl Checkpoint {
    /// Snapshot `units` (cloned, then sorted by plan offset) with a fresh
    /// integrity hash.
    pub fn snapshot(
        config_hash: u64,
        plan_len: usize,
        work_unit_domains: usize,
        total_units: usize,
        units: &[UnitResult],
    ) -> Checkpoint {
        let mut units = units.to_vec();
        units.sort_by_key(|u| u.start);
        let trace_hash = trace_hash_of(&units);
        Checkpoint {
            version: CHECKPOINT_VERSION,
            config_hash,
            plan_len,
            work_unit_domains,
            total_units,
            trace_hash,
            units,
            budget: None,
        }
    }

    /// Attach a probe-budget ledger (policy-driven passes carry one).
    pub fn with_budget(mut self, budget: ProbeBudget) -> Checkpoint {
        self.budget = Some(budget);
        self
    }

    /// IDs of the units this checkpoint has completed.
    pub fn completed_ids(&self) -> BTreeSet<usize> {
        self.units.iter().map(|u| u.id).collect()
    }

    /// Completed probes across all units.
    pub fn completed_probes(&self) -> usize {
        self.units.iter().map(|u| u.records.len()).sum()
    }

    /// Write the checkpoint to `path` atomically: serialize to
    /// `<path>.tmp`, flush, then rename over the destination — a crash
    /// mid-write leaves the previous checkpoint intact, never a truncated
    /// JSON document under the real name.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string(self)
            .map_err(|e| CheckpointError::Malformed(format!("serialize: {e}")))?;
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(json.as_bytes())?;
            file.flush()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and validate a checkpoint: I/O errors, unparseable or
    /// truncated JSON, unknown versions, and integrity-hash mismatches
    /// each surface as their own [`CheckpointError`] variant — never a
    /// panic, and never a silently-wrong resume.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let bytes = fs::read(path)?;
        let checkpoint: Checkpoint = serde_json::from_slice(&bytes)
            .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: checkpoint.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let recomputed = trace_hash_of(&checkpoint.units);
        if recomputed != checkpoint.trace_hash {
            return Err(CheckpointError::Integrity {
                expected: checkpoint.trace_hash,
                found: recomputed,
            });
        }
        Ok(checkpoint)
    }
}

/// FNV-1a over every record's canonical line, units sorted by plan offset
/// and records in stored (index) order, one line per record,
/// newline-terminated — the same shape as a simtest canonical trace text.
pub fn trace_hash_of(units: &[UnitResult]) -> u64 {
    let mut sorted: Vec<&UnitResult> = units.iter().collect();
    sorted.sort_by_key(|u| u.start);
    let mut text = String::new();
    for unit in sorted {
        for record in &unit.records {
            text.push_str(&record.canonical_line());
            text.push('\n');
        }
    }
    fnv1a(text.as_bytes())
}

/// The study-shape hash stored in (and demanded of) every checkpoint:
/// FNV-1a over a canonical rendering of everything that determines where a
/// record files — the domain list and vantage panel (index meanings), the
/// representative panel (retention), samples per pair and work-unit size
/// (plan geometry).
pub fn hash_study_config(domains: &[String], config: &StudyConfig) -> u64 {
    let mut text = String::from("geoblock-study-v1\n");
    text.push_str("domains:");
    for d in domains {
        text.push(' ');
        text.push_str(d);
    }
    text.push_str("\ncountries:");
    for c in &config.countries {
        text.push_str(&format!(" {c}"));
    }
    text.push_str("\nrep_countries:");
    for c in &config.rep_countries {
        text.push_str(&format!(" {c}"));
    }
    text.push_str(&format!(
        "\nbaseline_samples: {}\nwork_unit_domains: {}\n",
        config.baseline_samples, config.work_unit_domains
    ));
    fnv1a(text.as_bytes())
}

/// Why a checkpoint could not be written, read, or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a checkpoint: truncated, not JSON, or the wrong
    /// shape. Carries the decoder's message.
    Malformed(String),
    /// The file is a checkpoint from an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The checkpoint belongs to a different study configuration.
    ConfigMismatch {
        /// Hash of the study being resumed into.
        expected: u64,
        /// Hash recorded in the checkpoint.
        found: u64,
    },
    /// The stored trace hash does not match the stored records: the file
    /// was modified (or corrupted) after it was written.
    Integrity {
        /// Hash recorded in the checkpoint.
        expected: u64,
        /// Hash recomputed from the stored records.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::Version { found, supported } => write!(
                f,
                "checkpoint version {found} is not supported (this build reads {supported})"
            ),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different study \
                 (config hash {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Integrity { expected, found } => write!(
                f,
                "checkpoint failed integrity validation \
                 (stored trace hash {expected:#018x}, recomputed {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_core::Obs;
    use geoblock_worldgen::cc;

    fn unit(id: usize, start: usize) -> UnitResult {
        UnitResult {
            id,
            start,
            end: start + 2,
            domain_start: id,
            domain_end: id + 1,
            records: (0..2)
                .map(|k| ProbeRecord {
                    index: start + k,
                    host: format!("d{id}.example"),
                    country: cc("IR"),
                    attempts: 1,
                    sessions: vec![(start + k) as u64 + 1],
                    faults: Vec::new(),
                    hops: 1,
                    obs: Obs::Response {
                        status: 200,
                        len: 64,
                        page: None,
                    },
                })
                .collect(),
            docs: vec![ArchivedDoc {
                domain: id as u32,
                country: 0,
                sample: 0,
                body: "<html>blocked</html>".to_string(),
            }],
        }
    }

    #[test]
    fn trace_hash_ignores_unit_arrival_order() {
        let forward = [unit(0, 0), unit(1, 2)];
        let shuffled = [unit(1, 2), unit(0, 0)];
        assert_eq!(trace_hash_of(&forward), trace_hash_of(&shuffled));
        let mut tampered = [unit(0, 0), unit(1, 2)];
        tampered[1].records[0].attempts = 9;
        assert_ne!(trace_hash_of(&forward), trace_hash_of(&tampered));
    }

    #[test]
    fn config_hash_tracks_every_axis() {
        let domains = vec!["a.example".to_string(), "b.example".to_string()];
        let config = StudyConfig::builder()
            .countries([cc("IR"), cc("US")])
            .rep_countries([cc("IR")])
            .build()
            .unwrap();
        let base = hash_study_config(&domains, &config);
        assert_eq!(base, hash_study_config(&domains, &config), "stable");

        let fewer = hash_study_config(&domains[..1], &config);
        assert_ne!(base, fewer, "domain list must move the hash");

        let mut other = config.clone();
        other.work_unit_domains += 1;
        assert_ne!(
            base,
            hash_study_config(&domains, &other),
            "unit size must move the hash"
        );

        let reordered = vec![domains[1].clone(), domains[0].clone()];
        assert_ne!(
            base,
            hash_study_config(&reordered, &config),
            "domain order defines index meaning"
        );
    }

    #[test]
    fn snapshot_sorts_and_roundtrips() {
        let dir =
            std::env::temp_dir().join(format!("geoblock-checkpoint-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt");

        let cp = Checkpoint::snapshot(0xabcd, 6, 1, 3, &[unit(1, 2), unit(0, 0)]);
        assert_eq!(cp.units[0].id, 0, "snapshot sorts by plan offset");
        assert_eq!(cp.completed_ids().len(), 2);
        assert_eq!(cp.completed_probes(), 4);
        cp.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, cp);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_ledger_roundtrips_and_budgetless_files_still_load() {
        let dir =
            std::env::temp_dir().join(format!("geoblock-checkpoint-budget-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("study.ckpt");

        let mut ledger = ProbeBudget::capped(100);
        ledger.charge(0, 18);
        let cp = Checkpoint::snapshot(0xabcd, 6, 1, 3, &[unit(0, 0)]).with_budget(ledger.clone());
        cp.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.budget, Some(ledger));

        // A plain baseline checkpoint has no ledger — and its JSON omits
        // the field entirely, so version-1 writers and readers agree.
        let plain = Checkpoint::snapshot(0xabcd, 6, 1, 3, &[unit(0, 0)]);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(
            !json.contains("budget"),
            "budgetless checkpoints omit the field"
        );
        let back: Checkpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.budget, None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_a_typed_error_not_a_panic() {
        let dir = std::env::temp_dir().join(format!(
            "geoblock-checkpoint-corrupt-{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();

        // Not JSON at all.
        let garbage = dir.join("garbage.ckpt");
        fs::write(&garbage, b"\x00\x01not json").unwrap();
        assert!(matches!(
            Checkpoint::load(&garbage),
            Err(CheckpointError::Malformed(_))
        ));

        // Truncated mid-document (a non-atomic writer's crash artifact).
        let cp = Checkpoint::snapshot(1, 6, 1, 3, &[unit(0, 0)]);
        let full = serde_json::to_string(&cp).unwrap();
        let truncated = dir.join("truncated.ckpt");
        fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            Checkpoint::load(&truncated),
            Err(CheckpointError::Malformed(_))
        ));

        // A tampered record: parses fine, fails the integrity hash.
        let tampered_json = full.replace("\"attempts\":1", "\"attempts\":9");
        assert_ne!(tampered_json, full, "tamper target must exist");
        let tampered = dir.join("tampered.ckpt");
        fs::write(&tampered, tampered_json).unwrap();
        assert!(matches!(
            Checkpoint::load(&tampered),
            Err(CheckpointError::Integrity { .. })
        ));

        // Missing file.
        assert!(matches!(
            Checkpoint::load(&dir.join("absent.ckpt")),
            Err(CheckpointError::Io(_))
        ));

        // Future version.
        let mut future = cp.clone();
        future.version = CHECKPOINT_VERSION + 1;
        let future_path = dir.join("future.ckpt");
        fs::write(&future_path, serde_json::to_string(&future).unwrap()).unwrap();
        assert!(matches!(
            Checkpoint::load(&future_path),
            Err(CheckpointError::Version { found, .. }) if found == CHECKPOINT_VERSION + 1
        ));

        fs::remove_dir_all(&dir).ok();
    }
}
