//! The per-probe record a work unit keeps for checkpointing.

use geoblock_core::Obs;
use geoblock_lumscan::ProbeResult;
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

/// Everything a completed probe contributes to the study and to the
/// deterministic-simulation trace, in a serializable form.
///
/// This is the checkpoint's unit of progress: a restored record replays
/// its observation into the merged store without re-probing, and its
/// attempt/session/fault evidence reconstructs the simtest trace event the
/// probe would have produced — so a resumed run's trace hash can match an
/// uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeRecord {
    /// Flat index in the study's grid plan (global, not unit-local).
    pub index: usize,
    /// Target host.
    pub host: String,
    /// Vantage country.
    pub country: CountryCode,
    /// Attempts the engine spent (0 for a panicked slot).
    pub attempts: u32,
    /// The exit session each attempt rode, in attempt order.
    pub sessions: Vec<u64>,
    /// Stable labels of every absorbed or terminal fault, in attempt order.
    pub faults: Vec<String>,
    /// Redirect-chain length of the final successful attempt (0 on error).
    pub hops: usize,
    /// The classified observation — what the study keeps of this probe.
    pub obs: Obs,
}

impl ProbeRecord {
    /// Reduce a completed probe to its record. `obs` is passed in rather
    /// than re-derived so the caller classifies exactly once per probe.
    pub fn capture(index: usize, result: &ProbeResult, obs: Obs) -> ProbeRecord {
        ProbeRecord {
            index,
            host: result.target.url.host.as_str().to_string(),
            country: result.target.country,
            attempts: result.attempts,
            sessions: result.attempt_sessions.iter().map(|s| s.0).collect(),
            faults: result
                .attempt_errors
                .iter()
                .map(|e| e.kind().to_string())
                .collect(),
            hops: result.chain().map(|c| c.hops.len()).unwrap_or(0),
            obs,
        }
    }

    /// The record's canonical line — fixed field order, byte-stable across
    /// runs and platforms. The checkpoint's integrity hash is FNV-1a over
    /// these lines in index order, so any tampered or bit-rotted field
    /// moves the hash.
    pub fn canonical_line(&self) -> String {
        let join = |parts: Vec<String>| {
            if parts.is_empty() {
                "-".to_string()
            } else {
                parts.join(",")
            }
        };
        let sessions = join(self.sessions.iter().map(|s| format!("{s:016x}")).collect());
        let faults = join(self.faults.clone());
        format!(
            "i={:05} host={} cc={} att={} exits={} faults={} hops={} obs={}",
            self.index,
            self.host,
            self.country,
            self.attempts,
            sessions,
            faults,
            self.hops,
            self.obs.stable_label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_core::ErrKind;
    use geoblock_worldgen::cc;

    fn record() -> ProbeRecord {
        ProbeRecord {
            index: 7,
            host: "blocked-0.example".to_string(),
            country: cc("IR"),
            attempts: 2,
            sessions: vec![1, 2],
            faults: vec!["proxy".to_string()],
            hops: 1,
            obs: Obs::Response {
                status: 403,
                len: 512,
                page: None,
            },
        }
    }

    #[test]
    fn canonical_line_is_fixed_format() {
        assert_eq!(
            record().canonical_line(),
            "i=00007 host=blocked-0.example cc=IR att=2 \
             exits=0000000000000001,0000000000000002 faults=proxy hops=1 \
             obs=resp:403:512:-"
        );
    }

    #[test]
    fn empty_fields_render_as_dashes() {
        let mut r = record();
        r.sessions.clear();
        r.faults.clear();
        r.obs = Obs::Error(ErrKind::Timeout);
        let line = r.canonical_line();
        assert!(line.contains("exits=- faults=-"), "{line}");
        assert!(line.ends_with("obs=err:Timeout"), "{line}");
    }

    #[test]
    fn every_field_moves_the_line() {
        let base = record().canonical_line();
        let mut r = record();
        r.attempts = 3;
        assert_ne!(r.canonical_line(), base);
        let mut r = record();
        r.sessions.push(9);
        assert_ne!(r.canonical_line(), base);
        let mut r = record();
        r.host.push('x');
        assert_ne!(r.canonical_line(), base);
    }
}
