//! N-gram feature extraction (1- and 2-grams, as in §4.1.3).

use std::collections::HashMap;

/// Count unigrams and bigrams over a token stream. Bigrams are joined with
/// a single space, matching scikit-learn's `ngram_range=(1,2)` convention.
pub fn ngram_counts(tokens: &[String]) -> HashMap<String, u32> {
    ngram_counts_opts(tokens, true)
}

/// Like [`ngram_counts`], optionally without bigrams (`ngram_range=(1,1)`)
/// — the ablation baseline for the paper's 1+2-gram choice.
pub fn ngram_counts_opts(tokens: &[String], bigrams: bool) -> HashMap<String, u32> {
    let mut counts = HashMap::with_capacity(tokens.len() * 2);
    for t in tokens {
        *counts.entry(t.clone()).or_insert(0) += 1;
    }
    if bigrams {
        for pair in tokens.windows(2) {
            let bigram = format!("{} {}", pair[0], pair[1]);
            *counts.entry(bigram).or_insert(0) += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn counts_unigrams_and_bigrams() {
        let counts = ngram_counts(&toks(&["access", "denied", "access", "denied"]));
        assert_eq!(counts["access"], 2);
        assert_eq!(counts["denied"], 2);
        assert_eq!(counts["access denied"], 2);
        assert_eq!(counts["denied access"], 1);
    }

    #[test]
    fn single_token_has_no_bigrams() {
        let counts = ngram_counts(&toks(&["error"]));
        assert_eq!(counts.len(), 1);
    }

    #[test]
    fn empty_stream_is_empty() {
        assert!(ngram_counts(&[]).is_empty());
    }
}
