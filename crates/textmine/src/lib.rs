//! Text mining for block-page discovery (§4.1.3).
//!
//! The paper clusters candidate block pages with "term frequency-inverse
//! document frequency with 1- and 2-grams" feature vectors and
//! "single-link hierarchical clustering, which does not require that we
//! know the number of clusters beforehand". This crate implements that
//! stack from scratch:
//!
//! * [`mod@tokenize`] — an HTML-aware word tokenizer;
//! * [`ngrams`] — unigram + bigram feature extraction;
//! * [`sparse`] — L2-normalised sparse vectors and cosine similarity;
//! * [`tfidf`] — a scikit-learn-compatible TF-IDF vectoriser;
//! * [`cluster`] — single-link hierarchical clustering, expressed as its
//!   threshold-cut equivalent (connected components of the
//!   distance-≤-threshold graph), with exact-duplicate collapsing and an
//!   inverted-index candidate filter so 25k-document corpora cluster in
//!   seconds.

pub mod cluster;
pub mod ngrams;
pub mod sparse;
pub mod tfidf;
pub mod tokenize;

pub use crate::tokenize::tokenize;
pub use cluster::{single_link, Clustering};
pub use ngrams::ngram_counts;
pub use sparse::SparseVec;
pub use tfidf::TfIdfVectorizer;
