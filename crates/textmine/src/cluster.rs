//! Single-link hierarchical clustering.
//!
//! Single-link agglomerative clustering *cut at a distance threshold τ* is
//! exactly the connected components of the graph with an edge wherever
//! `distance(i, j) ≤ τ` — so we compute it with a union-find instead of a
//! dendrogram, which is both simpler and fast. Two scalability aids keep
//! 25k-document corpora tractable:
//!
//! 1. **duplicate collapsing** — identical vectors unite for free;
//! 2. **candidate blocking** — only document pairs sharing one of each
//!    other's top-weight features are compared. Similar documents at any
//!    reasonable τ share their dominant features, so for TF-IDF vectors
//!    this prunes virtually no true edges while skipping the vast
//!    majority of dissimilar pairs.

use std::collections::HashMap;

use crate::sparse::SparseVec;

/// Union-find over `n` elements.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singletons.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Find with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Union by size; returns whether a merge happened.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }
}

/// The result of clustering `n` documents.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id per document (dense ids, 0-based, ordered by first
    /// appearance).
    pub assignment: Vec<u32>,
    /// Documents per cluster, indexed by cluster id.
    pub members: Vec<Vec<u32>>,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no documents.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Clusters sorted by descending size.
    pub fn by_size(&self) -> Vec<(u32, usize)> {
        let mut out: Vec<(u32, usize)> = self
            .members
            .iter()
            .enumerate()
            .map(|(i, m)| (i as u32, m.len()))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

/// How many top-weight features index each document for candidate
/// generation.
const BLOCKING_FEATURES: usize = 10;

/// Single-link clustering at cosine-distance threshold `tau`.
pub fn single_link(vectors: &[SparseVec], tau: f32) -> Clustering {
    let n = vectors.len();
    let mut uf = UnionFind::new(n);

    // Pass 1: collapse exact duplicates by hashing the raw pairs.
    let mut exact: HashMap<Vec<(u32, u32)>, u32> = HashMap::new();
    let mut representatives: Vec<u32> = Vec::new();
    for (i, v) in vectors.iter().enumerate() {
        let key: Vec<(u32, u32)> = v.iter().map(|(idx, val)| (idx, val.to_bits())).collect();
        match exact.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                uf.union(i as u32, *e.get());
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i as u32);
                representatives.push(i as u32);
            }
        }
    }

    // Pass 2: candidate pairs among representatives via an inverted index
    // over each document's top features.
    let mut index: HashMap<u32, Vec<u32>> = HashMap::new();
    for &doc in &representatives {
        for feature in vectors[doc as usize].top_features(BLOCKING_FEATURES) {
            index.entry(feature).or_default().push(doc);
        }
    }
    // The inner loop compares O(candidate-pairs) vectors; `cosine` would
    // recompute both norms (an O(nnz) sweep each) per pair. Precompute the
    // norms once and compare `dot ≥ threshold·‖a‖·‖b‖` instead, leaving
    // only the sorted-index merge of `dot` as per-pair work.
    let norms: Vec<f32> = vectors.iter().map(SparseVec::norm).collect();
    let sim_threshold = 1.0 - tau;
    for postings in index.values() {
        for (a_pos, &a) in postings.iter().enumerate() {
            for &b in &postings[a_pos + 1..] {
                if uf.find(a) == uf.find(b) {
                    continue;
                }
                let denom = norms[a as usize] * norms[b as usize];
                if denom > 0.0
                    && vectors[a as usize].dot(&vectors[b as usize]) >= sim_threshold * denom
                {
                    uf.union(a, b);
                }
            }
        }
    }

    // Densify cluster ids.
    let mut dense: HashMap<u32, u32> = HashMap::new();
    let mut assignment = Vec::with_capacity(n);
    let mut members: Vec<Vec<u32>> = Vec::new();
    for i in 0..n as u32 {
        let root = uf.find(i);
        let next_id = dense.len() as u32;
        let id = *dense.entry(root).or_insert(next_id);
        if id as usize == members.len() {
            members.push(Vec::new());
        }
        members[id as usize].push(i);
        assignment.push(id);
    }
    Clustering {
        assignment,
        members,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::TfIdfVectorizer;

    fn cluster_texts(texts: &[&str], tau: f32, min_df: u32) -> Clustering {
        let docs: Vec<String> = texts.iter().map(|t| t.to_string()).collect();
        let (_, vecs) = TfIdfVectorizer::fit_transform(&docs, min_df);
        single_link(&vecs, tau)
    }

    #[test]
    fn near_duplicates_cluster_apart_from_strangers() {
        let c = cluster_texts(
            &[
                "error 1009 access denied cloudflare ray id aaaa",
                "error 1009 access denied cloudflare ray id bbbb",
                "error 1009 access denied cloudflare ray id cccc",
                "request unsuccessful incapsula incident id 111",
                "request unsuccessful incapsula incident id 222",
                "welcome to our wonderful shopping site buy things",
            ],
            0.4,
            1,
        );
        assert_eq!(c.len(), 3, "{:?}", c.members);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[5]);
    }

    #[test]
    fn threshold_zero_separates_non_identical() {
        let c = cluster_texts(&["alpha beta", "alpha beta", "alpha gamma"], 1e-6, 1);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn threshold_one_merges_anything_sharing_features() {
        let c = cluster_texts(&["alpha beta", "beta gamma", "gamma delta"], 0.9999, 1);
        // Chain: 0~1 share beta, 1~2 share gamma → single-link merges all.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn single_link_exhibits_chaining() {
        // a-b similar, b-c similar, a-c dissimilar: single link still puts
        // a and c together via b. This is the defining property.
        let c = cluster_texts(
            &[
                "one two three four",
                "three four five six",
                "five six seven eight",
            ],
            0.75,
            1,
        );
        assert_eq!(c.len(), 1, "{:?}", c.members);
    }

    #[test]
    fn empty_input() {
        let c = single_link(&[], 0.5);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn by_size_orders_descending() {
        let c = cluster_texts(&["aa bb", "aa bb", "aa bb", "cc dd", "ee ff gg"], 0.1, 1);
        let sizes: Vec<usize> = c.by_size().iter().map(|(_, s)| *s).collect();
        assert_eq!(sizes, vec![3, 1, 1]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert_ne!(uf.find(0), uf.find(2));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn scales_to_thousands_of_near_duplicates() {
        // 3k documents in 3 families with unique ids each — the realistic
        // shape of a block-page corpus.
        let mut texts = Vec::new();
        for i in 0..1000 {
            texts.push(format!(
                "error 1009 access denied cloudflare ray {i:x}{i:x}"
            ));
            texts.push(format!("request unsuccessful incapsula incident {i}{i}"));
            texts.push(format!("pardon our interruption distil reference {i:o}"));
        }
        let (_, vecs) = TfIdfVectorizer::fit_transform(&texts, 2);
        let start = std::time::Instant::now();
        let c = single_link(&vecs, 0.4);
        assert!(
            start.elapsed().as_secs() < 10,
            "too slow: {:?}",
            start.elapsed()
        );
        assert_eq!(c.len(), 3, "{} clusters", c.len());
    }
}
