//! Sparse feature vectors with cosine similarity.

use serde::{Deserialize, Serialize};

/// A sparse vector: parallel `(index, value)` arrays sorted by index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl SparseVec {
    /// Build from `(index, value)` pairs; pairs are sorted, duplicate
    /// indices summed, zero values dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> SparseVec {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if v == 0.0 {
                continue;
            }
            if indices.last() == Some(&i) {
                *values.last_mut().expect("parallel arrays") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec { indices, values }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Scale to unit norm (no-op on the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for v in &mut self.values {
                *v /= n;
            }
        }
    }

    /// Dot product (sorted-merge).
    pub fn dot(&self, other: &SparseVec) -> f32 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in [0, 1] for non-negative vectors.
    pub fn cosine(&self, other: &SparseVec) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(-1.0, 1.0)
        }
    }

    /// Cosine *distance* (1 − similarity).
    pub fn cosine_distance(&self, other: &SparseVec) -> f32 {
        1.0 - self.cosine(other)
    }

    /// The indices of the `k` highest-weight features (for candidate
    /// blocking in clustering).
    pub fn top_features(&self, k: usize) -> Vec<u32> {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            self.values[b]
                .partial_cmp(&self.values[a])
                .expect("no NaNs")
        });
        order.into_iter().take(k).map(|i| self.indices[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn construction_sorts_merges_and_drops_zeros() {
        let s = v(&[(5, 1.0), (2, 2.0), (5, 3.0), (7, 0.0)]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(2, 2.0), (5, 4.0)]);
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn dot_product_merges_sorted() {
        let a = v(&[(1, 1.0), (3, 2.0), (9, 4.0)]);
        let b = v(&[(3, 5.0), (8, 1.0), (9, 0.5)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 4.0 * 0.5);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = v(&[(1, 3.0), (4, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert!(a.cosine_distance(&a).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_disjoint_is_zero() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine_distance(&b), 1.0);
    }

    #[test]
    fn zero_vector_is_harmless() {
        let z = SparseVec::default();
        let a = v(&[(1, 1.0)]);
        assert_eq!(z.cosine(&a), 0.0);
        assert_eq!(z.norm(), 0.0);
        let mut z2 = z.clone();
        z2.normalize();
        assert!(z2.is_empty());
    }

    #[test]
    fn normalize_yields_unit_norm() {
        let mut a = v(&[(1, 3.0), (2, 4.0)]);
        a.normalize();
        assert!((a.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn top_features_orders_by_weight() {
        let a = v(&[(1, 0.1), (2, 0.9), (3, 0.5)]);
        assert_eq!(a.top_features(2), vec![2, 3]);
        assert_eq!(a.top_features(10).len(), 3);
    }
}
