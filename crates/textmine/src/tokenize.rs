//! HTML-aware tokenisation.

/// Tokenise an HTML document into lower-case word tokens.
///
/// Markup is not stripped — tag names, attribute words, and error-code
/// tokens (e.g. `1009`, `cf`, `ray`) are exactly the features that make
/// block-page families separable, so everything alphanumeric becomes a
/// token. Tokens shorter than 2 characters are dropped except pure
/// numbers (error codes matter).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut tokens, current);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, token: String) {
    let keep = token.len() >= 2 || token.chars().all(|c| c.is_ascii_digit());
    if keep {
        tokens.push(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_markup_and_punctuation() {
        let toks = tokenize("<h1>Access Denied!</h1><p>Error 1009.</p>");
        assert_eq!(toks, vec!["h1", "access", "denied", "h1", "error", "1009"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(tokenize("CloudFlare RAY"), vec!["cloudflare", "ray"]);
    }

    #[test]
    fn keeps_single_digit_codes_drops_single_letters() {
        let toks = tokenize("a 7 bb");
        assert_eq!(toks, vec!["7", "bb"]);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ???").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let toks = tokenize("安全验证 - Yunjiasu");
        assert!(toks.contains(&"安全验证".to_string()));
        assert!(toks.contains(&"yunjiasu".to_string()));
    }
}
