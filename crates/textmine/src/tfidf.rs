//! TF-IDF vectorisation (scikit-learn-compatible smoothing).
//!
//! `TfidfVectorizer` in scikit-learn — the tool the authors used — computes
//! `tf × idf` with `idf = ln((1 + n) / (1 + df)) + 1` and L2-normalises
//! each row. This implementation matches that formula so the clustering
//! behaves like the paper's.

use std::collections::HashMap;

use crate::ngrams::ngram_counts_opts;
use crate::sparse::SparseVec;
use crate::tokenize::tokenize;

/// Fitted vocabulary and document frequencies.
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    /// term → feature index.
    vocab: HashMap<String, u32>,
    /// idf per feature index.
    idf: Vec<f32>,
    /// Minimum document frequency for a term to enter the vocabulary.
    min_df: u32,
    /// Whether bigram features are used (the paper's 1+2-gram setting).
    bigrams: bool,
}

impl TfIdfVectorizer {
    /// Fit on a corpus and transform it, returning the vectoriser and the
    /// L2-normalised document vectors.
    ///
    /// `min_df` prunes hapax features (ray IDs, incident IDs) — exactly the
    /// variable parts of block pages that should not separate documents of
    /// the same family.
    pub fn fit_transform(docs: &[String], min_df: u32) -> (TfIdfVectorizer, Vec<SparseVec>) {
        TfIdfVectorizer::fit_transform_opts(docs, min_df, true)
    }

    /// [`TfIdfVectorizer::fit_transform`] with bigram features optional —
    /// the `ablation_clustering` bench compares 1-gram against the paper's
    /// 1+2-gram configuration.
    pub fn fit_transform_opts(
        docs: &[String],
        min_df: u32,
        bigrams: bool,
    ) -> (TfIdfVectorizer, Vec<SparseVec>) {
        let n = docs.len();
        let token_counts: Vec<HashMap<String, u32>> = docs
            .iter()
            .map(|d| ngram_counts_opts(&tokenize(d), bigrams))
            .collect();

        // Document frequencies.
        let mut df: HashMap<&str, u32> = HashMap::new();
        for counts in &token_counts {
            for term in counts.keys() {
                *df.entry(term.as_str()).or_insert(0) += 1;
            }
        }

        // Vocabulary: terms meeting min_df, in sorted order for
        // determinism.
        let mut terms: Vec<&str> = df
            .iter()
            .filter(|(_, &c)| c >= min_df)
            .map(|(t, _)| *t)
            .collect();
        terms.sort_unstable();
        let vocab: HashMap<String, u32> = terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.to_string(), i as u32))
            .collect();
        let idf: Vec<f32> = terms
            .iter()
            .map(|t| (((1 + n) as f32) / ((1 + df[t]) as f32)).ln() + 1.0)
            .collect();

        let v = TfIdfVectorizer {
            vocab,
            idf,
            min_df,
            bigrams,
        };
        let vectors = token_counts
            .iter()
            .map(|counts| v.vectorize_counts(counts))
            .collect();
        (v, vectors)
    }

    /// Transform a new document with the fitted vocabulary.
    pub fn transform(&self, doc: &str) -> SparseVec {
        self.vectorize_counts(&ngram_counts_opts(&tokenize(doc), self.bigrams))
    }

    fn vectorize_counts(&self, counts: &HashMap<String, u32>) -> SparseVec {
        debug_assert!(self.idf.len() == self.vocab.len());
        let pairs: Vec<(u32, f32)> = counts
            .iter()
            .filter_map(|(term, &tf)| {
                self.vocab
                    .get(term)
                    .map(|&idx| (idx, tf as f32 * self.idf[idx as usize]))
            })
            .collect();
        let mut v = SparseVec::from_pairs(pairs);
        v.normalize();
        v
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// The configured minimum document frequency.
    pub fn min_df(&self) -> u32 {
        self.min_df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn identical_docs_have_identical_vectors() {
        let corpus = docs(&["access denied error", "access denied error", "welcome home"]);
        let (_, vecs) = TfIdfVectorizer::fit_transform(&corpus, 1);
        assert!((vecs[0].cosine(&vecs[1]) - 1.0).abs() < 1e-6);
        assert!(vecs[0].cosine(&vecs[2]) < 0.2);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let corpus = docs(&["one two three", "four five six seven"]);
        let (_, vecs) = TfIdfVectorizer::fit_transform(&corpus, 1);
        for v in &vecs {
            assert!((v.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn min_df_prunes_unique_ids() {
        let corpus = docs(&[
            "cloudflare ray id aaaa1111 access denied",
            "cloudflare ray id bbbb2222 access denied",
            "cloudflare ray id cccc3333 access denied",
        ]);
        let (v2, vecs) = TfIdfVectorizer::fit_transform(&corpus, 2);
        // With min_df=2, the per-document ray IDs vanish and the documents
        // collapse to near-identical vectors.
        assert!(
            vecs[0].cosine(&vecs[1]) > 0.999,
            "{}",
            vecs[0].cosine(&vecs[1])
        );
        let (_, vecs1) = TfIdfVectorizer::fit_transform(&corpus, 1);
        assert!(vecs1[0].cosine(&vecs1[1]) < vecs[0].cosine(&vecs[1]));
        assert!(v2.vocab_len() < 40);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        let corpus = docs(&[
            "common rareword",
            "common other",
            "common thing",
            "common stuff",
        ]);
        let (v, _) = TfIdfVectorizer::fit_transform(&corpus, 1);
        let vec = v.transform("common rareword");
        let weights: std::collections::HashMap<u32, f32> = vec.iter().collect();
        let common_idx = v.vocab["common"];
        let rare_idx = v.vocab["rareword"];
        assert!(weights[&rare_idx] > weights[&common_idx]);
    }

    #[test]
    fn transform_of_unseen_terms_is_empty() {
        let corpus = docs(&["alpha beta"]);
        let (v, _) = TfIdfVectorizer::fit_transform(&corpus, 1);
        let vec = v.transform("gamma delta epsilon");
        assert!(vec.is_empty());
    }

    #[test]
    fn bigrams_separate_word_order() {
        let corpus = docs(&["access denied here", "denied access here"]);
        let (_, vecs) = TfIdfVectorizer::fit_transform(&corpus, 1);
        let sim = vecs[0].cosine(&vecs[1]);
        assert!(sim < 0.999, "bigrams should distinguish order, sim={sim}");
        assert!(sim > 0.3, "but unigrams keep them related, sim={sim}");
    }
}
