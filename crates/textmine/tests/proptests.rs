//! Property-based tests for the text-mining stack: sparse-vector algebra,
//! TF-IDF invariants, and single-link clustering structure.

use geoblock_textmine::{single_link, SparseVec, TfIdfVectorizer};
use proptest::prelude::*;

fn sparse_strategy() -> impl Strategy<Value = SparseVec> {
    proptest::collection::vec((0u32..64, 0.01f32..10.0), 0..16).prop_map(SparseVec::from_pairs)
}

fn corpus_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec("[a-e]{2,4}", 1..12).prop_map(|w| w.join(" ")),
        2..14,
    )
}

proptest! {
    #[test]
    fn cosine_is_symmetric_and_bounded(a in sparse_strategy(), b in sparse_strategy()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((ab - ba).abs() < 1e-5, "asymmetric: {ab} vs {ba}");
        prop_assert!((-1.0..=1.0).contains(&ab));
        // Non-negative entries ⇒ non-negative similarity.
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn cosine_self_is_one_for_nonzero(a in sparse_strategy()) {
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn normalize_is_idempotent(mut a in sparse_strategy()) {
        a.normalize();
        let once = a.clone();
        a.normalize();
        for ((i1, v1), (i2, v2)) in once.iter().zip(a.iter()) {
            prop_assert_eq!(i1, i2);
            prop_assert!((v1 - v2).abs() < 1e-6);
        }
    }

    #[test]
    fn dot_respects_cauchy_schwarz(a in sparse_strategy(), b in sparse_strategy()) {
        let dot = a.dot(&b) as f64;
        let bound = a.norm() as f64 * b.norm() as f64;
        prop_assert!(dot <= bound * (1.0 + 1e-4) + 1e-6, "{dot} > {bound}");
    }

    #[test]
    fn tfidf_vectors_are_unit_or_zero(corpus in corpus_strategy()) {
        let (_, vectors) = TfIdfVectorizer::fit_transform(&corpus, 1);
        prop_assert_eq!(vectors.len(), corpus.len());
        for v in &vectors {
            if !v.is_empty() {
                prop_assert!((v.norm() - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn identical_documents_always_share_a_cluster(
        corpus in corpus_strategy(),
        tau in 0.0f32..1.0,
    ) {
        // Duplicate the first document; the copy must land in its cluster
        // at any threshold.
        let mut docs = corpus.clone();
        docs.push(corpus[0].clone());
        let (_, vectors) = TfIdfVectorizer::fit_transform(&docs, 1);
        let clustering = single_link(&vectors, tau);
        prop_assert_eq!(
            clustering.assignment[0],
            clustering.assignment[docs.len() - 1]
        );
    }

    #[test]
    fn raising_the_threshold_only_merges(
        corpus in corpus_strategy(),
        tau_low in 0.0f32..0.5,
        delta in 0.0f32..0.5,
    ) {
        // Single-link at threshold τ is the connected components of the
        // distance-≤-τ graph, so clusterings must be nested: any pair
        // together at τ stays together at τ+δ.
        let (_, vectors) = TfIdfVectorizer::fit_transform(&corpus, 1);
        let fine = single_link(&vectors, tau_low);
        let coarse = single_link(&vectors, tau_low + delta);
        for i in 0..corpus.len() {
            for j in (i + 1)..corpus.len() {
                if fine.assignment[i] == fine.assignment[j] {
                    prop_assert_eq!(
                        coarse.assignment[i],
                        coarse.assignment[j],
                        "pair ({},{}) split by a coarser threshold",
                        i,
                        j
                    );
                }
            }
        }
    }

    #[test]
    fn cluster_sizes_partition_the_corpus(corpus in corpus_strategy(), tau in 0.0f32..1.0) {
        let (_, vectors) = TfIdfVectorizer::fit_transform(&corpus, 1);
        let clustering = single_link(&vectors, tau);
        let total: usize = clustering.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, corpus.len());
        // Every document appears exactly once.
        let mut seen = vec![false; corpus.len()];
        for members in &clustering.members {
            for &m in members {
                prop_assert!(!seen[m as usize], "document {m} in two clusters");
                seen[m as usize] = true;
            }
        }
    }
}
