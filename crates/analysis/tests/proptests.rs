//! Property-based tests for the analysis layer: CDF laws, histogram
//! conservation, and sampling-experiment bounds.

use geoblock_analysis::sampling::{below_threshold, consistency_experiment};
use geoblock_analysis::stats::{histogram, Cdf};
use geoblock_blockpages::PageKind;
use geoblock_core::observation::{Obs, SampleStore};
use geoblock_worldgen::cc;
use proptest::prelude::*;

proptest! {
    #[test]
    fn cdf_is_monotone_and_bounded(samples in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let cdf = Cdf::new(samples.clone());
        let mut prev = 0.0;
        for i in -10..=10 {
            let x = i as f64 * 1e5;
            let p = cdf.at(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev, "CDF decreased at {x}");
            prev = p;
        }
        if !samples.is_empty() {
            let max = samples.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!((cdf.at(max) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn quantiles_are_order_statistics(
        samples in proptest::collection::vec(0.0f64..1.0, 1..100),
        q in 0.0f64..1.0,
    ) {
        let cdf = Cdf::new(samples.clone());
        let v = cdf.quantile(q).expect("non-empty");
        prop_assert!(samples.contains(&v));
        // At least ⌈q·n⌉ samples are ≤ v.
        let needed = (q * samples.len() as f64).ceil() as usize;
        let at_most = samples.iter().filter(|&&s| s <= v).count();
        prop_assert!(at_most >= needed.max(1));
    }

    #[test]
    fn histogram_conserves_in_range_mass(
        samples in proptest::collection::vec(-0.5f64..1.5, 0..300),
        bins in 1usize..40,
    ) {
        let h = histogram(&samples, 0.0, 1.0, bins);
        let in_range = samples.iter().filter(|&&x| (0.0..1.0).contains(&x)).count();
        prop_assert_eq!(h.iter().sum::<usize>(), in_range);
        prop_assert_eq!(h.len(), bins);
    }

    #[test]
    fn consistency_experiment_outputs_valid_fractions(
        blocks in 0usize..30,
        others in 0usize..30,
        draws in 1usize..50,
    ) {
        let mut store = SampleStore::new(vec!["d.com".into()], vec![cc("IR")]);
        for _ in 0..blocks {
            store.push(0, 0, Obs::Response { status: 403, len: 900, page: Some(PageKind::Cloudflare) });
        }
        for _ in 0..others {
            store.push(0, 0, Obs::Response { status: 200, len: 9000, page: None });
        }
        if blocks + others == 0 {
            return Ok(());
        }
        let sizes = [1usize, 3, 20];
        let n = blocks + others;
        let result = consistency_experiment(&store, &[(0, 0)], &sizes, draws, 7);
        for (size, fractions) in &result {
            // Requested sizes cap at the population, so several requested
            // sizes can collapse into one bucket.
            let collapsed = sizes.iter().filter(|&&s| s.min(n) == *size).count();
            prop_assert_eq!(fractions.len(), draws * collapsed);
            for &f in fractions {
                prop_assert!((0.0..=1.0).contains(&f));
                // A fraction of a `size`-draw is a multiple of 1/size.
                let scaled = f * (*size.min(&(blocks + others)) as f64);
                prop_assert!((scaled - scaled.round()).abs() < 1e-9);
            }
            if others == 0 {
                prop_assert!(fractions.iter().all(|&f| (f - 1.0).abs() < 1e-12));
            }
            if blocks == 0 {
                prop_assert!(fractions.iter().all(|&f| f == 0.0));
            }
        }
        // below_threshold is a probability.
        if let Some(b) = below_threshold(&result, 20.min(blocks + others), 0.8) {
            prop_assert!((0.0..=1.0).contains(&b));
        }
    }
}
