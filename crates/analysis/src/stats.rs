//! Empirical distribution utilities.

use serde::{Deserialize, Serialize};

/// An empirical CDF over f64 samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (0 ≤ q ≤ 1), by nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Evenly spaced `(x, P(X ≤ x))` points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..=n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / n as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }
}

/// A fixed-width histogram over [lo, hi).
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in samples {
        if x >= lo && x < hi && width > 0.0 {
            let bin = ((x - lo) / width) as usize;
            counts[bin.min(bins - 1)] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.5);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_by_nearest_rank() {
        let cdf = Cdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.5), Some(30.0));
        assert_eq!(cdf.quantile(0.9), Some(50.0));
        assert_eq!(cdf.quantile(0.0), Some(10.0));
        assert_eq!(Cdf::new(vec![]).quantile(0.5), None);
    }

    #[test]
    fn nans_are_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_cover_the_range() {
        let cdf = Cdf::new(vec![0.0, 1.0]);
        let pts = cdf.points(4);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[4], (1.0, 1.0));
    }

    #[test]
    fn histogram_bins_edges() {
        let h = histogram(&[0.05, 0.15, 0.15, 0.95, 1.5], 0.0, 1.0, 10);
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[9], 1);
        assert_eq!(h.iter().sum::<usize>(), 4); // 1.5 out of range
    }
}
