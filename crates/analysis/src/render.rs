//! Plain-text table rendering for the repro harness.

use serde::{Deserialize, Serialize};

/// A renderable table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TextTable {
    /// Table title (e.g. "Table 5: Top TLDs and geoblocked countries").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header arity).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut TextTable {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a paper-vs-measured comparison line for EXPERIMENTS.md.
pub fn compare_line(metric: &str, paper: &str, measured: &str) -> String {
    format!("| {metric} | {paper} | {measured} |")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["Country", "Count"]);
        t.row(&["Syria", "71"]);
        t.row(&["Iran", "67"]);
        let out = t.render();
        assert!(out.contains("Demo\n"));
        assert!(out.contains("Country  Count"));
        assert!(out.contains("Syria    71"));
        assert!(out.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn compare_line_is_markdown() {
        assert_eq!(
            compare_line("instances", "596", "587"),
            "| instances | 596 | 587 |"
        );
    }
}
