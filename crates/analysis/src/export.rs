//! Dataset export/import.
//!
//! The paper publishes aggregates; a reusable measurement system needs to
//! persist its raw artefacts so analyses can be rerun without re-probing.
//! Everything here is JSON via serde: the sample store, verdicts, and a
//! compact study summary suitable for dashboards and regression baselines.

use std::io::{Read, Write};

use geoblock_core::confirm::GeoblockVerdict;
use geoblock_core::observation::SampleStore;
use serde::{Deserialize, Serialize};

/// The persisted form of a study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyExport {
    /// Format version for forwards compatibility.
    pub version: u32,
    /// World seed the study ran against (0 for real-world runs).
    pub seed: u64,
    /// All observations.
    pub store: SampleStore,
    /// Confirmed verdicts.
    pub verdicts: Vec<GeoblockVerdict>,
}

/// Current export format version.
pub const EXPORT_VERSION: u32 = 1;

impl StudyExport {
    /// Bundle a study for export.
    pub fn new(seed: u64, store: SampleStore, verdicts: Vec<GeoblockVerdict>) -> StudyExport {
        StudyExport {
            version: EXPORT_VERSION,
            seed,
            store,
            verdicts,
        }
    }

    /// Serialise as JSON to a writer.
    pub fn write_json<W: Write>(&self, writer: W) -> Result<(), ExportError> {
        serde_json::to_writer(writer, self).map_err(ExportError::Json)
    }

    /// Deserialise from a JSON reader, checking the version.
    pub fn read_json<R: Read>(reader: R) -> Result<StudyExport, ExportError> {
        let export: StudyExport = serde_json::from_reader(reader).map_err(ExportError::Json)?;
        if export.version != EXPORT_VERSION {
            return Err(ExportError::Version {
                found: export.version,
                supported: EXPORT_VERSION,
            });
        }
        Ok(export)
    }
}

/// Verdicts as a flat CSV (one confirmed instance per line) — the shape
/// most convenient for spreadsheets and notebooks.
pub fn verdicts_csv(verdicts: &[GeoblockVerdict]) -> String {
    let mut out = String::from("domain,country,page,block_count,total,agreement\n");
    for v in verdicts {
        out.push_str(&format!(
            "{},{},{},{},{},{:.4}\n",
            v.domain,
            v.country,
            v.kind.label().replace(' ', "_"),
            v.block_count,
            v.total,
            v.agreement()
        ));
    }
    out
}

/// Export errors.
#[derive(Debug)]
pub enum ExportError {
    /// Serde failure.
    Json(serde_json::Error),
    /// Unsupported format version.
    Version {
        /// Version in the file.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Json(e) => write!(f, "JSON error: {e}"),
            ExportError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported export version {found} (supported: {supported})"
                )
            }
        }
    }
}

impl std::error::Error for ExportError {}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::PageKind;
    use geoblock_core::observation::Obs;
    use geoblock_worldgen::cc;

    fn sample_export() -> StudyExport {
        let mut store = SampleStore::new(vec!["a.com".into()], vec![cc("IR"), cc("US")]);
        store.push(
            0,
            0,
            Obs::Response {
                status: 403,
                len: 1500,
                page: Some(PageKind::Cloudflare),
            },
        );
        store.push(0, 1, Obs::Error(geoblock_core::ErrKind::Timeout));
        let verdicts = vec![GeoblockVerdict {
            domain: "a.com".into(),
            country: cc("IR"),
            kind: PageKind::Cloudflare,
            block_count: 22,
            total: 23,
        }];
        StudyExport::new(42, store, verdicts)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let export = sample_export();
        let mut buf = Vec::new();
        export.write_json(&mut buf).unwrap();
        let back = StudyExport::read_json(buf.as_slice()).unwrap();
        assert_eq!(back.seed, 42);
        assert_eq!(back.store.domains, export.store.domains);
        assert_eq!(back.store.cell(0, 0), export.store.cell(0, 0));
        assert_eq!(back.verdicts.len(), 1);
        assert_eq!(back.verdicts[0].kind, PageKind::Cloudflare);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut export = sample_export();
        export.version = 999;
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, &export).unwrap();
        let err = StudyExport::read_json(buf.as_slice()).unwrap_err();
        assert!(matches!(err, ExportError::Version { found: 999, .. }));
    }

    #[test]
    fn csv_has_one_line_per_verdict() {
        let export = sample_export();
        let csv = verdicts_csv(&export.verdicts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("domain,country"));
        assert_eq!(lines[1], "a.com,IR,Cloudflare,22,23,0.9565");
    }
}
