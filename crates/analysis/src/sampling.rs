//! The sample-size experiments behind Figures 1 and 3 (§4.1.4, §4.1.5).
//!
//! From ~100-sample populations of known-geoblocking pairs, draw 500
//! random combinations of each candidate size and measure (a) the
//! consistency of the geoblock signal and (b) the probability of seeing no
//! block page at all (the baseline false-negative rate).

use std::collections::BTreeMap;

use geoblock_core::observation::SampleStore;
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;

/// For each sample size, the per-draw block-page fractions across all
/// pairs — Figure 1's raw series.
pub fn consistency_experiment(
    store: &SampleStore,
    pairs: &[(usize, usize)],
    sizes: &[usize],
    draws: usize,
    seed: u64,
) -> BTreeMap<usize, Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for &(d, c) in pairs {
        let samples = store.cell(d, c);
        let flags: Vec<bool> = samples.iter().map(|o| o.explicit_geoblock()).collect();
        if flags.is_empty() {
            continue;
        }
        for &size in sizes {
            let size = size.min(flags.len());
            let bucket = out.entry(size).or_default();
            for _ in 0..draws {
                let picks = index_sample(&mut rng, flags.len(), size);
                let blocks = picks.iter().filter(|&i| flags[i]).count();
                bucket.push(blocks as f64 / size as f64);
            }
        }
    }
    out
}

/// For each sample size, the fraction of draws containing *zero* block
/// pages — Figure 3's false-negative curve.
pub fn false_negative_experiment(
    store: &SampleStore,
    pairs: &[(usize, usize)],
    sizes: &[usize],
    draws: usize,
    seed: u64,
) -> Vec<(usize, f64)> {
    let consistencies = consistency_experiment(store, pairs, sizes, draws, seed);
    consistencies
        .into_iter()
        .map(|(size, fractions)| {
            let misses = fractions.iter().filter(|&&f| f == 0.0).count();
            (size, misses as f64 / fractions.len().max(1) as f64)
        })
        .collect()
}

/// Fraction of per-draw consistencies below `threshold` at `size` —
/// §4.1.4's "a sample size of 20 yielded only 3.9% of domain-country pairs
/// with less than an 80% geoblocking rate".
pub fn below_threshold(
    consistencies: &BTreeMap<usize, Vec<f64>>,
    size: usize,
    threshold: f64,
) -> Option<f64> {
    consistencies.get(&size).map(|fractions| {
        fractions.iter().filter(|&&f| f < threshold).count() as f64 / fractions.len().max(1) as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::PageKind;
    use geoblock_core::observation::Obs;
    use geoblock_worldgen::cc;

    fn store_with_rate(block_rate: f64, n: usize) -> (SampleStore, Vec<(usize, usize)>) {
        let mut s = SampleStore::new(vec!["a.com".into()], vec![cc("IR")]);
        for i in 0..n {
            let blocked = (i as f64) < block_rate * n as f64;
            s.push(
                0,
                0,
                Obs::Response {
                    status: if blocked { 403 } else { 200 },
                    len: 1000,
                    page: blocked.then_some(PageKind::Cloudflare),
                },
            );
        }
        (s, vec![(0, 0)])
    }

    #[test]
    fn pure_block_pairs_are_always_consistent() {
        let (s, pairs) = store_with_rate(1.0, 100);
        let c = consistency_experiment(&s, &pairs, &[3, 20], 200, 7);
        for (_, fractions) in c {
            assert!(fractions.iter().all(|&f| f == 1.0));
        }
    }

    #[test]
    fn noisy_pairs_show_more_variance_at_small_sizes() {
        let (s, pairs) = store_with_rate(0.9, 100);
        let c = consistency_experiment(&s, &pairs, &[3, 50], 500, 7);
        let below3 = below_threshold(&c, 3, 0.8).unwrap();
        let below50 = below_threshold(&c, 50, 0.8).unwrap();
        assert!(below3 > below50, "3: {below3}, 50: {below50}");
    }

    #[test]
    fn false_negatives_shrink_with_sample_size() {
        // 10% block rate: size 1 misses ~90%, size 20 rarely.
        let (s, pairs) = store_with_rate(0.1, 100);
        let fns = false_negative_experiment(&s, &pairs, &[1, 3, 20], 500, 7);
        let get = |size| fns.iter().find(|(s, _)| *s == size).unwrap().1;
        assert!(get(1) > 0.7, "{}", get(1));
        assert!(get(3) < get(1));
        assert!(get(20) < 0.2, "{}", get(20));
    }

    #[test]
    fn draw_size_is_capped_at_population() {
        let (s, pairs) = store_with_rate(1.0, 5);
        let c = consistency_experiment(&s, &pairs, &[50], 10, 7);
        // Requested 50, only 5 samples exist: bucket keyed by capped size.
        assert!(c.contains_key(&5));
    }
}
