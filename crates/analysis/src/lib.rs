//! Analysis layer: from raw study artefacts to every table and figure in
//! the paper's evaluation.
//!
//! * [`stats`] — empirical CDFs and quantiles;
//! * [`fortiguard`] — the category service façade (classification, the
//!   safety filter, and Top-1M sampling);
//! * [`tables`] — builders for Tables 1 and 3–9 (Table 2 is carried by
//!   [`geoblock_core::outliers::OutlierReport`] and rendered here);
//! * [`figures`] — data series for Figures 1–5;
//! * [`sampling`] — the subsample experiments behind Figures 1 and 3;
//! * [`coverage`] — §4.1.1 / §5.1.3 coverage and error-rate statistics;
//! * [`ooni_scan`] — the §7.1 OONI-corpus fingerprint scan;
//! * [`paper`] — the published values, for paper-vs-measured comparison;
//! * [`render`] — plain-text table rendering;
//! * [`export`] — JSON/CSV persistence of study artefacts;
//! * [`bootstrap`] — domain-resampling confidence intervals (extension).

pub mod bootstrap;
pub mod coverage;
pub mod export;
pub mod figures;
pub mod fortiguard;
pub mod ooni_scan;
pub mod paper;
pub mod render;
pub mod sampling;
pub mod stats;
pub mod tables;

pub use fortiguard::Fortiguard;
pub use render::TextTable;
pub use stats::Cdf;
