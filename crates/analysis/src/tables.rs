//! Builders for the paper's tables.
//!
//! Tables 3–6 aggregate Top-10K verdicts; Tables 7–8 the Top-1M verdicts;
//! Table 9 the Cloudflare rules snapshot. Following §4.2, the headline
//! tables count only the three main-study explicit geoblockers
//! (Cloudflare, CloudFront, AppEngine); Airbnb and Baidu observations are
//! reported separately ("other observations").

use std::collections::BTreeMap;

use geoblock_blockpages::{PageKind, Provider};
use geoblock_core::confirm::GeoblockVerdict;
use geoblock_core::outliers::OutlierReport;
use geoblock_worldgen::{cc, Category, CfTier, CountryCode, RulesSnapshot};

use crate::fortiguard::Fortiguard;
use crate::render::TextTable;

/// The three providers whose verdicts enter the headline tables.
pub const MAIN_PROVIDERS: [Provider; 3] = [
    Provider::Cloudflare,
    Provider::CloudFront,
    Provider::AppEngine,
];

/// Filter verdicts to the main-study providers.
pub fn main_study(verdicts: &[GeoblockVerdict]) -> Vec<&GeoblockVerdict> {
    verdicts
        .iter()
        .filter(|v| MAIN_PROVIDERS.contains(&v.kind.provider()))
        .collect()
}

/// Verdicts excluded from the headline tables (Airbnb, Baidu, …).
pub fn other_observations(verdicts: &[GeoblockVerdict]) -> Vec<&GeoblockVerdict> {
    verdicts
        .iter()
        .filter(|v| !MAIN_PROVIDERS.contains(&v.kind.provider()))
        .collect()
}

/// Unique blocked domains among verdicts.
pub fn unique_domains(verdicts: &[&GeoblockVerdict]) -> Vec<String> {
    let mut d: Vec<String> = verdicts.iter().map(|v| v.domain.clone()).collect();
    d.sort();
    d.dedup();
    d
}

/// Table 1: the data-volume overview of the discovery pipeline.
#[derive(Debug, Clone, Copy)]
pub struct Table1 {
    /// Initial domain list size (10,000).
    pub initial_domains: usize,
    /// After the safety filter (8,003).
    pub safe_domains: usize,
    /// Probed (domain, country) pairs (1,416,531).
    pub initial_samples: usize,
    /// Outlier pages clustered (24,381).
    pub clustered_pages: usize,
    /// Clusters (119).
    pub clusters: usize,
    /// CDNs and hosting providers discovered (7).
    pub discovered: usize,
}

impl Table1 {
    /// Render.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Table 1: Overview of data at each step in Methods",
            &[
                "Initial Domains",
                "Safe Domains",
                "Initial Samples",
                "Clustered Pages",
                "Clusters",
                "Discovered CDNs",
            ],
        );
        t.row(&[
            self.initial_domains.to_string(),
            self.safe_domains.to_string(),
            self.initial_samples.to_string(),
            self.clustered_pages.to_string(),
            self.clusters.to_string(),
            self.discovered.to_string(),
        ]);
        t
    }
}

/// Table 2: per-fingerprint recall of the length heuristic.
pub fn table2(report: &OutlierReport) -> TextTable {
    let mut t = TextTable::new(
        "Table 2: Recall for block pages (30% length metric)",
        &["Page", "Recalled", "Actual", "Recall"],
    );
    let mut rows: Vec<(PageKind, (u32, u32))> =
        report.recall.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_by_key(|(k, _)| *k);
    for (kind, (recalled, actual)) in rows {
        t.row(&[
            kind.label().to_string(),
            recalled.to_string(),
            actual.to_string(),
            format!("{:.1}%", 100.0 * recalled as f64 / actual.max(1) as f64),
        ]);
    }
    let (r, a) = report.total_recall();
    t.row(&[
        "Total".to_string(),
        r.to_string(),
        a.to_string(),
        format!("{:.1}%", 100.0 * r as f64 / a.max(1) as f64),
    ]);
    t
}

fn provider_of(kind: PageKind) -> Provider {
    kind.provider()
}

/// Table 3: top categories of geoblocked domains, by CDN (unique domains).
pub fn table3(verdicts: &[GeoblockVerdict], fg: &Fortiguard<'_>) -> TextTable {
    let main = main_study(verdicts);
    // (category → provider → unique domains)
    let mut by_cat: BTreeMap<Category, BTreeMap<Provider, Vec<&str>>> = BTreeMap::new();
    for v in &main {
        by_cat
            .entry(fg.category(&v.domain))
            .or_default()
            .entry(provider_of(v.kind))
            .or_default()
            .push(&v.domain);
    }
    let mut rows: Vec<(Category, [usize; 3], usize)> = Vec::new();
    for (cat, by_provider) in &by_cat {
        let mut counts = [0usize; 3];
        for (i, p) in MAIN_PROVIDERS.iter().enumerate() {
            if let Some(domains) = by_provider.get(p) {
                let mut d = domains.clone();
                d.sort();
                d.dedup();
                counts[i] = d.len();
            }
        }
        let total = counts.iter().sum();
        rows.push((*cat, counts, total));
    }
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    let mut t = TextTable::new(
        "Table 3: Most geoblocked categories by CDN (unique domains)",
        &["Category", "Cloudflare", "CloudFront", "AppEngine", "Total"],
    );
    for (cat, counts, total) in rows.iter().take(10) {
        t.row(&[
            cat.label().to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            total.to_string(),
        ]);
    }
    let grand: usize = rows.iter().map(|r| r.2).sum();
    t.row(&[
        "Total".to_string(),
        rows.iter().map(|r| r.1[0]).sum::<usize>().to_string(),
        rows.iter().map(|r| r.1[1]).sum::<usize>().to_string(),
        rows.iter().map(|r| r.1[2]).sum::<usize>().to_string(),
        grand.to_string(),
    ]);
    t
}

/// Tables 4 / 8: geoblocked sites by category, with tested counts.
/// Returns the table plus `(tested_total, blocked_total)`.
pub fn table_categories(
    title: &str,
    verdicts: &[GeoblockVerdict],
    fg: &Fortiguard<'_>,
    tested: &[String],
) -> (TextTable, usize, usize) {
    let main = main_study(verdicts);
    let blocked = unique_domains(&main);
    let mut tested_by_cat: BTreeMap<Category, usize> = BTreeMap::new();
    for d in tested {
        *tested_by_cat.entry(fg.category(d)).or_insert(0) += 1;
    }
    let mut blocked_by_cat: BTreeMap<Category, usize> = BTreeMap::new();
    for d in &blocked {
        *blocked_by_cat.entry(fg.category(d)).or_insert(0) += 1;
    }
    let mut rows: Vec<(Category, usize, usize)> = tested_by_cat
        .iter()
        .map(|(c, t)| (*c, *t, blocked_by_cat.get(c).copied().unwrap_or(0)))
        .collect();
    // Order by blocked fraction, like Table 4.
    rows.sort_by(|a, b| {
        let fa = a.2 as f64 / a.1.max(1) as f64;
        let fb = b.2 as f64 / b.1.max(1) as f64;
        fb.partial_cmp(&fa).expect("no NaN").then(a.0.cmp(&b.0))
    });
    let mut t = TextTable::new(title, &["Category", "Tested", "Geoblocked"]);
    for (cat, tested, blocked) in &rows {
        t.row(&[
            cat.label().to_string(),
            tested.to_string(),
            format!(
                "{blocked} ({:.1}%)",
                100.0 * *blocked as f64 / (*tested).max(1) as f64
            ),
        ]);
    }
    let tt: usize = rows.iter().map(|r| r.1).sum();
    let bt: usize = rows.iter().map(|r| r.2).sum();
    t.row(&[
        "Total".to_string(),
        tt.to_string(),
        format!("{bt} ({:.1}%)", 100.0 * bt as f64 / tt.max(1) as f64),
    ]);
    (t, tt, bt)
}

/// Table 5: top TLDs of geoblocking domains and most-geoblocked countries.
pub fn table5(verdicts: &[GeoblockVerdict]) -> TextTable {
    let main = main_study(verdicts);
    let mut tlds: BTreeMap<String, usize> = BTreeMap::new();
    for d in unique_domains(&main) {
        let tld = d.rsplit('.').next().unwrap_or("?").to_string();
        *tlds.entry(tld).or_insert(0) += 1;
    }
    let mut tld_rows: Vec<(String, usize)> = tlds.into_iter().collect();
    tld_rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let countries = instances_by_country(&main);

    let mut t = TextTable::new(
        "Table 5: Top TLDs and geoblocked countries",
        &["TLD", "Count", "Country", "Count"],
    );
    let n = tld_rows.len().max(countries.len()).min(10);
    for i in 0..n {
        let (tld, tc) = tld_rows
            .get(i)
            .map(|(t, c)| (format!(".{t}"), c.to_string()))
            .unwrap_or_default();
        let (country, cc_count) = countries
            .get(i)
            .map(|(c, n)| (country_name(*c), n.to_string()))
            .unwrap_or_default();
        t.row(&[tld, tc, country, cc_count]);
    }
    let other_tld: usize = tld_rows.iter().skip(10).map(|r| r.1).sum();
    let other_cc: usize = countries.iter().skip(10).map(|r| r.1).sum();
    t.row(&[
        "Other".to_string(),
        other_tld.to_string(),
        "Others".to_string(),
        other_cc.to_string(),
    ]);
    t.row(&[
        "Total".to_string(),
        tld_rows.iter().map(|r| r.1).sum::<usize>().to_string(),
        "Total".to_string(),
        countries.iter().map(|r| r.1).sum::<usize>().to_string(),
    ]);
    t
}

/// Blocking instances per country, descending.
pub fn instances_by_country(verdicts: &[&GeoblockVerdict]) -> Vec<(CountryCode, usize)> {
    let mut map: BTreeMap<CountryCode, usize> = BTreeMap::new();
    for v in verdicts {
        *map.entry(v.country).or_insert(0) += 1;
    }
    let mut rows: Vec<(CountryCode, usize)> = map.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

fn country_name(code: CountryCode) -> String {
    code.info()
        .map(|i| i.name.to_string())
        .unwrap_or_else(|| code.to_string())
}

/// Tables 6 / 7: geoblocking instances by country × CDN.
pub fn table_country_provider(title: &str, verdicts: &[GeoblockVerdict]) -> TextTable {
    let main = main_study(verdicts);
    let mut per: BTreeMap<CountryCode, [usize; 3]> = BTreeMap::new();
    for v in &main {
        let counts = per.entry(v.country).or_insert([0; 3]);
        if let Some(i) = MAIN_PROVIDERS
            .iter()
            .position(|p| *p == provider_of(v.kind))
        {
            counts[i] += 1;
        }
    }
    let mut rows: Vec<(CountryCode, [usize; 3], usize)> = per
        .into_iter()
        .map(|(c, counts)| (c, counts, counts.iter().sum()))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));

    let mut t = TextTable::new(
        title,
        &["Country", "Cloudflare", "CloudFront", "AppEngine", "Total"],
    );
    for (country, counts, total) in rows.iter().take(10) {
        t.row(&[
            country_name(*country),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            total.to_string(),
        ]);
    }
    let other: [usize; 3] = rows.iter().skip(10).fold([0; 3], |mut acc, r| {
        for (a, v) in acc.iter_mut().zip(r.1) {
            *a += v;
        }
        acc
    });
    t.row(&[
        "Other".to_string(),
        other[0].to_string(),
        other[1].to_string(),
        other[2].to_string(),
        other.iter().sum::<usize>().to_string(),
    ]);
    let totals: [usize; 3] = rows.iter().fold([0; 3], |mut acc, r| {
        for (a, v) in acc.iter_mut().zip(r.1) {
            *a += v;
        }
        acc
    });
    t.row(&[
        "Total".to_string(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals.iter().sum::<usize>().to_string(),
    ]);
    t
}

/// The §5.2.2 consistency analysis as a table: confirmed ambiguous-CDN
/// geoblockers with their blocked-country sets.
pub fn table_consistency(
    title: &str,
    reports: &[geoblock_core::consistency::ConsistencyReport],
) -> TextTable {
    let mut t = TextTable::new(
        title,
        &["Domain", "Score", "Blocked countries", "Confirmed"],
    );
    let mut rows: Vec<_> = reports.iter().collect();
    rows.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("no NaN")
            .then(a.domain.cmp(&b.domain))
    });
    for r in rows.iter().take(20) {
        let countries: Vec<String> = r
            .consistent_countries
            .iter()
            .take(8)
            .map(|c| c.to_string())
            .collect();
        t.row(&[
            r.domain.clone(),
            format!("{:.0}%", 100.0 * r.score),
            countries.join(","),
            if r.is_confirmed_geoblocker() {
                "yes"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// Table 9: Cloudflare rule rates by account tier.
pub fn table9(snapshot: &RulesSnapshot) -> TextTable {
    let countries = [
        "RU", "CN", "KP", "IR", "UA", "RO", "IN", "BR", "VN", "CZ", "ID", "IQ", "HR", "SY", "EE",
        "SD",
    ];
    let mut t = TextTable::new(
        "Table 9: Most geoblocked countries by Cloudflare customers, by account type",
        &["Country", "All", "Enterprise", "Business", "Pro", "Free"],
    );
    let pct = |x: f64| format!("{:.2}%", 100.0 * x);
    let all_baseline: f64 = {
        let total_zones: u64 = snapshot.zones_per_tier.iter().map(|(_, n)| n).sum();
        let weighted: f64 = snapshot
            .zones_per_tier
            .iter()
            .map(|(tier, n)| snapshot.baseline_rate(*tier) * *n as f64)
            .sum();
        weighted / total_zones.max(1) as f64
    };
    t.row(&[
        "Baseline".to_string(),
        pct(all_baseline),
        pct(snapshot.baseline_rate(CfTier::Enterprise)),
        pct(snapshot.baseline_rate(CfTier::Business)),
        pct(snapshot.baseline_rate(CfTier::Pro)),
        pct(snapshot.baseline_rate(CfTier::Free)),
    ]);
    for code in countries {
        let c = cc(code);
        let all: f64 = {
            let total_zones: u64 = snapshot.zones_per_tier.iter().map(|(_, n)| n).sum();
            let weighted: f64 = snapshot
                .zones_per_tier
                .iter()
                .map(|(tier, n)| snapshot.rate(*tier, c) * *n as f64)
                .sum();
            weighted / total_zones.max(1) as f64
        };
        t.row(&[
            country_name(c),
            pct(all),
            pct(snapshot.rate(CfTier::Enterprise, c)),
            pct(snapshot.rate(CfTier::Business, c)),
            pct(snapshot.rate(CfTier::Pro, c)),
            pct(snapshot.rate(CfTier::Free, c)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::{World, WorldConfig};

    fn verdict(domain: &str, country: &str, kind: PageKind) -> GeoblockVerdict {
        GeoblockVerdict {
            domain: domain.to_string(),
            country: cc(country),
            kind,
            block_count: 23,
            total: 23,
        }
    }

    fn sample_verdicts() -> Vec<GeoblockVerdict> {
        vec![
            verdict("a.com", "IR", PageKind::Cloudflare),
            verdict("a.com", "SY", PageKind::Cloudflare),
            verdict("b.com", "IR", PageKind::AppEngine),
            verdict("c.net", "CN", PageKind::CloudFront),
            verdict("airbnb.fr", "IR", PageKind::Airbnb),
        ]
    }

    #[test]
    fn main_study_excludes_airbnb() {
        let v = sample_verdicts();
        assert_eq!(main_study(&v).len(), 4);
        assert_eq!(other_observations(&v).len(), 1);
        assert_eq!(other_observations(&v)[0].kind, PageKind::Airbnb);
    }

    #[test]
    fn instance_counts_order_descending() {
        let v = sample_verdicts();
        let main = main_study(&v);
        let rows = instances_by_country(&main);
        assert_eq!(rows[0], (cc("IR"), 2));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn table5_counts_unique_domains_per_tld() {
        let v = sample_verdicts();
        let t = table5(&v);
        let rendered = t.render();
        assert!(rendered.contains(".com"), "{rendered}");
        // a.com + b.com = 2 unique .com domains.
        let com_row: Vec<&str> = rendered
            .lines()
            .find(|l| l.starts_with(".com"))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(com_row[1], "2");
    }

    #[test]
    fn table_country_provider_totals_add_up() {
        let v = sample_verdicts();
        let t = table_country_provider("Table 6 (test)", &v);
        let rendered = t.render();
        let total_line = rendered.lines().last().unwrap();
        assert!(total_line.starts_with("Total"));
        assert!(total_line.contains('4'), "{total_line}");
    }

    #[test]
    fn category_table_runs_against_a_world() {
        let world = World::build(WorldConfig::tiny(42));
        let fg = Fortiguard::new(&world);
        // Use real world domains so categories resolve.
        let d1 = world.population.spec(10).name;
        let d2 = world.population.spec(11).name;
        let verdicts = vec![
            verdict(&d1, "IR", PageKind::Cloudflare),
            verdict(&d2, "SY", PageKind::AppEngine),
        ];
        let tested = vec![d1.clone(), d2.clone()];
        let (t, tt, bt) = table_categories("Table 4 (test)", &verdicts, &fg, &tested);
        assert_eq!(tt, 2);
        assert_eq!(bt, 2);
        assert!(t.render().contains("Total"));
        let t3 = table3(&verdicts, &fg);
        assert!(t3.render().contains("Total"));
    }

    #[test]
    fn table9_renders_all_tiers() {
        let snap = RulesSnapshot::generate(3, 0.02);
        let t = table9(&snap);
        let rendered = t.render();
        assert!(rendered.contains("Baseline"));
        assert!(rendered.contains("North Korea"));
        assert!(rendered.lines().count() > 15);
    }
}
