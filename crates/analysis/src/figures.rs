//! Data series for Figures 1–5, with ASCII sparkline rendering for the
//! repro harness.

use std::collections::BTreeMap;

use geoblock_core::confirm::flagged_explicit_pairs;
use geoblock_core::observation::SampleStore;
use geoblock_core::outliers::OutlierReport;
use geoblock_worldgen::{CfTier, CountryCode, RuleAction, RulesSnapshot};
use serde::{Deserialize, Serialize};

use crate::stats::{histogram, Cdf};

/// Figure 1: CDFs of geoblock consistency per sample size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1 {
    /// Per sample size, the CDF of per-draw block fractions.
    pub per_size: BTreeMap<usize, Cdf>,
}

impl Figure1 {
    /// Build from the sampling experiment's raw series.
    pub fn new(consistencies: &BTreeMap<usize, Vec<f64>>) -> Figure1 {
        Figure1 {
            per_size: consistencies
                .iter()
                .map(|(size, fractions)| (*size, Cdf::new(fractions.clone())))
                .collect(),
        }
    }

    /// Fraction of draws below 80% consistency at `size` (the paper quotes
    /// 3.9% at size 20).
    pub fn below_80(&self, size: usize) -> Option<f64> {
        // `Cdf::at` is P(X ≤ x); below-0.8 strictly is P(X ≤ 0.8-ε).
        self.per_size.get(&size).map(|cdf| cdf.at(0.7999))
    }
}

/// Figure 2: distribution of relative page-size differences, split into
/// fingerprint-matched (blocked) and ordinary samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2 {
    /// Histogram bins over [0, 1] of `1 - len/representative`.
    pub bins: usize,
    /// Counts for fingerprint-matched samples.
    pub blocked: Vec<usize>,
    /// Counts for ordinary samples (subsampled ×7 at collection).
    pub ordinary: Vec<usize>,
}

impl Figure2 {
    /// Build from the outlier report.
    pub fn new(report: &OutlierReport, bins: usize) -> Figure2 {
        let blocked: Vec<f64> = report
            .size_diffs
            .iter()
            .filter(|(_, b)| *b)
            .map(|(d, _)| *d as f64)
            .collect();
        let ordinary: Vec<f64> = report
            .size_diffs
            .iter()
            .filter(|(_, b)| !*b)
            .map(|(d, _)| *d as f64)
            .collect();
        Figure2 {
            bins,
            blocked: histogram(&blocked, 0.0, 1.0001, bins),
            ordinary: histogram(&ordinary, 0.0, 1.0001, bins),
        }
    }

    /// Fraction of *blocked* samples whose difference exceeds `cutoff` —
    /// the recall the length heuristic achieves at that cutoff.
    pub fn blocked_beyond(&self, cutoff: f64) -> f64 {
        let total: usize = self.blocked.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let first_bin = (cutoff * self.bins as f64) as usize;
        let beyond: usize = self.blocked.iter().skip(first_bin).sum();
        beyond as f64 / total as f64
    }
}

/// Figure 3: false-negative rate per initial sample size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure3 {
    /// `(sample size, P(no block page in draw))`.
    pub series: Vec<(usize, f64)>,
}

impl Figure3 {
    /// Build from the false-negative experiment.
    pub fn new(series: Vec<(usize, f64)>) -> Figure3 {
        Figure3 { series }
    }

    /// Rate at a given size (the paper quotes 1.7% at size 3).
    pub fn at(&self, size: usize) -> Option<f64> {
        self.series
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, r)| *r)
    }
}

/// Figure 4: CDF of per-pair block-page agreement among flagged pairs
/// after confirmation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4 {
    /// The agreement CDF.
    pub cdf: Cdf,
}

impl Figure4 {
    /// Build from a confirmed store.
    pub fn new(store: &SampleStore) -> Figure4 {
        let mut agreements = Vec::new();
        for (d, c) in flagged_explicit_pairs(store) {
            let samples = store.cell(d, c);
            let blocks = samples.iter().filter(|o| o.explicit_geoblock()).count();
            agreements.push(blocks as f64 / samples.len().max(1) as f64);
        }
        Figure4 {
            cdf: Cdf::new(agreements),
        }
    }

    /// Fraction of flagged pairs with agreement above 80% ("for the vast
    /// majority of sites seen geoblocking, the block page was seen in >80%
    /// of probes").
    pub fn above_80(&self) -> f64 {
        1.0 - self.cdf.at(0.80)
    }
}

/// Figure 5: cumulative activation of Enterprise country-block rules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5 {
    /// Per country: sorted activation days of Enterprise block rules.
    pub per_country: BTreeMap<CountryCode, Vec<u32>>,
}

impl Figure5 {
    /// Build from the rules snapshot, for the given countries.
    pub fn new(snapshot: &RulesSnapshot, countries: &[CountryCode]) -> Figure5 {
        let mut per_country: BTreeMap<CountryCode, Vec<u32>> = BTreeMap::new();
        for rule in &snapshot.rules {
            if rule.tier == CfTier::Enterprise
                && rule.action == RuleAction::Block
                && countries.contains(&rule.country)
            {
                per_country
                    .entry(rule.country)
                    .or_default()
                    .push(rule.activated_day);
            }
        }
        for days in per_country.values_mut() {
            days.sort_unstable();
        }
        Figure5 { per_country }
    }

    /// Cumulative count for `country` at `day`.
    pub fn cumulative(&self, country: CountryCode, day: u32) -> usize {
        self.per_country
            .get(&country)
            .map(|days| days.partition_point(|&d| d <= day))
            .unwrap_or(0)
    }
}

/// Render a `(size → CDF)` family or series as a compact ASCII chart.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| LEVELS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::PageKind;
    use geoblock_core::observation::Obs;
    use geoblock_worldgen::cc;

    #[test]
    fn figure1_below_80_detects_noise() {
        let mut m = BTreeMap::new();
        m.insert(20usize, vec![1.0, 1.0, 0.95, 0.5, 1.0]);
        let f = Figure1::new(&m);
        assert!((f.below_80(20).unwrap() - 0.2).abs() < 1e-9);
        assert!(f.below_80(3).is_none());
    }

    #[test]
    fn figure2_splits_blocked_mass() {
        let report = OutlierReport {
            representative: vec![Some(10_000)],
            outliers: vec![],
            inspected: 0,
            recall: Default::default(),
            size_diffs: vec![(0.9, true), (0.85, true), (0.05, false), (0.1, false)],
        };
        let f = Figure2::new(&report, 20);
        assert_eq!(f.blocked.iter().sum::<usize>(), 2);
        assert_eq!(f.ordinary.iter().sum::<usize>(), 2);
        assert!((f.blocked_beyond(0.30) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_lookup() {
        let f = Figure3::new(vec![(1, 0.4), (3, 0.017)]);
        assert_eq!(f.at(3), Some(0.017));
        assert_eq!(f.at(7), None);
    }

    #[test]
    fn figure4_measures_agreement() {
        let mut store = SampleStore::new(vec!["a.com".into()], vec![cc("IR")]);
        for i in 0..20 {
            store.push(
                0,
                0,
                Obs::Response {
                    status: 403,
                    len: 900,
                    page: (i < 19).then_some(PageKind::Cloudflare),
                },
            );
        }
        let f = Figure4::new(&store);
        assert_eq!(f.cdf.len(), 1);
        assert!((f.above_80() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure5_cumulative_counts() {
        let snap = RulesSnapshot::generate(5, 0.05);
        let f = Figure5::new(&snap, &[cc("KP"), cc("IR")]);
        let last = geoblock_worldgen::cloudflare_rules::day_number(2018, 7, 15);
        let kp_total = f.cumulative(cc("KP"), last);
        assert!(kp_total > 0);
        assert!(f.cumulative(cc("KP"), 0) <= kp_total);
        // Monotone over time.
        assert!(f.cumulative(cc("KP"), last / 2) <= kp_total);
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
