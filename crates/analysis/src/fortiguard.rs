//! The categorisation-service façade.
//!
//! The study classifies domains with FortiGuard and removes risky
//! categories plus Citizen-Lab-listed domains before probing (§3.3,
//! §4.1.1, §5.1.2). In the simulation the category *is* world data — this
//! façade plays the external service's role so the pipeline code never
//! touches `DomainSpec` directly.

use geoblock_worldgen::{Category, World};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The category service over a world.
pub struct Fortiguard<'w> {
    world: &'w World,
}

impl<'w> Fortiguard<'w> {
    /// Wrap a world.
    pub fn new(world: &'w World) -> Fortiguard<'w> {
        Fortiguard { world }
    }

    /// Classify a domain. Unknown domains rate as `Unknown` (and are
    /// therefore filtered, like FortiGuard's unrated bucket).
    pub fn category(&self, domain: &str) -> Category {
        self.world
            .population
            .spec_of(domain)
            .map(|s| s.category)
            .unwrap_or(Category::Unknown)
    }

    /// The §4.1.1 safety filter: drop risky categories and Citizen-Lab
    /// domains.
    pub fn safe(&self, domain: &str) -> bool {
        !self.category(domain).is_risky() && !self.world.citizenlab.contains(domain)
    }

    /// The Top-10K test list: ranks 1..=n, safety-filtered (10,000 → 8,003
    /// at paper scale).
    pub fn safe_toplist(&self, n: u32) -> Vec<String> {
        let n = n.min(self.world.population.size());
        (1..=n)
            .map(|rank| self.world.population.spec(rank).name)
            .filter(|d| self.safe(d))
            .collect()
    }

    /// The §5.1.2 sampling step: safety-filter `domains` and take a
    /// `fraction` random sample (5% in the paper), deterministically in
    /// `seed`.
    pub fn filter_and_sample(&self, domains: &[String], fraction: f64, seed: u64) -> Vec<String> {
        let mut safe: Vec<String> = domains.iter().filter(|d| self.safe(d)).cloned().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        safe.shuffle(&mut rng);
        let take = ((safe.len() as f64) * fraction).round() as usize;
        safe.truncate(take.max(1).min(safe.len()));
        safe.sort();
        safe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::WorldConfig;

    fn world() -> World {
        World::build(WorldConfig::tiny(42))
    }

    #[test]
    fn unknown_domains_are_unrated_and_unsafe() {
        let w = world();
        let fg = Fortiguard::new(&w);
        assert_eq!(fg.category("not-in-world.example"), Category::Unknown);
        assert!(!fg.safe("not-in-world.example"));
    }

    #[test]
    fn safety_filter_removes_about_a_fifth() {
        let w = world();
        let fg = Fortiguard::new(&w);
        let safe = fg.safe_toplist(10_000);
        // ~20% risky + a few Citizen-Lab members.
        assert!((7_300..=8_400).contains(&safe.len()), "{}", safe.len());
        for d in safe.iter().take(50) {
            assert!(!fg.category(d).is_risky());
            assert!(!w.citizenlab.contains(d));
        }
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let w = world();
        let fg = Fortiguard::new(&w);
        let domains: Vec<String> = (1..=2000).map(|r| w.population.spec(r).name).collect();
        let a = fg.filter_and_sample(&domains, 0.05, 7);
        let b = fg.filter_and_sample(&domains, 0.05, 7);
        assert_eq!(a, b);
        let safe_count = domains.iter().filter(|d| fg.safe(d)).count();
        let expected = (safe_count as f64 * 0.05).round() as usize;
        assert_eq!(a.len(), expected);
    }
}
