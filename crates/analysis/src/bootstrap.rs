//! Bootstrap confidence intervals for study aggregates (extension).
//!
//! The paper reports point counts; a reproduction can say how stable those
//! counts are. Resampling *domains* with replacement (the natural exchange
//! unit — countries are fixed design points, domains are sampled from a
//! population) yields percentile intervals for any verdict-derived
//! statistic.

use geoblock_core::confirm::GeoblockVerdict;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate on the original data.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

/// Bootstrap a statistic of the verdict set by resampling domains.
///
/// `stat` receives the verdicts belonging to each resampled domain multiset
/// (a domain drawn k times contributes its verdicts k times).
pub fn bootstrap_domains<F>(
    verdicts: &[GeoblockVerdict],
    resamples: usize,
    confidence: f64,
    seed: u64,
    stat: F,
) -> Interval
where
    F: Fn(&[&GeoblockVerdict]) -> f64,
{
    // Group verdicts per domain.
    let mut domains: Vec<&str> = verdicts.iter().map(|v| v.domain.as_str()).collect();
    domains.sort_unstable();
    domains.dedup();
    let per_domain: Vec<Vec<&GeoblockVerdict>> = domains
        .iter()
        .map(|d| verdicts.iter().filter(|v| v.domain == *d).collect())
        .collect();

    let all: Vec<&GeoblockVerdict> = verdicts.iter().collect();
    let estimate = stat(&all);
    if per_domain.is_empty() || resamples == 0 {
        return Interval {
            estimate,
            lo: estimate,
            hi: estimate,
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sample = Vec::with_capacity(verdicts.len());
        for _ in 0..per_domain.len() {
            let pick = rng.gen_range(0..per_domain.len());
            sample.extend(per_domain[pick].iter().copied());
        }
        stats.push(stat(&sample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let alpha = (1.0 - confidence) / 2.0;
    let idx = |q: f64| ((q * stats.len() as f64) as usize).min(stats.len() - 1);
    Interval {
        estimate,
        lo: stats[idx(alpha)],
        hi: stats[idx(1.0 - alpha)],
    }
}

/// Convenience: a CI on the total instance count.
pub fn instances_interval(verdicts: &[GeoblockVerdict], resamples: usize, seed: u64) -> Interval {
    bootstrap_domains(verdicts, resamples, 0.95, seed, |sample| {
        sample.len() as f64
    })
}

/// Convenience: a CI on the count of instances in one country.
pub fn country_interval(
    verdicts: &[GeoblockVerdict],
    country: geoblock_worldgen::CountryCode,
    resamples: usize,
    seed: u64,
) -> Interval {
    bootstrap_domains(verdicts, resamples, 0.95, seed, move |sample| {
        sample.iter().filter(|v| v.country == country).count() as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::PageKind;
    use geoblock_worldgen::cc;

    /// `n_domains` domains; domain `d` carries `(d % spread) + 1` verdicts.
    fn verdicts(n_domains: usize, spread: usize) -> Vec<GeoblockVerdict> {
        let mut out = Vec::new();
        for d in 0..n_domains {
            for c in 0..(d % spread) + 1 {
                out.push(GeoblockVerdict {
                    domain: format!("d{d}.com"),
                    country: [cc("IR"), cc("SY"), cc("CN")][c % 3],
                    kind: PageKind::Cloudflare,
                    block_count: 23,
                    total: 23,
                });
            }
        }
        out
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let v = verdicts(40, 3); // 40 domains, 1–3 verdicts each = 79
        let ci = instances_interval(&v, 500, 7);
        assert_eq!(ci.estimate, 79.0);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.lo > 40.0 && ci.hi < 130.0, "{ci:?}");
    }

    #[test]
    fn interval_tightens_with_more_domains() {
        // Same mean verdicts per domain, 20x the domains: the count CI must
        // shrink in relative terms.
        let narrow = instances_interval(&verdicts(200, 4), 400, 7);
        let wide = instances_interval(&verdicts(10, 4), 400, 7);
        let rel = |ci: Interval| (ci.hi - ci.lo) / ci.estimate.max(1.0);
        assert!(rel(narrow) < rel(wide), "{narrow:?} vs {wide:?}");
    }

    #[test]
    fn country_interval_counts_only_that_country() {
        let v = verdicts(30, 3);
        let expected = v.iter().filter(|x| x.country == cc("IR")).count() as f64;
        let ci = country_interval(&v, cc("IR"), 300, 7);
        assert_eq!(ci.estimate, expected);
        assert!(ci.lo <= expected && expected <= ci.hi);
        assert!(ci.hi <= 2.0 * expected, "{ci:?}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let ci = instances_interval(&[], 100, 7);
        assert_eq!(ci.estimate, 0.0);
        assert_eq!((ci.lo, ci.hi), (0.0, 0.0));
        let v = verdicts(1, 1);
        let ci = instances_interval(&v, 0, 7);
        assert_eq!((ci.lo, ci.hi), (1.0, 1.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let v = verdicts(25, 2);
        let a = instances_interval(&v, 200, 9);
        let b = instances_interval(&v, 200, 9);
        assert_eq!(a, b);
    }
}
