//! Coverage statistics (§4.1.1, §5.1.3).

use geoblock_core::observation::{ErrKind, Obs, SampleStore};
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

use crate::stats::Cdf;

/// Coverage of a baseline pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Domains that never produced a response anywhere.
    pub never_responded: usize,
    /// Domains the proxy refused at least once (`X-Luminati-Error`).
    pub proxy_refused_domains: usize,
    /// 90th percentile of per-domain error rates.
    pub error_rate_p90: f64,
    /// Per-country fraction of domains with ≥1 valid response, sorted
    /// ascending by rate.
    pub country_response_rates: Vec<(CountryCode, f64)>,
}

impl CoverageStats {
    /// Compute over a store.
    pub fn compute(store: &SampleStore) -> CoverageStats {
        let nd = store.domains.len();
        let nc = store.countries.len();

        let mut never_responded = 0usize;
        let mut proxy_refused_domains = 0usize;
        let mut error_rates = Vec::with_capacity(nd);
        for d in 0..nd {
            let mut responded = false;
            let mut refused = false;
            for c in 0..nc {
                for obs in store.cell(d, c) {
                    match obs {
                        Obs::Response { .. } => responded = true,
                        Obs::Error(ErrKind::ProxyRefused) => refused = true,
                        Obs::Error(_) => {}
                    }
                }
            }
            if !responded {
                never_responded += 1;
            }
            if refused {
                proxy_refused_domains += 1;
            }
            error_rates.push(store.domain_error_rate(d));
        }

        let mut country_response_rates = Vec::with_capacity(nc);
        for (c, country) in store.countries.iter().enumerate() {
            let with_response = (0..nd)
                .filter(|&d| store.cell(d, c).iter().any(Obs::responded))
                .count();
            country_response_rates.push((*country, with_response as f64 / nd.max(1) as f64));
        }
        country_response_rates
            .sort_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN").then(a.0.cmp(&b.0)));

        CoverageStats {
            never_responded,
            proxy_refused_domains,
            error_rate_p90: Cdf::new(error_rates).quantile(0.9).unwrap_or(0.0),
            country_response_rates,
        }
    }

    /// The least-covered country (Comoros in the paper, at 76.4%).
    pub fn worst_country(&self) -> Option<(CountryCode, f64)> {
        self.country_response_rates.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    #[test]
    fn counts_dead_and_refused_domains() {
        let mut s = SampleStore::new(
            vec!["alive.com".into(), "dead.com".into(), "refused.com".into()],
            vec![cc("US")],
        );
        s.push(
            0,
            0,
            Obs::Response {
                status: 200,
                len: 10,
                page: None,
            },
        );
        s.push(1, 0, Obs::Error(ErrKind::Timeout));
        s.push(2, 0, Obs::Error(ErrKind::ProxyRefused));
        let stats = CoverageStats::compute(&s);
        assert_eq!(stats.never_responded, 2);
        assert_eq!(stats.proxy_refused_domains, 1);
    }

    #[test]
    fn worst_country_is_lowest_response_rate() {
        let mut s = SampleStore::new(
            vec!["a.com".into(), "b.com".into()],
            vec![cc("US"), cc("KM")],
        );
        // US: both respond. KM: only one responds.
        for d in 0..2 {
            s.push(
                d,
                0,
                Obs::Response {
                    status: 200,
                    len: 10,
                    page: None,
                },
            );
        }
        s.push(
            0,
            1,
            Obs::Response {
                status: 200,
                len: 10,
                page: None,
            },
        );
        s.push(1, 1, Obs::Error(ErrKind::Timeout));
        let stats = CoverageStats::compute(&s);
        let (worst, rate) = stats.worst_country().unwrap();
        assert_eq!(worst, cc("KM"));
        assert!((rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn p90_error_rate_reflects_tail() {
        let mut s = SampleStore::new(
            (0..10).map(|i| format!("d{i}.com")).collect(),
            vec![cc("US")],
        );
        for d in 0..10 {
            for i in 0..10 {
                // Domain 9 fails half the time; others never.
                let fail = d == 9 && i % 2 == 0;
                if fail {
                    s.push(d, 0, Obs::Error(ErrKind::Timeout));
                } else {
                    s.push(
                        d,
                        0,
                        Obs::Response {
                            status: 200,
                            len: 10,
                            page: None,
                        },
                    );
                }
            }
        }
        let stats = CoverageStats::compute(&s);
        assert!((stats.error_rate_p90 - 0.5).abs() < 1e-9 || stats.error_rate_p90 == 0.0);
    }
}
