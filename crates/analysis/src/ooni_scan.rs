//! The §7.1 OONI-corpus scan.
//!
//! Scans recorded measurement bodies for the explicit geoblock
//! fingerprints and quantifies the two confounds the paper reports:
//! geoblocking masquerading as censorship (8,313 matches over 97 test-list
//! domains in 139 countries), and Tor-based *control* measurements being
//! blocked by CDN anti-abuse (36,028 control-403s on Akamai/Cloudflare
//! infrastructure vs 14,380 local-blocked/control-ok cases).

use std::collections::BTreeSet;

use geoblock_blockpages::{CompiledFingerprintSet, PageClass};
use geoblock_worldgen::{CountryCode, OoniMeasurement};
use serde::{Deserialize, Serialize};

/// Scan results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OoniScanReport {
    /// Measurements whose recorded body matches an *explicit* geoblock
    /// fingerprint.
    pub explicit_matches: usize,
    /// Countries in which such matches occur.
    pub countries: BTreeSet<CountryCode>,
    /// Distinct test-list domains with ≥1 match.
    pub domains: BTreeSet<String>,
    /// Test-list size (for the 9% headline).
    pub test_list_size: usize,
    /// Measurements on Akamai/Cloudflare infrastructure whose *control*
    /// returned 403.
    pub control_403_cdn: usize,
    /// Measurements on CDN infrastructure that look locally blocked while
    /// the control succeeded.
    pub local_blocked_control_ok: usize,
    /// Total measurements scanned.
    pub scanned: usize,
}

impl OoniScanReport {
    /// Share of the test list that geoblocks somewhere (≈9% in the paper).
    pub fn domain_share(&self) -> f64 {
        self.domains.len() as f64 / self.test_list_size.max(1) as f64
    }
}

/// Run the scan.
pub fn scan(
    corpus: &[OoniMeasurement],
    fingerprints: &CompiledFingerprintSet,
    test_list_size: usize,
) -> OoniScanReport {
    let mut report = OoniScanReport {
        explicit_matches: 0,
        countries: BTreeSet::new(),
        domains: BTreeSet::new(),
        test_list_size,
        control_403_cdn: 0,
        local_blocked_control_ok: 0,
        scanned: corpus.len(),
    };
    for m in corpus {
        if let Some(body) = &m.local_body {
            if let Some(outcome) = fingerprints.classify_bytes(body.as_bytes()) {
                if outcome.kind.class() == PageClass::ExplicitGeoblock {
                    report.explicit_matches += 1;
                    report.countries.insert(m.country);
                    report.domains.insert(m.domain.clone());
                }
            }
        }
        if m.cdn_infra {
            if m.control_status == Some(403) {
                report.control_403_cdn += 1;
            }
            if m.local_anomalous() && m.control_status == Some(200) {
                report.local_blocked_control_ok += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn measurement(
        domain: &str,
        country: &str,
        body: Option<&str>,
        local: Option<u16>,
        control: Option<u16>,
        cdn: bool,
    ) -> OoniMeasurement {
        OoniMeasurement {
            domain: domain.into(),
            country: cc(country),
            local_status: local,
            local_body: body.map(str::to_string),
            control_status: control,
            control_over_tor: true,
            cdn_infra: cdn,
        }
    }

    #[test]
    fn explicit_matches_are_counted_per_domain_and_country() {
        let cf_body = "x has banned the country or region your IP address is in. \
                       Cloudflare Ray ID: abc";
        let corpus = vec![
            measurement("a.com", "IR", Some(cf_body), Some(403), Some(200), true),
            measurement("a.com", "SY", Some(cf_body), Some(403), Some(200), true),
            measurement("b.com", "IR", None, Some(200), Some(200), false),
        ];
        let report = scan(&corpus, &CompiledFingerprintSet::paper(), 100);
        assert_eq!(report.explicit_matches, 2);
        assert_eq!(report.domains.len(), 1);
        assert_eq!(report.countries.len(), 2);
        assert!((report.domain_share() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn ambiguous_pages_do_not_count_as_explicit() {
        let akamai = "Access Denied You don't have permission to access \
                      \"http&#58;&#47;&#47;x&#47;\" Reference&#32;&#35;18.abc";
        let corpus = vec![measurement(
            "a.com",
            "CN",
            Some(akamai),
            Some(403),
            Some(200),
            true,
        )];
        let report = scan(&corpus, &CompiledFingerprintSet::paper(), 10);
        assert_eq!(report.explicit_matches, 0);
    }

    #[test]
    fn control_confound_counters() {
        let corpus = vec![
            // Tor control blocked on CDN infra.
            measurement("a.com", "DE", None, Some(200), Some(403), true),
            // Locally blocked, control fine.
            measurement("b.com", "IR", None, Some(403), Some(200), true),
            // Non-CDN: ignored by both counters.
            measurement("c.com", "DE", None, Some(403), Some(403), false),
        ];
        let report = scan(&corpus, &CompiledFingerprintSet::paper(), 10);
        assert_eq!(report.control_403_cdn, 1);
        assert_eq!(report.local_blocked_control_ok, 1);
        assert_eq!(report.scanned, 3);
    }
}
