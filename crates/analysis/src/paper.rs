//! The paper's published values, as constants for paper-vs-measured
//! comparison in the repro harness and EXPERIMENTS.md.

/// One published value.
#[derive(Debug, Clone, Copy)]
pub struct PaperValue {
    /// Experiment id ("Table 5", "Fig 3", "§3.1", …).
    pub experiment: &'static str,
    /// Metric description.
    pub metric: &'static str,
    /// Published value, as printed.
    pub value: &'static str,
}

/// The key published values this reproduction compares against.
pub const PAPER_VALUES: &[PaperValue] = &[
    PaperValue {
        experiment: "Table 1",
        metric: "initial domains",
        value: "10,000",
    },
    PaperValue {
        experiment: "Table 1",
        metric: "safe domains",
        value: "8,003",
    },
    PaperValue {
        experiment: "Table 1",
        metric: "initial samples (pairs)",
        value: "1,416,531",
    },
    PaperValue {
        experiment: "Table 1",
        metric: "clustered pages",
        value: "24,381",
    },
    PaperValue {
        experiment: "Table 1",
        metric: "clusters",
        value: "119",
    },
    PaperValue {
        experiment: "Table 1",
        metric: "discovered CDNs/hosts",
        value: "7",
    },
    PaperValue {
        experiment: "Table 2",
        metric: "overall recall",
        value: "58.3%",
    },
    PaperValue {
        experiment: "Table 2",
        metric: "Cloudflare recall",
        value: "93.8%",
    },
    PaperValue {
        experiment: "Table 2",
        metric: "Akamai recall",
        value: "43.7%",
    },
    PaperValue {
        experiment: "§4.1.2",
        metric: "outlier rate (top-20 countries)",
        value: "5.1%",
    },
    PaperValue {
        experiment: "§4.2",
        metric: "Top-10K instances",
        value: "596",
    },
    PaperValue {
        experiment: "§4.2",
        metric: "Top-10K unique domains",
        value: "100",
    },
    PaperValue {
        experiment: "§4.2",
        metric: "instances eliminated by 80% rule",
        value: "77 (11.4%)",
    },
    PaperValue {
        experiment: "Table 5",
        metric: "most blocked country",
        value: "Syria (71)",
    },
    PaperValue {
        experiment: "Table 5",
        metric: "2nd–4th",
        value: "Iran 67, Sudan 66, Cuba 66",
    },
    PaperValue {
        experiment: "Table 5",
        metric: ".com share of blockers",
        value: "70 of 100",
    },
    PaperValue {
        experiment: "Table 6",
        metric: "provider totals (CF/CFront/GAE)",
        value: "248/167/169",
    },
    PaperValue {
        experiment: "§4.2.1",
        metric: "Top-10K CDN populations (CF/CFront/GAE)",
        value: "1,394/364/108",
    },
    PaperValue {
        experiment: "§4.2.1",
        metric: "GAE customers geoblocking",
        value: "40.7%",
    },
    PaperValue {
        experiment: "§4.2.1",
        metric: "CF customers geoblocking",
        value: "3.1%",
    },
    PaperValue {
        experiment: "§4.2.1",
        metric: "CloudFront customers geoblocking",
        value: "1.4%",
    },
    PaperValue {
        experiment: "§4.1.1",
        metric: "never-responding domains",
        value: "286",
    },
    PaperValue {
        experiment: "§4.1.1",
        metric: "Luminati-refused domains",
        value: "13",
    },
    PaperValue {
        experiment: "§4.1.1",
        metric: "90th-pct domain error rate",
        value: "11.7%",
    },
    PaperValue {
        experiment: "§4.1.1",
        metric: "worst-covered country",
        value: "Comoros (76.4%)",
    },
    PaperValue {
        experiment: "Fig 1",
        metric: "draws <80% at size 20",
        value: "3.9%",
    },
    PaperValue {
        experiment: "Fig 2",
        metric: "FN across 5%–50% cutoffs",
        value: "≈20% (text; Table 2 implies ≈42%)",
    },
    PaperValue {
        experiment: "Fig 3",
        metric: "FN rate at 3 samples",
        value: "1.7%",
    },
    PaperValue {
        experiment: "Fig 4",
        metric: "pairs >80% agreement",
        value: "vast majority",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "Top-1M Cloudflare customers",
        value: "109,801",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "Top-1M CloudFront customers",
        value: "10,856",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "Top-1M Incapsula customers",
        value: "5,570",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "Top-1M Akamai customers",
        value: "10,727",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "Top-1M AppEngine customers",
        value: "16,455",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "unique CDN customers",
        value: "152,001",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "dual-service domains",
        value: "1,408",
    },
    PaperValue {
        experiment: "§5.1.1",
        metric: "AppEngine netblocks",
        value: "65",
    },
    PaperValue {
        experiment: "§5.1.2",
        metric: "safe CDN customers",
        value: "123,614",
    },
    PaperValue {
        experiment: "§5.1.2",
        metric: "5% sample size",
        value: "6,180",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "Top-1M instances",
        value: "1,565",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "Top-1M unique domains",
        value: "238",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "median blocked per country",
        value: "4",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "GAE sample geoblocking rate",
        value: "16.8% (112/667)",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "CloudFront sample rate",
        value: "3.1% (16/512)",
    },
    PaperValue {
        experiment: "§5.2.1",
        metric: "Cloudflare sample rate",
        value: "2.6% (110/4,283)",
    },
    PaperValue {
        experiment: "Table 7",
        metric: "top countries",
        value: "Iran 178, Sudan 169, Syria 168, Cuba 165",
    },
    PaperValue {
        experiment: "Table 8",
        metric: "overall blocked share",
        value: "4.4% (238/5,462)",
    },
    PaperValue {
        experiment: "Table 8",
        metric: "Shopping blocked share",
        value: "14.1%",
    },
    PaperValue {
        experiment: "§5.2.2",
        metric: "Akamai confirmed blockers",
        value: "14 of 101 showing pages",
    },
    PaperValue {
        experiment: "§5.2.2",
        metric: "Incapsula confirmed blockers",
        value: "17 of 107 showing pages",
    },
    PaperValue {
        experiment: "§5.2.2",
        metric: "explicit blockers at 100% consistency",
        value: "≈85%",
    },
    PaperValue {
        experiment: "§5.2.2",
        metric: "Akamai at 100% consistency",
        value: "13.9%",
    },
    PaperValue {
        experiment: "§3.1",
        metric: "NS-identified CF/Akamai customers",
        value: "2,171 / 4,111",
    },
    PaperValue {
        experiment: "§3.1",
        metric: "403s from Iran vs US",
        value: "707 vs 69",
    },
    PaperValue {
        experiment: "§3.1",
        metric: "flagged pairs → genuine",
        value: "1,068 → 782",
    },
    PaperValue {
        experiment: "§3.1",
        metric: "false-positive rate (all Akamai)",
        value: "27%",
    },
    PaperValue {
        experiment: "Table 9",
        metric: "baseline (all tiers)",
        value: "1.93%",
    },
    PaperValue {
        experiment: "Table 9",
        metric: "Enterprise baseline",
        value: "37.07%",
    },
    PaperValue {
        experiment: "Table 9",
        metric: "Enterprise KP rate",
        value: "16.50%",
    },
    PaperValue {
        experiment: "§7.1",
        metric: "OONI fingerprint matches",
        value: "8,313 in 139 countries",
    },
    PaperValue {
        experiment: "§7.1",
        metric: "test-list domains matched",
        value: "97 (≈9%)",
    },
    PaperValue {
        experiment: "§7.1",
        metric: "control-403 on CDN infra",
        value: "36,028",
    },
    PaperValue {
        experiment: "§7.1",
        metric: "local-blocked / control-ok",
        value: "14,380",
    },
];

/// Values for one experiment id.
pub fn for_experiment(id: &str) -> Vec<&'static PaperValue> {
    PAPER_VALUES.iter().filter(|v| v.experiment == id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_and_figure_is_covered() {
        for id in [
            "Table 1", "Table 2", "Table 5", "Table 6", "Table 7", "Table 8", "Table 9", "Fig 1",
            "Fig 2", "Fig 3", "Fig 4", "§3.1", "§5.1.1", "§7.1",
        ] {
            assert!(!for_experiment(id).is_empty(), "no paper values for {id}");
        }
    }

    #[test]
    fn no_duplicate_metrics_within_experiment() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for v in PAPER_VALUES {
            assert!(
                seen.insert((v.experiment, v.metric)),
                "duplicate: {} / {}",
                v.experiment,
                v.metric
            );
        }
    }
}
