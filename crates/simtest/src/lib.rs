//! Deterministic simulation testing (DST) for the geoblocking study.
//!
//! The whole point of simulating the Internet (`geoblock-netsim`), the
//! proxy network (`geoblock-proxynet`), and their failures
//! (`FaultPlan`) is that a full study becomes a *pure function of its
//! seed*. This crate turns that claim into test machinery, in the
//! FoundationDB simulation-testing tradition:
//!
//! * [`trace`] — [`TraceSink`] records every probe of a study pass (plan
//!   coordinate, exit sessions, absorbed faults, virtual-clock timestamp,
//!   classified observation) into a [`StudyTrace`] with a canonical text
//!   form and a stable content hash, the unit of comparison for
//!   everything else;
//! * [`sweep`] — [`run_sweep`] executes a scenario across seeds ×
//!   concurrency levels and reports any [`Divergence`] between a seed's
//!   [`StudyFingerprint`]s: schedule-dependent state anywhere in the
//!   pipeline becomes a failing test;
//! * [`shrink`] — [`ddmin`]/[`ddmin_async`] delta-debug a failing
//!   [`FaultEvent`](geoblock_proxynet::FaultEvent) schedule to a 1-minimal
//!   reproducer, emitted as a replayable [`ReproFixture`];
//! * [`invariants`] — [`check_trace`]/[`check_study`] re-derive the
//!   paper's promises (23-sample/80% agreement, representative-country
//!   body retention, retry and per-exit request budgets) from raw
//!   evidence on every replay, and [`check_flagged_floor`] holds
//!   adaptive sampling policies to the hard floor (any pair showing a
//!   blocking signal carries the full `baseline + confirm` samples);
//! * [`scenario`] — the one shared scenario ([`run_scenario`]) the golden
//!   corpus, sweeps, and shrinker replays all execute;
//! * [`sharded`] — the same scenario run through the study orchestrator
//!   ([`run_sharded_scenario`], [`run_sharded_scenario_resumed`]), so
//!   shard counts and kill/resume splits compare by fingerprint against
//!   single-stream runs;
//! * [`nondet`] — [`ArrivalOrderFaults`], the deliberately
//!   schedule-coupled adversary the harness proves it can catch and
//!   shrink.

pub mod invariants;
pub mod nondet;
pub mod scenario;
pub mod sharded;
pub mod shrink;
pub mod sweep;
pub mod trace;

pub use invariants::{
    check_flagged_floor, check_study, check_trace, InvariantViolation, ProbeLimits,
};
pub use nondet::ArrivalOrderFaults;
pub use scenario::{
    run_clocked_scenario, run_policy_scenario, run_scenario, run_scenario_on,
    run_scenario_with_config, scenario_config, scenario_domains, scenario_engine_config,
    scenario_plan_len, SimWeb, TracedStudy, GOLDEN_SEED,
};
pub use sharded::{
    finish_sharded, run_sharded_scenario, run_sharded_scenario_resumed, trace_from_units,
};
pub use shrink::{canonical_events, ddmin, ddmin_async, ReproFixture};
pub use sweep::{run_sweep, Divergence, StudyFingerprint, SweepReport};
pub use trace::{fnv1a, obs_label, StudyTrace, TraceEvent, TraceSink};
