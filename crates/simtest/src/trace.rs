//! Study-trace capture: every probe event, canonically serialized.
//!
//! A deterministic simulation is only as trustworthy as the evidence it
//! leaves behind. [`TraceSink`] rides a study pass as a
//! [`ProbeSink`] and records one [`TraceEvent`] per probe — its plan
//! coordinate, the exit session each attempt rode, every absorbed fault,
//! the virtual-clock timestamp, and the classified observation. The
//! resulting [`StudyTrace`] has a *canonical* text form (events sorted by
//! probe index, one fixed-format line each) and a stable FNV-1a content
//! hash, so two runs of the same seed can be compared across concurrency
//! levels, sessions, and machines with a single 64-bit equality check.
//!
//! Completion order is schedule-dependent — [`ProbeSink::completed`] fires
//! as probes land even when the stream yields ordered — so the canonical
//! form sorts by index before rendering. Everything else in an event is
//! derived from per-probe keyed state and is schedule-independent by
//! construction; the seed-sweep harness ([`crate::sweep`]) exists to keep
//! it that way.

use std::sync::Arc;

use geoblock_blockpages::CompiledFingerprintSet;
use geoblock_core::{classify_chain, Obs, ProbeCoord, TargetPlan};
use geoblock_lumscan::{BatchStats, ProbeResult, ProbeSink};
use geoblock_netsim::SimClock;
use geoblock_worldgen::CountryCode;

/// One probe's footprint in a study trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Flat probe index in the pass's target plan.
    pub index: usize,
    /// The plan coordinate the index maps to, when it is in the plan the
    /// sink was built for.
    pub coord: Option<ProbeCoord>,
    /// Target host.
    pub host: String,
    /// Vantage country.
    pub country: CountryCode,
    /// Attempts the engine spent (0 for a panicked slot).
    pub attempts: u32,
    /// The exit session each attempt rode, in attempt order.
    pub sessions: Vec<u64>,
    /// Stable labels of every absorbed or terminal fault, in attempt order.
    pub faults: Vec<String>,
    /// Redirect-chain length of the final successful attempt (0 on error).
    pub hops: usize,
    /// Virtual-clock micros at completion; 0 when the sink has no clock.
    pub ts_micros: u64,
    /// The classified observation — what the study keeps of this probe.
    pub obs: Obs,
}

impl TraceEvent {
    /// The event's canonical line. Fixed field order, no floats, no
    /// pointer-dependent content: byte-stable across runs and platforms.
    pub fn canonical_line(&self) -> String {
        let coord = match self.coord {
            Some(c) => format!("{}/{}/{}", c.domain, c.country, c.sample),
            None => "?/?/?".to_string(),
        };
        let join = |parts: Vec<String>| {
            if parts.is_empty() {
                "-".to_string()
            } else {
                parts.join(",")
            }
        };
        let sessions = join(self.sessions.iter().map(|s| format!("{s:016x}")).collect());
        let faults = join(self.faults.iter().map(|f| f.to_string()).collect());
        format!(
            "i={:05} coord={} host={} cc={} att={} exits={} faults={} hops={} ts={} obs={}",
            self.index,
            coord,
            self.host,
            self.country,
            self.attempts,
            sessions,
            faults,
            self.hops,
            self.ts_micros,
            obs_label(&self.obs),
        )
    }
}

/// Render an observation as a short stable label: `resp:<status>:<len>:<page>`
/// for responses (`-` when no block page matched), `err:<kind>` for errors.
pub fn obs_label(obs: &Obs) -> String {
    match obs {
        Obs::Error(kind) => format!("err:{kind:?}"),
        Obs::Response { status, len, page } => {
            let page = page.map(|p| p.label()).unwrap_or("-");
            format!("resp:{status}:{len}:{page}")
        }
    }
}

/// An ordered record of every probe in a study pass.
#[derive(Debug, Clone, Default)]
pub struct StudyTrace {
    /// Events in completion order (the order the sink observed them).
    pub events: Vec<TraceEvent>,
}

impl StudyTrace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical text form: one line per event, sorted by probe index.
    /// Two runs of the same study are equivalent iff their canonical texts
    /// are byte-identical — completion order is deliberately erased.
    pub fn canonical_text(&self) -> String {
        let mut by_index: Vec<&TraceEvent> = self.events.iter().collect();
        by_index.sort_by_key(|e| e.index);
        let mut out = String::new();
        for event in by_index {
            out.push_str(&event.canonical_line());
            out.push('\n');
        }
        out
    }

    /// FNV-1a-64 hash of the canonical text — the study's identity for
    /// seed-sweep comparison and golden-corpus pinning.
    pub fn content_hash(&self) -> u64 {
        fnv1a(self.canonical_text().as_bytes())
    }

    /// The content hash as a fixed-width hex string.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.content_hash())
    }
}

/// FNV-1a 64-bit over `bytes`. Tiny, dependency-free, and stable across
/// platforms — exactly what a golden hash needs (this is an identity
/// check, not a security boundary).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A [`ProbeSink`] that records a [`StudyTrace`] for a grid-shaped pass.
///
/// The sink owns its own copy of the plan geometry (domains, countries,
/// samples-per-pair) so it can map completion indices back to coordinates
/// without borrowing from the study driver. Attach a [`SimClock`] with
/// [`with_clock`](TraceSink::with_clock) to stamp events with virtual
/// time; leave it off (timestamps pinned to 0) when traces must compare
/// equal across concurrency levels, since wall-ordering of clock charges
/// is schedule-dependent.
pub struct TraceSink {
    domains: Vec<String>,
    countries: Vec<CountryCode>,
    samples: usize,
    fingerprints: CompiledFingerprintSet,
    clock: Option<Arc<SimClock>>,
    trace: StudyTrace,
    finished: bool,
}

impl TraceSink {
    /// A sink for a `domains × countries × samples` grid pass.
    pub fn grid(
        domains: Vec<String>,
        countries: Vec<CountryCode>,
        samples: usize,
        fingerprints: CompiledFingerprintSet,
    ) -> TraceSink {
        TraceSink {
            domains,
            countries,
            samples,
            fingerprints,
            clock: None,
            trace: StudyTrace::default(),
            finished: false,
        }
    }

    /// Stamp each event with this virtual clock's time at completion.
    pub fn with_clock(mut self, clock: Arc<SimClock>) -> TraceSink {
        self.clock = Some(clock);
        self
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &StudyTrace {
        &self.trace
    }

    /// Whether the stream's `finished` hook has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Consume the sink, yielding its trace.
    pub fn into_trace(self) -> StudyTrace {
        self.trace
    }
}

impl ProbeSink for TraceSink {
    fn completed(
        &mut self,
        index: usize,
        result: &ProbeResult,
        _stats: &BatchStats,
        _in_flight: usize,
    ) {
        let plan = TargetPlan::grid(&self.domains, &self.countries, self.samples);
        let coord = (index < plan.len()).then(|| plan.coord(index));
        self.trace.events.push(TraceEvent {
            index,
            coord,
            host: result.target.url.host.as_str().to_string(),
            country: result.target.country,
            attempts: result.attempts,
            sessions: result.attempt_sessions.iter().map(|s| s.0).collect(),
            faults: result
                .attempt_errors
                .iter()
                .map(|e| e.kind().to_string())
                .collect(),
            hops: result.chain().map(|c| c.hops.len()).unwrap_or(0),
            ts_micros: self.clock.as_ref().map(|c| c.now_micros()).unwrap_or(0),
            obs: classify_chain(&self.fingerprints, &result.outcome),
        });
    }

    fn finished(&mut self, _stats: &BatchStats) {
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn event(index: usize, attempts: u32) -> TraceEvent {
        TraceEvent {
            index,
            coord: Some(ProbeCoord {
                domain: index,
                country: 0,
                sample: 0,
            }),
            host: format!("d{index}.example"),
            country: cc("IR"),
            attempts,
            sessions: (0..attempts as u64).map(|a| a + 1).collect(),
            faults: (1..attempts).map(|_| "proxy".to_string()).collect(),
            hops: 1,
            ts_micros: 0,
            obs: Obs::Response {
                status: 200,
                len: 64,
                page: None,
            },
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_text_erases_completion_order() {
        let forward = StudyTrace {
            events: vec![event(0, 1), event(1, 2), event(2, 1)],
        };
        let shuffled = StudyTrace {
            events: vec![event(2, 1), event(0, 1), event(1, 2)],
        };
        assert_eq!(forward.canonical_text(), shuffled.canonical_text());
        assert_eq!(forward.content_hash(), shuffled.content_hash());
        assert_eq!(forward.hash_hex(), shuffled.hash_hex());
    }

    #[test]
    fn content_changes_move_the_hash() {
        let a = StudyTrace {
            events: vec![event(0, 1)],
        };
        let mut b = a.clone();
        b.events[0].attempts = 2;
        b.events[0].sessions.push(9);
        b.events[0].faults.push("proxy".to_string());
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn canonical_line_is_fixed_format() {
        let line = event(3, 2).canonical_line();
        assert_eq!(
            line,
            "i=00003 coord=3/0/0 host=d3.example cc=IR att=2 \
             exits=0000000000000001,0000000000000002 faults=proxy hops=1 ts=0 \
             obs=resp:200:64:-"
        );
    }

    #[test]
    fn empty_fields_render_as_dashes() {
        let mut e = event(0, 0);
        e.sessions.clear();
        e.faults.clear();
        let line = e.canonical_line();
        assert!(line.contains("exits=- faults=-"), "{line}");
    }
}
