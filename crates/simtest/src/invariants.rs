//! Invariant checkers for traces and study results.
//!
//! The paper's methodology is a handful of arithmetic promises — 3 baseline
//! + 20 confirmation samples judged at 80% agreement (§4.2), bodies kept
//! only from representative countries, ≤10 requests per exit node, a
//! bounded retry budget. Each checker here re-derives one of those promises
//! from raw evidence (a [`StudyTrace`] or a [`StudyResult`]) instead of
//! trusting the pipeline's own bookkeeping, and reports every breach as an
//! [`InvariantViolation`]. The deterministic-simulation tests run them on
//! every replay: a seed sweep that produces equal hashes but violates an
//! invariant is still a failing run.

use std::collections::HashMap;

use geoblock_core::{StudyConfig, StudyResult};
use geoblock_lumscan::LumscanConfig;

use crate::trace::StudyTrace;

/// One broken promise, with the invariant's stable name and the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Stable identifier of the invariant (`completeness`, `attempt-budget`,
    /// `session-ledger`, `exit-rotation`, `request-budget`, `cell-samples`,
    /// `rep-retention`, `agreement`, `flagged-floor`).
    pub invariant: &'static str,
    /// Human-readable description of the breach.
    pub detail: String,
}

impl InvariantViolation {
    fn new(invariant: &'static str, detail: String) -> InvariantViolation {
        InvariantViolation { invariant, detail }
    }
}

/// The engine-side budgets a trace is checked against.
#[derive(Debug, Clone, Copy)]
pub struct ProbeLimits {
    /// Maximum attempts the retry policy allows per probe.
    pub max_attempts: u32,
    /// Requests allowed per exit machine (the paper's 10).
    pub requests_per_exit: u64,
    /// Redirect-follow limit per attempt.
    pub max_redirects: usize,
}

impl ProbeLimits {
    /// The limits a given engine configuration promises to respect.
    pub fn of(config: &LumscanConfig) -> ProbeLimits {
        ProbeLimits {
            max_attempts: config.retry.max_retries + 1,
            requests_per_exit: config.requests_per_exit,
            max_redirects: config.max_redirects,
        }
    }
}

/// Check a trace against the plan geometry and engine budgets.
///
/// * **completeness** — every probe index in `0..expected_probes` appears
///   exactly once, and maps into the plan;
/// * **attempt-budget** — no probe exceeds the retry policy's attempt
///   budget, and only panicked slots have zero attempts;
/// * **session-ledger** — each attempt is accounted to exactly one exit
///   session, and no probe absorbs more faults than it made attempts;
/// * **exit-rotation** — no exit session is reused across attempts (the
///   engine derives a fresh exit per attempt, which is how the
///   ≤`requests_per_exit` policy stays respected under redirects);
/// * **request-budget** — the winning attempt's requests on its exit
///   (1 connectivity check + the redirect chain) fit `requests_per_exit`,
///   and the chain respects the redirect limit.
pub fn check_trace(
    trace: &StudyTrace,
    expected_probes: usize,
    limits: &ProbeLimits,
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let mut seen = vec![0usize; expected_probes];
    let mut exits: HashMap<u64, usize> = HashMap::new();

    for event in &trace.events {
        let i = event.index;
        match seen.get_mut(i) {
            Some(count) => *count += 1,
            None => violations.push(InvariantViolation::new(
                "completeness",
                format!("probe {i} outside plan of {expected_probes}"),
            )),
        }
        if event.coord.is_none() {
            violations.push(InvariantViolation::new(
                "completeness",
                format!("probe {i} has no plan coordinate"),
            ));
        }
        if event.attempts > limits.max_attempts {
            violations.push(InvariantViolation::new(
                "attempt-budget",
                format!(
                    "probe {i} spent {} attempts, budget {}",
                    event.attempts, limits.max_attempts
                ),
            ));
        }
        if event.attempts == 0
            && !event.faults.iter().any(|f| f == "panic")
            && event.obs.responded()
        {
            violations.push(InvariantViolation::new(
                "attempt-budget",
                format!("probe {i} responded with zero attempts"),
            ));
        }
        if event.attempts > 0 && event.sessions.len() != event.attempts as usize {
            violations.push(InvariantViolation::new(
                "session-ledger",
                format!(
                    "probe {i} made {} attempts over {} sessions",
                    event.attempts,
                    event.sessions.len()
                ),
            ));
        }
        if event.faults.len() > event.attempts as usize {
            violations.push(InvariantViolation::new(
                "session-ledger",
                format!(
                    "probe {i} absorbed {} faults in {} attempts",
                    event.faults.len(),
                    event.attempts
                ),
            ));
        }
        for &session in &event.sessions {
            *exits.entry(session).or_insert(0) += 1;
        }
        let winning_requests = 1 + event.hops as u64;
        if winning_requests > limits.requests_per_exit {
            violations.push(InvariantViolation::new(
                "request-budget",
                format!(
                    "probe {i} put {winning_requests} requests on one exit, budget {}",
                    limits.requests_per_exit
                ),
            ));
        }
        if event.hops > 1 + limits.max_redirects {
            violations.push(InvariantViolation::new(
                "request-budget",
                format!(
                    "probe {i} followed {} hops, limit {}",
                    event.hops,
                    1 + limits.max_redirects
                ),
            ));
        }
    }

    for (i, count) in seen.iter().enumerate() {
        if *count != 1 {
            violations.push(InvariantViolation::new(
                "completeness",
                format!("probe {i} recorded {count} times, expected once"),
            ));
        }
    }
    for (session, uses) in exits {
        if uses > 1 {
            violations.push(InvariantViolation::new(
                "exit-rotation",
                format!("exit session {session:016x} reused across {uses} attempts"),
            ));
        }
    }
    violations
}

/// Check a study result against its configuration.
///
/// * **cell-samples** — every probed (domain, country) cell holds at least
///   the baseline sample count;
/// * **rep-retention** — every archived body belongs to a representative
///   country (§4.2 keeps bodies only from the top geoblocking countries);
/// * **agreement** — the verdict list matches an independent re-derivation
///   of the 23-sample / 80% rule: a verdict exists for exactly the cells
///   whose modal explicit block-page count clears the threshold over more
///   than `baseline + confirm` worth of samples, with the block counts and
///   totals the samples actually support.
pub fn check_study(result: &StudyResult, config: &StudyConfig) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let store = &result.store;
    let confirm = &config.confirm;

    for ((d, c, _s), _body) in result.archive.iter() {
        let country = match store.countries.get(c as usize) {
            Some(country) => *country,
            None => {
                violations.push(InvariantViolation::new(
                    "rep-retention",
                    format!("archived body under unknown country index {c}"),
                ));
                continue;
            }
        };
        if !config.rep_countries.contains(&country) {
            violations.push(InvariantViolation::new(
                "rep-retention",
                format!("body of domain {d} retained from non-representative {country}"),
            ));
        }
    }

    // Re-derive the flagged set from raw observations and hold the verdict
    // list to it. Ties between explicit kinds share a modal count, so the
    // comparison is on (domain, country, block_count, total).
    let verdicts = result.verdicts(confirm);
    let mut by_pair: HashMap<(String, String), (u32, u32)> = verdicts
        .iter()
        .map(|v| {
            (
                (v.domain.clone(), v.country.to_string()),
                (v.block_count, v.total),
            )
        })
        .collect();
    for (d, c, samples) in store.iter_cells() {
        if (samples.len() as u32) < config.baseline_samples {
            violations.push(InvariantViolation::new(
                "cell-samples",
                format!(
                    "cell ({}, {}) holds {} samples, baseline is {}",
                    store.domains[d],
                    store.countries[c],
                    samples.len(),
                    config.baseline_samples
                ),
            ));
        }
        let mut counts: HashMap<_, u32> = HashMap::new();
        for obs in samples {
            if obs.explicit_geoblock() {
                if let Some(kind) = obs.page() {
                    *counts.entry(kind).or_insert(0) += 1;
                }
            }
        }
        let modal = counts.values().copied().max().unwrap_or(0);
        let total = samples.len() as u32;
        let should_flag = modal > 0
            && total > confirm.confirm_samples
            && modal as f64 / total as f64 >= confirm.threshold;
        let key = (store.domains[d].clone(), store.countries[c].to_string());
        match (should_flag, by_pair.remove(&key)) {
            (true, None) => violations.push(InvariantViolation::new(
                "agreement",
                format!(
                    "cell ({}, {}) clears {modal}/{total} ≥ {} but has no verdict",
                    key.0, key.1, confirm.threshold
                ),
            )),
            (true, Some((block, vtotal))) if (block, vtotal) != (modal, total) => {
                violations.push(InvariantViolation::new(
                    "agreement",
                    format!(
                        "verdict for ({}, {}) says {block}/{vtotal}, samples say {modal}/{total}",
                        key.0, key.1
                    ),
                ))
            }
            (true, Some(_)) => {}
            (false, Some((block, vtotal))) => violations.push(InvariantViolation::new(
                "agreement",
                format!(
                    "verdict {block}/{vtotal} for ({}, {}) not supported by samples ({modal}/{total})",
                    key.0, key.1
                ),
            )),
            (false, None) => {}
        }
    }
    for ((domain, country), (block, total)) in by_pair {
        violations.push(InvariantViolation::new(
            "agreement",
            format!("verdict {block}/{total} for ({domain}, {country}) names an unprobed cell"),
        ));
    }
    violations
}

/// Check the adaptive-sampling hard floor, independently of any policy's
/// own bookkeeping: every (domain, country) cell whose samples include
/// **any** explicit geoblock observation must hold at least the full
/// `baseline + confirm` sample count. This is the promise that lets
/// [`AdaptiveBandit`](geoblock_core::AdaptiveBandit) early-stop clean
/// pairs — a pair is only ever judged on the paper's full 23-sample
/// evidence bar, no matter what the budget did.
///
/// Note this is deliberately **not** part of [`check_study`]:
/// `check_study`'s `cell-samples` invariant asserts the fixed protocol's
/// uniform baseline depth, which adaptive policies intentionally relax,
/// and a baseline-only result (no confirmation yet) would trip this floor
/// spuriously. Run this checker on completed policy-driven results.
pub fn check_flagged_floor(result: &StudyResult, config: &StudyConfig) -> Vec<InvariantViolation> {
    let full = config.baseline_samples + config.confirm.confirm_samples;
    let mut violations = Vec::new();
    for (d, c, samples) in result.store.iter_cells() {
        if samples.iter().any(|o| o.explicit_geoblock()) && (samples.len() as u32) < full {
            violations.push(InvariantViolation::new(
                "flagged-floor",
                format!(
                    "cell ({}, {}) shows a blocking signal but holds only {} of the {} samples \
                     the full protocol requires",
                    result.store.domains[d],
                    result.store.countries[c],
                    samples.len(),
                    full
                ),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_core::{Obs, ProbeCoord};
    use geoblock_worldgen::cc;

    use crate::trace::TraceEvent;

    fn limits() -> ProbeLimits {
        ProbeLimits {
            max_attempts: 4,
            requests_per_exit: 10,
            max_redirects: 10,
        }
    }

    fn ok_event(index: usize, session: u64) -> TraceEvent {
        TraceEvent {
            index,
            coord: Some(ProbeCoord {
                domain: index,
                country: 0,
                sample: 0,
            }),
            host: format!("d{index}.example"),
            country: cc("IR"),
            attempts: 1,
            sessions: vec![session],
            faults: Vec::new(),
            hops: 1,
            ts_micros: 0,
            obs: Obs::Response {
                status: 200,
                len: 64,
                page: None,
            },
        }
    }

    #[test]
    fn clean_traces_pass() {
        let trace = StudyTrace {
            events: vec![ok_event(0, 1), ok_event(1, 2), ok_event(2, 3)],
        };
        assert!(check_trace(&trace, 3, &limits()).is_empty());
    }

    #[test]
    fn missing_duplicate_and_stray_probes_are_caught() {
        let trace = StudyTrace {
            events: vec![ok_event(0, 1), ok_event(0, 2), ok_event(7, 3)],
        };
        let violations = check_trace(&trace, 3, &limits());
        let completeness = violations
            .iter()
            .filter(|v| v.invariant == "completeness")
            .count();
        // index 0 twice, index 7 out of plan, indexes 1 and 2 missing.
        assert!(completeness >= 4, "{violations:?}");
    }

    #[test]
    fn attempt_and_session_budgets_are_enforced() {
        let mut over = ok_event(0, 1);
        over.attempts = 9;
        over.sessions = (1..=9).collect();
        let mut unledgered = ok_event(1, 10);
        unledgered.attempts = 2;
        let trace = StudyTrace {
            events: vec![over, unledgered],
        };
        let violations = check_trace(&trace, 2, &limits());
        assert!(violations.iter().any(|v| v.invariant == "attempt-budget"));
        assert!(violations.iter().any(|v| v.invariant == "session-ledger"));
    }

    #[test]
    fn exit_reuse_is_caught() {
        let trace = StudyTrace {
            events: vec![ok_event(0, 5), ok_event(1, 5)],
        };
        let violations = check_trace(&trace, 2, &limits());
        assert!(
            violations.iter().any(|v| v.invariant == "exit-rotation"),
            "{violations:?}"
        );
    }

    fn floor_fixture(flagged_samples: usize) -> (StudyResult, StudyConfig) {
        use geoblock_blockpages::PageKind;
        use geoblock_core::{BodyArchive, SampleStore};

        let config = StudyConfig::new(vec![cc("IR")], vec![cc("IR")]);
        let mut store = SampleStore::new(
            vec!["blocked.com".into(), "clean.com".into()],
            vec![cc("IR")],
        );
        // The flagged pair: every sample an explicit block page.
        for _ in 0..flagged_samples {
            store.push(
                0,
                0,
                Obs::Response {
                    status: 403,
                    len: 1500,
                    page: Some(PageKind::Cloudflare),
                },
            );
        }
        // A clean pair early-stopped at one sample — allowed by the floor.
        store.push(
            1,
            0,
            Obs::Response {
                status: 200,
                len: 900,
                page: None,
            },
        );
        (
            StudyResult {
                store,
                archive: BodyArchive::new(),
            },
            config,
        )
    }

    #[test]
    fn flagged_floor_accepts_fully_sampled_flagged_pairs() {
        let defaults = StudyConfig::new(vec![cc("IR")], vec![cc("IR")]);
        let full = (defaults.baseline_samples + defaults.confirm.confirm_samples) as usize;
        let (result, config) = floor_fixture(full);
        assert!(check_flagged_floor(&result, &config).is_empty());
    }

    #[test]
    fn flagged_floor_catches_under_sampled_flagged_pairs() {
        let (result, config) = floor_fixture(2);
        let violations = check_flagged_floor(&result, &config);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].invariant, "flagged-floor");
        assert!(violations[0].detail.contains("blocked.com"));
    }

    #[test]
    fn oversized_redirect_chains_blow_the_request_budget() {
        let mut event = ok_event(0, 1);
        event.hops = 30;
        let trace = StudyTrace {
            events: vec![event],
        };
        let violations = check_trace(&trace, 1, &limits());
        assert!(violations.iter().any(|v| v.invariant == "request-budget"));
    }
}
