//! Sharded-scenario runners: the orchestrator under the DST microscope.
//!
//! The orchestrator's whole claim is that sharding and kill/resume are
//! *invisible* — that for a fixed seed, any shard count and any
//! interruption point produce the same study as one sequential stream.
//! This module makes that claim testable by running the standard
//! [`scenario`](crate::scenario) *through* the orchestrator and reducing
//! the result to the same [`TracedStudy`] artifacts single-stream runs
//! produce, so fingerprints compare directly:
//!
//! * [`trace_from_units`] rebuilds a [`StudyTrace`] from the orchestrator's
//!   checkpointable [`ProbeRecord`]s — same canonical fields, index order;
//! * [`run_sharded_scenario`] runs the scenario's baseline through an
//!   [`Orchestrator`] at a given shard count;
//! * [`run_sharded_scenario_resumed`] kills the pass at half its work
//!   units, then resumes from the checkpoint file on a *fresh* engine —
//!   the end-to-end resume path.
//!
//! Sharded traces are compared unclocked (`ts_micros = 0`), matching the
//! unclocked single-stream scenario: probes of different units genuinely
//! interleave, so virtual time is the one field sharding is allowed to
//! change.

use std::path::Path;
use std::sync::Arc;

use geoblock_core::StudySession;
use geoblock_lumscan::{Lumscan, Transport};
use geoblock_orchestrator::{
    Checkpoint, Orchestrator, OrchestratorConfig, OrchestratorRun, UnitResult,
};
use geoblock_proxynet::{FaultPlan, FaultyTransport};

use crate::scenario::{
    scenario_config, scenario_domains, scenario_engine_config, SimWeb, TracedStudy,
};
use crate::sweep::StudyFingerprint;
use crate::trace::{StudyTrace, TraceEvent};
use geoblock_core::TargetPlan;
use geoblock_worldgen::CountryCode;

/// Rebuild the study trace from completed work units. Records already
/// carry every canonical field a [`TraceEvent`] needs; units are walked in
/// plan-offset order, so the trace lists probes in index order — exactly
/// what [`StudyTrace::canonical_text`] sorts to anyway.
pub fn trace_from_units(
    units: &[UnitResult],
    domains: &[String],
    countries: &[CountryCode],
    samples: usize,
) -> StudyTrace {
    let plan = TargetPlan::grid(domains, countries, samples);
    let mut ordered: Vec<&UnitResult> = units.iter().collect();
    ordered.sort_by_key(|u| u.start);
    let mut trace = StudyTrace { events: Vec::new() };
    for unit in ordered {
        for r in &unit.records {
            trace.events.push(TraceEvent {
                index: r.index,
                coord: (r.index < plan.len()).then(|| plan.coord(r.index)),
                host: r.host.clone(),
                country: r.country,
                attempts: r.attempts,
                sessions: r.sessions.clone(),
                faults: r.faults.clone(),
                hops: r.hops,
                // Sharded passes are compared unclocked: units interleave,
                // so completion time is schedule-dependent by design.
                ts_micros: 0,
                obs: r.obs,
            });
        }
    }
    trace
}

/// Reduce a finished orchestrator run to the scenario's comparable
/// artifacts: run the confirmation pass on the same engine, rebuild the
/// trace from the run's units, fingerprint the lot.
pub async fn finish_sharded<T: Transport + 'static>(
    engine: Arc<Lumscan<T>>,
    run: OrchestratorRun,
) -> TracedStudy {
    let config = scenario_config();
    let domains = scenario_domains();
    let mut result = run.result;
    let flagged = StudySession::new(engine, config.clone())
        .confirm(&mut result)
        .await;
    let trace = trace_from_units(
        &run.units,
        &domains,
        &config.countries,
        config.baseline_samples as usize,
    );
    let fingerprint = StudyFingerprint::capture(&trace, &result, &config.confirm);
    TracedStudy {
        trace,
        result,
        fingerprint,
        flagged,
    }
}

fn scenario_orchestrator(
    seed: u64,
    config: OrchestratorConfig,
) -> Orchestrator<FaultyTransport<SimWeb>> {
    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(seed));
    let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(2)));
    Orchestrator::new(engine, scenario_config(), config)
}

/// Run the scenario's baseline through the orchestrator at `shards`
/// concurrent work units, under [`FaultPlan::standard`] weather for
/// `seed`. For any `shards`, the fingerprint equals the single-stream
/// scenario's at the same seed.
pub async fn run_sharded_scenario(seed: u64, shards: usize) -> TracedStudy {
    let orch = scenario_orchestrator(seed, OrchestratorConfig::default().shards(shards));
    let run = orch
        .baseline(&scenario_domains())
        .await
        .expect("sharded scenario baseline");
    assert!(!run.interrupted, "uninterrupted run must complete");
    finish_sharded(Arc::clone(orch.engine()), run).await
}

/// The kill/resume path: run the scenario's baseline until half the work
/// units have launched, drop the engine, then resume from the checkpoint
/// at `path` on a fresh engine (same seed, so the simulated weather
/// replays). The finished run's fingerprint equals an uninterrupted one's.
pub async fn run_sharded_scenario_resumed(seed: u64, shards: usize, path: &Path) -> TracedStudy {
    // Leg 1: checkpoint every unit, stop halfway.
    let config = scenario_config();
    let total = geoblock_orchestrator::ShardPlan::new(
        scenario_domains().len(),
        config.countries.len(),
        config.baseline_samples as usize,
        config.work_unit_domains,
    )
    .total_units();
    let orch = scenario_orchestrator(
        seed,
        OrchestratorConfig::default()
            .shards(shards)
            .checkpoint_every(1)
            .checkpoint_path(path)
            .stop_after_units((total / 2).max(1)),
    );
    let leg1 = orch
        .baseline(&scenario_domains())
        .await
        .expect("interrupted leg");
    assert!(
        leg1.interrupted || total == 1,
        "leg 1 must stop early (total_units={total})"
    );
    drop(orch);

    // Leg 2: a fresh process's engine — same seed — resumes and finishes.
    let checkpoint = Checkpoint::load(path).expect("checkpoint written by leg 1");
    let orch = scenario_orchestrator(
        seed,
        OrchestratorConfig::default()
            .shards(shards)
            .checkpoint_path(path),
    );
    let run = orch
        .resume(&scenario_domains(), checkpoint)
        .await
        .expect("resumed leg");
    assert!(!run.interrupted, "resumed run must complete");
    finish_sharded(Arc::clone(orch.engine()), run).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, GOLDEN_SEED};
    use geoblock_core::{PaperExact, ProbeBudget};

    #[tokio::test(flavor = "multi_thread")]
    async fn orchestrated_paper_exact_matches_single_stream_for_any_shard_count() {
        // The policy driver rides the same dispatcher as `baseline`, so
        // shard count must stay invisible in the study outputs. Probe
        // records live inside the policy run, not on `PolicyRun`, so the
        // comparison is on the data fingerprint (cells, archive, verdicts)
        // with the trace component held empty on both sides.
        let single = run_scenario(GOLDEN_SEED, 1).await;
        let empty = StudyTrace { events: Vec::new() };
        let config = scenario_config();
        let single_fp = StudyFingerprint::capture(&empty, &single.result, &config.confirm);
        for shards in [1, 2, 3] {
            let orch =
                scenario_orchestrator(GOLDEN_SEED, OrchestratorConfig::default().shards(shards));
            let mut policy = PaperExact;
            let run = orch
                .run_policy(&scenario_domains(), &mut policy, ProbeBudget::unlimited())
                .await
                .expect("orchestrated policy run");
            assert!(!run.interrupted);
            let fp = StudyFingerprint::capture(&empty, &run.result, &config.confirm);
            assert_eq!(fp, single_fp, "shards={shards}");
            assert_eq!(run.flagged.len(), single.flagged, "shards={shards}");
        }
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn one_shard_matches_the_single_stream_scenario() {
        let single = run_scenario(GOLDEN_SEED, 1).await;
        let sharded = run_sharded_scenario(GOLDEN_SEED, 1).await;
        assert_eq!(sharded.fingerprint, single.fingerprint);
        assert_eq!(
            sharded.trace.canonical_text(),
            single.trace.canonical_text()
        );
        assert_eq!(sharded.flagged, single.flagged);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn trace_rebuild_preserves_every_canonical_field() {
        let sharded = run_sharded_scenario(GOLDEN_SEED, 2).await;
        let single = run_scenario(GOLDEN_SEED, 1).await;
        // Field-level check, not just the hash: same lines, same order
        // after canonicalization.
        assert_eq!(
            sharded.trace.canonical_text(),
            single.trace.canonical_text()
        );
    }
}
