//! Fault-plan shrinking: delta-debugging a failing event schedule down to
//! a minimal reproducer.
//!
//! When a seed sweep diverges or an invariant trips, the evidence is a
//! [`FaultEvent`] schedule — possibly dozens of scripted faults, most of
//! them irrelevant to the failure. [`ddmin`] (and its async twin
//! [`ddmin_async`], for predicates that replay a whole study) implements
//! Zeller's classic delta-debugging minimization: repeatedly try subsets
//! and complements of the schedule, keep whichever still fails, and stop at
//! a 1-minimal set — removing *any single event* makes the failure go
//! away. The result is wrapped in a [`ReproFixture`], a serialized,
//! replayable artifact: feed its events to
//! [`ScriptedFaults`](geoblock_proxynet::ScriptedFaults) over the same
//! scenario and the same probes are struck.
//!
//! Schedules are put into [`canonical order`](canonical_events) before
//! shrinking so the minimizer's probe sequence — and therefore the fixture
//! it lands on — is itself deterministic.

use std::future::Future;

use geoblock_proxynet::FaultEvent;
use serde::{Deserialize, Serialize};

/// Sort and deduplicate a schedule into the canonical shrink order
/// (the derived ordering on [`FaultEvent`]: host, country, seq, kind).
pub fn canonical_events(mut events: Vec<FaultEvent>) -> Vec<FaultEvent> {
    events.sort();
    events.dedup();
    events
}

/// Split `len` items into `n` near-equal contiguous ranges.
fn ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, len.max(1));
    let chunk = len.div_ceil(n);
    (0..len)
        .step_by(chunk.max(1))
        .map(|start| (start, (start + chunk).min(len)))
        .collect()
}

fn complement_of<E: Clone>(items: &[E], (start, end): (usize, usize)) -> Vec<E> {
    let mut out = Vec::with_capacity(items.len() - (end - start));
    out.extend_from_slice(&items[..start]);
    out.extend_from_slice(&items[end..]);
    out
}

/// Minimize `input` to a 1-minimal subset on which `fails` still returns
/// `true`. If `input` itself does not fail, it is returned unchanged —
/// callers should treat that as "nothing to shrink".
pub fn ddmin<E: Clone>(input: &[E], mut fails: impl FnMut(&[E]) -> bool) -> Vec<E> {
    let mut current = input.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut n = 2;
    'outer: while current.len() >= 2 {
        let parts = ranges(current.len(), n);
        for &(start, end) in &parts {
            let subset = current[start..end].to_vec();
            if fails(&subset) {
                current = subset;
                n = 2;
                continue 'outer;
            }
        }
        if n > 2 {
            for &range in &parts {
                let complement = complement_of(&current, range);
                if fails(&complement) {
                    current = complement;
                    n -= 1;
                    continue 'outer;
                }
            }
        }
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }
    current
}

/// [`ddmin`] for async predicates — the shape a study replay has: each
/// probe of the minimizer re-runs the scenario under a
/// [`ScriptedFaults`](geoblock_proxynet::ScriptedFaults) schedule and
/// reports whether the divergence is still there.
pub async fn ddmin_async<E, F, Fut>(input: &[E], mut fails: F) -> Vec<E>
where
    E: Clone,
    F: FnMut(Vec<E>) -> Fut,
    Fut: Future<Output = bool>,
{
    let mut current = input.to_vec();
    if current.is_empty() || !fails(current.clone()).await {
        return current;
    }
    let mut n = 2;
    'outer: while current.len() >= 2 {
        let parts = ranges(current.len(), n);
        for &(start, end) in &parts {
            let subset = current[start..end].to_vec();
            if fails(subset.clone()).await {
                current = subset;
                n = 2;
                continue 'outer;
            }
        }
        if n > 2 {
            for &range in &parts {
                let complement = complement_of(&current, range);
                if fails(complement.clone()).await {
                    current = complement;
                    n -= 1;
                    continue 'outer;
                }
            }
        }
        if n >= current.len() {
            break;
        }
        n = (2 * n).min(current.len());
    }
    current
}

/// A shrunk, replayable failure: the minimal fault schedule plus enough
/// context to rerun it. Serialized as JSON so a failing CI run can emit the
/// fixture as an artifact and a developer can replay it locally.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproFixture {
    /// What failed, in prose (scenario, seed, what diverged).
    pub description: String,
    /// Seed of the run the schedule was harvested from.
    pub seed: u64,
    /// The 1-minimal fault schedule, in canonical order.
    pub events: Vec<FaultEvent>,
}

impl ReproFixture {
    /// A fixture over an already-minimized schedule.
    pub fn new(description: impl Into<String>, seed: u64, events: Vec<FaultEvent>) -> ReproFixture {
        ReproFixture {
            description: description.into(),
            seed,
            events: canonical_events(events),
        }
    }

    /// Serialize for emission as a file artifact.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fixture serializes")
    }

    /// Parse a previously emitted fixture.
    pub fn from_json(json: &str) -> Result<ReproFixture, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_proxynet::FaultKind;
    use geoblock_worldgen::cc;

    #[test]
    fn shrinks_to_a_planted_pair() {
        let input: Vec<u32> = (0..40).collect();
        let mut probes = 0;
        let minimal = ddmin(&input, |subset| {
            probes += 1;
            subset.contains(&7) && subset.contains(&31)
        });
        assert_eq!(minimal, vec![7, 31]);
        assert!(probes < 200, "ddmin ran {probes} probes on 40 items");
    }

    #[test]
    fn shrinks_to_a_singleton() {
        let input: Vec<u32> = (0..33).collect();
        let minimal = ddmin(&input, |subset| subset.contains(&17));
        assert_eq!(minimal, vec![17]);
    }

    #[test]
    fn result_is_one_minimal() {
        let input: Vec<u32> = (0..24).collect();
        // Fails whenever at least three even numbers survive.
        let fails = |subset: &[u32]| subset.iter().filter(|x| **x % 2 == 0).count() >= 3;
        let minimal = ddmin(&input, fails);
        assert!(fails(&minimal));
        for i in 0..minimal.len() {
            let mut without = minimal.clone();
            without.remove(i);
            assert!(!fails(&without), "dropping {} still fails", minimal[i]);
        }
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let input = vec![1u32, 2, 3];
        assert_eq!(ddmin(&input, |_| false), input);
        let empty: Vec<u32> = Vec::new();
        assert!(ddmin(&empty, |_| true).is_empty());
    }

    #[tokio::test]
    async fn async_variant_matches_sync() {
        let input: Vec<u32> = (0..40).collect();
        let minimal = ddmin_async(&input, |subset| async move {
            subset.contains(&7) && subset.contains(&31)
        })
        .await;
        assert_eq!(minimal, vec![7, 31]);
    }

    #[test]
    fn fixtures_round_trip_and_canonicalize() {
        let e1 = FaultEvent::new("b.example", cc("IR"), 2, FaultKind::Superproxy502);
        let e2 = FaultEvent::new("a.example", cc("US"), 1, FaultKind::ExitDeath);
        let fixture = ReproFixture::new("test", 7, vec![e1.clone(), e2.clone(), e1.clone()]);
        // Deduplicated and sorted into canonical order.
        assert_eq!(fixture.events, vec![e2, e1]);
        let parsed = ReproFixture::from_json(&fixture.to_json()).expect("parses");
        assert_eq!(parsed, fixture);
    }
}
