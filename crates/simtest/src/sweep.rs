//! The seed-sweep runner: determinism as a testable property.
//!
//! A deterministic study promises that its *outputs* are a function of the
//! seed alone — the concurrency knob may reorder work but must not change
//! what the study concludes. The sweep makes that promise falsifiable: run
//! the same scenario over a grid of seeds × concurrency levels, reduce
//! every run to a [`StudyFingerprint`] (trace hash, observation cells,
//! archived bodies, verdicts), and report every [`Divergence`] between a
//! seed's runs. A clean sweep is a strong regression guard: any
//! schedule-dependent state that leaks into results — an arrival-order
//! counter, a shared RNG, an unsorted map iteration — shows up as a hash
//! mismatch at some (seed, concurrency) cell.

use std::future::Future;

use geoblock_core::{ConfirmConfig, StudyResult};

use crate::trace::{fnv1a, obs_label, StudyTrace};

/// A study run reduced to four content hashes, one per output the paper's
/// pipeline cares about. Two runs are equivalent iff all four match;
/// comparing the components separately tells a diverging test *which*
/// output went schedule-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyFingerprint {
    /// Hash of the canonical probe trace (attempts, exits, faults, obs).
    pub trace_hash: u64,
    /// Hash of every observation cell in the sample store.
    pub cells_hash: u64,
    /// Hash of the archived bodies (keys and contents).
    pub archive_hash: u64,
    /// Hash of the final geoblocking verdicts.
    pub verdicts_hash: u64,
}

impl StudyFingerprint {
    /// Reduce a traced study to its fingerprint.
    pub fn capture(
        trace: &StudyTrace,
        result: &StudyResult,
        confirm: &ConfirmConfig,
    ) -> StudyFingerprint {
        let store = &result.store;

        let mut cells: Vec<String> = store
            .iter_cells()
            .map(|(d, c, samples)| {
                let obs: Vec<String> = samples.iter().map(obs_label).collect();
                format!(
                    "{}|{}|{}",
                    store.domains[d],
                    store.countries[c],
                    obs.join(",")
                )
            })
            .collect();
        cells.sort();

        let mut bodies: Vec<String> = result
            .archive
            .iter()
            .map(|((d, c, s), body)| format!("{d}/{c}/{s}|{}", String::from_utf8_lossy(body)))
            .collect();
        bodies.sort();

        let verdicts: Vec<String> = result
            .verdicts(confirm)
            .iter()
            .map(|v| {
                format!(
                    "{}|{}|{:?}|{}/{}",
                    v.domain, v.country, v.kind, v.block_count, v.total
                )
            })
            .collect();

        StudyFingerprint {
            trace_hash: trace.content_hash(),
            cells_hash: fnv1a(cells.join("\n").as_bytes()),
            archive_hash: fnv1a(bodies.join("\n").as_bytes()),
            verdicts_hash: fnv1a(verdicts.join("\n").as_bytes()),
        }
    }

    /// The names of the components on which `self` and `other` differ.
    pub fn diff(&self, other: &StudyFingerprint) -> Vec<&'static str> {
        let mut fields = Vec::new();
        if self.trace_hash != other.trace_hash {
            fields.push("trace");
        }
        if self.cells_hash != other.cells_hash {
            fields.push("cells");
        }
        if self.archive_hash != other.archive_hash {
            fields.push("archive");
        }
        if self.verdicts_hash != other.verdicts_hash {
            fields.push("verdicts");
        }
        fields
    }
}

/// One seed whose runs disagreed across concurrency levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The seed that diverged.
    pub seed: u64,
    /// The concurrency the seed's first run used (the comparison baseline).
    pub baseline_concurrency: usize,
    /// The concurrency whose run disagreed with the baseline.
    pub concurrency: usize,
    /// Which fingerprint components differed.
    pub fields: Vec<&'static str>,
}

/// The outcome of a full sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Seeds swept, in order.
    pub seeds: Vec<u64>,
    /// Concurrency levels each seed ran at.
    pub concurrencies: Vec<usize>,
    /// Total runs executed.
    pub runs: usize,
    /// Every (seed, concurrency) whose fingerprint broke from its seed's
    /// baseline run.
    pub divergences: Vec<Divergence>,
}

impl SweepReport {
    /// Whether every seed produced identical fingerprints at every
    /// concurrency level.
    pub fn is_deterministic(&self) -> bool {
        self.divergences.is_empty()
    }

    /// A short human-readable account, for assertion messages.
    pub fn summary(&self) -> String {
        if self.is_deterministic() {
            return format!(
                "{} runs over {} seeds × {:?}: deterministic",
                self.runs,
                self.seeds.len(),
                self.concurrencies
            );
        }
        let mut out = format!("{}/{} runs diverged:", self.divergences.len(), self.runs);
        for d in self.divergences.iter().take(8) {
            out.push_str(&format!(
                "\n  seed {:#x}: c={} vs c={} differ on {:?}",
                d.seed, d.concurrency, d.baseline_concurrency, d.fields
            ));
        }
        if self.divergences.len() > 8 {
            out.push_str(&format!("\n  … and {} more", self.divergences.len() - 8));
        }
        out
    }
}

/// Sweep `seeds × concurrencies`, fingerprinting each run via `run`, and
/// report every divergence from each seed's first (baseline) run. Runs are
/// executed sequentially — the determinism under test lives *inside* each
/// run, not across them.
pub async fn run_sweep<F, Fut>(seeds: &[u64], concurrencies: &[usize], mut run: F) -> SweepReport
where
    F: FnMut(u64, usize) -> Fut,
    Fut: Future<Output = StudyFingerprint>,
{
    let mut divergences = Vec::new();
    let mut runs = 0;
    for &seed in seeds {
        let mut baseline: Option<(usize, StudyFingerprint)> = None;
        for &concurrency in concurrencies {
            let fingerprint = run(seed, concurrency).await;
            runs += 1;
            match &baseline {
                None => baseline = Some((concurrency, fingerprint)),
                Some((baseline_concurrency, baseline_fp)) => {
                    let fields = baseline_fp.diff(&fingerprint);
                    if !fields.is_empty() {
                        divergences.push(Divergence {
                            seed,
                            baseline_concurrency: *baseline_concurrency,
                            concurrency,
                            fields,
                        });
                    }
                }
            }
        }
    }
    SweepReport {
        seeds: seeds.to_vec(),
        concurrencies: concurrencies.to_vec(),
        runs,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(seed: u64, wiggle: u64) -> StudyFingerprint {
        StudyFingerprint {
            trace_hash: seed ^ wiggle,
            cells_hash: seed,
            archive_hash: seed,
            verdicts_hash: seed,
        }
    }

    #[tokio::test]
    async fn schedule_independent_runs_sweep_clean() {
        let report = run_sweep(
            &[1, 2, 3],
            &[1, 4, 16],
            |seed, _c| async move { fp(seed, 0) },
        )
        .await;
        assert!(report.is_deterministic(), "{}", report.summary());
        assert_eq!(report.runs, 9);
    }

    #[tokio::test]
    async fn a_concurrency_dependent_run_is_flagged() {
        // Seed 2's trace hash leaks the concurrency level.
        let report = run_sweep(&[1, 2], &[1, 4, 16], |seed, c| async move {
            fp(seed, if seed == 2 { c as u64 } else { 0 })
        })
        .await;
        assert!(!report.is_deterministic());
        assert_eq!(report.divergences.len(), 2);
        let d = &report.divergences[0];
        assert_eq!((d.seed, d.baseline_concurrency, d.concurrency), (2, 1, 4));
        assert_eq!(d.fields, vec!["trace"]);
        assert!(report.summary().contains("differ on"));
    }

    #[test]
    fn fingerprint_diff_names_the_component() {
        let a = fp(1, 0);
        let mut b = a;
        assert!(a.diff(&b).is_empty());
        b.archive_hash ^= 1;
        b.verdicts_hash ^= 1;
        assert_eq!(a.diff(&b), vec!["archive", "verdicts"]);
    }
}
