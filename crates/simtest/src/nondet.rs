//! A test-only nondeterminism adversary.
//!
//! Everything in the real pipeline keys its randomness on stable
//! identities — (host, country, invocation, attempt) — precisely so that
//! the task schedule cannot leak into results. [`ArrivalOrderFaults`] is
//! the opposite on purpose: it faults every `period`-th request by *global
//! arrival order*, after yielding to the scheduler so concurrent probes
//! interleave. Under one fixed schedule (a `current_thread` runtime at a
//! fixed concurrency) it is perfectly repeatable; across concurrency
//! levels the ordinal→request mapping shifts and the study diverges. That
//! makes it the canary the DST harness is tested against: the seed sweep
//! must *catch* it, and the shrinker must reduce its recorded schedule to
//! a minimal scripted reproducer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geoblock_http::{FetchError, Response};
use geoblock_lumscan::{Transport, TransportRequest};
use geoblock_proxynet::{FaultEvent, FaultKind};
use geoblock_worldgen::CountryCode;
use parking_lot::Mutex;

/// Wraps a transport, failing every `period`-th request in global arrival
/// order and logging each strike as a replayable [`FaultEvent`].
pub struct ArrivalOrderFaults<T> {
    inner: T,
    period: u64,
    arrivals: AtomicU64,
    /// Per-(host, country) arrival counters, mirroring the keying of
    /// [`ScriptedFaults`](geoblock_proxynet::ScriptedFaults) so the log
    /// replays against the same slots.
    seqs: Mutex<HashMap<(String, CountryCode), u64>>,
    log: Arc<Mutex<Vec<FaultEvent>>>,
}

impl<T> ArrivalOrderFaults<T> {
    /// Fault every `period`-th arriving request (`period ≥ 1`).
    pub fn new(inner: T, period: u64) -> ArrivalOrderFaults<T> {
        assert!(period >= 1, "period must be at least 1");
        ArrivalOrderFaults {
            inner,
            period,
            arrivals: AtomicU64::new(0),
            seqs: Mutex::new(HashMap::new()),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle on the strike log that survives the transport moving into
    /// an engine.
    pub fn log_handle(&self) -> Arc<Mutex<Vec<FaultEvent>>> {
        self.log.clone()
    }
}

impl<T: Transport> Transport for ArrivalOrderFaults<T> {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        // Hand the scheduler a chance to interleave concurrent probes —
        // this is what couples the ordinal below to the task schedule.
        tokio::task::yield_now().await;
        let host = req.request.url.host.as_str().to_string();
        let seq = {
            let mut seqs = self.seqs.lock();
            let seq = seqs.entry((host.clone(), req.country)).or_insert(0);
            *seq += 1;
            *seq
        };
        let ordinal = self.arrivals.fetch_add(1, Ordering::SeqCst) + 1;
        if ordinal % self.period == 0 {
            self.log.lock().push(FaultEvent::new(
                host,
                req.country,
                seq,
                FaultKind::Superproxy502,
            ));
            return Err(FetchError::ProxyError {
                detail: "nondet: struck by arrival order".to_string(),
            });
        }
        self.inner.fetch_one(req).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Request, StatusCode};
    use geoblock_lumscan::SessionId;
    use geoblock_worldgen::cc;

    struct Always200;

    impl Transport for Always200 {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            Ok(Response::builder(StatusCode::OK)
                .body("ok")
                .finish(req.request.url))
        }
    }

    fn treq(host: &str, country: &str) -> TransportRequest {
        TransportRequest {
            request: Request::get(format!("http://{host}/").parse().unwrap()),
            country: cc(country),
            session: SessionId(1),
        }
    }

    #[tokio::test]
    async fn strikes_by_global_arrival_order() {
        let t = ArrivalOrderFaults::new(Always200, 3);
        let log = t.log_handle();
        let mut outcomes = Vec::new();
        for i in 0..9 {
            let host = format!("h{}.example", i % 2);
            outcomes.push(t.fetch_one(treq(&host, "IR")).await.is_ok());
        }
        assert_eq!(
            outcomes,
            vec![true, true, false, true, true, false, true, true, false]
        );
        let log = log.lock();
        assert_eq!(log.len(), 3);
        // Each strike is logged under its per-(host, country) sequence
        // number — the slot a ScriptedFaults replay would hit.
        assert_eq!(log[0].host, "h0.example");
        assert_eq!(log[0].seq, 2);
        assert_eq!(log[1].host, "h1.example");
        assert_eq!(log[1].seq, 3);
        assert!(log.iter().all(|e| e.kind == FaultKind::Superproxy502));
    }
}
