//! The shared DST scenario: a small deterministic web probed end to end.
//!
//! Every simulation test — golden-trace pinning, seed sweeps, shrinker
//! replays — needs the *same* study so their artifacts compare. This module
//! fixes one: five domains (two geoblocked via Cloudflare in IR and SY,
//! three plain) probed from four countries with the paper's 3-sample
//! baseline and 20-sample confirmation, behind a
//! [`FaultyTransport`] when a seed is given. [`run_scenario`] executes it
//! and reduces the run to a [`TracedStudy`]; replacing the transport via
//! [`run_scenario_on`] lets tests splice in scripted or adversarial
//! weather without changing what "the scenario" means.

use std::sync::Arc;

use geoblock_blockpages::{render, CompiledFingerprintSet, PageKind, PageParams};
use geoblock_core::confirm::flagged_explicit_pairs;
use geoblock_core::{
    EvidenceState, PaperExact, ProbeBudget, SamplingPolicy, StudyConfig, StudyResult, StudySession,
};
use geoblock_http::{FetchError, Response, StatusCode};
use geoblock_lumscan::{Lumscan, LumscanConfig, RetryPolicy, Transport, TransportRequest};
use geoblock_netsim::edge::browser_likeness;
use geoblock_netsim::SimClock;
use geoblock_proxynet::{FaultPlan, FaultyTransport, LUMTEST_HOST};
use geoblock_worldgen::cc;

use crate::sweep::StudyFingerprint;
use crate::trace::{StudyTrace, TraceSink};

/// The seed the golden-trace corpus is pinned to.
pub const GOLDEN_SEED: u64 = 42;

/// The scenario's deterministic web. `blocked-*` hosts serve a Cloudflare
/// error 1009 page in IR and SY and content elsewhere; `plain-*` hosts
/// always serve content (length varying by host, to exercise the archive's
/// length ceilings); the proxy check host echoes the exit's geolocation.
/// With a clock attached, each exchange charges virtual latency.
///
/// The [`SimWeb::evasive`] variant adds a bot-detection front: the edge
/// routes on the `Host` header (so domain-fronted requests reach the named
/// origin), serves a CAPTCHA to low-likeness header bundles and a JS
/// challenge to clients that cannot execute one, and rejects fronted
/// requests for `blocked-*` hosts with a fronting-mismatch page. The
/// default web stays exactly as the golden-trace corpus pinned it.
pub struct SimWeb {
    clock: Option<Arc<SimClock>>,
    evasive: bool,
}

impl SimWeb {
    /// The web with no clock: exchanges cost no virtual time.
    pub fn new() -> SimWeb {
        SimWeb {
            clock: None,
            evasive: false,
        }
    }

    /// Charge each exchange's latency to `clock`.
    pub fn with_clock(clock: Arc<SimClock>) -> SimWeb {
        SimWeb {
            clock: Some(clock),
            evasive: false,
        }
    }

    /// The web with the tiered bot-detection front enabled.
    pub fn evasive() -> SimWeb {
        SimWeb {
            clock: None,
            evasive: true,
        }
    }
}

impl Default for SimWeb {
    fn default() -> Self {
        SimWeb::new()
    }
}

impl Transport for SimWeb {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        if let Some(clock) = &self.clock {
            clock.charge_request(req.country);
        }
        // The evasive edge routes on the Host header (what real CDN edges
        // do, and what domain fronting exploits); the pinned default web
        // routes on the URL host exactly as the golden corpus froze it.
        let host = if self.evasive {
            req.request.effective_host()
        } else {
            req.request.url.host.as_str().to_string()
        };
        if host == LUMTEST_HOST {
            return Ok(Response::builder(StatusCode::OK)
                .body(format!("ip=10.0.0.1&country={}", req.country))
                .finish(req.request.url));
        }
        if self.evasive {
            let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
            // Fronting tier: `blocked-*` origins check the certificate
            // against the Host header and refuse the mismatch; `plain-*`
            // origins route on Host alone.
            let fronted = req.request.url.host.as_str() != host;
            if fronted && host.starts_with("blocked-") {
                return Ok(render(PageKind::CloudFrontFronting, &params).finish(req.request.url));
            }
            // Bot-detection tiers, ahead of any geo policy: a CAPTCHA for
            // scanner-grade header bundles, a JS interstitial for clients
            // that cannot execute the challenge. A full browser profile
            // passes both and observes the same web as the default.
            if browser_likeness(&req.request.headers) < 0.5 {
                return Ok(render(PageKind::CloudflareCaptcha, &params).finish(req.request.url));
            }
            if !req.request.js_capable {
                return Ok(render(PageKind::CloudflareJs, &params).finish(req.request.url));
            }
        }
        if host.starts_with("blocked-") && (req.country == cc("IR") || req.country == cc("SY")) {
            let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
            return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
        }
        Ok(Response::builder(StatusCode::OK)
            .body(format!(
                "<html><body>{host} serves {}</body></html>",
                "content ".repeat(40 + host.len())
            ))
            .finish(req.request.url))
    }
}

/// The scenario's domain list.
pub fn scenario_domains() -> Vec<String> {
    vec![
        "blocked-0.example".to_string(),
        "plain-0.example".to_string(),
        "blocked-1.example".to_string(),
        "plain-1.example".to_string(),
        "plain-2.example".to_string(),
    ]
}

/// The scenario's study configuration: four vantage countries, two
/// representative, the paper's sampling defaults.
pub fn scenario_config() -> StudyConfig {
    StudyConfig::builder()
        .countries([cc("IR"), cc("SY"), cc("US"), cc("DE")])
        .rep_countries([cc("IR"), cc("US")])
        .work_unit_domains(2)
        .build()
        .expect("valid study config")
}

/// The engine configuration the scenario probes with.
pub fn scenario_engine_config(concurrency: usize) -> LumscanConfig {
    LumscanConfig::builder()
        .retry(RetryPolicy::with_max_retries(3))
        .concurrency(concurrency)
        .build()
        .expect("valid engine config")
}

/// Probes in the scenario's baseline grid (what the trace must cover).
pub fn scenario_plan_len() -> usize {
    let config = scenario_config();
    scenario_domains().len() * config.countries.len() * config.baseline_samples as usize
}

/// A scenario run reduced to its comparable artifacts.
pub struct TracedStudy {
    /// The baseline pass's probe trace.
    pub trace: StudyTrace,
    /// Observation cells, archived bodies.
    pub result: StudyResult,
    /// The run's identity for sweep comparison.
    pub fingerprint: StudyFingerprint,
    /// Pairs the baseline flagged for confirmation.
    pub flagged: usize,
}

/// Run the scenario under [`FaultPlan::standard`] weather for `seed`.
pub async fn run_scenario(seed: u64, concurrency: usize) -> TracedStudy {
    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(seed));
    run_scenario_on(transport, concurrency).await
}

/// Run the scenario over an arbitrary transport (scripted faults, the
/// nondeterminism adversary, or a bare [`SimWeb`] for a fault-free
/// baseline).
pub async fn run_scenario_on<T: Transport + 'static>(
    transport: T,
    concurrency: usize,
) -> TracedStudy {
    run_with(transport, concurrency, None).await
}

/// Run the scenario over an arbitrary transport with a caller-supplied
/// engine configuration — the entry point for evasion studies, where the
/// probing [`ClientProfile`](geoblock_http::ClientProfile) or a fronting
/// host is set on the [`LumscanConfig`] rather than baked into the
/// scenario.
pub async fn run_scenario_with_config<T: Transport + 'static>(
    transport: T,
    engine_config: LumscanConfig,
) -> TracedStudy {
    run_configured(transport, engine_config, None).await
}

/// Run the golden scenario at concurrency 1 with a [`SimClock`] charged by
/// the transport and stamped into the trace — the configuration the golden
/// corpus pins, where virtual timestamps are schedule-independent.
pub async fn run_clocked_scenario(seed: u64) -> TracedStudy {
    let clock = Arc::new(SimClock::new());
    let transport =
        FaultyTransport::new(SimWeb::with_clock(clock.clone()), FaultPlan::standard(seed));
    run_with(transport, 1, Some(clock)).await
}

async fn run_with<T: Transport + 'static>(
    transport: T,
    concurrency: usize,
    clock: Option<Arc<SimClock>>,
) -> TracedStudy {
    run_configured(transport, scenario_engine_config(concurrency), clock).await
}

async fn run_configured<T: Transport + 'static>(
    transport: T,
    engine_config: LumscanConfig,
    clock: Option<Arc<SimClock>>,
) -> TracedStudy {
    let config = scenario_config();
    let domains = scenario_domains();
    let engine = Arc::new(Lumscan::new(transport, engine_config));

    let mut sink = TraceSink::grid(
        domains.clone(),
        config.countries.clone(),
        config.baseline_samples as usize,
        CompiledFingerprintSet::paper(),
    );
    if let Some(clock) = clock {
        sink = sink.with_clock(clock);
    }
    // The trace grid is sized for the baseline pass, so only the baseline
    // session carries the sink; confirmation runs sink-free on the same
    // engine, exactly as the pre-session driver did.
    let mut result = {
        let mut session = StudySession::new(engine.clone(), config.clone()).trace(&mut sink);
        session.baseline(&domains).await
    };
    let flagged = StudySession::new(engine, config.clone())
        .confirm(&mut result)
        .await;
    let trace = sink.into_trace();
    let fingerprint = StudyFingerprint::capture(&trace, &result, &config.confirm);
    TracedStudy {
        trace,
        result,
        fingerprint,
        flagged,
    }
}

/// Run the scenario through the round-by-round policy driver under
/// [`FaultPlan::standard`] weather for `seed`, with [`PaperExact`] by
/// default (`policy = None`). The opening grid round carries the trace
/// sink and later pair rounds run sink-free on the same engine — the
/// exact observer structure of [`run_scenario`], whose baseline session
/// is the only traced one. The refactor's promise is that under
/// `PaperExact` this run's [`StudyFingerprint`] is byte-identical to
/// [`run_scenario`]'s for every seed.
pub async fn run_policy_scenario(
    seed: u64,
    concurrency: usize,
    policy: Option<Box<dyn SamplingPolicy>>,
) -> TracedStudy {
    let transport = FaultyTransport::new(SimWeb::new(), FaultPlan::standard(seed));
    let config = scenario_config();
    let domains = scenario_domains();
    let engine = Arc::new(Lumscan::new(transport, scenario_engine_config(concurrency)));
    let mut policy = policy.unwrap_or_else(|| Box::new(PaperExact));
    let mut budget = ProbeBudget::unlimited();

    let mut sink = TraceSink::grid(
        domains.clone(),
        config.countries.clone(),
        config.baseline_samples as usize,
        CompiledFingerprintSet::paper(),
    );
    let mut result = StudySession::new(engine.clone(), config.clone()).empty_result(&domains);
    for round in 0.. {
        let request = {
            let evidence = EvidenceState::new(&result.store, &config, round);
            policy.next_round(&evidence, &budget)
        };
        if request.is_done() {
            break;
        }
        let probes = if round == 0 {
            let mut session = StudySession::new(engine.clone(), config.clone()).trace(&mut sink);
            session.run_round(&mut result, &request).await
        } else {
            let mut session = StudySession::new(engine.clone(), config.clone());
            session.run_round(&mut result, &request).await
        };
        budget.charge(round, probes as u64);
    }

    let flagged = flagged_explicit_pairs(&result.store).len();
    let trace = sink.into_trace();
    let fingerprint = StudyFingerprint::capture(&trace, &result, &config.confirm);
    TracedStudy {
        trace,
        result,
        fingerprint,
        flagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::check_flagged_floor;
    use geoblock_core::AdaptiveBandit;

    #[tokio::test]
    async fn paper_exact_policy_reproduces_the_scenario_bit_for_bit() {
        // The tentpole guarantee: routing the scenario through the policy
        // driver with PaperExact changes nothing — same trace, same
        // fingerprint, same flagged count — at more than one seed.
        for seed in [GOLDEN_SEED, 7, 1009] {
            let legacy = run_scenario(seed, 1).await;
            let policy = run_policy_scenario(seed, 1, None).await;
            assert_eq!(policy.fingerprint, legacy.fingerprint, "seed {seed}");
            assert_eq!(
                policy.trace.canonical_text(),
                legacy.trace.canonical_text(),
                "seed {seed}"
            );
            assert_eq!(policy.flagged, legacy.flagged, "seed {seed}");
        }
    }

    #[tokio::test]
    async fn adaptive_policy_never_under_samples_a_flagged_pair() {
        let config = scenario_config();
        let run =
            run_policy_scenario(GOLDEN_SEED, 1, Some(Box::new(AdaptiveBandit::default()))).await;
        let violations = check_flagged_floor(&run.result, &config);
        assert!(violations.is_empty(), "{violations:?}");
        // The adaptive run still finds the scenario's blocked pairs …
        assert!(run.flagged >= 1);
        let verdicts = run.result.verdicts(&config.confirm);
        assert!(
            verdicts.iter().any(|v| v.domain.starts_with("blocked-")),
            "{verdicts:?}"
        );
        // … while early-stopping at least one clean pair below baseline
        // depth (the probes the fixed protocol would have spent there).
        let min_cell = run
            .result
            .store
            .iter_cells()
            .map(|(_, _, s)| s.len())
            .min()
            .expect("cells probed");
        assert!(min_cell < config.baseline_samples as usize, "{min_cell}");
    }

    #[tokio::test]
    async fn evasive_web_is_invisible_to_a_full_browser() {
        // The bot-detection front must not perturb what a real browser
        // measures: the evasive web under the default (browser) profile
        // reproduces the plain fault-free web bit for bit.
        let plain = run_scenario_on(SimWeb::new(), 1).await;
        let evasive = run_scenario_with_config(SimWeb::evasive(), scenario_engine_config(1)).await;
        assert_eq!(evasive.fingerprint, plain.fingerprint);
        assert_eq!(evasive.trace.canonical_text(), plain.trace.canonical_text());
    }

    #[tokio::test]
    async fn evasive_web_challenges_scanners_instead_of_geoblocking() {
        use geoblock_http::ClientProfile;
        let config = LumscanConfig::builder()
            .retry(RetryPolicy::with_max_retries(3))
            .concurrency(1)
            .profile(ClientProfile::zgrab())
            .build()
            .expect("valid engine config");
        let run = run_scenario_with_config(SimWeb::evasive(), config).await;
        // Every cell observes the CAPTCHA tier; no explicit geoblock page
        // ever shows, so the study confirms no geoblocking verdicts.
        assert_eq!(run.flagged, 0);
        assert!(run.result.verdicts(&scenario_config().confirm).is_empty());
        let kinds: Vec<PageKind> = run
            .trace
            .events
            .iter()
            .filter_map(|e| match e.obs {
                geoblock_core::Obs::Response { page, .. } => page,
                geoblock_core::Obs::Error(_) => None,
            })
            .collect();
        assert!(!kinds.is_empty());
        assert!(kinds.iter().all(|k| *k == PageKind::CloudflareCaptcha));
    }

    #[tokio::test]
    async fn scenario_is_deterministic_at_fixed_concurrency() {
        let a = run_scenario(GOLDEN_SEED, 1).await;
        let b = run_scenario(GOLDEN_SEED, 1).await;
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.trace.canonical_text(), b.trace.canonical_text());
        assert_eq!(a.trace.len(), scenario_plan_len());
        assert_eq!(a.flagged, b.flagged);
    }

    #[tokio::test]
    async fn scenario_finds_the_geoblocked_pairs() {
        let run = run_scenario(GOLDEN_SEED, 1).await;
        let verdicts = run.result.verdicts(&scenario_config().confirm);
        // Two blocked domains from IR and SY: four confirmed verdicts.
        assert_eq!(verdicts.len(), 4, "{verdicts:?}");
        assert!(verdicts.iter().all(|v| v.kind == PageKind::Cloudflare));
        assert!(verdicts.iter().all(|v| v.domain.starts_with("blocked-")));
    }

    #[tokio::test]
    async fn clocked_runs_stamp_virtual_time() {
        let run = run_clocked_scenario(GOLDEN_SEED).await;
        assert!(run.trace.events.iter().all(|e| e.ts_micros > 0));
        // Later completions carry later (or equal) virtual timestamps: the
        // clock only moves forward.
        let stamps: Vec<u64> = run.trace.events.iter().map(|e| e.ts_micros).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }
}
