//! Nation-state censorship middleboxes.
//!
//! Server-side geoblocking must be *distinguishable* from network-side
//! censorship — that is the paper's core measurement problem. The simulation
//! therefore includes censors in the countries where OONI observes state
//! censorship (level ≥ 2 in the country registry). Censors intercept
//! requests inside the client's network, before any CDN edge: they reset
//! connections, blackhole them, or inject ISP block pages that match none
//! of the CDN fingerprints.

use geoblock_http::{Request, Response, StatusCode};
use geoblock_worldgen::{CountryCode, DomainSpec};

/// What a censor does with an intercepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensorAction {
    /// TCP reset injection (the Great-Firewall style).
    Reset,
    /// Silent blackholing: the client times out.
    Timeout,
    /// An injected ISP block page.
    BlockPage,
}

/// The global censorship layer.
#[derive(Debug, Default, Clone)]
pub struct Censorship;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

impl Censorship {
    /// Decide whether `country` censors `spec`. Deterministic per
    /// (country, domain): censorship is a standing policy, not a coin flip
    /// per request.
    pub fn action(&self, country: CountryCode, spec: &DomainSpec) -> Option<CensorAction> {
        let info = country.info()?;
        if info.censorship < 2 {
            return None;
        }
        // Citizen-Lab-listed (sensitive) domains are the censors' bread and
        // butter; a thin slice of ordinary domains is censored too (the "5
        // AppEngine domains censored in Iran" effect of §5.2.1).
        let h = mix(hash_str(&spec.name) ^ (country.0[0] as u64) << 8 ^ country.0[1] as u64);
        let threshold = if spec.on_citizenlab {
            match info.censorship {
                3 => 0.85,
                _ => 0.45,
            }
        } else {
            match info.censorship {
                3 => 0.009,
                _ => 0.003,
            }
        };
        if (h % 1_000_000) as f64 / 1_000_000.0 >= threshold {
            return None;
        }
        // Style differs by censor: pervasive censors favour resets and
        // blackholes, substantial censors inject block pages.
        Some(match (info.censorship, h >> 20 & 3) {
            (3, 0) => CensorAction::Reset,
            (3, 1) => CensorAction::Timeout,
            (3, _) => CensorAction::BlockPage,
            (_, 0) => CensorAction::Timeout,
            _ => CensorAction::BlockPage,
        })
    }

    /// Render the ISP block page a censoring network injects. Deliberately
    /// unlike any CDN block page.
    pub fn block_page(&self, country: CountryCode, request: &Request) -> Response {
        let name = country.info().map(|i| i.name).unwrap_or("this country");
        let body = format!(
            "<html><head><title>Restricted</title>\
             <meta http-equiv=\"Content-Type\" content=\"text/html; charset=utf-8\"></head>\
             <body><div align=\"center\">\
             <h2>The requested page is not available</h2>\
             <p>Access to this resource has been restricted under the \
             telecommunications regulations of {name}.</p>\
             <iframe src=\"http://10.10.34.36/inject\" style=\"display:none\"></iframe>\
             </div></body></html>"
        );
        Response::builder(StatusCode::FORBIDDEN)
            .header("Server", "Protected-Gateway")
            .body(body)
            .finish(request.url.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::FingerprintSet;
    use geoblock_worldgen::{cc, AlexaPopulation};

    fn spec(rank: u32) -> DomainSpec {
        AlexaPopulation::new(42, 20_000).spec(rank)
    }

    #[test]
    fn free_countries_never_censor() {
        let c = Censorship;
        for rank in 1..200 {
            assert_eq!(c.action(cc("US"), &spec(rank)), None);
            assert_eq!(c.action(cc("DE"), &spec(rank)), None);
        }
    }

    #[test]
    fn pervasive_censors_hit_sensitive_domains_hard() {
        let c = Censorship;
        let (mut censored, mut sensitive) = (0, 0);
        for rank in 1..=5000 {
            let s = spec(rank);
            if s.on_citizenlab {
                sensitive += 1;
                if c.action(cc("IR"), &s).is_some() {
                    censored += 1;
                }
            }
        }
        assert!(sensitive > 50, "sensitive {sensitive}");
        let rate = censored as f64 / sensitive as f64;
        assert!(rate > 0.6, "rate {rate}");
    }

    #[test]
    fn ordinary_domains_rarely_censored() {
        let c = Censorship;
        let censored = (1..=3000)
            .map(spec)
            .filter(|s| !s.on_citizenlab)
            .filter(|s| c.action(cc("CN"), s).is_some())
            .count();
        assert!(censored < 60, "censored {censored}");
        assert!(censored > 0, "some collateral censorship expected");
    }

    #[test]
    fn censorship_is_deterministic_per_pair() {
        let c = Censorship;
        for rank in 1..100 {
            let s = spec(rank);
            assert_eq!(c.action(cc("SY"), &s), c.action(cc("SY"), &s));
        }
    }

    #[test]
    fn censor_page_matches_no_cdn_fingerprint() {
        let c = Censorship;
        let req = geoblock_http::Request::get("http://x.com/".parse().unwrap());
        let page = c.block_page(cc("IR"), &req);
        assert!(FingerprintSet::paper().classify(&page).is_none());
        assert_eq!(page.status, StatusCode::FORBIDDEN);
    }
}
