//! [`SimInternet`]: the request entry point of the simulated Internet.

use std::collections::HashMap;
use std::sync::Arc;

use geoblock_http::{FetchError, Request, Response, StatusCode};
use geoblock_worldgen::{CountryCode, World};
use parking_lot::Mutex;

use crate::censor::{CensorAction, Censorship};
use crate::clock::SimClock;
use crate::edge;
use crate::geoip::Region;
use crate::origin::OriginCache;
use crate::timeline::PolicyTimeline;

/// Who is asking: the edge-visible client identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientContext {
    /// Client IP as the edge sees it.
    pub ip: String,
    /// GeoIP country.
    pub country: CountryCode,
    /// GeoIP region, when modelled (Crimea).
    pub region: Option<Region>,
    /// Residential (proxy-network) clients face IP-reputation noise that
    /// datacenter VPSes do not.
    pub residential: bool,
    /// Replayable per-request nonce, usually derived from the proxy
    /// session. When set, the edge's stochastic draws depend only on it —
    /// no shared counters, so concurrent studies replay exactly. When
    /// absent (direct callers), a per-(domain, country) counter supplies
    /// the sequence instead.
    pub seq_nonce: Option<u64>,
}

/// A well-known host that echoes the client's geolocation the way a
/// Cloudflare-fronted site does via `CF-IPCountry` (§2.2 uses this to
/// verify VPS locations).
pub const GEO_ECHO_HOST: &str = "geocheck.example";

const SEQ_SHARDS: usize = 32;

/// The simulated Internet: resolves hosts to domain specs, applies
/// censorship, and lets the CDN edge serve.
pub struct SimInternet {
    world: Arc<World>,
    cache: OriginCache,
    censor: Censorship,
    clock: Arc<SimClock>,
    /// Per-(domain, country) request sequence numbers, sharded to keep the
    /// hot path uncontended. These make per-request randomness replayable
    /// regardless of async interleaving.
    seq: Vec<Mutex<HashMap<(u32, u16), u32>>>,
    /// Scheduled policy evolution, applied to each request's spec copy by
    /// virtual day. `None` (the default) freezes the world.
    timeline: Option<Arc<PolicyTimeline>>,
}

impl SimInternet {
    /// Build over a world.
    pub fn new(world: Arc<World>) -> SimInternet {
        SimInternet {
            world,
            cache: OriginCache::new(16_384),
            censor: Censorship,
            clock: Arc::new(SimClock::new()),
            seq: (0..SEQ_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            timeline: None,
        }
    }

    /// Attach a [`PolicyTimeline`]: from now on, every request's spec has
    /// all events up to the clock's current day applied before the edge
    /// serves, so repeated scans observe an evolving world.
    pub fn with_timeline(mut self, timeline: PolicyTimeline) -> SimInternet {
        self.timeline = Some(Arc::new(timeline));
        self
    }

    /// The attached timeline, if any.
    pub fn timeline(&self) -> Option<&Arc<PolicyTimeline>> {
        self.timeline.as_ref()
    }

    /// The world this Internet serves.
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// The virtual clock (advance days between study passes).
    pub fn clock(&self) -> &Arc<SimClock> {
        &self.clock
    }

    fn next_seq(&self, rank: u32, country: CountryCode) -> u64 {
        let cidx = country.index().unwrap_or(255) as u16;
        let shard = (rank as usize ^ cidx as usize) % SEQ_SHARDS;
        let mut map = self.seq[shard].lock();
        let counter = map.entry((rank, cidx)).or_insert(0);
        *counter += 1;
        *counter as u64
    }

    /// Perform one HTTP exchange from `client`.
    pub fn request(
        &self,
        request: &Request,
        client: &ClientContext,
    ) -> Result<Response, FetchError> {
        self.clock.charge_request(client.country);

        let host = request.effective_host();
        if host == GEO_ECHO_HOST {
            return Ok(Response::builder(StatusCode::OK)
                .header("Server", "cloudflare")
                .header("CF-RAY", "0000000000000000-IAD")
                .header("CF-IPCountry", client.country.as_str())
                .body(format!("ip={}&country={}", client.ip, client.country))
                .finish(request.url.clone()));
        }

        let Some(mut spec) = self.world.population.spec_of(&host) else {
            return Err(FetchError::DnsFailure { host });
        };
        // Policy evolution: the spec is a per-request copy, so applying
        // the timeline here leaves worldgen's ground truth untouched.
        if let Some(timeline) = &self.timeline {
            timeline.apply(&mut spec, self.clock.day());
        }

        // Network-side censorship happens before any CDN edge is reached.
        // Over HTTPS the censor sees only the SNI: it can reset or drop the
        // handshake but cannot forge a response, so block-page injection
        // degrades to a reset (why HTTPS-era censorship measurement sees
        // mostly connection-level anomalies).
        if let Some(action) = self.censor.action(client.country, &spec) {
            let https = request.url.scheme == "https";
            return match action {
                CensorAction::Reset => Err(FetchError::ConnectionReset),
                CensorAction::Timeout => Err(FetchError::Timeout),
                CensorAction::BlockPage if https => Err(FetchError::ConnectionReset),
                CensorAction::BlockPage => Ok(self.censor.block_page(client.country, request)),
            };
        }

        let seq = client
            .seq_nonce
            .unwrap_or_else(|| self.next_seq(spec.rank, client.country));
        match edge::serve(&spec, &self.cache, request, client, self.clock.day(), seq) {
            Some(response) => Ok(response),
            None => Err(FetchError::Timeout),
        }
    }
}

#[cfg(test)]
impl SimInternet {
    /// Test-only access to the censor.
    pub(crate) fn censor(&self) -> &Censorship {
        &self.censor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::ClientProfile;
    use geoblock_worldgen::{cc, WorldConfig};

    fn internet() -> SimInternet {
        SimInternet::new(Arc::new(World::build(WorldConfig::tiny(42))))
    }

    fn client(country: &str) -> ClientContext {
        ClientContext {
            ip: "5.9.1.1".into(),
            country: cc(country),
            region: None,
            residential: true,
            seq_nonce: None,
        }
    }

    fn get(host: &str) -> Request {
        Request::get(format!("http://{host}/").parse().unwrap())
            .client_profile(&ClientProfile::browser())
    }

    #[test]
    fn known_domains_resolve_and_serve() {
        let net = internet();
        let name = net.world().population.spec(5).name.clone();
        let resp = net.request(&get(&name), &client("US")).unwrap();
        assert!(resp.status.is_success() || resp.status.is_redirect());
    }

    #[test]
    fn unknown_hosts_fail_dns() {
        let net = internet();
        let err = net
            .request(&get("no-such-host.example"), &client("US"))
            .unwrap_err();
        assert!(matches!(err, FetchError::DnsFailure { .. }));
    }

    #[test]
    fn geo_echo_reports_client_country() {
        let net = internet();
        let resp = net.request(&get(GEO_ECHO_HOST), &client("KE")).unwrap();
        assert_eq!(resp.headers.get("cf-ipcountry"), Some("KE"));
        assert!(resp.body.as_text().contains("country=KE"));
    }

    #[test]
    fn sequence_numbers_advance_per_pair() {
        let net = internet();
        let a = net.next_seq(17, cc("US"));
        let b = net.next_seq(17, cc("US"));
        let c = net.next_seq(17, cc("FR"));
        assert_eq!(b, a + 1);
        assert_eq!(c, 1);
    }

    #[test]
    fn censored_sensitive_domains_fail_in_iran_not_germany() {
        let net = internet();
        // Find a Citizen-Lab domain within the tiny world.
        let pop = &net.world().population;
        let mut found = false;
        for rank in 1..=net.world().config.population_size {
            let spec = pop.spec(rank);
            if spec.on_citizenlab && net.censor().action(cc("IR"), &spec).is_some() {
                let iran = net.request(&get(&spec.name), &client("IR"));
                let germany = net.request(&get(&spec.name), &client("DE"));
                // Iran: censored (error or censor page); Germany: normal.
                match iran {
                    Err(_) => {}
                    Ok(resp) => assert!(resp
                        .body
                        .as_text()
                        .contains("telecommunications regulations")),
                }
                assert!(germany.is_ok());
                found = true;
                break;
            }
        }
        assert!(found, "no censored domain found in tiny world");
    }

    #[test]
    fn https_censorship_is_connection_level_only() {
        // A censor that injects block pages on HTTP can only reset HTTPS.
        let net = internet();
        let pop = &net.world().population;
        for rank in 1..=net.world().config.population_size {
            let spec = pop.spec(rank);
            if net.censor().action(cc("IR"), &spec) == Some(crate::censor::CensorAction::BlockPage)
            {
                let http = Request::get(format!("http://{}/", spec.name).parse().unwrap());
                let https = Request::get(format!("https://{}/", spec.name).parse().unwrap());
                let cl = client("IR");
                assert!(
                    net.request(&http, &cl).is_ok(),
                    "http gets the injected page"
                );
                assert!(
                    matches!(net.request(&https, &cl), Err(FetchError::ConnectionReset)),
                    "https must reset"
                );
                return;
            }
        }
        panic!("no block-page-censored domain in the tiny world");
    }

    #[test]
    fn timeline_rules_activate_and_retreat_with_the_clock() {
        use crate::timeline::{PolicyChange, PolicyTimeline, TimelineEvent};
        use geoblock_blockpages::Provider;

        let world = Arc::new(World::build(WorldConfig::tiny(42)));
        // A Cloudflare-fronted domain with no blocking of its own that
        // serves Botswana normally.
        let probe_net = SimInternet::new(world.clone());
        let mut target = None;
        for rank in 1..=world.config.population_size {
            let spec = world.population.spec(rank);
            if !spec.uses(Provider::Cloudflare)
                || spec.policy.geoblocks()
                || spec.policy.challenged.contains(cc("BW"))
                || probe_net.censor().action(cc("BW"), &spec).is_some()
            {
                continue;
            }
            if probe_net
                .request(&get(&spec.name), &client("BW"))
                .is_ok_and(|r| r.status.is_success() || r.status.is_redirect())
            {
                target = Some(spec.name.clone());
                break;
            }
        }
        let name = target.expect("tiny world has a clean Cloudflare domain");

        let net = SimInternet::new(world).with_timeline(PolicyTimeline::scripted([
            TimelineEvent {
                day: 1,
                host: name.clone(),
                change: PolicyChange::BlockCountry(cc("BW")),
            },
            TimelineEvent {
                day: 3,
                host: name.clone(),
                change: PolicyChange::FullRetreat,
            },
        ]));
        let blocked_count = |net: &SimInternet| {
            (0..10)
                .filter(|_| {
                    net.request(&get(&name), &client("BW"))
                        .is_ok_and(|r| r.status == StatusCode::FORBIDDEN)
                })
                .count()
        };
        assert_eq!(blocked_count(&net), 0, "day 0: rule not yet active");
        net.clock().advance_days(1);
        assert!(blocked_count(&net) > 0, "day 1: the rule is live");
        net.clock().advance_days(2);
        assert_eq!(blocked_count(&net), 0, "day 3: full retreat");
    }

    #[test]
    fn clock_accumulates_as_requests_flow() {
        let net = internet();
        let name = net.world().population.spec(3).name.clone();
        let before = net.clock().now_micros();
        for _ in 0..50 {
            let _ = net.request(&get(&name), &client("US"));
        }
        assert!(net.clock().now_micros() > before);
    }
}
