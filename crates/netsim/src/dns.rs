//! The DNS view of the simulated Internet.
//!
//! Three identification tricks from the paper live on DNS:
//!
//! * §3.1 finds Akamai and Cloudflare customers "by examining the DNS
//!   server used by each domain" — NS delegation to `*.akam.net` or
//!   `*.ns.cloudflare.com`. The method "only exposes a fraction" of each
//!   CDN's customers, and that fraction is *biased* toward large
//!   enterprise zones (which also geoblock more) — the simulation models
//!   the visibility bias explicitly.
//! * §5.1.1 finds Google AppEngine customers by recursively resolving
//!   `_cloud-netblocks.googleusercontent.com` TXT records into 65 IP
//!   blocks and matching domains' A records against them.
//! * A records: each provider serves from a recognisable address pool.

use geoblock_blockpages::Provider;
use geoblock_worldgen::{DomainSpec, World};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// DNS record types the simulation answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RrType {
    A,
    Ns,
    Txt,
}

/// One DNS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    /// Queried name.
    pub name: String,
    /// Record type.
    pub rrtype: RrType,
    /// Record data (address, NS host, or TXT payload).
    pub data: String,
}

/// Number of AppEngine netblocks (§5.1.1 found 65).
pub const APPENGINE_NETBLOCK_COUNT: u32 = 65;

/// Number of `_cloud-netblocksN` TXT groups.
const NETBLOCK_GROUPS: u32 = 5;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The `i`-th AppEngine netblock as a /16 CIDR string.
pub fn appengine_netblock(i: u32) -> String {
    format!("172.{}.0.0/16", 100 + (i % APPENGINE_NETBLOCK_COUNT))
}

/// Whether a CDN customer's NS delegation is visible (points at the CDN's
/// name servers). Zones that geoblock are heavily over-represented: big
/// enterprise customers both delegate DNS to their CDN and comply with
/// sanctions.
pub fn ns_visible(spec: &DomainSpec, provider: Provider) -> bool {
    let h = mix(hash_name(&spec.name) ^ 0x05) % 1000;
    let blocker = spec.policy.geoblocks();
    let p = match (provider, blocker) {
        (Provider::Cloudflare, false) => 18,
        (Provider::Cloudflare, true) => 160,
        (Provider::Akamai, false) => 360,
        (Provider::Akamai, true) => 850,
        _ => 0,
    };
    h < p
}

/// DNS database over a world.
pub struct DnsDb {
    world: Arc<World>,
}

impl DnsDb {
    /// Build over `world`.
    pub fn new(world: Arc<World>) -> DnsDb {
        DnsDb { world }
    }

    /// Answer a query. Unknown names return an empty answer section.
    pub fn query(&self, name: &str, rrtype: RrType) -> Vec<DnsRecord> {
        let name = name.to_ascii_lowercase();
        match rrtype {
            RrType::Txt => self.query_txt(&name),
            RrType::Ns => self.query_ns(&name),
            RrType::A => self.query_a(&name),
        }
    }

    fn query_txt(&self, name: &str) -> Vec<DnsRecord> {
        if name == "_cloud-netblocks.googleusercontent.com" {
            let includes: Vec<String> = (1..=NETBLOCK_GROUPS)
                .map(|g| format!("include:_cloud-netblocks{g}.googleusercontent.com"))
                .collect();
            return vec![DnsRecord {
                name: name.to_string(),
                rrtype: RrType::Txt,
                data: format!("v=spf1 {} ?all", includes.join(" ")),
            }];
        }
        if let Some(rest) = name.strip_prefix("_cloud-netblocks") {
            if let Some(group) = rest
                .strip_suffix(".googleusercontent.com")
                .and_then(|g| g.parse::<u32>().ok())
            {
                if (1..=NETBLOCK_GROUPS).contains(&group) {
                    let per_group = APPENGINE_NETBLOCK_COUNT / NETBLOCK_GROUPS;
                    let start = (group - 1) * per_group;
                    let blocks: Vec<String> = (start..start + per_group)
                        .map(|i| format!("ip4:{}", appengine_netblock(i)))
                        .collect();
                    return vec![DnsRecord {
                        name: name.to_string(),
                        rrtype: RrType::Txt,
                        data: format!("v=spf1 {} ?all", blocks.join(" ")),
                    }];
                }
            }
        }
        Vec::new()
    }

    fn query_ns(&self, name: &str) -> Vec<DnsRecord> {
        let Some(spec) = self.world.population.spec_of(name) else {
            return Vec::new();
        };
        let h = hash_name(name);
        for &p in &spec.providers {
            if ns_visible(&spec, p) {
                let (a, b) = match p {
                    Provider::Cloudflare => (
                        format!("ada{}.ns.cloudflare.com", h % 7),
                        format!("cruz{}.ns.cloudflare.com", h % 5),
                    ),
                    Provider::Akamai => (
                        format!("a{}-64.akam.net", 1 + h % 28),
                        format!("a{}-67.akam.net", 1 + (h >> 8) % 28),
                    ),
                    _ => continue,
                };
                return vec![
                    DnsRecord {
                        name: name.to_string(),
                        rrtype: RrType::Ns,
                        data: a,
                    },
                    DnsRecord {
                        name: name.to_string(),
                        rrtype: RrType::Ns,
                        data: b,
                    },
                ];
            }
        }
        vec![
            DnsRecord {
                name: name.to_string(),
                rrtype: RrType::Ns,
                data: format!("ns1.hoster{}.net", h % 997),
            },
            DnsRecord {
                name: name.to_string(),
                rrtype: RrType::Ns,
                data: format!("ns2.hoster{}.net", h % 997),
            },
        ]
    }

    fn query_a(&self, name: &str) -> Vec<DnsRecord> {
        let Some(spec) = self.world.population.spec_of(name) else {
            return Vec::new();
        };
        let h = hash_name(name);
        let addr = match spec.providers.first() {
            Some(Provider::Cloudflare) => format!("104.16.{}.{}", h % 256, (h >> 8) % 256),
            Some(Provider::Akamai) => {
                format!("23.{}.{}.{}", 32 + h % 32, (h >> 8) % 256, (h >> 16) % 256)
            }
            Some(Provider::CloudFront) => {
                format!("13.{}.{}.{}", 224 + h % 16, (h >> 8) % 256, (h >> 16) % 256)
            }
            Some(Provider::AppEngine) => {
                let block = 100 + (h % APPENGINE_NETBLOCK_COUNT as u64);
                format!("172.{}.{}.{}", block, (h >> 8) % 256, (h >> 16) % 256)
            }
            Some(Provider::Incapsula) => format!("45.60.{}.{}", h % 256, (h >> 8) % 256),
            Some(Provider::Baidu) => format!("119.63.{}.{}", h % 256, (h >> 8) % 256),
            _ => format!("198.{}.{}.{}", 51 + h % 4, (h >> 8) % 256, (h >> 16) % 256),
        };
        vec![DnsRecord {
            name: name.to_string(),
            rrtype: RrType::A,
            data: addr,
        }]
    }
}

/// Parse the `ip4:` entries out of an SPF-style TXT payload.
pub fn parse_spf_blocks(txt: &str) -> Vec<String> {
    txt.split_whitespace()
        .filter_map(|tok| tok.strip_prefix("ip4:"))
        .map(str::to_string)
        .collect()
}

/// Parse the `include:` names out of an SPF-style TXT payload.
pub fn parse_spf_includes(txt: &str) -> Vec<String> {
    txt.split_whitespace()
        .filter_map(|tok| tok.strip_prefix("include:"))
        .map(str::to_string)
        .collect()
}

/// Whether `ip` falls within a `/16` CIDR block.
pub fn in_block(ip: &str, cidr: &str) -> bool {
    let Some((prefix, bits)) = cidr.split_once('/') else {
        return false;
    };
    if bits != "16" {
        return false;
    }
    let p: Vec<&str> = prefix.split('.').collect();
    let i: Vec<&str> = ip.split('.').collect();
    p.len() == 4 && i.len() == 4 && p[0] == i[0] && p[1] == i[1]
}

impl geoblock_core::population::Resolver for DnsDb {
    fn ns(&self, name: &str) -> Vec<String> {
        self.query(name, RrType::Ns)
            .into_iter()
            .map(|r| r.data)
            .collect()
    }

    fn a(&self, name: &str) -> Vec<String> {
        self.query(name, RrType::A)
            .into_iter()
            .map(|r| r.data)
            .collect()
    }

    fn txt(&self, name: &str) -> Vec<String> {
        self.query(name, RrType::Txt)
            .into_iter()
            .map(|r| r.data)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::WorldConfig;

    fn db() -> DnsDb {
        DnsDb::new(Arc::new(World::build(WorldConfig::tiny(42))))
    }

    #[test]
    fn netblock_discovery_walks_recursively() {
        let db = db();
        let root = db.query("_cloud-netblocks.googleusercontent.com", RrType::Txt);
        assert_eq!(root.len(), 1);
        let includes = parse_spf_includes(&root[0].data);
        assert_eq!(includes.len(), 5);
        let mut blocks = Vec::new();
        for inc in includes {
            let txt = db.query(&inc, RrType::Txt);
            assert_eq!(txt.len(), 1, "missing TXT for {inc}");
            blocks.extend(parse_spf_blocks(&txt[0].data));
        }
        assert_eq!(blocks.len(), 65);
    }

    #[test]
    fn appengine_a_records_fall_in_discovered_blocks() {
        let db = db();
        let world = db.world.clone();
        let mut checked = 0;
        for rank in 1..=world.config.population_size {
            let spec = world.population.spec(rank);
            if spec.providers.first() == Some(&Provider::AppEngine) {
                let a = db.query(&spec.name, RrType::A);
                let ip = &a[0].data;
                let hit =
                    (0..APPENGINE_NETBLOCK_COUNT).any(|i| in_block(ip, &appengine_netblock(i)));
                assert!(hit, "{} -> {ip} not in any netblock", spec.name);
                checked += 1;
                if checked > 20 {
                    break;
                }
            }
        }
        assert!(checked > 5, "too few AppEngine domains checked: {checked}");
    }

    #[test]
    fn ns_visibility_is_partial_for_cloudflare() {
        let db = db();
        let world = db.world.clone();
        let (mut visible, mut total) = (0, 0);
        for rank in 1..=world.config.population_size {
            let spec = world.population.spec(rank);
            if spec.uses(Provider::Cloudflare) {
                total += 1;
                let ns = db.query(&spec.name, RrType::Ns);
                if ns.iter().any(|r| r.data.ends_with(".ns.cloudflare.com")) {
                    visible += 1;
                }
            }
        }
        assert!(total > 500, "total {total}");
        let frac = visible as f64 / total as f64;
        // §3.1: "only exposes a fraction" — ~2% of Cloudflare customers.
        assert!((0.005..0.08).contains(&frac), "visible fraction {frac}");
    }

    #[test]
    fn ns_visibility_is_biased_toward_geoblockers() {
        let db = db();
        let world = db.world.clone();
        let (mut vis_block, mut tot_block, mut vis_plain, mut tot_plain) = (0, 0, 0, 0);
        for rank in 1..=world.config.population_size {
            let spec = world.population.spec(rank);
            if spec.uses(Provider::Akamai) {
                let visible = db
                    .query(&spec.name, RrType::Ns)
                    .iter()
                    .any(|r| r.data.ends_with(".akam.net"));
                if spec.policy.geoblocks() {
                    tot_block += 1;
                    vis_block += usize::from(visible);
                } else {
                    tot_plain += 1;
                    vis_plain += usize::from(visible);
                }
            }
        }
        assert!(tot_block >= 3, "blockers {tot_block}");
        let rb = vis_block as f64 / tot_block as f64;
        let rp = vis_plain as f64 / tot_plain.max(1) as f64;
        assert!(rb > rp, "blocker visibility {rb} <= plain {rp}");
    }

    #[test]
    fn unknown_names_get_empty_answers() {
        let db = db();
        assert!(db.query("unknown.example", RrType::A).is_empty());
        assert!(db.query("unknown.example", RrType::Ns).is_empty());
        assert!(db.query("unknown.example", RrType::Txt).is_empty());
    }

    #[test]
    fn in_block_matches_slash_16() {
        assert!(in_block("172.105.3.4", "172.105.0.0/16"));
        assert!(!in_block("172.106.3.4", "172.105.0.0/16"));
        assert!(!in_block("garbage", "172.105.0.0/16"));
        assert!(!in_block("172.105.3.4", "172.105.0.0/24"));
    }
}
