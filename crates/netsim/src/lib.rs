//! The simulated Internet substrate.
//!
//! The paper measures the real web from hundreds of vantage points; this
//! crate is the in-process stand-in: a deterministic world of origin
//! servers fronted by CDN edges that enforce the ground-truth policies from
//! `geoblock-worldgen`, watched over by nation-state censorship middleboxes
//! in the countries where OONI observes them.
//!
//! Layers, bottom up:
//!
//! * [`clock`] — a virtual clock (study time passes in microseconds of real
//!   time; the `makro.co.za` policy flip needs days to elapse between the
//!   baseline and confirmation passes);
//! * [`geoip`] — synthetic client addresses with country + region (Crimea
//!   is a region of Ukraine, which is how AppEngine's regional blocking
//!   surfaces in §4.2.2);
//! * [`origin`] — real landing pages, cached as [`bytes::Bytes`] so a
//!   million-sample study never re-renders them;
//! * [`censor`] — per-country interception (resets, timeouts, ISP block
//!   pages that deliberately match no CDN fingerprint);
//! * [`edge`] — the CDN edge logic: geo firewall rules, CAPTCHA/JS
//!   challenges, bot detection keyed on header completeness, identifying
//!   headers (`CF-RAY`, `X-Amz-Cf-Id`, `X-Iinfo`), and the Akamai `Pragma`
//!   debug headers;
//! * [`dns`] — NS/A/TXT resolution, including the recursive
//!   `_cloud-netblocks` discovery used to find AppEngine customers;
//! * [`timeline`] — scripted, seed-deterministic policy evolution over
//!   virtual days (rules added/removed, provider migrations, `makro`-style
//!   full retreats), so longitudinal scans observe a moving world;
//! * [`net`] — [`SimInternet`], the request entry point;
//! * [`vps`] — datacenter vantage points implementing
//!   [`geoblock_lumscan::Transport`] for the §3 exploration.

pub mod censor;
pub mod clock;
pub mod dns;
pub mod edge;
pub mod geoip;
pub mod net;
pub mod origin;
pub mod timeline;
pub mod vps;

pub use censor::{CensorAction, Censorship};
pub use clock::SimClock;
pub use dns::{DnsDb, DnsRecord, RrType};
pub use geoip::{ClientAddr, Region};
pub use net::{ClientContext, SimInternet};
pub use timeline::{PolicyChange, PolicyTimeline, TimelineEvent};
pub use vps::VpsTransport;
