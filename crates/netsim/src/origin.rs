//! Origin servers: real landing pages.
//!
//! Pages are rendered once per domain and cached as [`Bytes`]; per-sample
//! length variation (dynamic content, localisation, ad fill) is modelled by
//! serving a zero-copy *prefix slice* of the cached page. The longest
//! instance — what the page-length heuristic uses as the representative —
//! is the full render, and typical samples run 0–25% shorter, matching the
//! mass near zero in Figure 2.

use bytes::Bytes;
use geoblock_worldgen::DomainSpec;
use parking_lot::RwLock;
use std::collections::HashMap;

/// splitmix64 step for deterministic jitter.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Bounded cache of rendered origin pages.
#[derive(Debug)]
pub struct OriginCache {
    pages: RwLock<HashMap<String, Bytes>>,
    max_entries: usize,
}

/// Filler sentences for page bodies.
const FILLER: &[&str] = &[
    "Discover our latest arrivals and seasonal highlights.",
    "Sign in to your account to continue where you left off.",
    "Our team curates the best content from around the world.",
    "Subscribe to the newsletter for weekly updates and offers.",
    "Read what our customers have to say about their experience.",
    "Browse the full catalogue by category, brand, or price.",
    "Free shipping on qualifying orders over the minimum value.",
    "Follow us on social media for announcements and community events.",
    "This site uses cookies to improve performance and analytics.",
    "Explore trending topics, editor picks, and staff favourites.",
];

impl OriginCache {
    /// Cache bounded to `max_entries` pages (FIFO-ish eviction).
    pub fn new(max_entries: usize) -> OriginCache {
        OriginCache {
            pages: RwLock::new(HashMap::new()),
            max_entries: max_entries.max(16),
        }
    }

    /// The full landing page for `spec`, rendered once and cached.
    pub fn full_page(&self, spec: &DomainSpec) -> Bytes {
        if let Some(page) = self.pages.read().get(&spec.name) {
            return page.clone();
        }
        let page = Bytes::from(render_page(spec));
        let mut cache = self.pages.write();
        if cache.len() >= self.max_entries {
            // Bulk-evict half; precision doesn't matter for a page cache.
            let keys: Vec<String> = cache.keys().take(self.max_entries / 2).cloned().collect();
            for k in keys {
                cache.remove(&k);
            }
        }
        cache.insert(spec.name.clone(), page.clone());
        page
    }

    /// A per-sample variant: a prefix slice whose length jitters 0–25%
    /// below the full render, deterministically in `sample_nonce`.
    pub fn sample_page(&self, spec: &DomainSpec, sample_nonce: u64) -> Bytes {
        let full = self.full_page(spec);
        let jitter = (mix(spec.policy_seed ^ sample_nonce) % 1000) as f64 / 1000.0;
        // Right-skewed: most samples near full length, a thin tail of much
        // shorter renders (page variants, stripped-down mobile versions).
        let shrink = if jitter < 0.92 {
            jitter * 0.12 // 0–11% shorter
        } else {
            0.12 + (jitter - 0.92) * 4.0 // up to ~44% shorter
        };
        let len = ((full.len() as f64) * (1.0 - shrink)) as usize;
        full.slice(0..len.clamp(1, full.len()))
    }

    /// Number of cached pages (for tests and memory accounting).
    pub fn len(&self) -> usize {
        self.pages.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Theme vocabulary per category, so pages of the same category form one
/// text family (and different categories another) — the cluster-count
/// shape of §4.1.3 depends on the corpus having such families.
fn theme_words(spec: &DomainSpec) -> &'static [&'static str] {
    use geoblock_worldgen::Category::*;
    match spec.category {
        Shopping | Auctions => &[
            "cart",
            "checkout",
            "discount",
            "bestseller",
            "wishlist",
            "voucher",
        ],
        NewsAndMedia => &[
            "headline",
            "breaking",
            "editorial",
            "correspondent",
            "newsroom",
            "coverage",
        ],
        FinanceAndBanking => &[
            "account",
            "interest",
            "mortgage",
            "portfolio",
            "transfer",
            "statement",
        ],
        Travel => &[
            "itinerary",
            "booking",
            "destination",
            "flight",
            "hotel",
            "excursion",
        ],
        Games | Entertainment => &[
            "leaderboard",
            "episode",
            "trailer",
            "multiplayer",
            "soundtrack",
            "premiere",
        ],
        InformationTechnology | Freeware | WebHosting => &[
            "download",
            "documentation",
            "changelog",
            "server",
            "release",
            "integration",
        ],
        Education | ChildEducation | Reference => &[
            "curriculum",
            "lesson",
            "glossary",
            "tutorial",
            "faculty",
            "lecture",
        ],
        HealthAndWellness => &[
            "wellness",
            "symptom",
            "nutrition",
            "clinic",
            "therapy",
            "fitness",
        ],
        Sports => &[
            "fixture",
            "league",
            "standings",
            "transfer",
            "matchday",
            "highlights",
        ],
        JobSearch => &[
            "vacancy",
            "resume",
            "recruiter",
            "salary",
            "interview",
            "career",
        ],
        Advertising => &[
            "campaign",
            "impression",
            "audience",
            "placement",
            "conversion",
            "brand",
        ],
        PersonalVehicles => &[
            "dealership",
            "mileage",
            "horsepower",
            "warranty",
            "sedan",
            "testdrive",
        ],
        _ => &[
            "community",
            "profile",
            "update",
            "article",
            "gallery",
            "archive",
        ],
    }
}

/// Render the full landing page for a domain: unique head material plus
/// deterministic filler to the spec's base size.
fn render_page(spec: &DomainSpec) -> String {
    let mut out = String::with_capacity(spec.base_page_bytes as usize + 512);
    out.push_str(&format!(
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <title>{name} — {category}</title>\n\
         <meta name=\"description\" content=\"{name}: {category} content and services\">\n\
         </head>\n<body>\n<header><h1>Welcome to {name}</h1>\
         <nav><a href=\"/\">Home</a> <a href=\"/about\">About</a> \
         <a href=\"/contact\">Contact</a></nav></header>\n<main>\n",
        name = spec.name,
        category = spec.category.label(),
    ));
    let theme = theme_words(spec);
    let mut state = spec.policy_seed;
    let mut section = 0;
    while out.len() < spec.base_page_bytes as usize {
        state = mix(state);
        if section % 6 == 0 {
            out.push_str(&format!("<h2>Section {}</h2>\n", section / 6 + 1));
        }
        out.push_str("<p>");
        if state.is_multiple_of(3) {
            // Category-flavoured sentence: these are what make pages of a
            // category cluster together and apart from other categories.
            let w1 = theme[(state >> 8) as usize % theme.len()];
            let w2 = theme[(state >> 16) as usize % theme.len()];
            out.push_str(&format!(
                "Explore the {w1} section or visit the {w2} page for more."
            ));
        } else {
            out.push_str(FILLER[(state % FILLER.len() as u64) as usize]);
        }
        out.push_str("</p>\n");
        section += 1;
    }
    out.push_str("</main>\n<footer>&copy; 2018</footer>\n</body>\n</html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::AlexaPopulation;

    fn spec() -> DomainSpec {
        AlexaPopulation::new(42, 10_000).spec(100)
    }

    #[test]
    fn full_page_hits_target_size_and_mentions_domain() {
        let cache = OriginCache::new(64);
        let s = spec();
        let page = cache.full_page(&s);
        let text = std::str::from_utf8(&page).unwrap();
        assert!(text.contains(&s.name));
        let target = s.base_page_bytes as usize;
        assert!(
            page.len() >= target && page.len() < target + 600,
            "{}",
            page.len()
        );
    }

    #[test]
    fn pages_are_cached_and_shared() {
        let cache = OriginCache::new(64);
        let s = spec();
        let a = cache.full_page(&s);
        let b = cache.full_page(&s);
        assert_eq!(cache.len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn samples_are_prefixes_with_bounded_shrink() {
        let cache = OriginCache::new(64);
        let s = spec();
        let full = cache.full_page(&s);
        let mut max_shrink: f64 = 0.0;
        for nonce in 0..500u64 {
            let sample = cache.sample_page(&s, nonce);
            assert!(sample.len() <= full.len());
            assert_eq!(&full[..sample.len()], &sample[..]);
            let shrink = 1.0 - sample.len() as f64 / full.len() as f64;
            max_shrink = max_shrink.max(shrink);
        }
        assert!(max_shrink < 0.50, "max shrink {max_shrink}");
        assert!(
            max_shrink > 0.10,
            "tail of short variants expected, got {max_shrink}"
        );
    }

    #[test]
    fn most_samples_are_near_full_length() {
        let cache = OriginCache::new(64);
        let s = spec();
        let full = cache.full_page(&s).len() as f64;
        let near_full = (0..1000u64)
            .filter(|&n| cache.sample_page(&s, n).len() as f64 / full > 0.89)
            .count();
        assert!(near_full > 850, "near full {near_full}");
    }

    #[test]
    fn eviction_bounds_memory() {
        let cache = OriginCache::new(16);
        let pop = AlexaPopulation::new(42, 10_000);
        for rank in 1..=100 {
            cache.full_page(&pop.spec(rank));
        }
        assert!(cache.len() <= 16, "{}", cache.len());
    }
}
