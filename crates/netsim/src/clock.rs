//! The virtual clock.
//!
//! All simulation time is virtual: every request advances the clock by its
//! simulated latency without sleeping, so a full Top-10K study (≈4.2M
//! fetches) runs in seconds while still accumulating a realistic elapsed
//! time ("a matter of hours rather than days", §3.2). Study drivers advance
//! whole days between passes, which is what arms time-dependent policies
//! like the `makro.co.za` flip.

use std::sync::atomic::{AtomicU64, Ordering};

use geoblock_worldgen::CountryCode;

/// Microseconds-resolution virtual clock. Thread-safe; shared via `Arc`.
#[derive(Debug, Default)]
pub struct SimClock {
    micros: AtomicU64,
}

/// Microseconds per simulated day.
const DAY_MICROS: u64 = 24 * 60 * 60 * 1_000_000;

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Current virtual day (0-based). Saturates at `u32::MAX` instead of
    /// truncating: a wrapped day counter would silently re-arm every
    /// time-dependent policy, which is exactly the kind of quiet
    /// nondeterminism the simulation layer exists to rule out. (At
    /// microsecond resolution the u64 clock itself caps near 213M days, so
    /// the truncating `as` cast this replaces was a latent hazard guarded
    /// only by the clock's unit choice.)
    pub fn day(&self) -> u32 {
        u32::try_from(self.now_micros() / DAY_MICROS).unwrap_or(u32::MAX)
    }

    /// Advance by `micros`, saturating at the end of representable time —
    /// the underlying `fetch_add` would wrap the clock back to day zero.
    pub fn advance_micros(&self, micros: u64) {
        let _ = self
            .micros
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |now| {
                Some(now.saturating_add(micros))
            });
    }

    /// Advance by whole days (between study passes). Saturating: the
    /// naive `days * DAY_MICROS` product overflows u64 beyond ~213M days.
    pub fn advance_days(&self, days: u32) {
        self.advance_micros((days as u64).saturating_mul(DAY_MICROS));
    }

    /// Account one request's round-trip from `country` (latency charged to
    /// virtual time only). Returns the latency in microseconds.
    pub fn charge_request(&self, country: CountryCode) -> u64 {
        let latency = latency_micros(country, self.now_micros());
        // Requests run concurrently; charge a fraction to model pipelining
        // rather than serialising 4M round trips.
        self.advance_micros(latency / 64);
        latency
    }
}

/// Round-trip latency for a request exiting in `country`: base RTT by
/// rough network quality plus a deterministic jitter derived from the
/// current time.
pub fn latency_micros(country: CountryCode, salt: u64) -> u64 {
    let info = country.info();
    let reliability = info.map(|i| i.reliability).unwrap_or(0.9);
    // Poorer networks are slower: 120ms at rel=1.0 up to ~900ms at rel=0.75.
    let base = 120_000.0 + (1.0 - reliability) * 3_200_000.0;
    let jitter = (salt.wrapping_mul(0x9e3779b97f4a7c15) >> 40) % 80_000;
    base as u64 + jitter
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.day(), 0);
        c.advance_days(3);
        assert_eq!(c.day(), 3);
        c.advance_micros(5);
        assert_eq!(c.now_micros(), 3 * DAY_MICROS + 5);
    }

    #[test]
    fn day_saturates_instead_of_wrapping() {
        let last_day = (u64::MAX / DAY_MICROS) as u32; // ≈ 213.5M, fits u32.
        let c = SimClock::new();
        c.advance_micros(u64::MAX);
        assert_eq!(c.now_micros(), u64::MAX);
        assert_eq!(c.day(), last_day);
        // Further advances pin the clock rather than wrapping to day zero.
        c.advance_micros(DAY_MICROS);
        assert_eq!(c.now_micros(), u64::MAX, "time saturates, never wraps");
        assert_eq!(c.day(), last_day);
        // An oversized day jump saturates the multiply too: before the fix
        // `u32::MAX as u64 * DAY_MICROS` wrapped u64 and landed the clock
        // mid-history.
        let c = SimClock::new();
        c.advance_days(u32::MAX);
        assert_eq!(c.now_micros(), u64::MAX);
        assert_eq!(c.day(), last_day);
    }

    #[test]
    fn worse_networks_are_slower() {
        let ch = latency_micros(cc("CH"), 0); // reliability 0.99
        let km = latency_micros(cc("KM"), 0); // reliability 0.76
        assert!(km > 3 * ch, "KM {km} vs CH {ch}");
    }

    #[test]
    fn charging_requests_accumulates_time() {
        let c = SimClock::new();
        for _ in 0..1000 {
            c.charge_request(cc("US"));
        }
        // 1000 requests at ~125ms RTT / 64 concurrency ≈ 2s of virtual time.
        let now = c.now_micros();
        assert!(now > 1_000_000, "{now}");
        assert!(now < 10_000_000, "{now}");
    }

    #[test]
    fn unknown_country_gets_default_latency() {
        let l = latency_micros(CountryCode::new("XX"), 0);
        assert!(l > 100_000);
    }
}
