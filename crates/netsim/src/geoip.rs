//! Synthetic client addresses and geolocation.
//!
//! Exit nodes and VPSes get deterministic IPv4 addresses carved out of
//! per-country /16 blocks, so "geolocating" an address is a table lookup —
//! the same fidelity CDNs have with commercial GeoIP feeds. Ukraine's
//! address space includes a Crimean region slice, which is how the
//! AppEngine regional blocking of §4.2.2 becomes observable.

use std::fmt;

use geoblock_worldgen::{cc, CountryCode};
use serde::{Deserialize, Serialize};

/// Sub-country regions the simulation distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Crimea (administratively part of Ukraine's address space; treated
    /// as sanctioned territory by AppEngine, Airbnb, and Cloudflare).
    Crimea,
}

/// A synthesised client address with its geolocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientAddr {
    /// Dotted-quad IPv4 address.
    pub ip: String,
    /// GeoIP country.
    pub country: CountryCode,
    /// GeoIP region, when the simulation models one.
    pub region: Option<Region>,
}

impl fmt::Display for ClientAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}{})",
            self.ip,
            self.country,
            match self.region {
                Some(Region::Crimea) => "/Crimea",
                None => "",
            }
        )
    }
}

/// Fraction of Ukrainian residential exits located in Crimea.
pub const CRIMEA_EXIT_FRACTION: f64 = 0.035;

/// Country octet: a stable per-country /16 prefix (`5.X.0.0/16` for
/// residential, `45.X.0.0/16` for datacenter).
fn country_octet(country: CountryCode) -> u8 {
    country.index().map(|i| (i % 250) as u8).unwrap_or(255)
}

/// Synthesize the `n`-th residential address in `country`. Ukrainian
/// addresses with a low host id fall in the Crimea slice.
pub fn residential_addr(country: CountryCode, n: u64) -> ClientAddr {
    let oct = country_octet(country);
    let host = (n % 65_536) as u16;
    let region = if country == cc("UA") && (host as f64 / 65_536.0) < CRIMEA_EXIT_FRACTION {
        Some(Region::Crimea)
    } else {
        None
    };
    ClientAddr {
        ip: format!("5.{oct}.{}.{}", host >> 8, host & 0xff),
        country,
        region,
    }
}

/// Synthesize a datacenter (VPS) address in `country`.
pub fn datacenter_addr(country: CountryCode, n: u64) -> ClientAddr {
    let oct = country_octet(country);
    let host = (n % 65_536) as u16;
    ClientAddr {
        ip: format!("45.{oct}.{}.{}", host >> 8, host & 0xff),
        country,
        region: None,
    }
}

/// Geolocate a synthesised address (the CDN-side lookup).
pub fn locate(ip: &str) -> Option<ClientAddr> {
    let mut parts = ip.split('.');
    let a: u8 = parts.next()?.parse().ok()?;
    let b: u8 = parts.next()?.parse().ok()?;
    let c: u8 = parts.next()?.parse().ok()?;
    let d: u8 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    let country = geoblock_worldgen::country::registry()
        .iter()
        .enumerate()
        .find(|(i, _)| (i % 250) as u8 == b)
        .map(|(_, info)| info.code)?;
    let host = ((c as u16) << 8) | d as u16;
    let region = if a == 5 && country == cc("UA") && (host as f64 / 65_536.0) < CRIMEA_EXIT_FRACTION
    {
        Some(Region::Crimea)
    } else {
        None
    };
    match a {
        5 | 45 => Some(ClientAddr {
            ip: ip.to_string(),
            country,
            region,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residential_addrs_locate_back_to_their_country() {
        for code in ["IR", "US", "CN", "KM"] {
            let addr = residential_addr(cc(code), 12345);
            let located = locate(&addr.ip).unwrap();
            assert_eq!(located.country, cc(code), "{addr}");
        }
    }

    #[test]
    fn crimea_slice_exists_only_in_ukraine() {
        let mut crimea = 0;
        for n in 0..10_000u64 {
            if residential_addr(cc("UA"), n * 7).region == Some(Region::Crimea) {
                crimea += 1;
            }
            assert_eq!(residential_addr(cc("RU"), n).region, None);
        }
        let frac = crimea as f64 / 10_000.0;
        assert!((0.01..0.08).contains(&frac), "crimea fraction {frac}");
    }

    #[test]
    fn datacenter_addrs_have_no_region() {
        let addr = datacenter_addr(cc("UA"), 3);
        assert_eq!(addr.region, None);
        assert!(addr.ip.starts_with("45."));
    }

    #[test]
    fn locate_rejects_garbage() {
        assert!(locate("not-an-ip").is_none());
        assert!(locate("300.1.2.3").is_none());
        assert!(locate("8.8.8.8").is_none()); // outside simulated space
        assert!(locate("5.1.2.3.4").is_none());
    }

    #[test]
    fn addresses_are_deterministic() {
        assert_eq!(residential_addr(cc("DE"), 9), residential_addr(cc("DE"), 9));
    }
}
