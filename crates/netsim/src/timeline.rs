//! [`PolicyTimeline`]: scripted, seed-deterministic policy evolution.
//!
//! The paper's `makro.co.za` anecdote (§4.2) — 33 countries geoblocked
//! during the baseline, none days later — is a single hard-coded flip in
//! [`edge`](crate::edge) ([`POLICY_FLIP_DAY`]). A longitudinal monitor
//! needs a whole *world* that moves: rules added and removed, domains
//! migrating provider, full retreats — all deterministic in the seed so
//! repeated scans observe genuinely different (but replayable) policies.
//!
//! A timeline is a set of [`TimelineEvent`]s, each naming a host, a virtual
//! day, and a [`PolicyChange`]. [`SimInternet`](crate::SimInternet) applies
//! every event with `day <= clock.day()` to the freshly computed
//! [`DomainSpec`] before the edge serves — ground truth in `worldgen` is
//! never mutated, so two Internets over the same world but different
//! timelines disagree only where the timelines do.
//!
//! [`POLICY_FLIP_DAY`]: crate::edge::POLICY_FLIP_DAY

use std::collections::HashMap;

use geoblock_blockpages::Provider;
use geoblock_worldgen::{CountryCode, CountrySet, DomainSpec};

/// One mutation of a domain's ground-truth blocking policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyChange {
    /// Add `country` to the domain's explicitly geoblocked set.
    BlockCountry(CountryCode),
    /// Remove `country` from the geoblocked set.
    UnblockCountry(CountryCode),
    /// Drop every geoblocking rule — the `makro.co.za` shape: blocked
    /// somewhere before the event's day, nowhere after.
    FullRetreat,
    /// Re-front the domain on a different provider (the block page — and
    /// the passive headers — change with it).
    MigrateProvider(Provider),
}

/// A [`PolicyChange`] scheduled for one host on one virtual day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// First virtual day (inclusive) on which the change is in effect.
    pub day: u32,
    /// The affected host.
    pub host: String,
    /// What changes.
    pub change: PolicyChange,
}

/// A deterministic script of policy mutations over virtual time.
///
/// Events for one host apply in `day` order (ties keep script order), so a
/// `BlockCountry` at day 1 followed by a `FullRetreat` at day 4 yields a
/// domain that blocks during early scans and retreats later.
#[derive(Debug, Clone, Default)]
pub struct PolicyTimeline {
    /// Per-host events, each list sorted by day (stable).
    by_host: HashMap<String, Vec<TimelineEvent>>,
    len: usize,
}

/// splitmix64-style avalanche, the same construction the edge uses for its
/// per-request draws — timelines must not depend on `rand` so generation
/// stays allocation-light and stub-safe.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PolicyTimeline {
    /// A timeline with no events: the world stands still.
    pub fn empty() -> PolicyTimeline {
        PolicyTimeline::default()
    }

    /// Build from an explicit script. Events are grouped by host and
    /// stably sorted by day, so same-day events keep script order.
    pub fn scripted(events: impl IntoIterator<Item = TimelineEvent>) -> PolicyTimeline {
        let mut by_host: HashMap<String, Vec<TimelineEvent>> = HashMap::new();
        let mut len = 0;
        for event in events {
            by_host.entry(event.host.clone()).or_default().push(event);
            len += 1;
        }
        for list in by_host.values_mut() {
            list.sort_by_key(|e| e.day);
        }
        PolicyTimeline { by_host, len }
    }

    /// Generate a seed-deterministic timeline over `hosts`: roughly a
    /// quarter of the hosts gain a blocking rule early in the horizon, a
    /// slice of those retreat fully later, and a few migrate provider —
    /// enough motion that every scan of a monitoring run observes a
    /// different world. Countries are drawn from `countries` so the
    /// changes land inside a study's vantage panel.
    pub fn generate(
        seed: u64,
        hosts: &[String],
        countries: &[CountryCode],
        horizon_days: u32,
    ) -> PolicyTimeline {
        let mut events = Vec::new();
        let horizon = horizon_days.max(2);
        for (i, host) in hosts.iter().enumerate() {
            let h = mix(seed ^ mix(i as u64 + 1));
            if countries.is_empty() {
                continue;
            }
            // ~25%: a new blocking rule lands in the first half of the
            // horizon.
            if h % 100 < 25 {
                let country = countries[(mix(h ^ 0xb10c) % countries.len() as u64) as usize];
                let day = 1 + (mix(h ^ 0xda7) % (horizon / 2).max(1) as u64) as u32;
                events.push(TimelineEvent {
                    day,
                    host: host.clone(),
                    change: PolicyChange::BlockCountry(country),
                });
                // ~40% of fresh blockers retreat fully in the second half.
                if mix(h ^ 0x9e7) % 100 < 40 {
                    let retreat = day + 1 + (mix(h ^ 0x4e7) % (horizon - day).max(1) as u64) as u32;
                    events.push(TimelineEvent {
                        day: retreat,
                        host: host.clone(),
                        change: PolicyChange::FullRetreat,
                    });
                }
            }
            // ~8%: the domain re-fronts on another big anycast CDN.
            if mix(h ^ 0x31f) % 100 < 8 {
                let to = if mix(h ^ 0x77).is_multiple_of(2) {
                    Provider::CloudFront
                } else {
                    Provider::Cloudflare
                };
                let day = 1 + (mix(h ^ 0x1117) % horizon as u64) as u32;
                events.push(TimelineEvent {
                    day,
                    host: host.clone(),
                    change: PolicyChange::MigrateProvider(to),
                });
            }
        }
        PolicyTimeline::scripted(events)
    }

    /// Total scheduled events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the timeline schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The events scheduled for `host`, sorted by day.
    pub fn events_for(&self, host: &str) -> &[TimelineEvent] {
        self.by_host.get(host).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Apply every event with `event.day <= day` to `spec`, in day order.
    /// The spec is a per-request copy, so ground truth never mutates.
    pub fn apply(&self, spec: &mut DomainSpec, day: u32) {
        let Some(events) = self.by_host.get(&spec.name) else {
            return;
        };
        for event in events.iter().take_while(|e| e.day <= day) {
            match &event.change {
                PolicyChange::BlockCountry(c) => {
                    spec.policy.geoblocked.insert(*c);
                }
                PolicyChange::UnblockCountry(c) => {
                    spec.policy.geoblocked.remove(*c);
                }
                PolicyChange::FullRetreat => {
                    spec.policy.geoblocked = CountrySet::new();
                    spec.policy.appengine_sanctions = false;
                    // The edge's built-in flip would re-activate rules
                    // before POLICY_FLIP_DAY; a retreat overrides it.
                    spec.policy.policy_flip = false;
                }
                PolicyChange::MigrateProvider(p) => {
                    spec.providers = vec![*p];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::{cc, Category, CfTier};

    fn spec_named(name: &str) -> DomainSpec {
        DomainSpec {
            name: name.to_string(),
            rank: 10,
            category: Category::Shopping,
            providers: vec![Provider::Cloudflare],
            cf_tier: Some(CfTier::Enterprise),
            base_page_bytes: 40_000,
            on_citizenlab: false,
            policy: Default::default(),
            policy_seed: 0x5eed,
        }
    }

    #[test]
    fn events_apply_in_day_order_up_to_the_clock() {
        let tl = PolicyTimeline::scripted([
            TimelineEvent {
                day: 4,
                host: "moving.example".into(),
                change: PolicyChange::FullRetreat,
            },
            TimelineEvent {
                day: 1,
                host: "moving.example".into(),
                change: PolicyChange::BlockCountry(cc("IR")),
            },
        ]);
        let base = spec_named("moving.example");

        let mut day0 = base.clone();
        tl.apply(&mut day0, 0);
        assert!(!day0.policy.geoblocked.contains(cc("IR")), "nothing yet");

        let mut day2 = base.clone();
        tl.apply(&mut day2, 2);
        assert!(day2.policy.geoblocked.contains(cc("IR")), "rule landed");

        let mut day4 = base.clone();
        tl.apply(&mut day4, 4);
        assert!(day4.policy.geoblocked.is_empty(), "retreat wins on its day");
    }

    #[test]
    fn unrelated_hosts_are_untouched() {
        let tl = PolicyTimeline::scripted([TimelineEvent {
            day: 0,
            host: "other.example".into(),
            change: PolicyChange::BlockCountry(cc("SY")),
        }]);
        let mut spec = spec_named("bystander.example");
        let before = spec.policy.geoblocked;
        tl.apply(&mut spec, 10);
        assert_eq!(spec.policy.geoblocked.len(), before.len());
    }

    #[test]
    fn provider_migration_swaps_the_front() {
        let tl = PolicyTimeline::scripted([TimelineEvent {
            day: 3,
            host: "mover.example".into(),
            change: PolicyChange::MigrateProvider(Provider::CloudFront),
        }]);
        let mut spec = spec_named("mover.example");
        tl.apply(&mut spec, 2);
        assert_eq!(spec.providers, vec![Provider::Cloudflare]);
        tl.apply(&mut spec, 3);
        assert_eq!(spec.providers, vec![Provider::CloudFront]);
    }

    #[test]
    fn generation_is_seed_deterministic_and_seed_sensitive() {
        let hosts: Vec<String> = (0..200).map(|i| format!("d{i}.example")).collect();
        let countries = [cc("IR"), cc("SY"), cc("US")];
        let a = PolicyTimeline::generate(7, &hosts, &countries, 10);
        let b = PolicyTimeline::generate(7, &hosts, &countries, 10);
        let c = PolicyTimeline::generate(8, &hosts, &countries, 10);
        assert!(!a.is_empty(), "200 hosts must schedule something");
        assert_eq!(a.len(), b.len());
        for host in &hosts {
            assert_eq!(a.events_for(host), b.events_for(host));
        }
        let schedule = |tl: &PolicyTimeline| -> Vec<Vec<TimelineEvent>> {
            hosts.iter().map(|h| tl.events_for(h).to_vec()).collect()
        };
        assert_ne!(
            schedule(&a),
            schedule(&c),
            "different seeds should schedule different worlds"
        );
    }

    #[test]
    fn retreat_overrides_the_builtin_policy_flip() {
        let tl = PolicyTimeline::scripted([TimelineEvent {
            day: 1,
            host: "flip.example".into(),
            change: PolicyChange::FullRetreat,
        }]);
        let mut spec = spec_named("flip.example");
        spec.policy.policy_flip = true;
        spec.policy.geoblocked.insert(cc("BW"));
        tl.apply(&mut spec, 1);
        assert!(!spec.policy.policy_flip);
        assert!(spec.policy.geoblocked.is_empty());
    }
}
