//! CDN edge behaviour: the server side of every measurement.
//!
//! Given a domain's ground-truth policy and a client context, the edge
//! decides what one HTTP exchange returns: an explicit geoblock page, a
//! CAPTCHA or JavaScript challenge, a bot-detection denial, an origin-level
//! stock 403, a redirect hop, or the real page. Identifying headers
//! (`CF-RAY`, `X-Amz-Cf-Id`, `X-Iinfo`, the Akamai `Pragma` debug headers)
//! ride on *every* response from the respective CDN — which is exactly what
//! the §5.1.1 population detection exploits.

use geoblock_blockpages::{render, PageKind, PageParams, Provider};
use geoblock_http::{HeaderMap, Request, Response, ResponseBuilder, StatusCode, TlsClientClass};
use geoblock_worldgen::country::sanctioned_all;
use geoblock_worldgen::{CountryCode, DomainSpec, OriginBlockKind};

use crate::geoip::Region;
use crate::net::ClientContext;
use crate::origin::OriginCache;

/// Day (of virtual time) on which `policy_flip` domains drop their
/// geoblocking rules — between the study's baseline pass (day 0) and the
/// confirmation resample "several days later".
pub const POLICY_FLIP_DAY: u32 = 2;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-request uniform draw in [0,1), deterministic in (domain, salt,
/// request sequence).
fn draw(spec: &DomainSpec, salt: u64, seq: u64) -> f64 {
    (mix(spec.policy_seed ^ salt.wrapping_mul(0x9e37) ^ seq) % 1_048_576) as f64 / 1_048_576.0
}

/// How browser-like a request's headers look to a bot-detection layer, in
/// [0, 1]. Computed from the actual headers — the edge cannot see what
/// profile the client *meant* to send.
pub fn browser_likeness(headers: &HeaderMap) -> f64 {
    let mut score: f64 = 0.0;
    match headers.get("user-agent") {
        None => return 0.0,
        Some(ua) if ua.starts_with("Mozilla/") => score += 0.40,
        Some(_) => score += 0.05, // curl/, python-requests/, Go-http-client/…
    }
    if headers.contains("accept") {
        score += 0.15;
    }
    if headers.contains("accept-language") {
        score += 0.15;
    }
    if headers.contains("accept-encoding") {
        score += 0.15;
    }
    if headers.contains("upgrade-insecure-requests") {
        score += 0.13;
    }
    score.min(1.0)
}

/// Domain-level bot-detection threshold: requests whose likeness falls
/// below it are denied *deterministically* — §3.1 observes that the ZGrab
/// false-positive domain set is "nearly identical across countries".
/// The range tops out just above the UA-only ZGrab likeness (0.40), so a
/// small, stable set of domains false-positives on the crawler while a
/// full browser header set always passes.
fn bot_threshold(spec: &DomainSpec) -> f64 {
    0.05 + (mix(spec.policy_seed ^ 0xb07) % 1000) as f64 / 1000.0 * 0.36
}

/// The CAPTCHA tier's likeness band: clients below this (but above the
/// domain's deterministic denial threshold) are challenged rather than
/// denied. A full browser header set (0.98) clears it; UA-only scanners
/// (0.35) and worse do not.
const CAPTCHA_LIKENESS_BAND: f64 = 0.75;

/// How deep this domain's bot-detection deployment goes for clients in
/// `country`, in 1..=4 — the tiers of the detection pipeline:
///
/// 1. header-heuristic scoring (always on for bot-sensitive domains);
/// 2. JS-challenge interstitial (client must execute the challenge);
/// 3. CAPTCHA page for low-likeness header bundles;
/// 4. TLS/client-fingerprint scoring (scanner ClientHellos denied even
///    under a perfect header disguise).
///
/// Seeded per (provider, country) on top of the domain's policy seed:
/// providers roll out deeper tiers market by market, so the same scanner
/// profile measures a different false-block bias in different countries —
/// the prober-bias confound the evasion ablation quantifies.
fn detection_depth(spec: &DomainSpec, provider: Provider, country: CountryCode) -> u32 {
    let chash = (country.0[0] as u64) << 8 | country.0[1] as u64;
    let h = mix(spec.policy_seed ^ 0xde7ec7 ^ ((provider as u64) << 16) ^ chash);
    1 + (h % 4) as u32
}

/// Which page each provider's JS-interstitial / CAPTCHA tiers serve. The
/// deepest (TLS) tier reuses the provider's tier-1 denial page.
fn challenge_kind(provider: Provider) -> Option<PageKind> {
    match provider {
        Provider::Akamai => Some(PageKind::AkamaiBotManager),
        Provider::Incapsula => Some(PageKind::IncapsulaCaptcha),
        Provider::Distil => Some(PageKind::DistilCaptcha),
        _ => None,
    }
}

/// Whether this provider's edge refuses domain-fronted requests (the TLS
/// connection names one customer, the `Host` header another). CloudFront
/// closed fronting with a certificate-match check; the other simulated
/// providers still route on `Host` alone.
fn rejects_fronting(provider: Provider) -> bool {
    provider == Provider::CloudFront
}

/// Some anti-bot deployments block residential-proxy address space
/// wholesale (Hola exits share ranges with real abuse): the block page
/// then shows from *every* country, which is what drags the length
/// heuristic's recall down for these providers (Table 2) and what the
/// consistency rule of §5.2.2 exists to exclude.
fn proxy_blanket_rate(provider: Provider) -> f64 {
    match provider {
        Provider::Akamai => 0.08,
        Provider::Incapsula => 0.08,
        Provider::Distil => 0.18,
        _ => 0.0,
    }
}

/// Per-request residual bot-detection rate for residential clients (IP
/// reputation noise: Hola exits share address space with actual abuse).
fn residual_bot_rate(provider: Provider) -> f64 {
    match provider {
        Provider::Akamai => 0.045,
        Provider::Incapsula => 0.080,
        Provider::Distil => 0.060,
        _ => 0.0,
    }
}

/// Serve one request for `spec`.
///
/// `seq` is the per-(domain, country) request sequence number — the source
/// of all per-request randomness, so identical studies replay identically
/// regardless of task interleaving. Returns `None` when the *site* fails
/// transiently (the caller maps that to a timeout).
pub fn serve(
    spec: &DomainSpec,
    cache: &OriginCache,
    request: &Request,
    client: &ClientContext,
    day: u32,
    seq: u64,
) -> Option<Response> {
    let country = client.country;
    let params = PageParams::new(
        &spec.name,
        country.info().map(|i| i.name).unwrap_or("your country"),
        &client.ip,
        mix(spec.policy_seed ^ seq ^ (country.0[0] as u64) << 8 ^ country.0[1] as u64),
    );

    // --- persistent site-side failures ---
    // Dead sites: §4.1.1 finds 286 of 8,003 Top-10K domains never respond,
    // but only 26 of 6,180 CDN-fronted Top-1M samples do — paying CDN
    // customers are alive; the long tail of direct-hosted sites is not.
    let dead_threshold = if spec.providers.is_empty() { 450 } else { 30 };
    if mix(spec.policy_seed ^ 0xdead) % 10_000 < dead_threshold {
        return None;
    }
    // Broken pairs: "consistent timeouts for certain websites in only some
    // countries" (§7.3). Per-domain proneness (heavier for direct-hosted
    // sites: 90th-pct error ≤11.7% in the Top 10K vs ≤3.0% among Top-1M CDN
    // customers) gates a per-country deterministic failure.
    let proneness = (mix(spec.policy_seed ^ 0x0b0b) % 1000) as f64 / 1000.0;
    let p_dom = if spec.providers.is_empty() {
        proneness.powi(3) * 0.15 // right-skewed; 90th pct ≈ 11%
    } else {
        proneness.powi(3) * 0.05
    };
    // Poor residential networks break more pairs (routing, MTU, proxy
    // incompatibilities): Comoros's 76.4% coverage (§4.1.1) is this term.
    let p_country = country
        .info()
        .map(|i| (1.0 - i.reliability).powf(1.3) * 0.9)
        .unwrap_or(0.0);
    let pair_hash =
        mix(spec.policy_seed ^ 0xca11 ^ (country.0[0] as u64) << 8 ^ country.0[1] as u64);
    if ((pair_hash % 1_000_000) as f64) < (p_dom + p_country) * 1_000_000.0 {
        return None;
    }

    // --- site-side transient failure (origin overload, routing flap) ---
    if draw(spec, 0x7fa1, seq) < 0.002 {
        return None;
    }

    // --- domain fronting: the connection (URL host, the SNI analogue)
    // names a different customer than the Host header the edge routes on.
    // Fronting-intolerant edges reject at the TLS boundary, before any geo
    // policy is consulted; tolerant ones serve the Host header's origin.
    let fronted = request.url.host.as_str() != spec.name;
    if fronted {
        for &provider in &spec.providers {
            if rejects_fronting(provider) {
                // The template already carries the provider's identifying
                // headers, as with every other rendered block page.
                return Some(finish(
                    render(PageKind::CloudFrontFronting, &params),
                    &[],
                    request,
                ));
            }
        }
    }

    // --- CDN-layer decisions, in front-to-back order ---
    for &provider in &spec.providers {
        // Explicit geoblocking.
        if provider == Provider::AppEngine && spec.policy.appengine_sanctions {
            let blocked =
                sanctioned_all().contains(country) || client.region == Some(Region::Crimea);
            if blocked {
                return Some(finish(render(PageKind::AppEngine, &params), &[], request));
            }
        }
        let geo_active = !spec.policy.policy_flip || day < POLICY_FLIP_DAY;
        if geo_active && spec.policy.geoblocked.contains(country) {
            let kind = match provider {
                Provider::Cloudflare => Some(PageKind::Cloudflare),
                Provider::CloudFront => Some(PageKind::CloudFront),
                Provider::Akamai => Some(PageKind::Akamai),
                Provider::Incapsula => Some(PageKind::Incapsula),
                Provider::Baidu => Some(PageKind::Baidu),
                _ => None,
            };
            if let Some(kind) = kind {
                // Anycast inconsistency: a small share of blocked pairs on
                // the big anycast CDNs enforce on only part of the PoPs, so
                // the block page shows ~55% of the time — these pairs are
                // what the 80% agreement rule eliminates (§4.2: 77
                // instances, 11.4%). Akamai/Incapsula geo-ACLs apply at the
                // origin config and stay consistent.
                let chash = (country.0[0] as u64) << 8 | country.0[1] as u64;
                let partial = matches!(
                    provider,
                    Provider::Cloudflare | Provider::CloudFront | Provider::Baidu
                ) && mix(spec.policy_seed ^ 0x9a27 ^ chash) % 1000 < 60;
                if !partial || draw(spec, 0x9a28, seq) < 0.55 {
                    return Some(finish(render(kind, &params), &[], request));
                }
            }
        }

        // Country-scoped challenges.
        if spec.policy.challenged.contains(country) {
            let kind = match provider {
                Provider::Cloudflare => Some(PageKind::CloudflareCaptcha),
                Provider::Baidu => Some(PageKind::BaiduCaptcha),
                _ => None,
            };
            if let Some(kind) = kind {
                return Some(finish(render(kind, &params), &[], request));
            }
        }

        // "I'm Under Attack" episodes: during an attack day the JS
        // challenge shows to *everyone* (making the challenge page the
        // domain's representative page — Table 2's 66.3% recall); outside
        // episodes it still fires on a fraction of requests.
        if provider == Provider::Cloudflare && spec.policy.js_challenge_all {
            let episode = mix(spec.policy_seed ^ (day as u64) ^ 0x1a3) % 100 < 12;
            if episode || draw(spec, 0x15aa, seq) < 0.20 {
                return Some(finish(
                    render(PageKind::CloudflareJs, &params),
                    &[],
                    request,
                ));
            }
        }

        // Bot detection: the tiered pipeline. Tier 1 (header-heuristic
        // scoring) is deterministic on header completeness as in §3.1;
        // deeper deployments add a JS interstitial, a CAPTCHA band, and
        // TLS/client-fingerprint scoring. Residential clients additionally
        // face a residual per-request rate (IP-reputation noise) and
        // occasional blanket proxy-range blocks.
        if spec.policy.bot_sensitive {
            let kind = match provider {
                Provider::Akamai => Some(PageKind::Akamai),
                Provider::Incapsula => Some(PageKind::Incapsula),
                Provider::Distil => Some(PageKind::DistilCaptcha),
                _ => None,
            };
            if let Some(kind) = kind {
                let likeness = browser_likeness(&request.headers);
                let depth = detection_depth(spec, provider, country);

                // Tier 1: header-heuristic score below the domain threshold.
                if likeness < bot_threshold(spec) {
                    return Some(finish(render(kind, &params), &[], request));
                }
                // Tier 2: JS-challenge interstitial — only a client that
                // executes the challenge gets past it.
                if depth >= 2 && !request.js_capable {
                    if let Some(challenge) = challenge_kind(provider) {
                        return Some(finish(render(challenge, &params), &[], request));
                    }
                }
                // Tier 3: CAPTCHA band for suspicious-but-not-denied
                // header bundles.
                if depth >= 3 && likeness < CAPTCHA_LIKENESS_BAND {
                    if let Some(challenge) = challenge_kind(provider) {
                        return Some(finish(render(challenge, &params), &[], request));
                    }
                }
                // Tier 4: TLS/client-fingerprint scoring — a scanner
                // ClientHello is denied even under a perfect header
                // disguise.
                if depth >= 4 && request.tls == TlsClientClass::ScannerStack {
                    return Some(finish(render(kind, &params), &[], request));
                }

                let residual = client.residential
                    && draw(spec, 0xb0b0 ^ (seq << 1), seq) < residual_bot_rate(provider);
                let blanket_hash = (mix(spec.policy_seed ^ 0xb1a) % 1_000_000) as f64;
                let blanket =
                    client.residential && blanket_hash < proxy_blanket_rate(provider) * 1_000_000.0;
                if residual || blanket {
                    return Some(finish(render(kind, &params), &[], request));
                }
            }
        }
    }

    // --- origin-level blocks (Airbnb-style custom pages, stock 403s) ---
    if let Some(kind) = spec.policy.origin_block_kind {
        let blocked = spec.policy.origin_blocked.contains(country)
            || (kind == OriginBlockKind::Airbnb && client.region == Some(Region::Crimea));
        if blocked {
            let page = match kind {
                OriginBlockKind::Nginx => PageKind::Nginx403,
                OriginBlockKind::Varnish => PageKind::Varnish403,
                OriginBlockKind::Soasta => PageKind::Soasta,
                OriginBlockKind::Airbnb => PageKind::Airbnb,
            };
            return Some(finish(render(page, &params), &spec.providers, request));
        }
    }

    // --- redirect hops, then the real page ---
    let wants_https = mix(spec.policy_seed ^ 0x4477) % 100 < 55;
    if wants_https && request.url.scheme == "http" {
        let target = format!("https://{}{}", request.url.host, request.url.path);
        let builder = Response::builder(StatusCode::MOVED_PERMANENTLY).header("Location", target);
        return Some(finish(builder, &spec.providers, request));
    }

    if !spec.method_has_body(request) {
        // HEAD and similar: headers only.
        let builder = Response::builder(StatusCode::OK).header("Content-Type", "text/html");
        return Some(finish(builder, &spec.providers, request));
    }

    let body = cache.sample_page(spec, mix(seq ^ spec.policy_seed));
    let builder = Response::builder(StatusCode::OK)
        .header("Content-Type", "text/html; charset=utf-8")
        .body(bytes_body(body));
    Some(finish(builder, &spec.providers, request))
}

fn bytes_body(b: bytes::Bytes) -> geoblock_http::Body {
    geoblock_http::Body::from(b)
}

trait MethodExt {
    fn method_has_body(&self, request: &Request) -> bool;
}

impl MethodExt for DomainSpec {
    fn method_has_body(&self, request: &Request) -> bool {
        request.method.response_has_body()
    }
}

/// Attach the passive identifying headers of each fronting provider, then
/// finish the response.
fn finish(mut builder: ResponseBuilder, providers: &[Provider], request: &Request) -> Response {
    for &p in providers {
        builder = passive_headers(builder, p, request);
    }
    builder.finish(request.url.clone())
}

/// Headers a provider stamps on every response it proxies.
fn passive_headers(
    mut builder: ResponseBuilder,
    provider: Provider,
    request: &Request,
) -> ResponseBuilder {
    let h = mix(request
        .url
        .host
        .as_str()
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64)));
    match provider {
        Provider::Cloudflare => builder
            .header("Server", "cloudflare")
            .header("CF-RAY", format!("{:016x}-IAD", h)),
        Provider::CloudFront => builder
            .header("Via", "1.1 abcdef.cloudfront.net (CloudFront)")
            .header("X-Amz-Cf-Id", format!("{:056x}", h as u128)),
        Provider::Incapsula => builder
            .header(
                "X-Iinfo",
                format!("{:08x}-{}-{}", h as u32, h % 999_983, h % 99_991),
            )
            .header("X-CDN", "Incapsula"),
        Provider::AppEngine => builder.header("Server", "Google Frontend"),
        Provider::Baidu => builder.header("Server", "yunjiasu-nginx"),
        Provider::Akamai => {
            // Akamai adds cache-debug headers only when poked with its
            // Pragma header (§5.1.1) — there is no passive identifier.
            let wants_debug = request
                .headers
                .get_all("pragma")
                .any(|v| v.contains("akamai-x-cache-on") || v.contains("akamai-x-get-cache-key"));
            if wants_debug {
                builder = builder
                    .header("X-Cache", "TCP_HIT from a23-45-67-89.deploy.akamaitechnologies.com (AkamaiGHost/9.5.2)")
                    .header("X-Check-Cacheable", "YES")
                    .header("X-Cache-Key", format!("/L/1234/567/1d/origin/{}/", request.url.host));
            }
            builder
        }
        _ => builder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::{FingerprintSet, PageClass};
    use geoblock_http::{ClientProfile, HeaderProfile};
    use geoblock_worldgen::{cc, AlexaPopulation, CountrySet};

    fn client(country: &str) -> ClientContext {
        ClientContext {
            ip: "5.1.2.3".to_string(),
            country: cc(country),
            region: None,
            residential: true,
            seq_nonce: None,
        }
    }

    fn full_request(domain: &str) -> Request {
        // A real browser: full headers, browser TLS, JS — passes all tiers.
        Request::get(format!("http://{domain}/").parse().unwrap())
            .client_profile(&ClientProfile::browser())
    }

    fn profiled_request(domain: &str, profile: &ClientProfile) -> Request {
        Request::get(format!("http://{domain}/").parse().unwrap()).client_profile(profile)
    }

    fn make_spec() -> DomainSpec {
        let pop = AlexaPopulation::new(42, 10_000);
        let mut spec = pop.spec(1000);
        spec.providers = vec![Provider::Cloudflare];
        spec.policy = Default::default();
        spec
    }

    /// A spec synthesized without the worldgen RNG: policy-clean, seeded
    /// deterministically from `d` — the tier tests sweep many of these so
    /// the per-(provider, country) depth seeding is well represented.
    fn synth_spec(d: u64, provider: Provider) -> DomainSpec {
        DomainSpec {
            name: format!("synth-{d}.example"),
            rank: d as u32 + 1,
            category: geoblock_worldgen::Category::Business,
            providers: vec![provider],
            cf_tier: None,
            base_page_bytes: 40_000,
            on_citizenlab: false,
            policy: Default::default(),
            policy_seed: mix(0x5eed ^ d.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    fn serve_ok(
        spec: &DomainSpec,
        cache: &OriginCache,
        req: &Request,
        cl: &ClientContext,
        seq: u64,
    ) -> Response {
        serve(spec, cache, req, cl, 0, seq).expect("transient failure in test")
    }

    #[test]
    fn geoblocked_country_gets_cloudflare_1009() {
        let mut spec = make_spec();
        spec.policy.geoblocked = CountrySet::from_codes([cc("IR")]);
        let cache = OriginCache::new(16);
        let resp = serve_ok(&spec, &cache, &full_request(&spec.name), &client("IR"), 1);
        assert_eq!(resp.status, StatusCode::FORBIDDEN);
        let outcome = FingerprintSet::paper().classify(&resp).unwrap();
        assert_eq!(outcome.kind, PageKind::Cloudflare);
        // Other countries get content (or a redirect hop).
        let resp = serve_ok(&spec, &cache, &full_request(&spec.name), &client("DE"), 2);
        assert!(resp.status.is_success() || resp.status.is_redirect());
    }

    #[test]
    fn cf_ray_rides_on_every_cloudflare_response() {
        let spec = make_spec();
        let cache = OriginCache::new(16);
        for seq in 1..20 {
            let resp = serve_ok(&spec, &cache, &full_request(&spec.name), &client("US"), seq);
            assert!(resp.headers.contains("cf-ray"), "seq {seq}");
        }
    }

    #[test]
    fn appengine_sanctions_block_sanctioned_and_crimea() {
        let mut spec = make_spec();
        spec.providers = vec![Provider::AppEngine];
        spec.policy.appengine_sanctions = true;
        let cache = OriginCache::new(16);
        let fp = FingerprintSet::paper();

        for country in ["IR", "SY", "SD", "CU"] {
            let resp = serve_ok(
                &spec,
                &cache,
                &full_request(&spec.name),
                &client(country),
                1,
            );
            assert_eq!(
                fp.classify(&resp).unwrap().kind,
                PageKind::AppEngine,
                "{country}"
            );
        }
        // Ordinary Ukraine is fine; Crimea is blocked.
        let ua = serve_ok(&spec, &cache, &full_request(&spec.name), &client("UA"), 1);
        assert!(fp.classify(&ua).is_none());
        let crimea = ClientContext {
            region: Some(Region::Crimea),
            ..client("UA")
        };
        let resp = serve_ok(&spec, &cache, &full_request(&spec.name), &crimea, 1);
        assert_eq!(fp.classify(&resp).unwrap().kind, PageKind::AppEngine);
    }

    #[test]
    fn bot_detection_depends_on_header_completeness() {
        let pop = AlexaPopulation::new(42, 10_000);
        let cache = OriginCache::new(256);
        let fp = FingerprintSet::paper();
        // Find bot-sensitive Akamai domains and compare header profiles.
        let mut bare_blocked = 0;
        let mut full_blocked = 0;
        let mut sensitive = 0;
        for rank in 1..=4000 {
            let spec = pop.spec(rank);
            if !spec.uses(Provider::Akamai) || !spec.policy.bot_sensitive {
                continue;
            }
            if !spec.policy.geoblocked.is_empty() {
                continue;
            }
            sensitive += 1;
            let cl = ClientContext {
                residential: false,
                ..client("US")
            };
            let bare = Request::get(format!("http://{}/", spec.name).parse().unwrap());
            if serve(&spec, &cache, &bare, &cl, 0, 1)
                .map(|r| fp.classify(&r).is_some())
                .unwrap_or(false)
            {
                bare_blocked += 1;
            }
            let full = full_request(&spec.name);
            if serve(&spec, &cache, &full, &cl, 0, 1)
                .map(|r| fp.classify(&r).is_some())
                .unwrap_or(false)
            {
                full_blocked += 1;
            }
        }
        assert!(sensitive >= 10, "sensitive {sensitive}");
        assert!(
            bare_blocked > sensitive * 8 / 10,
            "bare {bare_blocked}/{sensitive}"
        );
        assert_eq!(
            full_blocked, 0,
            "full browser should never trip deterministic detection"
        );
    }

    #[test]
    fn detection_tiers_order_profiles_monotonically() {
        // Per-domain failure sets are nested: every tier a more evasive
        // profile fails, a less evasive one fails too. Blocked counts must
        // therefore be monotone as likeness/capability drops.
        let cache = OriginCache::new(256);
        let fp = FingerprintSet::paper();
        let bot_providers = [Provider::Akamai, Provider::Incapsula, Provider::Distil];
        let profiles = [
            ClientProfile::browser(),
            ClientProfile::headless(),
            ClientProfile::zgrab(),
            ClientProfile::curl(),
            ClientProfile::bare(),
        ];
        let mut blocked = [0usize; 5];
        let mut sensitive = 0;
        for d in 0..300u64 {
            let mut spec = synth_spec(d, bot_providers[(d % 3) as usize]);
            spec.policy.bot_sensitive = true;
            let cl = ClientContext {
                residential: false,
                ..client("US")
            };
            // Dead sites and broken pairs fail before the detection tiers,
            // identically for every profile: skip them via a browser probe.
            let browser = profiled_request(&spec.name, &ClientProfile::browser());
            if serve(&spec, &cache, &browser, &cl, 0, 1).is_none() {
                continue;
            }
            sensitive += 1;
            for (i, profile) in profiles.iter().enumerate() {
                let req = profiled_request(&spec.name, profile);
                if serve(&spec, &cache, &req, &cl, 0, 1)
                    .map(|r| fp.classify(&r).is_some())
                    .unwrap_or(false)
                {
                    blocked[i] += 1;
                }
            }
        }
        assert!(sensitive >= 10, "sensitive {sensitive}");
        assert_eq!(blocked[0], 0, "browser profile must pass every tier");
        for w in blocked.windows(2) {
            assert!(w[0] <= w[1], "false blocks not monotone: {blocked:?}");
        }
        assert!(
            blocked[4] > blocked[1],
            "tiers must separate the extremes: {blocked:?}"
        );
        assert_eq!(blocked[4], sensitive, "bare always fails tier 1");
    }

    #[test]
    fn js_tier_serves_challenge_pages_never_geoblock_pages() {
        let cache = OriginCache::new(256);
        let fp = FingerprintSet::paper();
        let mut challenged = 0;
        for d in 0..300u64 {
            let mut spec = synth_spec(d, Provider::Akamai);
            spec.policy.bot_sensitive = true;
            if detection_depth(&spec, Provider::Akamai, cc("US")) < 2 {
                continue;
            }
            // Headless passes the header tier but cannot run the challenge.
            let req = profiled_request(&spec.name, &ClientProfile::headless());
            let cl = ClientContext {
                residential: false,
                ..client("US")
            };
            let Some(resp) = serve(&spec, &cache, &req, &cl, 0, 1) else {
                continue;
            };
            let Some(outcome) = fp.classify(&resp) else {
                continue;
            };
            challenged += 1;
            assert_eq!(outcome.kind, PageKind::AkamaiBotManager, "{}", spec.name);
            assert_eq!(outcome.kind.class(), PageClass::JsChallenge);
            assert!(!outcome.kind.is_explicit_geoblock());
        }
        assert!(challenged >= 5, "only {challenged} JS challenges observed");
    }

    #[test]
    fn fronting_rejected_by_cloudfront_but_routed_by_cloudflare() {
        let cache = OriginCache::new(16);
        let fp = FingerprintSet::paper();
        // Scan a few seeds so a dead/broken synthetic site can't mask the
        // behaviour under test; both branches must trigger at least once.
        let mut rejected = 0;
        let mut routed = 0;
        for d in 0..20u64 {
            // CloudFront checks the certificate against the Host header.
            let cf_spec = synth_spec(d, Provider::CloudFront);
            let fronted = Request::get("http://benign-front.example/".parse().unwrap())
                .header("Host", cf_spec.name.clone())
                .client_profile(&ClientProfile::browser());
            if let Some(resp) = serve(&cf_spec, &cache, &fronted, &client("US"), 0, 1) {
                let outcome = fp.classify(&resp).unwrap();
                assert_eq!(outcome.kind, PageKind::CloudFrontFronting);
                assert_eq!(outcome.kind.class(), PageClass::FrontingMismatch);
                assert!(!outcome.kind.is_explicit_geoblock());
                rejected += 1;
            }

            // Cloudflare routes on Host alone: the fronted origin's page
            // comes back as if requested directly.
            let cl_spec = synth_spec(d, Provider::Cloudflare);
            let fronted = Request::get("http://benign-front.example/".parse().unwrap())
                .header("Host", cl_spec.name.clone())
                .client_profile(&ClientProfile::browser());
            if let Some(resp) = serve(&cl_spec, &cache, &fronted, &client("US"), 0, 1) {
                assert!(fp.classify(&resp).is_none());
                assert!(resp.status.is_success() || resp.status.is_redirect());
                routed += 1;
            }
        }
        assert!(rejected >= 10, "only {rejected} fronting rejections");
        assert!(routed >= 10, "only {routed} tolerant routings");
    }

    #[test]
    fn pragma_header_elicits_akamai_debug_headers() {
        let mut spec = make_spec();
        spec.providers = vec![Provider::Akamai];
        let cache = OriginCache::new(16);
        let plain = serve_ok(&spec, &cache, &full_request(&spec.name), &client("US"), 1);
        assert!(!plain.headers.contains("x-check-cacheable"));

        let poked =
            full_request(&spec.name).header("Pragma", "akamai-x-cache-on, akamai-x-get-cache-key");
        let resp = serve_ok(&spec, &cache, &poked, &client("US"), 1);
        assert!(resp.headers.contains("x-cache"));
        assert!(resp.headers.contains("x-check-cacheable"));
    }

    #[test]
    fn policy_flip_deactivates_after_flip_day() {
        let pop = AlexaPopulation::new(42, 10_000);
        let spec = pop.spec_of("makro.co.za").unwrap();
        let cache = OriginCache::new(16);
        let fp = FingerprintSet::paper();
        let blocked_country = spec.policy.geoblocked.iter().next().unwrap();
        let cl = client(blocked_country.as_str());
        let before = serve(&spec, &cache, &full_request(&spec.name), &cl, 0, 1).unwrap();
        assert!(fp.classify(&before).is_some(), "blocked during baseline");
        let after = serve(
            &spec,
            &cache,
            &full_request(&spec.name),
            &cl,
            POLICY_FLIP_DAY,
            1,
        )
        .unwrap();
        assert!(fp.classify(&after).is_none(), "unblocked after the flip");
    }

    #[test]
    fn https_redirect_preserves_cdn_headers() {
        let pop = AlexaPopulation::new(42, 10_000);
        let cache = OriginCache::new(64);
        // Find a Cloudflare domain that redirects to https.
        for rank in 1..2000 {
            let spec = pop.spec(rank);
            if !spec.uses(Provider::Cloudflare) || spec.policy.geoblocks() {
                continue;
            }
            let resp = serve(
                &spec,
                &cache,
                &full_request(&spec.name),
                &client("FR"),
                0,
                3,
            );
            let Some(resp) = resp else { continue };
            if resp.status.is_redirect() {
                assert!(
                    resp.headers.contains("cf-ray"),
                    "redirect hop must carry CF-RAY"
                );
                assert!(resp
                    .headers
                    .get("location")
                    .unwrap()
                    .starts_with("https://"));
                return;
            }
        }
        panic!("no redirecting Cloudflare domain found in first 2000 ranks");
    }

    #[test]
    fn head_requests_have_no_body() {
        let spec = make_spec();
        let cache = OriginCache::new(16);
        let req = Request::head(format!("https://{}/", spec.name).parse().unwrap())
            .headers(&HeaderProfile::FullBrowser.headers());
        let resp = serve_ok(&spec, &cache, &req, &client("US"), 1);
        assert!(resp.body.is_empty());
        assert!(resp.headers.contains("cf-ray"));
    }

    #[test]
    fn airbnb_blocks_iran_syria_and_crimea_only() {
        let pop = AlexaPopulation::new(42, 10_000);
        let spec = pop.spec_of("airbnb.com").unwrap();
        let cache = OriginCache::new(16);
        let fp = FingerprintSet::paper();
        for country in ["IR", "SY"] {
            let resp = serve_ok(
                &spec,
                &cache,
                &full_request("airbnb.com"),
                &client(country),
                1,
            );
            assert_eq!(
                fp.classify(&resp).unwrap().kind,
                PageKind::Airbnb,
                "{country}"
            );
        }
        let cu = serve_ok(&spec, &cache, &full_request("airbnb.com"), &client("CU"), 1);
        assert!(fp.classify(&cu).is_none(), "Cuba is not on Airbnb's list");
        let crimea = ClientContext {
            region: Some(Region::Crimea),
            ..client("UA")
        };
        let resp = serve_ok(&spec, &cache, &full_request("airbnb.com"), &crimea, 1);
        assert_eq!(fp.classify(&resp).unwrap().kind, PageKind::Airbnb);
    }
}
