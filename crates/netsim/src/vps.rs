//! Datacenter VPS vantage points (§2.2, §3).
//!
//! The exploration phase ran from 16 commercial VPSes. Compared with
//! residential exits, VPS clients are reliable (no proxy layer, no local
//! firewall), but they are *not* residential: bot-detection layers treat
//! their address space more kindly in our model (no IP-reputation noise),
//! while their header sets (ZGrab with only a User-Agent) trip deterministic
//! detection — which is exactly the §3.1 false-positive story.

use std::sync::Arc;

use geoblock_http::{FetchError, Response};
use geoblock_lumscan::{Transport, TransportRequest};
use geoblock_worldgen::CountryCode;

use crate::geoip::datacenter_addr;
use crate::net::{ClientContext, SimInternet};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// A VPS in a fixed country, implementing [`Transport`].
pub struct VpsTransport {
    internet: Arc<SimInternet>,
    country: CountryCode,
    host_index: u64,
}

impl VpsTransport {
    /// A VPS in `country`.
    pub fn new(internet: Arc<SimInternet>, country: CountryCode) -> VpsTransport {
        VpsTransport {
            internet,
            country,
            host_index: 1,
        }
    }

    /// The VPS's country.
    pub fn country(&self) -> CountryCode {
        self.country
    }

    /// The client context this VPS presents to edges.
    pub fn client(&self) -> ClientContext {
        let addr = datacenter_addr(self.country, self.host_index);
        ClientContext {
            ip: addr.ip,
            country: addr.country,
            region: addr.region,
            residential: false,
            seq_nonce: None,
        }
    }
}

impl Transport for VpsTransport {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        // A VPS is pinned to its country; the request's target country is
        // informational only. Yield so large sweeps interleave fairly.
        tokio::task::yield_now().await;
        let mut client = self.client();
        // Replayable per-request nonce: (session, host, vantage country).
        client.seq_nonce = Some(mix(req.session.0
            ^ hash_str(&req.request.effective_host())
            ^ ((self.country.0[0] as u64) << 8 | self.country.0[1] as u64)));
        self.internet.request(&req.request, &client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{ClientProfile, Request};
    use geoblock_lumscan::{follow_redirects, SessionId};
    use geoblock_worldgen::{cc, World, WorldConfig};

    fn internet() -> Arc<SimInternet> {
        Arc::new(SimInternet::new(Arc::new(World::build(WorldConfig::tiny(
            42,
        )))))
    }

    #[tokio::test]
    async fn vps_fetches_from_its_own_country() {
        let net = internet();
        let vps = VpsTransport::new(net.clone(), cc("US"));
        let req = Request::get(
            format!("http://{}/", crate::net::GEO_ECHO_HOST)
                .parse()
                .unwrap(),
        );
        let resp = vps
            .fetch_one(TransportRequest {
                request: req,
                country: cc("IR"), // ignored: the box lives in the US
                session: SessionId(0),
            })
            .await
            .unwrap();
        assert_eq!(resp.headers.get("cf-ipcountry"), Some("US"));
    }

    #[tokio::test]
    async fn vps_chain_following_works_end_to_end() {
        let net = internet();
        let vps = VpsTransport::new(net.clone(), cc("DE"));
        let name = net.world().population.spec(7).name.clone();
        let req = Request::get(format!("http://{name}/").parse().unwrap())
            .client_profile(&ClientProfile::browser());
        let chain = follow_redirects(&vps, req, cc("DE"), SessionId(0), 10)
            .await
            .unwrap();
        assert!(chain.final_response().status.is_success());
    }

    #[tokio::test]
    async fn vps_clients_are_not_residential() {
        let net = internet();
        let vps = VpsTransport::new(net, cc("IR"));
        let client = vps.client();
        assert!(!client.residential);
        assert!(client.ip.starts_with("45."));
        assert_eq!(client.country, cc("IR"));
    }
}
