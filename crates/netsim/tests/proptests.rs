//! Property-based tests for the simulated Internet: GeoIP round-trips,
//! per-request determinism, and edge-response sanity over arbitrary
//! domains and countries.

use std::sync::Arc;

use geoblock_http::{HeaderProfile, Request};
use geoblock_netsim::geoip::{datacenter_addr, locate, residential_addr};
use geoblock_netsim::{ClientContext, SimInternet};
use geoblock_worldgen::country::{luminati_countries, registry};
use geoblock_worldgen::{World, WorldConfig};
use proptest::prelude::*;

fn country_strategy() -> impl Strategy<Value = geoblock_worldgen::CountryCode> {
    proptest::sample::select(registry().iter().map(|c| c.code).collect::<Vec<_>>())
}

fn shared_internet() -> &'static Arc<SimInternet> {
    use std::sync::OnceLock;
    static NET: OnceLock<Arc<SimInternet>> = OnceLock::new();
    NET.get_or_init(|| {
        Arc::new(SimInternet::new(Arc::new(World::build(WorldConfig::tiny(
            42,
        )))))
    })
}

proptest! {
    #[test]
    fn residential_addresses_locate_home(country in country_strategy(), n in any::<u64>()) {
        let addr = residential_addr(country, n);
        let located = locate(&addr.ip).expect("simulated space");
        prop_assert_eq!(located.country, country);
        prop_assert_eq!(located.region, addr.region);
    }

    #[test]
    fn datacenter_addresses_locate_home(country in country_strategy(), n in any::<u64>()) {
        let addr = datacenter_addr(country, n);
        let located = locate(&addr.ip).expect("simulated space");
        prop_assert_eq!(located.country, country);
        prop_assert_eq!(located.region, None);
    }

    #[test]
    fn responses_are_structurally_valid(rank in 1u32..20_000, country_idx in 0usize..177) {
        let net = shared_internet();
        let countries = luminati_countries();
        let country = countries[country_idx % countries.len()];
        let name = net.world().population.spec(rank).name;
        let request = Request::get(format!("http://{name}/").parse().unwrap())
            .headers(&HeaderProfile::FullBrowser.headers());
        let client = ClientContext {
            ip: residential_addr(country, rank as u64).ip,
            country,
            region: None,
            residential: true,
            seq_nonce: None,
        };
        match net.request(&request, &client) {
            Err(_) => {} // failures are part of the model
            Ok(resp) => {
                // Status always in range; redirects carry a Location; block
                // pages are never empty; 200 bodies respect the spec size.
                prop_assert!(resp.status.as_u16() >= 100 && resp.status.as_u16() < 600);
                if resp.status.is_redirect() {
                    prop_assert!(resp.headers.contains("location"));
                } else if resp.status.is_success() {
                    let spec = net.world().population.spec(rank);
                    prop_assert!(resp.body.len() <= spec.base_page_bytes as usize + 600);
                } else {
                    prop_assert!(!resp.body.is_empty());
                }
            }
        }
    }

    #[test]
    fn geo_echo_always_reports_the_client(country in country_strategy()) {
        let net = shared_internet();
        let request = Request::get("http://geocheck.example/".parse().unwrap());
        let client = ClientContext {
            ip: "5.1.2.3".into(),
            country,
            region: None,
            residential: true,
            seq_nonce: None,
        };
        let resp = net.request(&request, &client).expect("echo never fails");
        prop_assert_eq!(resp.headers.get("cf-ipcountry"), Some(country.as_str()));
    }
}
