//! The Luminati network front: superproxies and request relay.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geoblock_http::{FetchError, Request, Response, StatusCode};
use geoblock_lumscan::{Transport, TransportRequest};
use geoblock_netsim::{ClientContext, SimInternet};
use geoblock_worldgen::CountryCode;

use crate::exits::{exit_for, ExitNode};

/// The proxy-controlled echo host Lumscan verifies connectivity against.
pub const LUMTEST_HOST: &str = "lumtest.io";

/// Tuning knobs for the network's misbehaviour.
#[derive(Debug, Clone)]
pub struct LuminatiConfig {
    /// Seed for exit synthesis and noise.
    pub seed: u64,
    /// Base per-request probability of a superproxy/tunnel failure.
    pub proxy_error_rate: f64,
    /// Base per-request probability of an exit-side timeout (scaled by the
    /// country's network reliability and the exit's flakiness).
    pub timeout_rate: f64,
    /// Probability that a corporate-firewall exit interferes with a given
    /// request.
    pub firewall_interference_rate: f64,
    /// Number of superproxies (accounting only; they are load-balanced by
    /// the engine's session ids).
    pub superproxies: usize,
}

impl Default for LuminatiConfig {
    fn default() -> Self {
        LuminatiConfig {
            seed: 0x10a1,
            proxy_error_rate: 0.02,
            timeout_rate: 0.10,
            firewall_interference_rate: 0.55,
            superproxies: 8,
        }
    }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The simulated Luminati network. Implements [`Transport`].
pub struct LuminatiNetwork {
    internet: Arc<SimInternet>,
    config: LuminatiConfig,
    relays: AtomicU64,
    refused: AtomicU64,
}

impl LuminatiNetwork {
    /// Wrap an internet with the default noise profile.
    pub fn new(internet: Arc<SimInternet>) -> LuminatiNetwork {
        LuminatiNetwork::with_config(internet, LuminatiConfig::default())
    }

    /// Wrap with explicit tuning.
    pub fn with_config(internet: Arc<SimInternet>, config: LuminatiConfig) -> LuminatiNetwork {
        LuminatiNetwork {
            internet,
            config,
            relays: AtomicU64::new(0),
            refused: AtomicU64::new(0),
        }
    }

    /// The internet behind the proxy.
    pub fn internet(&self) -> &Arc<SimInternet> {
        &self.internet
    }

    /// Total requests relayed (for load accounting / examples).
    pub fn relays(&self) -> u64 {
        self.relays.load(Ordering::Relaxed)
    }

    /// Total requests refused by Luminati policy.
    pub fn refusals(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Luminati's own domain blocklist: it refuses to carry traffic to a
    /// small set of protected domains, skewed toward the most popular ranks
    /// (§4.1.1: 13 of 8,003 Top-10K domains vs §5.1.3: 3 of 6,180 Top-1M
    /// samples).
    fn refuses(&self, host: &str) -> bool {
        let rank = self.internet.world().population.rank_of(host);
        let h = mix(hash_str(host) ^ self.config.seed ^ 0x1b10) % 10_000;
        match rank {
            Some(r) if r <= 10_000 => h < 16, // 0.16%
            Some(_) => h < 5,                 // 0.05%
            None => false,
        }
    }

    /// Serve the proxy-controlled echo page.
    fn echo(&self, request: &Request, exit: &ExitNode) -> Response {
        Response::builder(StatusCode::OK)
            .header("Content-Type", "text/plain")
            .body(format!(
                "ip={}&country={}&superproxy=sp{}.luminati.io",
                exit.actual.ip,
                exit.actual.country,
                hash_str(&exit.actual.ip) % self.config.superproxies as u64,
            ))
            .finish(request.url.clone())
    }
}

impl Transport for LuminatiNetwork {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        tokio::task::yield_now().await;
        let country: CountryCode = req.country;
        let info = country.info();
        if !info.map(|i| i.luminati).unwrap_or(false) {
            return Err(FetchError::NoExitAvailable {
                country: country.as_str().to_string(),
            });
        }
        let reliability = info.map(|i| i.reliability).unwrap_or(0.9);
        let host = req.request.effective_host();
        let host_hash = hash_str(&host);
        // The session pins the exit machine — the echo check and the real
        // fetch of one probe share a household, which is what makes
        // exit-attributed analyses (the Crimea study) possible. Relay noise
        // additionally keys on the host so the echo's success says nothing
        // about the target fetch.
        let exit = exit_for(self.config.seed, country, req.session.0);
        let noise = mix(self.config.seed ^ mix(req.session.0) ^ host_hash);
        let u = |salt: u64| (mix(noise ^ salt) % 1_000_000) as f64 / 1_000_000.0;
        if host == LUMTEST_HOST {
            // The echo service is Luminati-side: it sees the exit's true
            // location and never fails for proxy reasons.
            self.relays.fetch_add(1, Ordering::Relaxed);
            return Ok(self.echo(&req.request, &exit));
        }

        // Luminati policy refusals surface an X-Luminati-Error.
        if self.refuses(&host) {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::ProxyRefused {
                reason: "blocked_target".to_string(),
            });
        }

        // Superproxy / tunnel failure.
        if u(0x50e7) < self.config.proxy_error_rate {
            return Err(FetchError::ProxyError {
                detail: "tunnel establishment failed".to_string(),
            });
        }

        // Exit-side timeout, scaled by network quality and flakiness.
        let p_timeout = self.config.timeout_rate * (1.0 - reliability) * exit.flakiness;
        if u(0x71e0) < p_timeout {
            return Err(FetchError::Timeout);
        }

        // Corporate-firewall interference: the local network silently drops
        // the connection before it leaves the household — §4.1.5 counts
        // "local filtering like a corporate firewall" among the failure
        // modes, and §4.2 blames it for sub-100% block-page consistency.
        if exit.corporate_firewall && u(0xf17e) < self.config.firewall_interference_rate {
            return Err(FetchError::Timeout);
        }

        self.relays.fetch_add(1, Ordering::Relaxed);
        let client = ClientContext {
            ip: exit.actual.ip.clone(),
            country: exit.actual.country,
            region: exit.actual.region,
            residential: true,
            // The edge's stochastic draws key on (session, host, country):
            // fully replayable, no counters shared across tasks.
            seq_nonce: Some(mix(req.session.0
                ^ host_hash
                ^ ((country.0[0] as u64) << 8 | country.0[1] as u64))),
        };
        self.internet.request(&req.request, &client)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::HeaderProfile;
    use geoblock_lumscan::SessionId;
    use geoblock_worldgen::{cc, World, WorldConfig};

    fn network() -> LuminatiNetwork {
        let world = Arc::new(World::build(WorldConfig::tiny(42)));
        LuminatiNetwork::new(Arc::new(SimInternet::new(world)))
    }

    fn treq(host: &str, country: &str, session: u64) -> TransportRequest {
        TransportRequest {
            request: Request::get(format!("http://{host}/").parse().unwrap())
                .headers(&HeaderProfile::FullBrowser.headers()),
            country: cc(country),
            session: SessionId(session),
        }
    }

    #[tokio::test]
    async fn north_korea_has_no_exits() {
        let net = network();
        let err = net
            .fetch_one(treq("anything.com", "KP", 0))
            .await
            .unwrap_err();
        assert!(matches!(err, FetchError::NoExitAvailable { .. }));
    }

    #[tokio::test]
    async fn echo_reports_exit_identity() {
        let net = network();
        let resp = net.fetch_one(treq(LUMTEST_HOST, "IR", 7)).await.unwrap();
        let body = resp.body.as_text().to_string();
        assert!(
            body.contains("country=IR") || body.contains("country="),
            "{body}"
        );
        assert!(body.contains("superproxy=sp"));
    }

    #[tokio::test]
    async fn requests_reach_the_internet() {
        let net = network();
        let name = net.internet().world().population.spec(3).name.clone();
        // Retry across sessions to dodge injected noise.
        for session in 0..20 {
            if let Ok(resp) = net.fetch_one(treq(&name, "US", session)).await {
                assert!(
                    resp.status.is_success()
                        || resp.status.is_redirect()
                        || resp.status.is_client_error()
                );
                return;
            }
        }
        panic!("all 20 sessions failed");
    }

    #[tokio::test]
    async fn noise_rates_are_in_band() {
        let net = network();
        let name = net.internet().world().population.spec(11).name.clone();
        let mut failures = 0;
        let n = 600;
        for session in 0..n {
            if net.fetch_one(treq(&name, "DE", session)).await.is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / n as f64;
        // Germany is reliable: a few percent of proxy-side noise.
        assert!(rate < 0.12, "failure rate {rate}");
    }

    #[tokio::test]
    async fn unreliable_countries_fail_more() {
        let net = network();
        let name = net.internet().world().population.spec(11).name.clone();
        let mut km = 0;
        let mut ch = 0;
        let n = 800;
        for session in 0..n {
            if net.fetch_one(treq(&name, "KM", session)).await.is_err() {
                km += 1;
            }
            if net.fetch_one(treq(&name, "CH", session)).await.is_err() {
                ch += 1;
            }
        }
        assert!(km > ch, "KM {km} vs CH {ch}");
    }

    #[tokio::test]
    async fn some_popular_domains_are_refused() {
        let net = network();
        let pop = net.internet().world().population.clone();
        let mut refused = 0;
        for rank in 1..=2000 {
            let name = pop.spec(rank).name;
            if matches!(
                net.fetch_one(treq(&name, "US", rank as u64)).await,
                Err(FetchError::ProxyRefused { .. })
            ) {
                refused += 1;
            }
        }
        // ~0.16% of popular domains → a handful in 2,000.
        assert!((1..=15).contains(&refused), "refused {refused}");
        assert_eq!(net.refusals(), refused as u64);
    }

    #[tokio::test]
    async fn interference_is_deterministic_per_attempt() {
        // The same (host, country) relay sequence must replay identically:
        // two identically-seeded stacks produce the same outcome pattern,
        // request for request.
        async fn run() -> Vec<bool> {
            let world = Arc::new(geoblock_worldgen::World::build(
                geoblock_worldgen::WorldConfig::tiny(42),
            ));
            let internet = Arc::new(SimInternet::new(world));
            let net = LuminatiNetwork::new(internet.clone());
            let name = internet.world().population.spec(5).name.clone();
            let mut outcomes = Vec::new();
            for session in 0..200 {
                outcomes.push(net.fetch_one(treq(&name, "US", session)).await.is_ok());
            }
            outcomes
        }
        let a = run().await;
        let b = run().await;
        assert_eq!(a, b);
        assert!(a.iter().any(|ok| !ok), "some interference expected");
    }
}
