//! Deterministic fault injection for transports.
//!
//! The paper's reliability machinery (§3.2) exists because the residential
//! proxy path fails in colourful ways: exits die mid-session, bodies arrive
//! truncated, superproxies 502, responses stall, and a household's
//! geolocation quietly drifts. Reproducing the *engineering* therefore
//! needs a way to reproduce the *weather* — on demand, at chosen rates, and
//! byte-for-byte replayable.
//!
//! [`FaultPlan`] is that weather forecast: a seedable, purely functional
//! description of which faults strike which request. Every decision is a
//! stateless draw keyed on `(seed, session, host)` — no shared RNG, no
//! counters except the per-session request sequence (which is itself
//! deterministic because one session serves one probe's requests in
//! order). Two runs with the same plan see byte-identical fault sequences.
//!
//! [`FaultyTransport`] injects a plan into any
//! [`Transport`](geoblock_lumscan::Transport) — the simulated Luminati
//! network, `geoblock_netsim::VpsTransport`, or a test double — and tallies
//! what it did in [`FaultStats`].

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use geoblock_http::{FetchError, Response};
use geoblock_lumscan::{Transport, TransportRequest};
use geoblock_worldgen::CountryCode;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::network::LUMTEST_HOST;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Draw salts — one per fault class, so the classes are independent.
const SALT_DEATH: u64 = 0xdea7;
const SALT_SUPERPROXY: u64 = 0x0502;
const SALT_STALL: u64 = 0x57a11;
const SALT_TRUNCATE: u64 = 0x7c07;
const SALT_DRIFT: u64 = 0xd81f7;

/// A seedable, deterministic fault schedule.
///
/// Rates are per-request probabilities in `[0, 1]` (except
/// `exit_death_rate` and `geo_drift_rate`, which are per-*exit*: the draw
/// keys on the session alone, because dying and drifting are properties of
/// the household, not of one exchange).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every draw. Same seed, same faults.
    pub seed: u64,
    /// Fraction of exits that die after their first request — the
    /// verification passes, then the household disappears. This is the
    /// failure mode pre-verification cannot catch and retries exist for.
    pub exit_death_rate: f64,
    /// Per-request probability that a successful response's body is cut
    /// short in transit (surfaced as
    /// [`TruncatedBody`](FetchError::TruncatedBody)).
    pub truncate_rate: f64,
    /// Per-request probability that the exchange stalls for [`stall`]
    /// before completing (slow-start / congested household). Harmless
    /// unless the engine enforces a per-attempt budget.
    ///
    /// [`stall`]: FaultPlan::stall
    pub stall_rate: f64,
    /// How long a stalled exchange hangs.
    pub stall: Duration,
    /// Per-request probability the superproxy fails with a 502-style
    /// tunnel error before reaching any exit.
    pub superproxy_502_rate: f64,
    /// Fraction of exits whose geolocation has drifted: the echo page
    /// reports a different country than the probe asked for.
    pub geo_drift_rate: f64,
    /// Per-country multipliers on the transient rates (death, truncate,
    /// stall, 502). Countries absent from the map multiply by 1.
    /// Serialized as a pair list: [`CountryCode`] is not a string, so it
    /// cannot be a JSON object key.
    #[serde(with = "flakiness_pairs")]
    pub country_flakiness: BTreeMap<CountryCode, f64>,
}

/// Serialize `country_flakiness` as an ordered `[[country, mult], …]` list.
mod flakiness_pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<CountryCode, f64>,
        s: S,
    ) -> Result<S::Ok, S::Error> {
        let pairs: Vec<(&CountryCode, &f64)> = map.iter().collect();
        pairs.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        d: D,
    ) -> Result<BTreeMap<CountryCode, f64>, D::Error> {
        let pairs: Vec<(CountryCode, f64)> = Vec::deserialize(d)?;
        Ok(pairs.into_iter().collect())
    }
}

impl FaultPlan {
    /// No faults at all — the transparent plan.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            exit_death_rate: 0.0,
            truncate_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::ZERO,
            superproxy_502_rate: 0.0,
            geo_drift_rate: 0.0,
            country_flakiness: BTreeMap::new(),
        }
    }

    /// The standard plan used by the reliability ablation: every fault
    /// class active at rates aggressive enough that naive (no-retry)
    /// probing visibly bleeds coverage, yet all transient — a hardened
    /// engine should recover nearly everything.
    pub fn standard(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            exit_death_rate: 0.08,
            truncate_rate: 0.06,
            stall_rate: 0.05,
            stall: Duration::ZERO,
            superproxy_502_rate: 0.06,
            geo_drift_rate: 0.01,
            country_flakiness: BTreeMap::new(),
        }
    }

    /// A straggler-heavy plan for the batch-vs-streaming ablation: mostly
    /// healthy exchanges, but a few percent hang for a long stall. Under a
    /// barrier-batch driver every chunk pays its slowest straggler's tail;
    /// a streaming driver overlaps stalls across the whole run, so the gap
    /// between the two architectures is exactly what this plan surfaces.
    pub fn straggler(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            exit_death_rate: 0.02,
            truncate_rate: 0.01,
            stall_rate: 0.04,
            stall: Duration::from_millis(40),
            superproxy_502_rate: 0.02,
            geo_drift_rate: 0.0,
            country_flakiness: BTreeMap::new(),
        }
    }

    /// Builder-style: mark `country` as `multiplier`× flakier than base.
    pub fn flaky_country(mut self, country: CountryCode, multiplier: f64) -> FaultPlan {
        self.country_flakiness.insert(country, multiplier);
        self
    }

    /// Builder-style: set the stall duration.
    pub fn stall_for(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }

    fn multiplier(&self, country: CountryCode) -> f64 {
        self.country_flakiness.get(&country).copied().unwrap_or(1.0)
    }

    /// A uniform draw in `[0, 1)` keyed on `(seed, key, salt)`.
    fn draw(&self, key: u64, salt: u64) -> f64 {
        (mix(self.seed ^ mix(key) ^ salt) % 1_000_000) as f64 / 1_000_000.0
    }

    /// Whether the exit pinned by `session` dies after its first request.
    pub fn exit_is_doomed(&self, session: u64, country: CountryCode) -> bool {
        self.draw(session, SALT_DEATH) < self.exit_death_rate * self.multiplier(country)
    }

    /// Whether the exit pinned by `session` reports a drifted geolocation.
    pub fn exit_has_drifted(&self, session: u64) -> bool {
        self.draw(session, SALT_DRIFT) < self.geo_drift_rate
    }

    /// The country a drifted exit claims instead of `original`.
    pub fn drift_target(&self, session: u64, original: &str) -> &'static str {
        const NEIGHBOURS: [&str; 6] = ["DE", "US", "NL", "TR", "RU", "FR"];
        let pick = NEIGHBOURS[(mix(self.seed ^ mix(session) ^ 0x9e0) % 6) as usize];
        if pick == original {
            "GB"
        } else {
            pick
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::standard(0xfa017)
    }
}

/// Tally of injected faults, by class.
#[derive(Debug, Default)]
pub struct FaultStats {
    exit_deaths: AtomicU64,
    superproxy_errors: AtomicU64,
    stalls: AtomicU64,
    truncations: AtomicU64,
    geo_drifts: AtomicU64,
    delivered: AtomicU64,
}

/// A point-in-time copy of [`FaultStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStatsSnapshot {
    /// Requests killed because their exit had died.
    pub exit_deaths: u64,
    /// Requests killed by an injected superproxy 502.
    pub superproxy_errors: u64,
    /// Requests that were stalled (they still completed, slowly).
    pub stalls: u64,
    /// Responses whose body was truncated in transit.
    pub truncations: u64,
    /// Echo responses rewritten to a drifted country.
    pub geo_drifts: u64,
    /// Requests passed through without any injected fault.
    pub delivered: u64,
}

impl FaultStats {
    fn snapshot(&self) -> FaultStatsSnapshot {
        FaultStatsSnapshot {
            exit_deaths: self.exit_deaths.load(Ordering::Relaxed),
            superproxy_errors: self.superproxy_errors.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            truncations: self.truncations.load(Ordering::Relaxed),
            geo_drifts: self.geo_drifts.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
        }
    }
}

impl FaultStatsSnapshot {
    /// Total requests that were actively faulted (stalls excluded — those
    /// requests still delivered a result).
    pub fn faulted(&self) -> u64 {
        self.exit_deaths + self.superproxy_errors + self.truncations
    }
}

const COUNTER_SHARDS: usize = 32;

/// A [`Transport`] decorator that injects a [`FaultPlan`] into every
/// exchange of the wrapped transport.
///
/// Works over any transport — `LuminatiNetwork`, `VpsTransport`, test
/// doubles — because all fault decisions are made from the request alone.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    stats: FaultStats,
    /// Per-session request sequence numbers (exit death spares request #1,
    /// which is how a verified exit still dies under the probe).
    seen: Vec<Mutex<HashMap<u64, u64>>>,
}

impl<T> FaultyTransport<T> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            plan,
            stats: FaultStats::default(),
            seen: (0..COUNTER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn stats(&self) -> FaultStatsSnapshot {
        self.stats.snapshot()
    }

    /// Claim the next sequence number (1-based) for `session`.
    fn next_seq(&self, session: u64) -> u64 {
        let shard = (mix(session) as usize) % COUNTER_SHARDS;
        let mut map = self.seen[shard].lock();
        let seq = map.entry(session).or_insert(0);
        *seq += 1;
        *seq
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let session = req.session.0;
        let host = req.request.url.host.as_str().to_string();
        let host_hash = hash_str(&host);
        let flaky = self.plan.multiplier(req.country);
        let seq = self.next_seq(session);

        // The exit vanished mid-session: its first request (the
        // connectivity check) worked, every later one dies.
        if seq >= 2 && self.plan.exit_is_doomed(session, req.country) {
            self.stats.exit_deaths.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::ProxyError {
                detail: "exit vanished mid-session".to_string(),
            });
        }

        // Superproxy tunnel failure, before any exit is involved.
        if self.plan.draw(mix(session) ^ host_hash, SALT_SUPERPROXY)
            < self.plan.superproxy_502_rate * flaky
        {
            self.stats.superproxy_errors.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::ProxyError {
                detail: "superproxy 502 bad gateway".to_string(),
            });
        }

        // Slow-start / congested household: the exchange completes, late.
        if self.plan.draw(mix(session) ^ host_hash, SALT_STALL) < self.plan.stall_rate * flaky {
            self.stats.stalls.fetch_add(1, Ordering::Relaxed);
            if !self.plan.stall.is_zero() {
                tokio::time::sleep(self.plan.stall).await;
            }
        }

        let mut resp = self.inner.fetch_one(req).await?;

        if host == LUMTEST_HOST {
            // Geolocation drift: the household moved (or the geo database
            // is wrong) — the echo page tells the truth about it.
            if self.plan.exit_has_drifted(session) {
                let body = resp.body.as_text().into_owned();
                if let Some(pos) = body.find("country=") {
                    let start = pos + "country=".len();
                    if body.len() >= start + 2 {
                        let original = &body[start..start + 2];
                        let drifted = self.plan.drift_target(session, original);
                        let rewritten =
                            format!("{}{}{}", &body[..start], drifted, &body[start + 2..]);
                        resp.body = rewritten.into();
                        self.stats.geo_drifts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            return Ok(resp);
        }

        // Truncated body: the bytes stopped early; the client notices the
        // short read and reports it rather than handing over a partial
        // page.
        let len = resp.body.len();
        if len > 0
            && self.plan.draw(mix(session) ^ host_hash, SALT_TRUNCATE)
                < self.plan.truncate_rate * flaky
        {
            self.stats.truncations.fetch_add(1, Ordering::Relaxed);
            return Err(FetchError::TruncatedBody {
                received: len / 3,
                expected: len,
            });
        }

        self.stats.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(resp)
    }
}

/// One fault class, as an explicit schedule entry. The same taxonomy
/// [`FaultPlan`] draws probabilistically, reified so a concrete fault
/// sequence can be written down, shrunk, and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// The exit vanished: the request fails with a proxy-side error.
    ExitDeath,
    /// The superproxy 502s before reaching any exit.
    Superproxy502,
    /// The exchange completes, but only after the configured stall.
    Stall,
    /// The response body is cut short in transit.
    TruncateBody,
    /// The echo page reports a drifted country (only meaningful on
    /// requests to the echo host).
    GeoDrift,
}

impl FaultKind {
    /// Every kind, in canonical order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ExitDeath,
        FaultKind::Superproxy502,
        FaultKind::Stall,
        FaultKind::TruncateBody,
        FaultKind::GeoDrift,
    ];

    /// Stable lowercase tag (used in trace lines and fixtures).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::ExitDeath => "exit-death",
            FaultKind::Superproxy502 => "superproxy-502",
            FaultKind::Stall => "stall",
            FaultKind::TruncateBody => "truncate",
            FaultKind::GeoDrift => "geo-drift",
        }
    }
}

/// One scheduled fault: strike the `seq`-th request (1-based) that
/// `country` makes to `host` with `kind`.
///
/// The derived [`Ord`] — host, then country, then sequence, then kind — is
/// the **canonical shrink ordering**: delta-debugging a schedule sorts
/// events this way first, so two shrink runs over the same divergence
/// explore subsets in the same order and land on the same minimal
/// reproducer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Target host the faulted request was addressed to.
    pub host: String,
    /// Vantage country of the faulted request.
    pub country: CountryCode,
    /// Which request to `(host, country)` is struck, counting from 1 in
    /// arrival order.
    pub seq: u64,
    /// What happens to it.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A scheduled fault on the `seq`-th request `country` makes to `host`.
    pub fn new(host: impl Into<String>, country: CountryCode, seq: u64, kind: FaultKind) -> Self {
        FaultEvent {
            host: host.into(),
            country,
            seq,
            kind,
        }
    }
}

/// A [`Transport`] decorator that injects an *explicit* fault schedule —
/// the replay side of [`FaultPlan`]'s probabilistic weather.
///
/// Each incoming request claims the next sequence number for its
/// `(host, country)` pair; if a [`FaultEvent`] names that exact slot, its
/// fault is applied. With a single-threaded driver (or concurrency 1) the
/// arrival order of requests per pair is deterministic, which is what makes
/// a shrunk schedule a *fixture*: wrap the same inner transport, replay the
/// same study, and the same requests are struck.
pub struct ScriptedFaults<T> {
    inner: T,
    /// `(host, country, seq)` → fault kind.
    schedule: HashMap<(String, CountryCode, u64), FaultKind>,
    /// How long a [`FaultKind::Stall`] event hangs.
    stall: Duration,
    /// Per-`(host, country)` arrival counters.
    seen: Vec<Mutex<HashMap<(String, CountryCode), u64>>>,
    injected: AtomicU64,
}

impl<T> ScriptedFaults<T> {
    /// Wrap `inner` under an explicit `events` schedule. Later duplicates
    /// of the same `(host, country, seq)` slot win.
    pub fn new(inner: T, events: impl IntoIterator<Item = FaultEvent>) -> ScriptedFaults<T> {
        ScriptedFaults {
            inner,
            schedule: events
                .into_iter()
                .map(|e| ((e.host, e.country, e.seq), e.kind))
                .collect(),
            stall: Duration::ZERO,
            seen: (0..COUNTER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            injected: AtomicU64::new(0),
        }
    }

    /// Builder-style: how long a scheduled stall hangs (default: zero).
    pub fn stall_for(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// How many scheduled faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Claim the next 1-based sequence number for `(host, country)`.
    fn next_seq(&self, host: &str, country: CountryCode) -> u64 {
        let shard = (hash_str(host) as usize) % COUNTER_SHARDS;
        let mut map = self.seen[shard].lock();
        let seq = map.entry((host.to_string(), country)).or_insert(0);
        *seq += 1;
        *seq
    }
}

impl<T: Transport> Transport for ScriptedFaults<T> {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let host = req.request.url.host.as_str().to_string();
        let seq = self.next_seq(&host, req.country);
        let Some(kind) = self
            .schedule
            .get(&(host.clone(), req.country, seq))
            .copied()
        else {
            return self.inner.fetch_one(req).await;
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        match kind {
            FaultKind::ExitDeath => Err(FetchError::ProxyError {
                detail: "scripted: exit vanished mid-session".to_string(),
            }),
            FaultKind::Superproxy502 => Err(FetchError::ProxyError {
                detail: "scripted: superproxy 502 bad gateway".to_string(),
            }),
            FaultKind::Stall => {
                if !self.stall.is_zero() {
                    tokio::time::sleep(self.stall).await;
                }
                self.inner.fetch_one(req).await
            }
            FaultKind::TruncateBody => {
                let resp = self.inner.fetch_one(req).await?;
                let len = resp.body.len();
                Err(FetchError::TruncatedBody {
                    received: len / 3,
                    expected: len.max(1),
                })
            }
            FaultKind::GeoDrift => {
                let mut resp = self.inner.fetch_one(req).await?;
                let body = resp.body.as_text().into_owned();
                if let Some(pos) = body.find("country=") {
                    let start = pos + "country=".len();
                    if body.len() >= start + 2 {
                        let original = &body[start..start + 2];
                        let drifted = if original == "DE" { "GB" } else { "DE" };
                        resp.body =
                            format!("{}{}{}", &body[..start], drifted, &body[start + 2..]).into();
                    }
                }
                Ok(resp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{Request, StatusCode};
    use geoblock_lumscan::SessionId;
    use geoblock_worldgen::cc;

    /// An inner transport that always succeeds: body for sites, echo for
    /// the check host.
    struct Perfect;

    impl Transport for Perfect {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let body = if req.request.url.host.as_str() == LUMTEST_HOST {
                format!("ip=10.0.0.1&country={}", req.country)
            } else {
                "<html>0123456789 payload</html>".to_string()
            };
            Ok(Response::builder(StatusCode::OK)
                .body(body)
                .finish(req.request.url))
        }
    }

    fn treq(host: &str, country: &str, session: u64) -> TransportRequest {
        TransportRequest {
            request: Request::get(format!("http://{host}/").parse().unwrap()),
            country: cc(country),
            session: SessionId(session),
        }
    }

    #[tokio::test]
    async fn transparent_plan_passes_everything() {
        let t = FaultyTransport::new(Perfect, FaultPlan::none(1));
        for s in 0..200 {
            assert!(t.fetch_one(treq("site.com", "US", s)).await.is_ok());
        }
        let stats = t.stats();
        assert_eq!(stats.faulted(), 0);
        assert_eq!(stats.delivered, 200);
    }

    #[tokio::test]
    async fn fault_sequence_is_deterministic() {
        async fn run() -> Vec<bool> {
            let t = FaultyTransport::new(Perfect, FaultPlan::standard(42));
            let mut outcomes = Vec::new();
            for s in 0..400 {
                // Two requests per session, like verify-then-fetch.
                outcomes.push(t.fetch_one(treq(LUMTEST_HOST, "US", s)).await.is_ok());
                outcomes.push(t.fetch_one(treq("site.com", "US", s)).await.is_ok());
            }
            outcomes
        }
        let a = run().await;
        let b = run().await;
        assert_eq!(a, b);
        assert!(a.iter().any(|ok| !ok), "some faults expected");
    }

    #[tokio::test]
    async fn exit_death_spares_the_first_request() {
        let plan = FaultPlan {
            exit_death_rate: 1.0,
            ..FaultPlan::none(7)
        };
        let t = FaultyTransport::new(Perfect, plan);
        assert!(t.fetch_one(treq(LUMTEST_HOST, "US", 5)).await.is_ok());
        let err = t.fetch_one(treq("site.com", "US", 5)).await.unwrap_err();
        assert!(matches!(err, FetchError::ProxyError { .. }), "{err:?}");
        assert_eq!(t.stats().exit_deaths, 1);
    }

    #[tokio::test]
    async fn truncation_reports_byte_counts() {
        let plan = FaultPlan {
            truncate_rate: 1.0,
            ..FaultPlan::none(3)
        };
        let t = FaultyTransport::new(Perfect, plan);
        let err = t.fetch_one(treq("site.com", "US", 1)).await.unwrap_err();
        match err {
            FetchError::TruncatedBody { received, expected } => {
                assert!(received < expected);
                assert!(expected > 0);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[tokio::test]
    async fn drifted_exits_echo_another_country() {
        let plan = FaultPlan {
            geo_drift_rate: 1.0,
            ..FaultPlan::none(11)
        };
        let t = FaultyTransport::new(Perfect, plan);
        let resp = t.fetch_one(treq(LUMTEST_HOST, "IR", 9)).await.unwrap();
        let body = resp.body.as_text().into_owned();
        assert!(body.contains("country="), "{body}");
        assert!(
            !body.contains("country=IR"),
            "drift must change the country: {body}"
        );
        assert_eq!(t.stats().geo_drifts, 1);
    }

    #[tokio::test]
    async fn rates_are_roughly_honoured() {
        let plan = FaultPlan {
            superproxy_502_rate: 0.2,
            ..FaultPlan::none(13)
        };
        let t = FaultyTransport::new(Perfect, plan);
        let mut failures = 0;
        let n = 2_000;
        for s in 0..n {
            if t.fetch_one(treq("site.com", "US", s)).await.is_err() {
                failures += 1;
            }
        }
        let rate = failures as f64 / n as f64;
        assert!((0.15..0.25).contains(&rate), "rate {rate}");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::standard(42)
            .flaky_country(cc("KM"), 3.0)
            .stall_for(Duration::from_millis(40));
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(plan, back);
    }

    #[test]
    fn event_ordering_is_canonical() {
        let mut events = vec![
            FaultEvent::new("b.com", cc("US"), 1, FaultKind::Stall),
            FaultEvent::new("a.com", cc("US"), 2, FaultKind::ExitDeath),
            FaultEvent::new("a.com", cc("IR"), 2, FaultKind::ExitDeath),
            FaultEvent::new("a.com", cc("US"), 1, FaultKind::TruncateBody),
        ];
        events.sort();
        let keys: Vec<(&str, &str, u64)> = events
            .iter()
            .map(|e| (e.host.as_str(), e.country.as_str(), e.seq))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.com", "IR", 2),
                ("a.com", "US", 1),
                ("a.com", "US", 2),
                ("b.com", "US", 1),
            ]
        );
        let json = serde_json::to_string(&events).expect("events serialize");
        let back: Vec<FaultEvent> = serde_json::from_str(&json).expect("events deserialize");
        assert_eq!(events, back);
    }

    #[tokio::test]
    async fn scripted_faults_strike_exact_slots() {
        let t = ScriptedFaults::new(
            Perfect,
            vec![
                FaultEvent::new("site.com", cc("US"), 2, FaultKind::ExitDeath),
                FaultEvent::new("site.com", cc("IR"), 1, FaultKind::TruncateBody),
            ],
        );
        // US request 1 passes, request 2 dies, request 3 passes again.
        assert!(t.fetch_one(treq("site.com", "US", 1)).await.is_ok());
        let err = t.fetch_one(treq("site.com", "US", 2)).await.unwrap_err();
        assert!(matches!(err, FetchError::ProxyError { .. }), "{err:?}");
        assert!(t.fetch_one(treq("site.com", "US", 3)).await.is_ok());
        // The IR counter is independent: its first request is truncated.
        let err = t.fetch_one(treq("site.com", "IR", 4)).await.unwrap_err();
        assert!(matches!(err, FetchError::TruncatedBody { .. }), "{err:?}");
        // Other hosts are untouched.
        assert!(t.fetch_one(treq("other.com", "US", 5)).await.is_ok());
        assert_eq!(t.injected(), 2);
    }

    #[tokio::test]
    async fn scripted_geo_drift_rewrites_the_echo() {
        let t = ScriptedFaults::new(
            Perfect,
            vec![FaultEvent::new(
                LUMTEST_HOST,
                cc("IR"),
                1,
                FaultKind::GeoDrift,
            )],
        );
        let resp = t.fetch_one(treq(LUMTEST_HOST, "IR", 1)).await.unwrap();
        let body = resp.body.as_text().into_owned();
        assert!(
            !body.contains("country=IR"),
            "drift must change the country: {body}"
        );
        // The second echo request is past the schedule: truthful again.
        let resp = t.fetch_one(treq(LUMTEST_HOST, "IR", 2)).await.unwrap();
        assert!(resp.body.as_text().contains("country=IR"));
    }

    #[tokio::test]
    async fn country_flakiness_scales_rates() {
        let plan = FaultPlan {
            superproxy_502_rate: 0.1,
            ..FaultPlan::none(17)
        }
        .flaky_country(cc("KM"), 3.0);
        let t = FaultyTransport::new(Perfect, plan);
        let mut km = 0;
        let mut ch = 0;
        let n = 1_500;
        for s in 0..n {
            if t.fetch_one(treq("a.com", "KM", s)).await.is_err() {
                km += 1;
            }
            if t.fetch_one(treq("b.com", "CH", s)).await.is_err() {
                ch += 1;
            }
        }
        assert!(km > ch * 2, "KM {km} vs CH {ch}");
    }
}
