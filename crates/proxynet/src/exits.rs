//! Exit-node synthesis.
//!
//! Exit nodes are derived deterministically from (country, session): the
//! same session always lands on the same simulated household, with the same
//! quirks. That determinism is what makes whole-study replays exact.

use geoblock_netsim::geoip::{residential_addr, ClientAddr};
use geoblock_worldgen::{cc, CountryCode};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One residential exit machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitNode {
    /// The household's address and geolocation as the proxy believes it.
    pub claimed: ClientAddr,
    /// Where the household actually is (differs on mis-geolocated exits).
    pub actual: ClientAddr,
    /// The exit sits behind a corporate firewall / local filter that
    /// interferes with a share of its traffic.
    pub corporate_firewall: bool,
    /// Multiplier on transient-failure probability for this household.
    pub flakiness: f64,
}

impl ExitNode {
    /// Whether the proxy's geolocation of this exit is wrong.
    pub fn mislocated(&self) -> bool {
        self.claimed.country != self.actual.country
    }
}

/// Fraction of exits behind interfering corporate firewalls.
pub const CORPORATE_FIREWALL_RATE: f64 = 0.06;

/// Fraction of exits whose geolocation is wrong.
pub const MISLOCATION_RATE: f64 = 0.008;

/// Materialise the exit a (country, session) pair lands on. Deterministic.
pub fn exit_for(seed: u64, country: CountryCode, session: u64) -> ExitNode {
    let h = mix(seed ^ mix(session) ^ ((country.0[0] as u64) << 8 | country.0[1] as u64));
    let claimed = residential_addr(country, h % 60_000);

    let mislocated = (h >> 17) % 100_000 < (MISLOCATION_RATE * 100_000.0) as u64;
    let actual = if mislocated {
        // The household is really in a different (registered, measurable)
        // country — commonly a neighbour or a VPN endpoint.
        let neighbours = [cc("TR"), cc("RU"), cc("DE"), cc("US"), cc("NL"), cc("FR")];
        let other = neighbours[(h >> 33) as usize % neighbours.len()];
        let other = if other == country { cc("GB") } else { other };
        residential_addr(other, h % 60_000)
    } else {
        claimed.clone()
    };

    let corporate_firewall = (h >> 5) % 100_000 < (CORPORATE_FIREWALL_RATE * 100_000.0) as u64;
    let flakiness = 0.5 + ((h >> 40) % 1000) as f64 / 1000.0; // 0.5–1.5×

    ExitNode {
        claimed,
        actual,
        corporate_firewall,
        flakiness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exits_are_deterministic() {
        assert_eq!(exit_for(1, cc("IR"), 42), exit_for(1, cc("IR"), 42));
        assert_ne!(
            exit_for(1, cc("IR"), 42).claimed.ip,
            exit_for(1, cc("IR"), 43).claimed.ip
        );
    }

    #[test]
    fn corporate_firewall_rate_is_plausible() {
        let n = 20_000;
        let hits = (0..n)
            .filter(|&s| exit_for(7, cc("US"), s).corporate_firewall)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((0.03..0.09).contains(&rate), "rate {rate}");
    }

    #[test]
    fn mislocation_is_rare_and_lands_elsewhere() {
        let n = 50_000;
        let mislocated: Vec<ExitNode> = (0..n)
            .map(|s| exit_for(7, cc("UA"), s))
            .filter(|e| e.mislocated())
            .collect();
        let rate = mislocated.len() as f64 / n as f64;
        assert!((0.003..0.015).contains(&rate), "rate {rate}");
        for e in mislocated.iter().take(20) {
            assert_ne!(e.actual.country, cc("UA"));
        }
    }

    #[test]
    fn flakiness_spans_expected_band() {
        for s in 0..100 {
            let f = exit_for(3, cc("BR"), s).flakiness;
            assert!((0.5..1.5).contains(&f), "{f}");
        }
    }
}
