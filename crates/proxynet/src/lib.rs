//! A simulated Luminati-style residential proxy network.
//!
//! Luminati (§2.2) tunnels paying customers' HTTP requests through the
//! machines of Hola VPN users: the client talks to a *superproxy* and names
//! a desired exit country and session; the superproxy picks a residential
//! *exit node* and relays the request. The measurement sees the web exactly
//! as that household does — which is the whole point, and also the source
//! of every reliability headache Lumscan exists to absorb:
//!
//! * some countries simply have no exits (North Korea);
//! * Luminati refuses to carry traffic to certain protected domains,
//!   surfacing the refusal in an `X-Luminati-Error` header;
//! * superproxies and exits fail transiently, more often on poor networks;
//! * some exits sit behind corporate firewalls that interfere with
//!   traffic (§4.2 blames these for sub-100% block-page consistency);
//! * a small fraction of exits are *mis-geolocated* — the household is not
//!   where the proxy's database thinks it is.
//!
//! The network implements [`geoblock_lumscan::Transport`]; the engine's
//! session IDs pin exit nodes, so the ≤10-requests-per-exit policy and
//! retry-on-fresh-exit behaviour compose exactly as in the real system.
//!
//! The [`faults`] module takes the reliability model further: a seedable
//! [`FaultPlan`] describes exit deaths, truncations, stalls, superproxy
//! 502s, and geolocation drift, and [`FaultyTransport`] injects it into
//! *any* transport — this one, `geoblock-netsim`'s, or a test double — so
//! the retry subsystem can be exercised under controlled, replayable
//! weather.

pub mod exits;
pub mod faults;
pub mod network;

pub use exits::ExitNode;
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, FaultStats, FaultStatsSnapshot, FaultyTransport,
    ScriptedFaults,
};
pub use network::{LuminatiConfig, LuminatiNetwork, LUMTEST_HOST};
