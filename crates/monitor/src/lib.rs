//! Longitudinal geoblocking monitor — scheduled rescans, a snapshot
//! store, and a cached query API.
//!
//! The paper is a one-shot measurement, but its own data argues for a
//! daemon: `makro.co.za` blocked 33 countries during the baseline and
//! none days later (§4.2), and the conclusion calls for tracking
//! geoblocking as it evolves. This crate supplies that missing system as
//! three pieces over the existing study pipeline:
//!
//! - [`daemon`] — [`Monitor`], the scan scheduler: full
//!   orchestrator-backed rescans (killable and checkpoint-resumable
//!   mid-scan) on a fixed cadence, with cheap delta re-probes of
//!   previously-flagged pairs between them;
//! - [`store`] — [`SnapshotStore`], the append-only scan history:
//!   per-scan verdict sets plus the [`StudyDiff`](geoblock_core::StudyDiff)
//!   against the previous scan, each stamped with a serde-independent
//!   content hash so tests can pin whole golden timelines;
//! - [`query`] — [`QueryService`], the async read side: domain
//!   histories, country dashboards, and a change feed, memoised under a
//!   generation stamp that advances exactly when a scan commits — cached
//!   answers are provably fresh by construction.
//!
//! Determinism is the design invariant throughout: for a fixed (seed,
//! policy timeline, cadence), the store's
//! [`timeline_hash`](SnapshotStore::timeline_hash) is bit-identical for
//! any shard count and across kill/resume at any checkpoint boundary.

pub mod daemon;
pub mod query;
pub mod store;

pub use daemon::{Monitor, MonitorConfig, MonitorError, MonitorReport, ScanStep};
pub use query::{
    CacheStats, ChangeEvent, ChangeFeed, CountryDashboard, CountryScanEntry, DomainHistory,
    DomainScanEntry, QueryService,
};
pub use store::{ScanMode, ScanSnapshot, SnapshotStore, StoreError, STORE_VERSION};
