//! The longitudinal monitoring daemon over the simulated Internet.
//!
//! Builds a seeded world, attaches a generated [`PolicyTimeline`] so
//! blocking policies actually move between scans, and runs the
//! [`Monitor`] for a horizon of virtual days: full orchestrated rescans
//! on a cadence, delta re-probes between them, every scan committed to
//! the snapshot store and published to the cached [`QueryService`].
//! Finishes by answering a few wire-framed queries, daemon-style.
//!
//! ```text
//! cargo run --release -p geoblock-monitor --bin monitor_daemon -- --smoke
//! ```
//!
//! Flags: `--smoke` (small fixed smoke profile for CI), `--seed N`,
//! `--scans N`, `--cadence D`, `--full-every N`, `--shards N`,
//! `--domains N`, `--store PATH` (persist snapshots), `--checkpoint PATH`
//! (persist mid-scan progress).

use std::path::PathBuf;
use std::sync::Arc;

use geoblock_lumscan::{Lumscan, LumscanConfig, RetryPolicy};
use geoblock_monitor::{Monitor, MonitorConfig, QueryService, SnapshotStore};
use geoblock_netsim::{PolicyTimeline, SimInternet};
use geoblock_proxynet::LuminatiNetwork;
use geoblock_worldgen::{cc, CountryCode, World, WorldConfig};

struct Args {
    seed: u64,
    scans: u32,
    cadence: u32,
    full_every: u32,
    shards: usize,
    domains: usize,
    store: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        scans: 6,
        cadence: 1,
        full_every: 3,
        shards: 2,
        domains: 60,
        store: None,
        checkpoint: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--smoke" => {
                args.scans = 4;
                args.full_every = 2;
                args.domains = 24;
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed: u64"),
            "--scans" => args.scans = value("--scans").parse().expect("--scans: u32"),
            "--cadence" => args.cadence = value("--cadence").parse().expect("--cadence: u32"),
            "--full-every" => {
                args.full_every = value("--full-every").parse().expect("--full-every: u32")
            }
            "--shards" => args.shards = value("--shards").parse().expect("--shards: usize"),
            "--domains" => args.domains = value("--domains").parse().expect("--domains: usize"),
            "--store" => args.store = Some(PathBuf::from(value("--store"))),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            other => panic!("unknown flag: {other}"),
        }
    }
    args
}

#[tokio::main]
async fn main() {
    let args = parse_args();
    let world = Arc::new(World::build(WorldConfig::tiny(args.seed)));
    let domains: Vec<String> = (1..=args.domains as u32)
        .map(|r| world.population.spec(r).name)
        .collect();
    let panel: Vec<CountryCode> = ["IR", "SY", "CN", "RU", "US", "DE"]
        .iter()
        .map(|c| cc(c))
        .collect();
    let horizon = args.scans.saturating_mul(args.cadence) + 1;
    let timeline = PolicyTimeline::generate(args.seed, &domains, &panel, horizon);
    println!(
        "world seed {}: {} domains x {} countries, {} timeline events over {} days",
        args.seed,
        domains.len(),
        panel.len(),
        timeline.len(),
        horizon
    );

    // Fresh engine per scan, pinned to the scan's virtual day: this is
    // what makes an interrupted-and-resumed scan reproduce the
    // uninterrupted one bit-for-bit (see the daemon module docs).
    let factory = {
        let world = world.clone();
        let timeline = timeline.clone();
        move |day: u32| {
            let internet =
                Arc::new(SimInternet::new(world.clone()).with_timeline(timeline.clone()));
            internet.clock().advance_days(day);
            Arc::new(Lumscan::new(
                LuminatiNetwork::new(internet),
                LumscanConfig::builder()
                    .concurrency(8)
                    .retry(RetryPolicy::with_max_retries(3))
                    .build()
                    .expect("valid engine config"),
            ))
        }
    };

    let study = geoblock_core::StudyConfig::builder()
        .countries(panel.clone())
        .rep_countries(panel[..2].to_vec())
        .work_unit_domains(8)
        .build()
        .expect("valid study config");
    let mut monitor_config = MonitorConfig::default()
        .cadence_days(args.cadence)
        .full_every(args.full_every)
        .scans(args.scans)
        .shards(args.shards)
        .checkpoint_every(2);
    if let Some(path) = &args.checkpoint {
        monitor_config = monitor_config.checkpoint_path(path);
    }

    let mut store = match &args.store {
        Some(path) => SnapshotStore::open(path).expect("readable snapshot store"),
        None => SnapshotStore::in_memory(),
    };
    if !store.is_empty() {
        println!("resuming: store already holds {} scans", store.len());
    }
    let query = QueryService::new();
    let monitor = Monitor::new(factory, domains.clone(), study, monitor_config);

    let report = monitor
        .run(&mut store, Some(&query))
        .await
        .expect("monitoring run");
    for snapshot in store.snapshots() {
        println!(
            "scan {:>2} day {:>2} [{}]: {} verdicts, +{} -{} pairs, {} full retreats (hash {:016x})",
            snapshot.scan_index,
            snapshot.day,
            snapshot.mode,
            snapshot.verdicts.len(),
            snapshot.diff.newly_blocked_pairs(),
            snapshot.diff.unblocked_pairs(),
            snapshot.diff.full_retreats().len(),
            snapshot.content_hash
        );
    }
    println!(
        "{} scans committed ({} this run){}; timeline hash {:016x}",
        report.total_scans,
        report.scans_run,
        if report.interrupted {
            ", interrupted mid-scan"
        } else {
            ""
        },
        report.timeline_hash
    );

    // Daemon-style reads: answer wire-framed queries from the cache.
    let moved = store
        .snapshots()
        .iter()
        .flat_map(|s| s.diff.deltas.iter())
        .map(|d| d.domain.clone())
        .next()
        .unwrap_or_else(|| domains[0].clone());
    for path in [
        format!("/domains/{moved}"),
        "/countries/IR".to_string(),
        "/changes/1".to_string(),
    ] {
        let raw = format!("GET {path} HTTP/1.1\r\nHost: monitor.local\r\n\r\n");
        let response = query.serve_text(&raw).await;
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b)
            .unwrap_or(&response);
        println!("\nGET {path}\n{body}");
    }
    let stats = query.cache_stats();
    println!(
        "query cache: {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}
