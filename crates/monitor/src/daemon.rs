//! The monitoring daemon: scheduled rescans over an evolving world.
//!
//! [`Monitor`] turns the one-shot study into the longitudinal instrument
//! the paper's conclusion gestures at (and its `makro.co.za` anecdote
//! demands): scan the same domain grid every `cadence_days` virtual days,
//! commit each scan's verdicts to a [`SnapshotStore`], and diff
//! consecutive snapshots so policy motion — new blockers, retreats,
//! provider migrations — is first-class data rather than an accident of
//! two papers' timing.
//!
//! # Scan modes
//!
//! Every `full_every`-th scan (including scan 0) runs the **full**
//! baseline + confirmation protocol through the sharded
//! [`Orchestrator`] — killable and checkpoint-resumable mid-scan. The
//! scans between run in **delta** mode, expressed as a
//! [`DeltaPolicy`](geoblock_core::DeltaPolicy) sampling policy: only the
//! (domain, country) pairs the previous snapshot confirmed blocked are
//! re-probed (at full baseline + confirmation depth, so verdicts meet the
//! same 23-sample/80% bar). Deltas observe retreats and kind changes at a
//! fraction of the probe budget but are blind to new blockers — the
//! full-scan cadence bounds that blindness.
//!
//! # Determinism
//!
//! The monitor builds a **fresh engine per scan** through its factory,
//! which receives the scan's virtual day. Per-(host, country) invocation
//! counters therefore start from zero each scan, and a scan interrupted
//! and resumed in another process reproduces the uninterrupted run
//! exactly: the orchestrator winds counters over restored records, the
//! confirmation pass continues from wherever the baseline left them, and
//! the committed snapshot — hence the store's
//! [`timeline_hash`](SnapshotStore::timeline_hash) — is bit-identical for
//! any shard count or kill point. Crash ordering is handled by running
//! scans idempotently: the scan checkpoint is deleted *before* its
//! snapshot commits, so a crash between the two merely re-runs a
//! deterministic scan.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use geoblock_core::{
    diff_studies, DeltaPolicy, GeoblockVerdict, ProbeBudget, StudyConfig, StudySession,
};
use geoblock_lumscan::{Lumscan, Transport};
use geoblock_orchestrator::{
    Checkpoint, CheckpointError, Orchestrator, OrchestratorConfig, OrchestratorError,
};

use crate::query::QueryService;
use crate::store::{ScanMode, ScanSnapshot, SnapshotStore, StoreError};

/// How the daemon schedules and persists its scans.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Virtual days between consecutive scans (scan `i` runs on day
    /// `i × cadence_days`).
    pub cadence_days: u32,
    /// Every `full_every`-th scan (scan 0 included) runs the full grid;
    /// the rest run delta re-probes. `1` makes every scan full.
    pub full_every: u32,
    /// Total scans in the monitoring horizon; [`Monitor::run`] continues
    /// from the store's current length until this many have committed.
    pub scans: u32,
    /// Concurrent work units per full scan (the orchestrator's knob).
    pub shards: usize,
    /// Completed units between mid-scan checkpoint writes.
    pub checkpoint_every: usize,
    /// Where full scans persist mid-scan progress; also consulted at scan
    /// start to resume an interrupted scan. `None` disables mid-scan
    /// persistence (kill/resume then loses at most one scan's work).
    pub checkpoint_path: Option<PathBuf>,
    /// Stop the current full scan after launching this many units — the
    /// graceful-kill knob, for tests and drills.
    pub stop_after_units: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            cadence_days: 1,
            full_every: 1,
            scans: 1,
            shards: 1,
            checkpoint_every: 1,
            checkpoint_path: None,
            stop_after_units: None,
        }
    }
}

impl MonitorConfig {
    /// Set the days between scans.
    pub fn cadence_days(mut self, days: u32) -> Self {
        self.cadence_days = days;
        self
    }

    /// Run a full scan every `n`-th scan, deltas between.
    pub fn full_every(mut self, n: u32) -> Self {
        self.full_every = n;
        self
    }

    /// Set the monitoring horizon in scans.
    pub fn scans(mut self, n: u32) -> Self {
        self.scans = n;
        self
    }

    /// Set the orchestrator's concurrent-unit count.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Set the mid-scan checkpoint cadence.
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Persist mid-scan progress to `path`.
    pub fn checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Stop the current full scan after `n` launched units.
    pub fn stop_after_units(mut self, n: usize) -> Self {
        self.stop_after_units = Some(n);
        self
    }
}

/// What one scan attempt produced.
#[derive(Debug)]
pub enum ScanStep {
    /// The scan completed; commit this snapshot.
    Committed(ScanSnapshot),
    /// The scan stopped early (`stop_after_units`); resume from this
    /// checkpoint to finish it.
    Interrupted(Checkpoint),
}

/// What a [`Monitor::run`] call accomplished.
#[derive(Debug)]
pub struct MonitorReport {
    /// Scans committed by this call.
    pub scans_run: u32,
    /// Total snapshots in the store afterwards.
    pub total_scans: u32,
    /// Whether the horizon is unfinished (a scan was interrupted).
    pub interrupted: bool,
    /// The virtual day of the last committed scan, if any.
    pub last_day: Option<u32>,
    /// The store's timeline hash afterwards.
    pub timeline_hash: u64,
}

/// Why the monitor could not run.
#[derive(Debug)]
pub enum MonitorError {
    /// The monitor configuration is invalid.
    Config(String),
    /// A full scan's orchestrated pass failed.
    Orchestrator(OrchestratorError),
    /// The snapshot store refused a read or write.
    Store(StoreError),
    /// A mid-scan checkpoint could not be read or written.
    Checkpoint(CheckpointError),
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Config(msg) => write!(f, "invalid monitor config: {msg}"),
            MonitorError::Orchestrator(e) => write!(f, "{e}"),
            MonitorError::Store(e) => write!(f, "{e}"),
            MonitorError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MonitorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MonitorError::Config(_) => None,
            MonitorError::Orchestrator(e) => Some(e),
            MonitorError::Store(e) => Some(e),
            MonitorError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<OrchestratorError> for MonitorError {
    fn from(e: OrchestratorError) -> MonitorError {
        MonitorError::Orchestrator(e)
    }
}

impl From<StoreError> for MonitorError {
    fn from(e: StoreError) -> MonitorError {
        MonitorError::Store(e)
    }
}

impl From<CheckpointError> for MonitorError {
    fn from(e: CheckpointError) -> MonitorError {
        MonitorError::Checkpoint(e)
    }
}

/// The longitudinal monitoring daemon.
///
/// Generic over an engine **factory** rather than an engine: each scan
/// gets a fresh [`Lumscan`] built for that scan's virtual day, which is
/// what makes kill/resume deterministic across process boundaries (see
/// the module docs). In simulation the factory builds a fresh
/// [`SimInternet`](geoblock_netsim::SimInternet) over a shared world and
/// [`PolicyTimeline`](geoblock_netsim::PolicyTimeline) and advances its
/// clock to the requested day.
pub struct Monitor<T, F>
where
    T: Transport + 'static,
    F: Fn(u32) -> Arc<Lumscan<T>>,
{
    factory: F,
    domains: Vec<String>,
    study: StudyConfig,
    config: MonitorConfig,
}

impl<T, F> Monitor<T, F>
where
    T: Transport + 'static,
    F: Fn(u32) -> Arc<Lumscan<T>>,
{
    /// A monitor scanning `domains` under `study`, on `config`'s
    /// schedule, probing through engines from `factory` (called once per
    /// scan with the scan's virtual day).
    pub fn new(
        factory: F,
        domains: Vec<String>,
        study: StudyConfig,
        config: MonitorConfig,
    ) -> Monitor<T, F> {
        Monitor {
            factory,
            domains,
            study,
            config,
        }
    }

    /// The schedule configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Which mode scan `scan_index` runs in.
    pub fn scan_mode(&self, scan_index: u32) -> ScanMode {
        if self.config.full_every <= 1 || scan_index.is_multiple_of(self.config.full_every) {
            ScanMode::Full
        } else {
            ScanMode::Delta
        }
    }

    /// The virtual day scan `scan_index` runs on.
    pub fn scan_day(&self, scan_index: u32) -> u32 {
        scan_index.saturating_mul(self.config.cadence_days)
    }

    fn validate(&self) -> Result<(), MonitorError> {
        if self.config.cadence_days == 0 {
            return Err(MonitorError::Config(
                "cadence_days must be at least 1".to_string(),
            ));
        }
        if self.config.full_every == 0 {
            return Err(MonitorError::Config(
                "full_every must be at least 1".to_string(),
            ));
        }
        if self.domains.is_empty() {
            return Err(MonitorError::Config(
                "a monitor needs at least one domain".to_string(),
            ));
        }
        Ok(())
    }

    /// Run the next scan for `store` (the scan index is the store's
    /// length). Pass a `resume` checkpoint to continue an interrupted
    /// full scan in-process; [`Monitor::run`] handles the on-disk
    /// variant. Does **not** append to the store — the caller owns the
    /// commit so crash ordering stays in one place.
    pub async fn run_scan(
        &self,
        store: &SnapshotStore,
        resume: Option<Checkpoint>,
    ) -> Result<ScanStep, MonitorError> {
        self.validate()?;
        let scan_index = store.len() as u32;
        let day = self.scan_day(scan_index);
        let mode = self.scan_mode(scan_index);
        let engine = (self.factory)(day);

        let verdicts = match mode {
            ScanMode::Full => {
                let orch_config = {
                    let mut c = OrchestratorConfig::default()
                        .shards(self.config.shards)
                        .checkpoint_every(self.config.checkpoint_every);
                    if let Some(path) = &self.config.checkpoint_path {
                        c = c.checkpoint_path(path);
                    }
                    if let Some(n) = self.config.stop_after_units {
                        c = c.stop_after_units(n);
                    }
                    c
                };
                let orch = Orchestrator::new(engine.clone(), self.study.clone(), orch_config);
                let run = match resume {
                    Some(checkpoint) => orch.resume(&self.domains, checkpoint).await?,
                    None => orch.baseline(&self.domains).await?,
                };
                if run.interrupted {
                    let plan = orch.shard_plan(&self.domains);
                    return Ok(ScanStep::Interrupted(Checkpoint::snapshot(
                        orch.config_hash(&self.domains),
                        plan.total_probes(),
                        self.study.work_unit_domains,
                        plan.total_units(),
                        &run.units,
                    )));
                }
                let mut result = run.result;
                // Confirmation rides the same engine: its invocation
                // counters continue from the baseline's, exactly as in an
                // uninterrupted (or single-stream) run.
                let mut session = StudySession::new(engine, self.study.clone());
                session.confirm(&mut result).await;
                result.verdicts(&self.study.confirm)
            }
            ScanMode::Delta => {
                let previous = store
                    .last()
                    .expect("delta scans follow a committed snapshot");
                // The delta rescan is a sampling policy like any other:
                // one round over the previously-confirmed pairs at full
                // baseline + confirmation depth. `run_policy` executes it
                // through the same resample path the manual delta pass
                // used, probe for probe.
                let mut policy = DeltaPolicy::new(self.delta_pairs(previous));
                let mut session = StudySession::new(engine, self.study.clone());
                let mut budget = ProbeBudget::unlimited();
                let outcome = session
                    .run_policy(&mut policy, &self.domains, &mut budget)
                    .await;
                outcome.result.verdicts(&self.study.confirm)
            }
        };

        let empty = Vec::new();
        let previous_verdicts = store.last().map(|s| &s.verdicts).unwrap_or(&empty);
        let diff = diff_studies(previous_verdicts, &verdicts);
        Ok(ScanStep::Committed(ScanSnapshot::new(
            scan_index, day, mode, verdicts, diff,
        )))
    }

    /// The (domain, country) index pairs a delta scan re-probes: every
    /// pair the previous snapshot confirmed blocked, in snapshot order.
    /// Pairs naming a domain or country outside the current axes are
    /// skipped (the grid is fixed for a monitoring run, so this is
    /// defensive, not routine).
    fn delta_pairs(&self, previous: &ScanSnapshot) -> Vec<(usize, usize)> {
        previous
            .verdicts
            .iter()
            .filter_map(|v: &GeoblockVerdict| {
                let d = self.domains.iter().position(|x| *x == v.domain)?;
                let c = self.study.countries.iter().position(|x| *x == v.country)?;
                Some((d, c))
            })
            .collect()
    }

    /// Drive the monitoring horizon forward: scan, commit, publish,
    /// repeat, until `config.scans` snapshots exist or a scan stops early.
    ///
    /// Crash/kill ordering per scan: an interrupted scan's checkpoint is
    /// saved to `checkpoint_path` and the call returns with
    /// `interrupted = true`; on the next call (any process) the
    /// checkpoint is loaded and the scan resumes mid-grid. On completion
    /// the checkpoint is deleted, *then* the snapshot commits, then the
    /// query service (when given) is published to — so queries only ever
    /// see committed scans, and its caches invalidate exactly at commit.
    pub async fn run(
        &self,
        store: &mut SnapshotStore,
        query: Option<&QueryService>,
    ) -> Result<MonitorReport, MonitorError> {
        self.validate()?;
        let mut scans_run = 0;
        while (store.len() as u32) < self.config.scans {
            let resume = match &self.config.checkpoint_path {
                Some(path) if path.exists() => Some(Checkpoint::load(path)?),
                _ => None,
            };
            match self.run_scan(store, resume).await? {
                ScanStep::Interrupted(checkpoint) => {
                    if let Some(path) = &self.config.checkpoint_path {
                        checkpoint.save(path)?;
                    }
                    return Ok(MonitorReport {
                        scans_run,
                        total_scans: store.len() as u32,
                        interrupted: true,
                        last_day: store.last().map(|s| s.day),
                        timeline_hash: store.timeline_hash(),
                    });
                }
                ScanStep::Committed(snapshot) => {
                    if let Some(path) = &self.config.checkpoint_path {
                        if path.exists() {
                            std::fs::remove_file(path)
                                .map_err(|e| MonitorError::Store(StoreError::Io(e)))?;
                        }
                    }
                    store.append(snapshot)?;
                    if let Some(service) = query {
                        service.publish(store.snapshots()).await;
                    }
                    scans_run += 1;
                }
            }
        }
        Ok(MonitorReport {
            scans_run,
            total_scans: store.len() as u32,
            interrupted: false,
            last_day: store.last().map(|s| s.day),
            timeline_hash: store.timeline_hash(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryService;
    use crate::store::SnapshotStore;
    use geoblock_blockpages::{render, PageKind, PageParams};
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::{LumscanConfig, Transport, TransportRequest};
    use geoblock_worldgen::cc;

    /// A toy evolving internet, day injected at construction (the factory
    /// passes the scan day): `drifter.example` blocks IR on days 0–1 then
    /// fully retreats; `late.example` starts blocking IR on day 2;
    /// `stable.example` always blocks IR; `plain.example` never blocks.
    struct EvolvingWeb {
        day: u32,
    }

    impl EvolvingWeb {
        fn blocks(&self, host: &str) -> bool {
            match host {
                "drifter.example" => self.day < 2,
                "late.example" => self.day >= 2,
                "stable.example" => true,
                _ => false,
            }
        }
    }

    impl Transport for EvolvingWeb {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            if self.blocks(&host) && req.country == cc("IR") {
                let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
                return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
            }
            Ok(Response::builder(StatusCode::OK)
                .body("<html><body>".to_string() + &"content ".repeat(1000) + "</body></html>")
                .finish(req.request.url))
        }
    }

    fn domains() -> Vec<String> {
        vec![
            "drifter.example".to_string(),
            "late.example".to_string(),
            "plain.example".to_string(),
            "stable.example".to_string(),
        ]
    }

    fn study() -> StudyConfig {
        StudyConfig::builder()
            .countries([cc("IR"), cc("US")])
            .rep_countries([cc("IR")])
            .work_unit_domains(1)
            .build()
            .expect("valid study config")
    }

    fn monitor(
        config: MonitorConfig,
    ) -> Monitor<EvolvingWeb, impl Fn(u32) -> Arc<Lumscan<EvolvingWeb>>> {
        let factory =
            |day: u32| Arc::new(Lumscan::new(EvolvingWeb { day }, LumscanConfig::default()));
        Monitor::new(factory, domains(), study(), config)
    }

    fn blocked_domains(snapshot: &ScanSnapshot) -> Vec<&str> {
        let mut out: Vec<&str> = snapshot
            .verdicts
            .iter()
            .map(|v| v.domain.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[tokio::test]
    async fn full_scans_track_the_evolving_policies() {
        let m = monitor(MonitorConfig::default().scans(3));
        let mut store = SnapshotStore::in_memory();
        let query = QueryService::new();
        let report = m.run(&mut store, Some(&query)).await.expect("run");
        assert_eq!(report.scans_run, 3);
        assert!(!report.interrupted);
        assert_eq!(report.last_day, Some(2));

        let snaps = store.snapshots();
        assert_eq!(
            blocked_domains(&snaps[0]),
            vec!["drifter.example", "stable.example"]
        );
        assert_eq!(
            blocked_domains(&snaps[2]),
            vec!["late.example", "stable.example"]
        );
        // Scan 2's diff records both the retreat and the new blocker.
        assert_eq!(snaps[2].diff.full_retreats().len(), 1);
        assert_eq!(snaps[2].diff.new_blockers().len(), 1);
        // One publish per committed scan.
        assert_eq!(query.generation().await, 3);
        assert_eq!(query.scans_visible().await, 3);
    }

    #[tokio::test]
    async fn delta_scans_see_retreats_but_are_blind_to_new_blockers() {
        // Scan 0 full, scans 1-2 delta: the day-2 delta re-probes only
        // the pairs scan 1 confirmed, so it observes drifter's retreat
        // but cannot see late.example start blocking.
        let m = monitor(MonitorConfig::default().scans(3).full_every(3));
        let mut store = SnapshotStore::in_memory();
        m.run(&mut store, None).await.expect("run");

        let snaps = store.snapshots();
        assert_eq!(snaps[1].mode, ScanMode::Delta);
        assert_eq!(snaps[2].mode, ScanMode::Delta);
        assert_eq!(
            blocked_domains(&snaps[1]),
            vec!["drifter.example", "stable.example"]
        );
        assert_eq!(blocked_domains(&snaps[2]), vec!["stable.example"]);
        assert_eq!(snaps[2].diff.full_retreats().len(), 1);
        assert!(snaps[2].diff.new_blockers().is_empty());
        // Delta verdicts meet the same evidence bar as full ones.
        assert!(snaps[1].verdicts.iter().all(|v| v.total == 23));
    }

    #[tokio::test]
    async fn kill_and_resume_reproduces_the_uninterrupted_timeline() {
        let mut uninterrupted = SnapshotStore::in_memory();
        monitor(MonitorConfig::default().scans(2))
            .run(&mut uninterrupted, None)
            .await
            .expect("uninterrupted run");

        // Kill scan 0 after two of four units, then resume from the
        // in-memory checkpoint and finish the horizon.
        let mut resumed = SnapshotStore::in_memory();
        let killer = monitor(MonitorConfig::default().scans(2).stop_after_units(2));
        let checkpoint = match killer.run_scan(&resumed, None).await.expect("partial scan") {
            ScanStep::Interrupted(checkpoint) => checkpoint,
            ScanStep::Committed(_) => panic!("stop_after_units must interrupt"),
        };
        assert_eq!(checkpoint.units.len(), 2);
        let finisher = monitor(MonitorConfig::default().scans(2));
        match finisher
            .run_scan(&resumed, Some(checkpoint))
            .await
            .expect("resumed scan")
        {
            ScanStep::Committed(snapshot) => resumed.append(snapshot).expect("commit"),
            ScanStep::Interrupted(_) => panic!("resume must complete"),
        }
        finisher
            .run(&mut resumed, None)
            .await
            .expect("rest of horizon");

        assert_eq!(
            uninterrupted.timeline_hash(),
            resumed.timeline_hash(),
            "a killed-and-resumed scan must be bit-identical to the uninterrupted one"
        );
    }

    #[tokio::test]
    async fn shard_count_never_changes_the_timeline() {
        let mut narrow = SnapshotStore::in_memory();
        monitor(MonitorConfig::default().scans(2).shards(1))
            .run(&mut narrow, None)
            .await
            .expect("1-shard run");
        let mut wide = SnapshotStore::in_memory();
        monitor(MonitorConfig::default().scans(2).shards(3))
            .run(&mut wide, None)
            .await
            .expect("3-shard run");
        assert_eq!(narrow.timeline_hash(), wide.timeline_hash());
    }

    #[tokio::test]
    async fn schedule_arithmetic_and_validation() {
        let m = monitor(MonitorConfig::default().cadence_days(7).full_every(4));
        assert_eq!(m.scan_mode(0), ScanMode::Full);
        assert_eq!(m.scan_mode(3), ScanMode::Delta);
        assert_eq!(m.scan_mode(4), ScanMode::Full);
        assert_eq!(m.scan_day(3), 21);

        let bad = monitor(MonitorConfig::default().cadence_days(0));
        let store = SnapshotStore::in_memory();
        assert!(matches!(
            bad.run_scan(&store, None).await,
            Err(MonitorError::Config(_))
        ));
        let empty = Monitor::new(
            |day: u32| Arc::new(Lumscan::new(EvolvingWeb { day }, LumscanConfig::default())),
            Vec::new(),
            study(),
            MonitorConfig::default(),
        );
        assert!(matches!(
            empty.run_scan(&store, None).await,
            Err(MonitorError::Config(_))
        ));
    }
}
