//! The cached query API over the snapshot store.
//!
//! [`QueryService`] is the read side of the monitor: an in-process,
//! async service answering the three questions a longitudinal study is
//! for — *how has this domain's blocking evolved*, *what does country X
//! look like right now*, and *what changed since scan N* — without
//! re-walking the snapshot history on every call.
//!
//! # Cache freshness
//!
//! Answers are memoised under a **generation stamp**. Every
//! [`publish`](QueryService::publish) (called by the daemon exactly when
//! a scan commits) bumps the generation and drops the memo table; a
//! cached answer is served only when its stamp equals the current
//! generation. Staleness is therefore structurally impossible: there is
//! no TTL to tune and no invalidation to forget, because the only event
//! that can change an answer — a committed scan — is the same event that
//! advances the generation.
//!
//! Between commits the store is immutable, so the steady-state hit rate
//! for a repeated dashboard poll is bounded only by the scan cadence;
//! [`cache_stats`](QueryService::cache_stats) exposes the measured rate
//! and `bench_monitor` asserts it stays ≥90% under a polling workload.
//!
//! # Wire access
//!
//! [`serve_text`](QueryService::serve_text) answers a raw HTTP/1.1
//! request text (the workspace's own [`wire`](geoblock_http::wire)
//! framing — no sockets) with a plain-text report, so the daemon binary
//! can expose the service without any networking stack:
//!
//! - `GET /domains/{name}` — per-scan blocking history for one domain;
//! - `GET /countries/{cc}` — a country's dashboard;
//! - `GET /changes/{n}` — the change feed from scan `n` onward.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use geoblock_blockpages::PageKind;
use geoblock_http::wire;
use geoblock_http::{Response, StatusCode};
use geoblock_worldgen::CountryCode;

use crate::store::ScanSnapshot;

/// One scan's view of a single domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainScanEntry {
    /// The scan this entry came from.
    pub scan_index: u32,
    /// The virtual day the scan ran on.
    pub day: u32,
    /// Countries confirmed blocking the domain in this scan, sorted.
    pub blocked_in: Vec<CountryCode>,
    /// The block page kind observed (first verdict's), if any.
    pub kind: Option<PageKind>,
}

/// A domain's full blocking history, one entry per scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainHistory {
    /// The domain asked about.
    pub domain: String,
    /// One entry per committed scan, in scan order (including scans
    /// where the domain blocked nowhere).
    pub scans: Vec<DomainScanEntry>,
}

impl DomainHistory {
    /// Whether the latest scan sees the domain blocking anywhere.
    pub fn currently_blocking(&self) -> bool {
        self.scans
            .last()
            .map(|e| !e.blocked_in.is_empty())
            .unwrap_or(false)
    }
}

/// One scan's view of a single country.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryScanEntry {
    /// The scan this entry came from.
    pub scan_index: u32,
    /// The virtual day the scan ran on.
    pub day: u32,
    /// Domains confirmed blocked from this country in this scan.
    pub blocked_domains: usize,
}

/// A country's dashboard: blocked-domain counts over time plus the
/// current block list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountryDashboard {
    /// The country asked about.
    pub country: CountryCode,
    /// One entry per committed scan, in scan order.
    pub scans: Vec<CountryScanEntry>,
    /// Domains the latest scan confirms blocked from this country,
    /// sorted.
    pub currently_blocked: Vec<String>,
}

/// One policy change observed between consecutive scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The scan that observed the change (against its predecessor).
    pub scan_index: u32,
    /// The virtual day of that scan.
    pub day: u32,
    /// The domain whose policy moved.
    pub domain: String,
    /// Countries newly blocked.
    pub newly_blocked: Vec<CountryCode>,
    /// Countries unblocked.
    pub unblocked: Vec<CountryCode>,
    /// Whether the serving provider (by block page) changed.
    pub provider_changed: bool,
    /// A `makro.co.za`-style full retreat.
    pub full_retreat: bool,
}

/// Every policy change from a given scan onward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeFeed {
    /// The first scan index included.
    pub since: u32,
    /// Changes in (scan, domain) order.
    pub events: Vec<ChangeEvent>,
}

/// Cache hit/miss counters since service creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that recomputed.
    pub misses: u64,
}

impl CacheStats {
    /// Hits over total lookups (0.0 when nothing was asked yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum QueryKey {
    Domain(String),
    Country(CountryCode),
    Changes(u32),
}

#[derive(Clone)]
enum Answer {
    Domain(Arc<DomainHistory>),
    Country(Arc<CountryDashboard>),
    Changes(Arc<ChangeFeed>),
}

struct Cached {
    generation: u64,
    answer: Answer,
}

struct State {
    generation: u64,
    snapshots: Arc<Vec<ScanSnapshot>>,
    cache: HashMap<QueryKey, Cached>,
}

/// The in-process query service. See the module docs for the freshness
/// argument.
pub struct QueryService {
    state: RwLock<State>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for QueryService {
    fn default() -> QueryService {
        QueryService::new()
    }
}

impl QueryService {
    /// An empty service at generation 0 (no scans published).
    pub fn new() -> QueryService {
        QueryService {
            state: RwLock::new(State {
                generation: 0,
                snapshots: Arc::new(Vec::new()),
                cache: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Replace the visible snapshot history with `snapshots`, bump the
    /// generation, and drop every memoised answer. The daemon calls this
    /// exactly once per committed scan.
    pub async fn publish(&self, snapshots: &[ScanSnapshot]) {
        let mut state = self.state.write().expect("query lock");
        state.generation += 1;
        state.snapshots = Arc::new(snapshots.to_vec());
        state.cache.clear();
    }

    /// The current cache generation (one per publish).
    pub async fn generation(&self) -> u64 {
        self.state.read().expect("query lock").generation
    }

    /// How many scans the service currently sees.
    pub async fn scans_visible(&self) -> usize {
        self.state.read().expect("query lock").snapshots.len()
    }

    /// Cache counters since creation.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    async fn lookup(&self, key: &QueryKey) -> Option<Answer> {
        let state = self.state.read().expect("query lock");
        match state.cache.get(key) {
            // The freshness rule: a memoised answer is valid iff its
            // stamp equals the current generation.
            Some(cached) if cached.generation == state.generation => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(cached.answer.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    async fn compute_and_insert(&self, key: QueryKey) -> Answer {
        let mut state = self.state.write().expect("query lock");
        let snapshots = state.snapshots.clone();
        let answer = match &key {
            QueryKey::Domain(domain) => {
                Answer::Domain(Arc::new(domain_history(domain, &snapshots)))
            }
            QueryKey::Country(country) => {
                Answer::Country(Arc::new(country_dashboard(*country, &snapshots)))
            }
            QueryKey::Changes(since) => Answer::Changes(Arc::new(change_feed(*since, &snapshots))),
        };
        let generation = state.generation;
        state.cache.insert(
            key,
            Cached {
                generation,
                answer: answer.clone(),
            },
        );
        answer
    }

    /// Per-scan blocking history for `domain`.
    pub async fn domain_history(&self, domain: &str) -> Arc<DomainHistory> {
        let key = QueryKey::Domain(domain.to_string());
        let answer = match self.lookup(&key).await {
            Some(answer) => answer,
            None => self.compute_and_insert(key).await,
        };
        match answer {
            Answer::Domain(history) => history,
            _ => unreachable!("domain key memoises a domain answer"),
        }
    }

    /// Blocked-domain counts over time plus the current block list for
    /// `country`.
    pub async fn country_dashboard(&self, country: CountryCode) -> Arc<CountryDashboard> {
        let key = QueryKey::Country(country);
        let answer = match self.lookup(&key).await {
            Some(answer) => answer,
            None => self.compute_and_insert(key).await,
        };
        match answer {
            Answer::Country(dashboard) => dashboard,
            _ => unreachable!("country key memoises a country answer"),
        }
    }

    /// Every policy change observed from scan `since` onward (scan 0's
    /// "changes" are its initial blockings, diffed against nothing).
    pub async fn changes_since(&self, since: u32) -> Arc<ChangeFeed> {
        let key = QueryKey::Changes(since);
        let answer = match self.lookup(&key).await {
            Some(answer) => answer,
            None => self.compute_and_insert(key).await,
        };
        match answer {
            Answer::Changes(feed) => feed,
            _ => unreachable!("changes key memoises a changes answer"),
        }
    }

    /// Answer one wire-framed HTTP request with a wire-framed plain-text
    /// response. See the module docs for the routes.
    pub async fn serve_text(&self, raw: &str) -> String {
        let request = match wire::parse_request(raw, "http") {
            Ok(request) => request,
            Err(e) => {
                let url = geoblock_http::Url::http("monitor.local");
                let response = Response::builder(StatusCode::BAD_REQUEST)
                    .header("Content-Type", "text/plain")
                    .body(format!("bad request: {e}\n"))
                    .finish(url);
                return wire::write_response(&response);
            }
        };
        let url = request.url.clone();
        let (status, body) = self.route(&url.path).await;
        let response = Response::builder(status)
            .header("Content-Type", "text/plain")
            .body(body)
            .finish(url);
        wire::write_response(&response)
    }

    async fn route(&self, path: &str) -> (StatusCode, String) {
        if let Some(domain) = path.strip_prefix("/domains/") {
            if domain.is_empty() {
                return (StatusCode::NOT_FOUND, "missing domain\n".to_string());
            }
            let history = self.domain_history(domain).await;
            return (StatusCode::OK, render_domain(&history));
        }
        if let Some(code) = path.strip_prefix("/countries/") {
            if code.len() != 2 || !code.bytes().all(|b| b.is_ascii_alphabetic()) {
                return (
                    StatusCode::NOT_FOUND,
                    format!("not a country code: {code}\n"),
                );
            }
            let dashboard = self.country_dashboard(CountryCode::new(code)).await;
            return (StatusCode::OK, render_country(&dashboard));
        }
        if let Some(n) = path.strip_prefix("/changes/") {
            match n.parse::<u32>() {
                Ok(since) => {
                    let feed = self.changes_since(since).await;
                    return (StatusCode::OK, render_changes(&feed));
                }
                Err(_) => {
                    return (StatusCode::NOT_FOUND, format!("not a scan index: {n}\n"));
                }
            }
        }
        (
            StatusCode::NOT_FOUND,
            "routes: /domains/{name}, /countries/{cc}, /changes/{n}\n".to_string(),
        )
    }
}

fn domain_history(domain: &str, snapshots: &[ScanSnapshot]) -> DomainHistory {
    let scans = snapshots
        .iter()
        .map(|snapshot| {
            let mut blocked_in = Vec::new();
            let mut kind = None;
            for v in &snapshot.verdicts {
                if v.domain == domain {
                    blocked_in.push(v.country);
                    kind.get_or_insert(v.kind);
                }
            }
            blocked_in.sort();
            DomainScanEntry {
                scan_index: snapshot.scan_index,
                day: snapshot.day,
                blocked_in,
                kind,
            }
        })
        .collect();
    DomainHistory {
        domain: domain.to_string(),
        scans,
    }
}

fn country_dashboard(country: CountryCode, snapshots: &[ScanSnapshot]) -> CountryDashboard {
    let scans: Vec<CountryScanEntry> = snapshots
        .iter()
        .map(|snapshot| CountryScanEntry {
            scan_index: snapshot.scan_index,
            day: snapshot.day,
            blocked_domains: snapshot
                .verdicts
                .iter()
                .filter(|v| v.country == country)
                .count(),
        })
        .collect();
    let mut currently_blocked: Vec<String> = snapshots
        .last()
        .map(|snapshot| {
            snapshot
                .verdicts
                .iter()
                .filter(|v| v.country == country)
                .map(|v| v.domain.clone())
                .collect()
        })
        .unwrap_or_default();
    currently_blocked.sort();
    currently_blocked.dedup();
    CountryDashboard {
        country,
        scans,
        currently_blocked,
    }
}

fn change_feed(since: u32, snapshots: &[ScanSnapshot]) -> ChangeFeed {
    let mut events = Vec::new();
    for snapshot in snapshots.iter().filter(|s| s.scan_index >= since) {
        for delta in &snapshot.diff.deltas {
            events.push(ChangeEvent {
                scan_index: snapshot.scan_index,
                day: snapshot.day,
                domain: delta.domain.clone(),
                newly_blocked: delta.newly_blocked.clone(),
                unblocked: delta.unblocked.clone(),
                provider_changed: delta.provider_changed(),
                full_retreat: delta.is_full_retreat(),
            });
        }
    }
    ChangeFeed { since, events }
}

fn render_countries(codes: &[CountryCode]) -> String {
    codes
        .iter()
        .map(|c| c.as_str().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn render_domain(history: &DomainHistory) -> String {
    let mut out = format!("domain: {}\n", history.domain);
    for entry in &history.scans {
        let kind = entry
            .kind
            .map(|k| format!("{k:?}"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "scan {} day {}: blocked_in=[{}] kind={}\n",
            entry.scan_index,
            entry.day,
            render_countries(&entry.blocked_in),
            kind
        ));
    }
    out
}

fn render_country(dashboard: &CountryDashboard) -> String {
    let mut out = format!("country: {}\n", dashboard.country);
    for entry in &dashboard.scans {
        out.push_str(&format!(
            "scan {} day {}: blocked_domains={}\n",
            entry.scan_index, entry.day, entry.blocked_domains
        ));
    }
    out.push_str(&format!(
        "currently_blocked: [{}]\n",
        dashboard.currently_blocked.join(",")
    ));
    out
}

fn render_changes(feed: &ChangeFeed) -> String {
    let mut out = format!("changes since scan {}\n", feed.since);
    for event in &feed.events {
        out.push_str(&format!(
            "scan {} day {} {}: +[{}] -[{}]{}{}\n",
            event.scan_index,
            event.day,
            event.domain,
            render_countries(&event.newly_blocked),
            render_countries(&event.unblocked),
            if event.provider_changed {
                " provider-changed"
            } else {
                ""
            },
            if event.full_retreat {
                " full-retreat"
            } else {
                ""
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{ScanMode, ScanSnapshot};
    use geoblock_core::{diff_studies, GeoblockVerdict};
    use geoblock_worldgen::CountryCode;

    fn cc(code: &str) -> CountryCode {
        CountryCode::new(code)
    }

    fn verdict(domain: &str, country: &str, kind: PageKind) -> GeoblockVerdict {
        GeoblockVerdict {
            domain: domain.to_string(),
            country: cc(country),
            kind,
            block_count: 20,
            total: 23,
        }
    }

    fn snapshot(
        scan_index: u32,
        before: &[GeoblockVerdict],
        after: Vec<GeoblockVerdict>,
    ) -> ScanSnapshot {
        let diff = diff_studies(before, &after);
        ScanSnapshot::new(scan_index, scan_index, ScanMode::Full, after, diff)
    }

    fn history_fixture() -> Vec<ScanSnapshot> {
        // Scan 0: drifter blocked in IR+SY, stable blocked in IR.
        // Scan 1: drifter retreats fully; stable gains SY.
        let s0 = vec![
            verdict("drifter.example", "IR", PageKind::Cloudflare),
            verdict("drifter.example", "SY", PageKind::Cloudflare),
            verdict("stable.example", "IR", PageKind::Cloudflare),
        ];
        let s1 = vec![
            verdict("stable.example", "IR", PageKind::Cloudflare),
            verdict("stable.example", "SY", PageKind::Cloudflare),
        ];
        vec![snapshot(0, &[], s0.clone()), snapshot(1, &s0, s1)]
    }

    #[tokio::test]
    async fn domain_history_tracks_the_retreat() {
        let service = QueryService::new();
        service.publish(&history_fixture()).await;
        let history = service.domain_history("drifter.example").await;
        assert_eq!(history.scans.len(), 2);
        assert_eq!(history.scans[0].blocked_in, vec![cc("IR"), cc("SY")]);
        assert!(history.scans[1].blocked_in.is_empty());
        assert!(!history.currently_blocking());
        let stable = service.domain_history("stable.example").await;
        assert!(stable.currently_blocking());
    }

    #[tokio::test]
    async fn country_dashboard_counts_and_lists() {
        let service = QueryService::new();
        service.publish(&history_fixture()).await;
        let ir = service.country_dashboard(cc("IR")).await;
        assert_eq!(ir.scans[0].blocked_domains, 2);
        assert_eq!(ir.scans[1].blocked_domains, 1);
        assert_eq!(ir.currently_blocked, vec!["stable.example".to_string()]);
        let sy = service.country_dashboard(cc("SY")).await;
        assert_eq!(sy.currently_blocked, vec!["stable.example".to_string()]);
    }

    #[tokio::test]
    async fn change_feed_reports_retreats_and_new_blocks() {
        let service = QueryService::new();
        service.publish(&history_fixture()).await;
        let feed = service.changes_since(1).await;
        let drifter = feed
            .events
            .iter()
            .find(|e| e.domain == "drifter.example")
            .expect("drifter's retreat is an event");
        assert!(drifter.full_retreat);
        assert_eq!(drifter.unblocked, vec![cc("IR"), cc("SY")]);
        let stable = feed
            .events
            .iter()
            .find(|e| e.domain == "stable.example")
            .expect("stable's new country is an event");
        assert_eq!(stable.newly_blocked, vec![cc("SY")]);
        // From scan 0 the initial blockings appear too.
        let all = service.changes_since(0).await;
        assert!(all.events.len() > feed.events.len());
    }

    #[tokio::test]
    async fn cached_answers_are_generation_fresh() {
        let service = QueryService::new();
        let snaps = history_fixture();
        service.publish(&snaps[..1]).await;
        let g1 = service.generation().await;

        let first = service.domain_history("drifter.example").await;
        let second = service.domain_history("drifter.example").await;
        assert!(
            Arc::ptr_eq(&first, &second),
            "a repeated query within one generation is served from cache"
        );
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // A commit invalidates: same query now recomputes and sees the
        // new scan.
        service.publish(&snaps).await;
        assert_eq!(service.generation().await, g1 + 1);
        let third = service.domain_history("drifter.example").await;
        assert!(!Arc::ptr_eq(&second, &third), "publish dropped the memo");
        assert_eq!(third.scans.len(), 2);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
        assert!(stats.hit_rate() < 0.5);
    }

    #[tokio::test]
    async fn wire_requests_route_to_the_right_answers() {
        let service = QueryService::new();
        service.publish(&history_fixture()).await;

        let raw = "GET /countries/IR HTTP/1.1\r\nHost: monitor.local\r\n\r\n";
        let response = service.serve_text(raw).await;
        assert!(response.starts_with("HTTP/1.1 200"));
        assert!(response.contains("currently_blocked: [stable.example]"));

        let raw = "GET /domains/drifter.example HTTP/1.1\r\nHost: monitor.local\r\n\r\n";
        let response = service.serve_text(raw).await;
        assert!(response.contains("scan 0 day 0: blocked_in=[IR,SY] kind=Cloudflare"));

        let raw = "GET /changes/1 HTTP/1.1\r\nHost: monitor.local\r\n\r\n";
        let response = service.serve_text(raw).await;
        assert!(response.contains("full-retreat"));

        let raw = "GET /nope HTTP/1.1\r\nHost: monitor.local\r\n\r\n";
        let response = service.serve_text(raw).await;
        assert!(response.starts_with("HTTP/1.1 404"));
    }
}
