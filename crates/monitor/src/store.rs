//! The observation store: an append-only timeline of scan snapshots.
//!
//! Each completed scan commits one [`ScanSnapshot`]: the confirmed verdict
//! set, the [`StudyDiff`] against the previous snapshot, and a content
//! hash over a canonical text rendering of the verdicts. The store is the
//! monitor's durable state — the daemon resumes a monitoring run purely
//! from `snapshots.len()`, and simtest pins golden timelines by
//! [`timeline_hash`](SnapshotStore::timeline_hash), the fold of every
//! snapshot's content hash.
//!
//! Persistence follows the checkpoint idiom
//! ([`Checkpoint`](geoblock_orchestrator::Checkpoint)): one versioned
//! serde-JSON document, written atomically (temp file + rename), with
//! every content hash recomputed on load so corruption surfaces as a
//! typed [`StoreError::Integrity`] instead of a silently wrong history.
//! The hash itself is computed over canonical *text*, never over the JSON
//! encoding, so two stores agree on hashes regardless of how (or whether)
//! they were serialized.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use geoblock_core::{GeoblockVerdict, StudyDiff};
use geoblock_orchestrator::fnv1a;
use serde::{Deserialize, Serialize};

/// The store format version this build reads and writes.
pub const STORE_VERSION: u32 = 1;

/// How a scan covered the domain grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanMode {
    /// The full baseline + confirmation protocol over every
    /// (domain, country) pair — observes new blockers and retreats alike.
    Full,
    /// A cheap re-probe of only the pairs the previous snapshot confirmed
    /// as blocked — observes retreats (and kind changes) quickly, but is
    /// blind to new blockers until the next full scan.
    Delta,
}

impl fmt::Display for ScanMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanMode::Full => write!(f, "full"),
            ScanMode::Delta => write!(f, "delta"),
        }
    }
}

/// One committed scan: what was confirmed blocked, and what changed since
/// the previous scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScanSnapshot {
    /// Position in the timeline (0-based; equals the store index).
    pub scan_index: u32,
    /// Virtual day the scan ran on.
    pub day: u32,
    /// Full grid or delta re-probe.
    pub mode: ScanMode,
    /// The scan's confirmed verdicts, in study order.
    pub verdicts: Vec<GeoblockVerdict>,
    /// Changes against the previous snapshot (empty for the first).
    pub diff: StudyDiff,
    /// FNV-1a over [`canonical_text`](ScanSnapshot::canonical_text) —
    /// recomputed on load, pinned by golden timelines.
    pub content_hash: u64,
}

impl ScanSnapshot {
    /// Build a snapshot, computing its content hash.
    pub fn new(
        scan_index: u32,
        day: u32,
        mode: ScanMode,
        verdicts: Vec<GeoblockVerdict>,
        diff: StudyDiff,
    ) -> ScanSnapshot {
        let mut snapshot = ScanSnapshot {
            scan_index,
            day,
            mode,
            verdicts,
            diff,
            content_hash: 0,
        };
        snapshot.content_hash = fnv1a(snapshot.canonical_text().as_bytes());
        snapshot
    }

    /// The canonical text the content hash covers: scan header plus one
    /// line per verdict. The diff is derived data (reconstructible from
    /// consecutive verdict sets), so it stays outside the hash.
    pub fn canonical_text(&self) -> String {
        let mut text = format!(
            "geoblock-scan-v1\nscan: {}\nday: {}\nmode: {}\n",
            self.scan_index, self.day, self.mode
        );
        for v in &self.verdicts {
            text.push_str(&format!(
                "verdict: {} {} {:?} {}/{}\n",
                v.domain, v.country, v.kind, v.block_count, v.total
            ));
        }
        text
    }

    /// (domain, country) pairs this snapshot confirms blocked.
    pub fn blocked_pairs(&self) -> impl Iterator<Item = (&str, geoblock_worldgen::CountryCode)> {
        self.verdicts.iter().map(|v| (v.domain.as_str(), v.country))
    }
}

/// The persisted document shape.
#[derive(Serialize, Deserialize)]
struct StoreFile {
    version: u32,
    snapshots: Vec<ScanSnapshot>,
}

/// Append-only snapshot store, optionally persisted.
///
/// With a path, every append rewrites the document atomically — the store
/// is small (verdicts, not probes; a monitoring run's history is a few
/// hundred snapshots of tens of verdicts), so the rewrite is cheap and
/// buys crash safety: a kill mid-append leaves the previous timeline
/// intact. Without a path ([`in_memory`](SnapshotStore::in_memory)) the
/// store is a plain vector — benches and simulation tests run without
/// touching a filesystem.
#[derive(Debug)]
pub struct SnapshotStore {
    path: Option<PathBuf>,
    snapshots: Vec<ScanSnapshot>,
}

impl SnapshotStore {
    /// A store that never touches disk.
    pub fn in_memory() -> SnapshotStore {
        SnapshotStore {
            path: None,
            snapshots: Vec::new(),
        }
    }

    /// Open (or create) a persisted store at `path`. An existing file is
    /// loaded and validated: version gate, then every snapshot's content
    /// hash recomputed from its canonical text.
    pub fn open(path: impl Into<PathBuf>) -> Result<SnapshotStore, StoreError> {
        let path = path.into();
        if !path.exists() {
            return Ok(SnapshotStore {
                path: Some(path),
                snapshots: Vec::new(),
            });
        }
        let bytes = fs::read(&path)?;
        let file: StoreFile =
            serde_json::from_slice(&bytes).map_err(|e| StoreError::Malformed(e.to_string()))?;
        if file.version != STORE_VERSION {
            return Err(StoreError::Version {
                found: file.version,
                supported: STORE_VERSION,
            });
        }
        for (i, snapshot) in file.snapshots.iter().enumerate() {
            if snapshot.scan_index as usize != i {
                return Err(StoreError::Malformed(format!(
                    "snapshot at position {i} claims scan_index {}",
                    snapshot.scan_index
                )));
            }
            let recomputed = fnv1a(snapshot.canonical_text().as_bytes());
            if recomputed != snapshot.content_hash {
                return Err(StoreError::Integrity {
                    scan_index: snapshot.scan_index,
                    expected: snapshot.content_hash,
                    found: recomputed,
                });
            }
        }
        Ok(SnapshotStore {
            path: Some(path),
            snapshots: file.snapshots,
        })
    }

    /// Append one committed scan; with a path, the document is rewritten
    /// atomically before the call returns.
    pub fn append(&mut self, snapshot: ScanSnapshot) -> Result<(), StoreError> {
        if snapshot.scan_index as usize != self.snapshots.len() {
            return Err(StoreError::OutOfOrder {
                expected: self.snapshots.len() as u32,
                found: snapshot.scan_index,
            });
        }
        self.snapshots.push(snapshot);
        if let Some(path) = &self.path {
            save_atomically(path, &self.snapshots)?;
        }
        Ok(())
    }

    /// All snapshots, oldest first.
    pub fn snapshots(&self) -> &[ScanSnapshot] {
        &self.snapshots
    }

    /// Committed scans.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no scan has committed yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&ScanSnapshot> {
        self.snapshots.last()
    }

    /// The timeline's identity: FNV-1a over one line per snapshot's
    /// content hash. Two monitoring runs agree here iff they committed the
    /// same verdict history — the value golden tests pin across shard
    /// counts and kill/resume splits.
    pub fn timeline_hash(&self) -> u64 {
        let mut text = String::new();
        for s in &self.snapshots {
            text.push_str(&format!("snap {}: {:016x}\n", s.scan_index, s.content_hash));
        }
        fnv1a(text.as_bytes())
    }
}

fn save_atomically(path: &Path, snapshots: &[ScanSnapshot]) -> Result<(), StoreError> {
    let file = StoreFile {
        version: STORE_VERSION,
        snapshots: snapshots.to_vec(),
    };
    let json = serde_json::to_string(&file)
        .map_err(|e| StoreError::Malformed(format!("serialize: {e}")))?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(json.as_bytes())?;
        f.flush()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Why the store could not be read, written, or appended to.
#[derive(Debug)]
pub enum StoreError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a snapshot store: truncated, not JSON, or the
    /// wrong shape (including misnumbered snapshots).
    Malformed(String),
    /// The file is a store from an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A stored content hash does not match the stored verdicts: the file
    /// was modified (or corrupted) after it was written.
    Integrity {
        /// The snapshot that failed validation.
        scan_index: u32,
        /// Hash recorded in the file.
        expected: u64,
        /// Hash recomputed from the stored verdicts.
        found: u64,
    },
    /// An append skipped or repeated a scan index.
    OutOfOrder {
        /// The index the store expected next.
        expected: u32,
        /// The index the snapshot carried.
        found: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
            StoreError::Malformed(msg) => write!(f, "malformed snapshot store: {msg}"),
            StoreError::Version { found, supported } => write!(
                f,
                "snapshot store version {found} is not supported (this build reads {supported})"
            ),
            StoreError::Integrity {
                scan_index,
                expected,
                found,
            } => write!(
                f,
                "snapshot {scan_index} failed integrity validation \
                 (stored hash {expected:#018x}, recomputed {found:#018x})"
            ),
            StoreError::OutOfOrder { expected, found } => write!(
                f,
                "snapshot appended out of order (expected scan {expected}, got {found})"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::PageKind;
    use geoblock_core::diff_studies;
    use geoblock_worldgen::cc;

    fn verdict(domain: &str, country: &str) -> GeoblockVerdict {
        GeoblockVerdict {
            domain: domain.into(),
            country: cc(country),
            kind: PageKind::Cloudflare,
            block_count: 23,
            total: 23,
        }
    }

    fn snap(index: u32, verdicts: Vec<GeoblockVerdict>) -> ScanSnapshot {
        ScanSnapshot::new(index, index, ScanMode::Full, verdicts, StudyDiff::default())
    }

    #[test]
    fn content_hash_is_text_stable_and_content_sensitive() {
        let a = snap(0, vec![verdict("x.com", "IR")]);
        let b = snap(0, vec![verdict("x.com", "IR")]);
        assert_eq!(a.content_hash, b.content_hash);
        let c = snap(0, vec![verdict("x.com", "SY")]);
        assert_ne!(a.content_hash, c.content_hash, "country must move the hash");
        let d = snap(1, vec![verdict("x.com", "IR")]);
        assert_ne!(a.content_hash, d.content_hash, "scan index must move it");
    }

    #[test]
    fn hash_ignores_the_derived_diff() {
        let verdicts = vec![verdict("x.com", "IR")];
        let plain = snap(0, verdicts.clone());
        let with_diff = ScanSnapshot::new(
            0,
            0,
            ScanMode::Full,
            verdicts.clone(),
            diff_studies(&[], &verdicts),
        );
        assert_eq!(plain.content_hash, with_diff.content_hash);
    }

    #[test]
    fn appends_enforce_timeline_order() {
        let mut store = SnapshotStore::in_memory();
        store.append(snap(0, vec![])).unwrap();
        let err = store.append(snap(2, vec![])).unwrap_err();
        assert!(matches!(
            err,
            StoreError::OutOfOrder {
                expected: 1,
                found: 2
            }
        ));
        store.append(snap(1, vec![verdict("x.com", "IR")])).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.last().unwrap().scan_index, 1);
    }

    #[test]
    fn timeline_hash_folds_every_snapshot() {
        let mut a = SnapshotStore::in_memory();
        let mut b = SnapshotStore::in_memory();
        for store in [&mut a, &mut b] {
            store.append(snap(0, vec![verdict("x.com", "IR")])).unwrap();
            store.append(snap(1, vec![])).unwrap();
        }
        assert_eq!(a.timeline_hash(), b.timeline_hash());
        let mut c = SnapshotStore::in_memory();
        c.append(snap(0, vec![verdict("x.com", "IR")])).unwrap();
        c.append(snap(1, vec![verdict("x.com", "IR")])).unwrap();
        assert_ne!(a.timeline_hash(), c.timeline_hash());
    }

    #[test]
    fn persisted_store_roundtrips_and_resumes() {
        let dir = std::env::temp_dir().join(format!("geoblock-store-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.json");

        let mut store = SnapshotStore::open(&path).unwrap();
        store.append(snap(0, vec![verdict("x.com", "IR")])).unwrap();
        store.append(snap(1, vec![])).unwrap();
        let hash = store.timeline_hash();
        drop(store);

        let reopened = SnapshotStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.timeline_hash(), hash);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_is_a_typed_error_not_a_panic() {
        let dir =
            std::env::temp_dir().join(format!("geoblock-store-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();

        let garbage = dir.join("garbage.json");
        fs::write(&garbage, b"\x00not json").unwrap();
        assert!(matches!(
            SnapshotStore::open(&garbage),
            Err(StoreError::Malformed(_))
        ));

        // A tampered verdict parses fine but fails the content hash.
        let path = dir.join("timeline.json");
        let mut store = SnapshotStore::open(&path).unwrap();
        store.append(snap(0, vec![verdict("x.com", "IR")])).unwrap();
        drop(store);
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"block_count\":23", "\"block_count\":22");
        assert_ne!(tampered, text, "tamper target must exist");
        fs::write(&path, tampered).unwrap();
        assert!(matches!(
            SnapshotStore::open(&path),
            Err(StoreError::Integrity { scan_index: 0, .. })
        ));

        // Future version.
        fs::write(&path, "{\"version\":99,\"snapshots\":[]}").unwrap();
        assert!(matches!(
            SnapshotStore::open(&path),
            Err(StoreError::Version { found: 99, .. })
        ));

        fs::remove_dir_all(&dir).ok();
    }
}
