//! Differential tests for the compiled classifier kernel: on any byte
//! body whatsoever, [`CompiledFingerprintSet`] must decide exactly what
//! the naive per-marker matcher decides. The naive matcher is the oracle
//! — it is trivially correct (N independent `contains` scans) — and the
//! automaton is the optimisation under test.
//!
//! Three input families, chosen for where automata bugs live:
//!
//! * **rendered templates** — every real page kind, many parameters;
//! * **near-miss mutants** — each marker with one byte flipped, deleted,
//!   or inserted (failure-link bugs surface on *almost*-matches);
//! * **random byte soup** — including invalid UTF-8 and markers spliced
//!   at arbitrary offsets, fed both contiguously and re-chunked at every
//!   boundary (state-carry bugs surface on straddled matches).
//!
//! The deterministic `#[test]`s below run everywhere; the `proptest!`
//! block adds driver-side randomised depth on top. The golden-template
//! bitset pin at the bottom freezes the automaton's observable output —
//! pattern interning order and hit sets — for the whole template corpus.

use geoblock_blockpages::{render, CompiledFingerprintSet, FingerprintSet, PageKind, PageParams};
use geoblock_http::Url;
use proptest::prelude::*;

/// Numerical Recipes LCG: deterministic inputs without an RNG dependency
/// beyond what the workspace already carries.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 33) as u8
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() >> 16) % n.max(1) as u64) as usize
    }
}

fn rendered_body(kind: PageKind, nonce: u64) -> Vec<u8> {
    let params = PageParams::new("shop.example.com", "Syria", "5.0.0.1", nonce);
    render(kind, &params)
        .finish(Url::http("shop.example.com"))
        .body
        .into_bytes()
        .as_ref()
        .to_vec()
}

/// Every marker string of the paper set, deduplicated.
fn paper_markers() -> Vec<Vec<u8>> {
    let mut markers: Vec<Vec<u8>> = Vec::new();
    for f in FingerprintSet::paper().iter() {
        for m in f.all_of.iter().chain(f.none_of.iter()) {
            if !markers.iter().any(|k| k == m.as_bytes()) {
                markers.push(m.as_bytes().to_vec());
            }
        }
    }
    markers
}

fn assert_agree(naive: &FingerprintSet, compiled: &CompiledFingerprintSet, body: &[u8], ctx: &str) {
    assert_eq!(
        compiled.classify_bytes(body).map(|o| o.kind),
        naive.classify_bytes(body).map(|o| o.kind),
        "{ctx}: body {:?}…",
        &body[..body.len().min(60)]
    );
}

#[test]
fn every_rendered_template_agrees_with_naive() {
    let naive = FingerprintSet::paper();
    let compiled = CompiledFingerprintSet::paper();
    for kind in PageKind::ALL {
        for nonce in [0u64, 1, 7, 99, 12345, u64::MAX] {
            let body = rendered_body(kind, nonce);
            assert_agree(&naive, &compiled, &body, &format!("{kind} nonce {nonce}"));
            assert_eq!(
                compiled.classify_bytes(&body).map(|o| o.kind),
                Some(kind),
                "{kind} nonce {nonce} must classify as itself"
            );
        }
    }
}

#[test]
fn near_miss_mutants_agree_with_naive() {
    let naive = FingerprintSet::paper();
    let compiled = CompiledFingerprintSet::paper();
    let mut lcg = Lcg::new(403);
    for marker in paper_markers() {
        // A marker embedded verbatim, and three near-miss mutants of it:
        // one byte flipped, one deleted, one inserted. Each embedded in
        // filler that keeps the automaton walking.
        let mut variants: Vec<Vec<u8>> = vec![marker.clone()];
        for _ in 0..4 {
            let mut flipped = marker.clone();
            let at = lcg.below(flipped.len());
            flipped[at] ^= 1 << (lcg.below(7) + 1);
            variants.push(flipped);

            let mut deleted = marker.clone();
            deleted.remove(lcg.below(deleted.len()));
            variants.push(deleted);

            let mut inserted = marker.clone();
            let at = lcg.below(inserted.len() + 1);
            inserted.insert(at, lcg.byte());
            variants.push(inserted);
        }
        // Truncations from both ends — prefixes of a pattern must not hit.
        variants.push(marker[..marker.len() - 1].to_vec());
        variants.push(marker[1..].to_vec());

        for (vi, variant) in variants.iter().enumerate() {
            let mut body = b"<html><body>ordinary filler ".to_vec();
            body.extend_from_slice(variant);
            body.extend_from_slice(b" more filler</body></html>");
            assert_agree(
                &naive,
                &compiled,
                &body,
                &format!("mutant {vi} of {:?}", String::from_utf8_lossy(&marker)),
            );
        }
    }
}

#[test]
fn random_bodies_with_spliced_markers_agree_with_naive() {
    let naive = FingerprintSet::paper();
    let compiled = CompiledFingerprintSet::paper();
    let markers = paper_markers();
    let mut lcg = Lcg::new(7001);
    for case in 0..512 {
        let len = lcg.below(2048);
        // Raw LCG bytes: overwhelmingly invalid UTF-8.
        let mut body: Vec<u8> = (0..len).map(|_| lcg.byte()).collect();
        // Half the cases get 1–3 real markers spliced at random offsets.
        if case % 2 == 0 {
            for _ in 0..=lcg.below(3) {
                let m = &markers[lcg.below(markers.len())];
                let at = lcg.below(body.len() + 1);
                body.splice(at..at, m.iter().copied());
            }
        }
        assert_agree(&naive, &compiled, &body, &format!("random case {case}"));
    }
}

#[test]
fn random_chunking_equals_contiguous_scan() {
    let compiled = CompiledFingerprintSet::paper();
    let markers = paper_markers();
    let mut lcg = Lcg::new(977);
    for case in 0..256 {
        let mut body: Vec<u8> = (0..lcg.below(1024)).map(|_| lcg.byte()).collect();
        let m = &markers[lcg.below(markers.len())];
        let at = lcg.below(body.len() + 1);
        body.splice(at..at, m.iter().copied());

        let whole = compiled.scan(&body);
        let mut scanner = compiled.scanner();
        let mut rest: &[u8] = &body;
        while !rest.is_empty() {
            let take = (lcg.below(rest.len()) + 1).min(rest.len());
            scanner.feed(&rest[..take]);
            rest = &rest[take..];
        }
        assert_eq!(scanner.finish(), whole, "case {case}");
    }
}

#[test]
fn markers_straddling_every_split_position_are_found() {
    // The hard streaming case: a marker cut at *every* interior position,
    // including cuts inside overlapping shared patterns ("Yunjiasu" sits
    // in three fingerprints; "has banned the country or region" in two).
    let compiled = CompiledFingerprintSet::paper();
    for marker in paper_markers() {
        let mut body = b"prefix text before the marker ".to_vec();
        body.extend_from_slice(&marker);
        body.extend_from_slice(b" and trailing text after");
        let whole = compiled.scan(&body);
        for split in 0..=body.len() {
            let mut scanner = compiled.scanner();
            scanner.feed(&body[..split]);
            scanner.feed(&body[split..]);
            assert_eq!(
                scanner.finish(),
                whole,
                "split {split} inside {:?}",
                String::from_utf8_lossy(&marker)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup: the two matchers agree everywhere.
    #[test]
    fn compiled_agrees_on_arbitrary_bytes(body in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let naive = FingerprintSet::paper();
        let compiled = CompiledFingerprintSet::paper();
        prop_assert_eq!(
            compiled.classify_bytes(&body).map(|o| o.kind),
            naive.classify_bytes(&body).map(|o| o.kind)
        );
    }

    /// Rendered pages with a random byte overwritten still agree — the
    /// proptest twin of the deterministic mutant test.
    #[test]
    fn mutated_templates_agree(
        kind in proptest::sample::select(PageKind::ALL.to_vec()),
        nonce in any::<u64>(),
        at in any::<proptest::sample::Index>(),
        bit in 1u8..8,
    ) {
        let naive = FingerprintSet::paper();
        let compiled = CompiledFingerprintSet::paper();
        let mut body = rendered_body(kind, nonce);
        let i = at.index(body.len());
        body[i] ^= 1 << bit;
        prop_assert_eq!(
            compiled.classify_bytes(&body).map(|o| o.kind),
            naive.classify_bytes(&body).map(|o| o.kind)
        );
    }

    /// Chunked feeding is invariant under the chunking, for any cuts.
    #[test]
    fn any_chunking_equals_contiguous(
        kind in proptest::sample::select(PageKind::ALL.to_vec()),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8),
    ) {
        let compiled = CompiledFingerprintSet::paper();
        let body = rendered_body(kind, 3);
        let whole = compiled.scan(&body);
        let mut positions: Vec<usize> = cuts.iter().map(|c| c.index(body.len() + 1)).collect();
        positions.push(0);
        positions.push(body.len());
        positions.sort_unstable();
        let mut scanner = compiled.scanner();
        for w in positions.windows(2) {
            scanner.feed(&body[w[0]..w[1]]);
        }
        prop_assert_eq!(scanner.finish(), whole);
    }
}

/// The evasion pages — JS challenge, CAPTCHA, fronting mismatch — run
/// through the same differential battery as the paper corpus: compiled
/// agrees with naive on the rendered bodies and on every two-chunk split,
/// and none of them ever classifies as explicit geoblocking. The fronting
/// page shares its lead marker with CloudFront's geo page, so the split
/// sweep here exercises exactly the shared-prefix disambiguation.
#[test]
fn evasion_bodies_agree_and_never_read_as_geoblocks() {
    let naive = FingerprintSet::paper();
    let compiled = CompiledFingerprintSet::paper();
    for kind in [
        PageKind::AkamaiBotManager,
        PageKind::IncapsulaCaptcha,
        PageKind::CloudFrontFronting,
    ] {
        for nonce in [0u64, 3, 41, 9999] {
            let body = rendered_body(kind, nonce);
            assert_agree(&naive, &compiled, &body, &format!("{kind} nonce {nonce}"));
            let outcome = compiled
                .classify_bytes(&body)
                .unwrap_or_else(|| panic!("{kind} went unrecognised"));
            assert_eq!(outcome.kind, kind);
            assert!(
                !outcome.kind.is_explicit_geoblock(),
                "{kind} is bot-detection/fronting, not geoblocking"
            );
            let whole = compiled.scan(&body);
            for split in 0..=body.len() {
                let mut scanner = compiled.scanner();
                scanner.feed(&body[..split]);
                scanner.feed(&body[split..]);
                assert_eq!(
                    scanner.finish(),
                    whole,
                    "{kind} nonce {nonce} split {split}"
                );
            }
        }
    }
}

/// The pinned pattern-hit bitsets for the golden template corpus: each
/// page kind rendered with fixed parameters, scanned once, and the
/// resulting `ones()` vector frozen. Pattern ids are assigned by interning
/// order over the paper set, so this pin also freezes the interning —
/// any change to marker strings, fingerprint order, or automaton output
/// fails here with the full expected/actual id lists.
#[test]
fn golden_template_bitsets_are_pinned() {
    const PINNED: [(PageKind, &[u32]); 17] = [
        (PageKind::Akamai, &[19, 20, 21]),
        (PageKind::Cloudflare, &[2, 3]),
        (PageKind::AppEngine, &[14, 15]),
        (PageKind::CloudflareCaptcha, &[3, 5, 6]),
        (PageKind::CloudflareJs, &[7, 8]),
        (PageKind::CloudFront, &[16, 18]),
        (PageKind::BaiduCaptcha, &[4, 6]),
        (PageKind::Baidu, &[2, 4]),
        (PageKind::Incapsula, &[22]),
        (PageKind::Soasta, &[23, 24]),
        (PageKind::Airbnb, &[0, 1]),
        (PageKind::DistilCaptcha, &[11]),
        (PageKind::Nginx403, &[27, 28]),
        (PageKind::Varnish403, &[25, 26]),
        (PageKind::AkamaiBotManager, &[9, 10]),
        (PageKind::IncapsulaCaptcha, &[12, 13]),
        (PageKind::CloudFrontFronting, &[16, 17]),
    ];
    let compiled = CompiledFingerprintSet::paper();
    assert_eq!(PINNED.len(), PageKind::ALL.len());
    for (kind, expected) in PINNED {
        let body = rendered_body(kind, 0);
        let hits = compiled.scan(&body);
        assert_eq!(
            hits.ones(),
            expected,
            "pattern-hit bitset drifted for {kind}"
        );
    }
}
