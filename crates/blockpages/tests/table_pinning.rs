//! Regression pin for the paper's block-page table plus the simulated
//! evasion pages: all 17 page kinds, their row labels, providers, and
//! pipeline classes, frozen field by field. A fingerprint or taxonomy
//! edit that drops, renames, or reclassifies a provider must fail here
//! loudly instead of silently shifting the §4.2 geoblocking counts.

use geoblock_blockpages::{render, FingerprintSet, PageClass, PageKind, PageParams, Provider};

/// The full table, one row per kind, in `PageKind::ALL` order:
/// (kind, row label, provider, class).
const TABLE: [(PageKind, &str, Provider, PageClass); 17] = [
    (
        PageKind::Akamai,
        "Akamai",
        Provider::Akamai,
        PageClass::AmbiguousBlock,
    ),
    (
        PageKind::Cloudflare,
        "Cloudflare",
        Provider::Cloudflare,
        PageClass::ExplicitGeoblock,
    ),
    (
        PageKind::AppEngine,
        "AppEngine",
        Provider::AppEngine,
        PageClass::ExplicitGeoblock,
    ),
    (
        PageKind::CloudflareCaptcha,
        "Cloudflare Captcha",
        Provider::Cloudflare,
        PageClass::Captcha,
    ),
    (
        PageKind::CloudflareJs,
        "Cloudflare JavaScript",
        Provider::Cloudflare,
        PageClass::JsChallenge,
    ),
    (
        PageKind::CloudFront,
        "Amazon CloudFront",
        Provider::CloudFront,
        PageClass::ExplicitGeoblock,
    ),
    (
        PageKind::BaiduCaptcha,
        "Baidu Captcha",
        Provider::Baidu,
        PageClass::Captcha,
    ),
    (
        PageKind::Baidu,
        "Baidu",
        Provider::Baidu,
        PageClass::ExplicitGeoblock,
    ),
    (
        PageKind::Incapsula,
        "Incapsula",
        Provider::Incapsula,
        PageClass::AmbiguousBlock,
    ),
    (
        PageKind::Soasta,
        "Soasta",
        Provider::Soasta,
        PageClass::AmbiguousBlock,
    ),
    (
        PageKind::Airbnb,
        "Airbnb",
        Provider::Airbnb,
        PageClass::ExplicitGeoblock,
    ),
    (
        PageKind::DistilCaptcha,
        "Distil Captcha",
        Provider::Distil,
        PageClass::Captcha,
    ),
    (
        PageKind::Nginx403,
        "nginx",
        Provider::Nginx,
        PageClass::GenericError,
    ),
    (
        PageKind::Varnish403,
        "Varnish",
        Provider::Varnish,
        PageClass::GenericError,
    ),
    (
        PageKind::AkamaiBotManager,
        "Akamai Bot Manager",
        Provider::Akamai,
        PageClass::JsChallenge,
    ),
    (
        PageKind::IncapsulaCaptcha,
        "Incapsula Captcha",
        Provider::Incapsula,
        PageClass::Captcha,
    ),
    (
        PageKind::CloudFrontFronting,
        "CloudFront Fronting Mismatch",
        Provider::CloudFront,
        PageClass::FrontingMismatch,
    ),
];

#[test]
fn all_seventeen_rows_are_pinned() {
    assert_eq!(
        PageKind::ALL.len(),
        17,
        "14 paper rows plus the three evasion pages"
    );
    assert_eq!(TABLE.len(), PageKind::ALL.len());
    for ((kind, label, provider, class), expected_kind) in TABLE.iter().zip(PageKind::ALL) {
        assert_eq!(*kind, expected_kind, "table must follow PageKind::ALL");
        assert_eq!(kind.label(), *label, "{kind:?} row label changed");
        assert_eq!(kind.provider(), *provider, "{kind:?} provider changed");
        assert_eq!(kind.class(), *class, "{kind:?} class changed");
    }
}

#[test]
fn class_census_matches_the_paper() {
    let count = |class: PageClass| PageKind::ALL.iter().filter(|k| k.class() == class).count();
    assert_eq!(count(PageClass::ExplicitGeoblock), 5);
    assert_eq!(count(PageClass::AmbiguousBlock), 3);
    assert_eq!(count(PageClass::Captcha), 4);
    assert_eq!(count(PageClass::JsChallenge), 2);
    assert_eq!(count(PageClass::GenericError), 2);
    assert_eq!(count(PageClass::FrontingMismatch), 1);
}

/// Bot-detection and fronting pages must never enter the geoblocking
/// tally: only `ExplicitGeoblock` rows count toward §4.2.
#[test]
fn evasion_rows_stay_out_of_the_geoblock_census() {
    for kind in [
        PageKind::AkamaiBotManager,
        PageKind::IncapsulaCaptcha,
        PageKind::CloudFrontFronting,
    ] {
        assert!(!kind.is_explicit_geoblock(), "{kind:?}");
    }
}

/// Every kind has a working fingerprint: the rendered template for each
/// row classifies back to its own kind. An edit that drops a signature
/// from [`FingerprintSet::paper`] (or breaks its specificity ordering)
/// surfaces here as a misclassified provider.
#[test]
fn every_kind_round_trips_through_its_fingerprint() {
    let set = FingerprintSet::paper();
    let fingerprinted: std::collections::HashSet<PageKind> = set.iter().map(|f| f.kind).collect();
    for kind in PageKind::ALL {
        assert!(
            fingerprinted.contains(&kind),
            "{kind:?} has no fingerprint in the paper set"
        );
        let params = PageParams::new("pinned.example", "Iran", "5.9.1.3", 7);
        let response = render(kind, &params).finish("http://pinned.example/".parse().unwrap());
        let outcome = set
            .classify(&response)
            .unwrap_or_else(|| panic!("{kind:?}'s own template went unrecognised"));
        assert_eq!(
            outcome.kind, kind,
            "{kind:?} classified as {:?}",
            outcome.kind
        );
    }
}
