//! Property-based tests: the template generator and the fingerprint
//! classifier must agree on every page instance, for any parameters.

use geoblock_blockpages::{render, FingerprintSet, PageKind, PageParams};
use geoblock_http::Url;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = PageParams> {
    (
        "[a-z0-9-]{1,20}(\\.[a-z]{2,6}){1,2}",
        "[A-Za-z ]{2,20}",
        "[0-9]{1,3}(\\.[0-9]{1,3}){3}",
        any::<u64>(),
    )
        .prop_map(|(domain, country, ip, nonce)| PageParams {
            domain,
            country: country.trim().to_string(),
            client_ip: ip,
            nonce,
        })
}

fn kind_strategy() -> impl Strategy<Value = PageKind> {
    proptest::sample::select(PageKind::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_rendered_page_is_classified_as_its_kind(
        kind in kind_strategy(),
        params in params_strategy(),
    ) {
        let response = render(kind, &params).finish(Url::http(params.domain.as_str()));
        let set = FingerprintSet::paper();
        let outcome = set.classify(&response);
        prop_assert_eq!(outcome.map(|o| o.kind), Some(kind));
        // And the text-only path agrees (the OONI-scan mode).
        let text_outcome = set.classify_text(&response.body.as_text());
        prop_assert_eq!(text_outcome.map(|o| o.kind), Some(kind));
    }

    #[test]
    fn rendering_is_a_pure_function(kind in kind_strategy(), params in params_strategy()) {
        let a = render(kind, &params).finish(Url::http(params.domain.as_str()));
        let b = render(kind, &params).finish(Url::http(params.domain.as_str()));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn block_pages_stay_small(kind in kind_strategy(), params in params_strategy()) {
        // The page-length heuristic depends on block pages being far
        // smaller than real pages; the generator must never violate that.
        let response = render(kind, &params).finish(Url::http(params.domain.as_str()));
        prop_assert!(response.body.len() < 4096, "{kind}: {} bytes", response.body.len());
        prop_assert!(response.body.len() > 100, "{kind}: implausibly tiny");
    }

    #[test]
    fn blockish_status_on_every_page(kind in kind_strategy(), params in params_strategy()) {
        let response = render(kind, &params).finish(Url::http(params.domain.as_str()));
        prop_assert!(response.status.is_blockish());
    }
}
