//! The CDN / hosting / access-control providers whose blocking behaviour the
//! study characterises.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A service capable of serving a block or challenge page in front of (or
/// instead of) origin content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provider {
    /// Cloudflare CDN. Geoblock page explicitly names geolocation
    /// ("error 1009"); Enterprise-only country blocking except during the
    /// April–August 2018 regression.
    Cloudflare,
    /// Akamai CDN. Its "Access Denied" page is *ambiguous*: the same page is
    /// served for geoblocking and for bot/abuse detection.
    Akamai,
    /// Amazon CloudFront. Explicit geoblock text ("cannot be distributed in
    /// your region").
    CloudFront,
    /// Google App Engine hosting. Blocks all of Cuba, Iran, Syria, Sudan,
    /// Crimea, and North Korea at platform level due to sanctions.
    AppEngine,
    /// Incapsula (Imperva). Ambiguous block page like Akamai's.
    Incapsula,
    /// Baidu Yunjiasu CDN. Geoblock page nearly identical to Cloudflare's in
    /// content.
    Baidu,
    /// SOASTA. Ambiguous block page.
    Soasta,
    /// Distil Networks bot-mitigation (CAPTCHA interstitials only).
    Distil,
    /// Airbnb — a single origin operator whose custom block page states it
    /// does not serve Crimea, Iran, Syria, and North Korea. Included because
    /// its page is an unambiguous instance of origin-side geoblocking.
    Airbnb,
    /// Plain nginx origin (stock 403 page; ambiguous).
    Nginx,
    /// Varnish cache (stock 403 "Guru Meditation" page; ambiguous).
    Varnish,
}

impl Provider {
    /// All providers, in a stable order.
    pub const ALL: [Provider; 11] = [
        Provider::Cloudflare,
        Provider::Akamai,
        Provider::CloudFront,
        Provider::AppEngine,
        Provider::Incapsula,
        Provider::Baidu,
        Provider::Soasta,
        Provider::Distil,
        Provider::Airbnb,
        Provider::Nginx,
        Provider::Varnish,
    ];

    /// The five services whose block pages explicitly signal geoblocking
    /// (§4.1.3): Cloudflare, Amazon CloudFront, Baidu, Google AppEngine, and
    /// Airbnb.
    pub fn is_explicit_geoblocker(&self) -> bool {
        matches!(
            self,
            Provider::Cloudflare
                | Provider::CloudFront
                | Provider::Baidu
                | Provider::AppEngine
                | Provider::Airbnb
        )
    }

    /// CDNs whose block page is shared with abuse/bot blocking, requiring
    /// the consistency-score methodology of §5.2.2.
    pub fn is_ambiguous_blocker(&self) -> bool {
        matches!(
            self,
            Provider::Akamai | Provider::Incapsula | Provider::Soasta
        )
    }

    /// The five services studied at Top-1M scale (§5): Cloudflare,
    /// CloudFront, Akamai, Incapsula, and AppEngine.
    pub fn in_top1m_study(&self) -> bool {
        matches!(
            self,
            Provider::Cloudflare
                | Provider::CloudFront
                | Provider::Akamai
                | Provider::Incapsula
                | Provider::AppEngine
        )
    }

    /// The response header whose presence identifies a domain as this
    /// provider's customer (§5.1.1), if the provider has one.
    pub fn identifying_header(&self) -> Option<&'static str> {
        match self {
            Provider::Cloudflare => Some("CF-RAY"),
            Provider::CloudFront => Some("X-Amz-Cf-Id"),
            Provider::Incapsula => Some("X-Iinfo"),
            _ => None,
        }
    }

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Provider::Cloudflare => "Cloudflare",
            Provider::Akamai => "Akamai",
            Provider::CloudFront => "CloudFront",
            Provider::AppEngine => "AppEngine",
            Provider::Incapsula => "Incapsula",
            Provider::Baidu => "Baidu",
            Provider::Soasta => "SOASTA",
            Provider::Distil => "Distil",
            Provider::Airbnb => "Airbnb",
            Provider::Nginx => "nginx",
            Provider::Varnish => "Varnish",
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_geoblockers_match_paper_list() {
        let explicit: Vec<_> = Provider::ALL
            .iter()
            .filter(|p| p.is_explicit_geoblocker())
            .collect();
        assert_eq!(explicit.len(), 5);
        assert!(explicit.contains(&&Provider::Cloudflare));
        assert!(explicit.contains(&&Provider::CloudFront));
        assert!(explicit.contains(&&Provider::Baidu));
        assert!(explicit.contains(&&Provider::AppEngine));
        assert!(explicit.contains(&&Provider::Airbnb));
    }

    #[test]
    fn ambiguous_and_explicit_are_disjoint() {
        for p in Provider::ALL {
            assert!(
                !(p.is_explicit_geoblocker() && p.is_ambiguous_blocker()),
                "{p} is both"
            );
        }
    }

    #[test]
    fn top1m_study_has_five_services() {
        assert_eq!(
            Provider::ALL.iter().filter(|p| p.in_top1m_study()).count(),
            5
        );
    }

    #[test]
    fn header_identified_cdns() {
        assert_eq!(Provider::Cloudflare.identifying_header(), Some("CF-RAY"));
        assert_eq!(
            Provider::CloudFront.identifying_header(),
            Some("X-Amz-Cf-Id")
        );
        assert_eq!(Provider::Incapsula.identifying_header(), Some("X-Iinfo"));
        assert_eq!(Provider::Akamai.identifying_header(), None); // Pragma trick instead
        assert_eq!(Provider::AppEngine.identifying_header(), None); // DNS netblocks instead
    }
}
