//! The compiled classifier kernel: one pass over the body, all signatures.
//!
//! [`FingerprintSet::classify`] is correct but re-scans the body once per
//! marker string (N×`contains` over up to 14 fingerprints). Classification
//! sits on the hot path of every probe the system ever makes — the §4.1.3
//! fingerprint check runs on all baseline/resample samples and again over
//! the §7.1 OONI corpus — so [`CompiledFingerprintSet`] compiles every
//! `all_of`/`none_of` marker of a set into **one Aho–Corasick automaton**
//! (hand-rolled trie + failure links, densified to a byte-indexed DFA; the
//! sandbox carries no external pattern-matching crates) and scans the raw
//! body bytes exactly once. The scan yields a [`PatternHits`] bitset over
//! the deduplicated marker strings; per-kind verdicts are then decided
//! from the bitset alone — `all_of` bits all set, `none_of` bits all
//! clear, plus the status/header constraints — in the set's specificity
//! order, so Airbnb still shadows the generic nginx 403 exactly as the
//! naive matcher decides it.
//!
//! Matching is **byte-oriented**: no lossy UTF-8 decode, no allocation on
//! the match path. For the paper's ASCII marker strings this is
//! observably identical to matching on `String::from_utf8_lossy` output
//! (ASCII bytes survive lossy decoding verbatim and replacement
//! characters contain no ASCII bytes), and the naive byte matcher is kept
//! as the differential-testing oracle
//! (`tests/compiled_differential.rs`).

use geoblock_http::Response;

use crate::fingerprints::{Fingerprint, FingerprintSet, MatchOutcome};

/// A bitset over the compiled set's deduplicated marker patterns: bit `p`
/// is set iff pattern `p` occurred somewhere in the scanned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternHits {
    bits: Vec<u64>,
}

impl PatternHits {
    fn new(patterns: usize) -> PatternHits {
        PatternHits {
            bits: vec![0; patterns.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, p: u32) {
        self.bits[(p / 64) as usize] |= 1 << (p % 64);
    }

    /// Whether pattern `p` was seen.
    #[inline]
    pub fn contains(&self, p: u32) -> bool {
        self.bits[(p / 64) as usize] & (1 << (p % 64)) != 0
    }

    /// The set pattern ids, ascending — the stable form pinned by the
    /// golden-template bitset test.
    pub fn ones(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (block, &word) in self.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                out.push(block as u32 * 64 + w.trailing_zeros());
                w &= w - 1;
            }
        }
        out
    }
}

/// One trie node during construction.
struct BuildNode {
    /// Child node per byte (sparse; densified after failure computation).
    children: Vec<(u8, u32)>,
    /// Longest proper suffix of this node's path that is also a path.
    fail: u32,
    /// Patterns ending exactly at this node.
    out: Vec<u32>,
}

/// Transition-word flag: the target state has ≥1 output pattern.
/// Folding this into the transition itself keeps the scan loop to one
/// table lookup and one predictable branch per body byte — output-list
/// lookups happen only at actual match ends.
const HAS_OUT: u32 = 1 << 31;

/// The fingerprint set compiled for single-pass matching.
///
/// Construction is O(total pattern bytes × alphabet); matching is one
/// table lookup per body byte plus bitset updates at output nodes.
#[derive(Debug, Clone)]
pub struct CompiledFingerprintSet {
    /// The source fingerprints, in evaluation (specificity) order.
    fingerprints: Vec<Fingerprint>,
    /// Dense DFA, one 256-way row per state: `trans[state][byte]` is the
    /// next state, with [`HAS_OUT`] set when that state ends a pattern.
    /// Row indexing by `u8` needs no bounds check, so the hot loop costs
    /// one checked row lookup per byte.
    trans: Vec<[u32; 256]>,
    /// Flat output lists: node `s` owns `out_flat[out_start[s]..out_start[s + 1]]`,
    /// pattern ids whose match ends at `s` (failure-closure included).
    out_flat: Vec<u32>,
    out_start: Vec<u32>,
    /// Number of deduplicated patterns.
    patterns: usize,
    /// Per fingerprint, the pattern ids its `all_of` markers map to.
    all_of: Vec<Vec<u32>>,
    /// Per fingerprint, the pattern ids its `none_of` markers map to.
    none_of: Vec<Vec<u32>>,
    /// Pattern ids that match the empty string (hit on any input,
    /// including an empty body).
    empty_hits: Vec<u32>,
    /// Bytes on which the root state transitions to itself (no pattern
    /// starts with them). While at root — the overwhelmingly common state
    /// on ordinary content pages — the scanner skips runs of such bytes
    /// with a dependency-free table test instead of chasing the DFA's
    /// serial load chain.
    root_stay: [bool; 256],
}

impl Default for CompiledFingerprintSet {
    fn default() -> Self {
        CompiledFingerprintSet::paper()
    }
}

impl CompiledFingerprintSet {
    /// Compile the §4.1.3 paper set.
    pub fn paper() -> CompiledFingerprintSet {
        CompiledFingerprintSet::compile(&FingerprintSet::paper())
    }

    /// Compile any fingerprint set (e.g. a tuned set loaded from JSON).
    /// Evaluation order is preserved exactly.
    pub fn compile(set: &FingerprintSet) -> CompiledFingerprintSet {
        let fingerprints: Vec<Fingerprint> = set.iter().cloned().collect();

        // Deduplicate marker strings into pattern ids: identical markers
        // across fingerprints (e.g. "Yunjiasu" in Baidu's all_of and
        // Cloudflare's none_of) share one trie path and one bit. Linear
        // scan — pattern counts are tens, not thousands.
        fn intern(patterns: &mut Vec<String>, s: &str) -> u32 {
            if let Some(id) = patterns.iter().position(|p| p == s) {
                return id as u32;
            }
            patterns.push(s.to_string());
            (patterns.len() - 1) as u32
        }
        let mut patterns: Vec<String> = Vec::new();
        let mut all_of = Vec::with_capacity(fingerprints.len());
        let mut none_of = Vec::with_capacity(fingerprints.len());
        for f in &fingerprints {
            all_of.push(
                f.all_of
                    .iter()
                    .map(|p| intern(&mut patterns, p))
                    .collect::<Vec<u32>>(),
            );
            none_of.push(
                f.none_of
                    .iter()
                    .map(|p| intern(&mut patterns, p))
                    .collect::<Vec<u32>>(),
            );
        }

        // Trie construction.
        let mut nodes: Vec<BuildNode> = vec![BuildNode {
            children: Vec::new(),
            fail: 0,
            out: Vec::new(),
        }];
        let mut empty_hits = Vec::new();
        for (id, pattern) in patterns.iter().enumerate() {
            if pattern.is_empty() {
                // `contains("")` is unconditionally true; an empty pattern
                // hits any body, before any byte is consumed.
                empty_hits.push(id as u32);
                continue;
            }
            let mut state = 0u32;
            for &b in pattern.as_bytes() {
                state = match nodes[state as usize]
                    .children
                    .iter()
                    .find(|(byte, _)| *byte == b)
                {
                    Some(&(_, next)) => next,
                    None => {
                        let next = nodes.len() as u32;
                        nodes[state as usize].children.push((b, next));
                        nodes.push(BuildNode {
                            children: Vec::new(),
                            fail: 0,
                            out: Vec::new(),
                        });
                        next
                    }
                };
            }
            nodes[state as usize].out.push(id as u32);
        }

        // Failure links by BFS, densifying into a full byte-indexed
        // transition table as we go (the classic goto/fail merge): after
        // this, `trans` needs no failure chasing at scan time.
        let n = nodes.len();
        let mut trans = vec![[0u32; 256]; n];
        let mut queue = std::collections::VecDeque::new();
        for &(b, child) in &nodes[0].children {
            trans[0][b as usize] = child;
            queue.push_back(child);
        }
        while let Some(state) = queue.pop_front() {
            let fail = nodes[state as usize].fail;
            // Inherit the failure node's outputs (suffix matches).
            let inherited: Vec<u32> = nodes[fail as usize].out.clone();
            nodes[state as usize].out.extend(inherited);
            let children: Vec<(u8, u32)> = nodes[state as usize].children.clone();
            // Start from the failure state's (already dense) row, then
            // overwrite with this node's own edges.
            trans[state as usize] = trans[fail as usize];
            for (b, child) in children {
                nodes[child as usize].fail = trans[fail as usize][b as usize];
                trans[state as usize][b as usize] = child;
                queue.push_back(child);
            }
        }

        // Flatten outputs, and tag every transition whose target ends a
        // pattern so the scan loop can skip output lookups otherwise.
        let mut out_flat = Vec::new();
        let mut out_start = Vec::with_capacity(n + 1);
        out_start.push(0u32);
        for node in &nodes {
            out_flat.extend_from_slice(&node.out);
            out_start.push(out_flat.len() as u32);
        }
        let has_out: Vec<bool> = nodes.iter().map(|node| !node.out.is_empty()).collect();
        for row in &mut trans {
            for t in row.iter_mut() {
                if has_out[*t as usize] {
                    *t |= HAS_OUT;
                }
            }
        }

        // Root self-loop bytes: `trans[0][b] == 0` means byte `b` starts
        // no pattern (state 0 never carries HAS_OUT — empty patterns are
        // factored out into `empty_hits` above).
        let mut root_stay = [false; 256];
        for (b, stay) in root_stay.iter_mut().enumerate() {
            *stay = trans[0][b] == 0;
        }

        CompiledFingerprintSet {
            fingerprints,
            trans,
            out_flat,
            out_start,
            patterns: patterns.len(),
            all_of,
            none_of,
            empty_hits,
            root_stay,
        }
    }

    /// The source fingerprints in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = &Fingerprint> {
        self.fingerprints.iter()
    }

    /// Number of deduplicated marker patterns in the automaton.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// Begin an incremental scan. Feeding the body in arbitrary chunks
    /// yields the same hits as one contiguous scan — matches straddling
    /// chunk boundaries are carried by the automaton state.
    pub fn scanner(&self) -> Scanner<'_> {
        let mut hits = PatternHits::new(self.patterns);
        for &p in &self.empty_hits {
            hits.set(p);
        }
        Scanner {
            set: self,
            state: 0,
            hits,
        }
    }

    /// One pass over `body`: which patterns occur.
    pub fn scan(&self, body: &[u8]) -> PatternHits {
        let mut scanner = self.scanner();
        scanner.feed(body);
        scanner.finish()
    }

    /// Decide the verdict for one fingerprint from a hit bitset (body
    /// evidence only; status/header constraints are the caller's when a
    /// full response is in hand).
    #[inline]
    fn body_verdict(&self, i: usize, hits: &PatternHits) -> bool {
        self.all_of[i].iter().all(|&p| hits.contains(p))
            && !self.none_of[i].iter().any(|&p| hits.contains(p))
    }

    /// Classify raw body bytes (status/header constraints skipped) — the
    /// archival-corpus mode. Exactly one pass over `body`.
    pub fn classify_bytes(&self, body: &[u8]) -> Option<MatchOutcome> {
        let hits = self.scan(body);
        self.decide_bytes(&hits)
    }

    /// The verdict a hit bitset implies under body-only matching; first
    /// fingerprint in specificity order wins.
    pub fn decide_bytes(&self, hits: &PatternHits) -> Option<MatchOutcome> {
        (0..self.fingerprints.len())
            .find(|&i| self.body_verdict(i, hits))
            .map(|i| MatchOutcome {
                kind: self.fingerprints[i].kind,
            })
    }

    /// Classify a full response: status and header constraints apply, and
    /// the body is scanned exactly once.
    pub fn classify(&self, response: &Response) -> Option<MatchOutcome> {
        let hits = self.scan(response.body.as_bytes());
        for (i, f) in self.fingerprints.iter().enumerate() {
            if let Some(status) = f.status {
                if response.status != status {
                    continue;
                }
            }
            if let Some(h) = &f.required_header {
                if !response.headers.contains(h) {
                    continue;
                }
            }
            if self.body_verdict(i, &hits) {
                return Some(MatchOutcome { kind: f.kind });
            }
        }
        None
    }
}

/// An in-progress single-pass scan; see
/// [`CompiledFingerprintSet::scanner`].
pub struct Scanner<'a> {
    set: &'a CompiledFingerprintSet,
    state: u32,
    hits: PatternHits,
}

impl Scanner<'_> {
    /// Consume the next chunk of body bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        let set = self.set;
        let mut state = self.state as usize;
        let mut i = 0;
        while i < chunk.len() {
            if state == 0 {
                // At root, skim the run of bytes that cannot start any
                // pattern. Each test is an independent load — no serial
                // dependency on the previous byte's transition — so this
                // path dominates throughput on non-block-page bodies,
                // where the DFA step below only ever sees the ~15 bytes
                // that begin some marker.
                match chunk[i..].iter().position(|&b| !set.root_stay[b as usize]) {
                    Some(skip) => i += skip,
                    None => break,
                }
            }
            let t = set.trans[state][chunk[i] as usize];
            state = (t & !HAS_OUT) as usize;
            if t & HAS_OUT != 0 {
                let (lo, hi) = (set.out_start[state], set.out_start[state + 1]);
                for &p in &set.out_flat[lo as usize..hi as usize] {
                    self.hits.set(p);
                }
            }
            i += 1;
        }
        self.state = state as u32;
    }

    /// Finish the scan, yielding the hit bitset.
    pub fn finish(self) -> PatternHits {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::PageKind;
    use crate::templates::{render, PageParams};
    use geoblock_http::Url;

    fn rendered(kind: PageKind, nonce: u64) -> Response {
        let params = PageParams::new("shop.example.com", "Syria", "5.0.0.1", nonce);
        render(kind, &params).finish(Url::http("shop.example.com"))
    }

    #[test]
    fn compiled_classifies_every_template_like_naive() {
        let naive = FingerprintSet::paper();
        let compiled = CompiledFingerprintSet::paper();
        for kind in PageKind::ALL {
            for nonce in [0u64, 1, 99, 12345] {
                let resp = rendered(kind, nonce);
                assert_eq!(
                    compiled.classify(&resp).map(|o| o.kind),
                    naive.classify(&resp).map(|o| o.kind),
                    "{kind} nonce {nonce}"
                );
                assert_eq!(compiled.classify(&resp).map(|o| o.kind), Some(kind));
            }
        }
    }

    #[test]
    fn shared_markers_share_one_pattern_bit() {
        // "has banned the country or region" appears in both the
        // Cloudflare and Baidu fingerprints; "Yunjiasu" in three places.
        let compiled = CompiledFingerprintSet::paper();
        let naive = FingerprintSet::paper();
        let total_markers: usize = naive.iter().map(|f| f.all_of.len() + f.none_of.len()).sum();
        assert!(
            compiled.pattern_count() < total_markers,
            "{} patterns vs {total_markers} markers — dedup had no effect",
            compiled.pattern_count()
        );
    }

    #[test]
    fn chunked_feed_equals_contiguous_scan() {
        let compiled = CompiledFingerprintSet::paper();
        let body = rendered(PageKind::Cloudflare, 7).body;
        let whole = compiled.scan(body.as_bytes());
        for chunk_len in [1usize, 2, 3, 7, 64] {
            let mut scanner = compiled.scanner();
            for chunk in body.as_bytes().chunks(chunk_len) {
                scanner.feed(chunk);
            }
            assert_eq!(scanner.finish(), whole, "chunk_len {chunk_len}");
        }
    }

    #[test]
    fn non_utf8_bodies_scan_without_allocation_or_panic() {
        let compiled = CompiledFingerprintSet::paper();
        let mut body = b"prefix \xff\xfe garbage ".to_vec();
        body.extend_from_slice(b"Incapsula incident ID");
        body.push(0xFF);
        assert_eq!(
            compiled.classify_bytes(&body).map(|o| o.kind),
            Some(PageKind::Incapsula)
        );
    }

    #[test]
    fn specificity_order_is_preserved() {
        let compiled = CompiledFingerprintSet::paper();
        // An Airbnb page is served by nginx and contains the nginx markers
        // too; the specific fingerprint must still win.
        let mut body = rendered(PageKind::Airbnb, 5).body.as_bytes().to_vec();
        body.extend_from_slice(b"<center><h1>403 Forbidden</h1></center><center>nginx</center>");
        assert_eq!(
            compiled.classify_bytes(&body).map(|o| o.kind),
            Some(PageKind::Airbnb)
        );
    }

    #[test]
    fn empty_body_and_empty_patterns() {
        let compiled = CompiledFingerprintSet::paper();
        assert_eq!(compiled.classify_bytes(b""), None);

        // A degenerate custom set with an empty marker matches everything.
        let json = r#"[{"kind":"Incapsula","all_of":[""],"none_of":[],"status":null,"required_header":null}]"#;
        let set = FingerprintSet::from_json(json).expect("load");
        let degenerate = CompiledFingerprintSet::compile(&set);
        assert_eq!(
            degenerate.classify_bytes(b"").map(|o| o.kind),
            Some(PageKind::Incapsula)
        );
        assert_eq!(
            set.classify_bytes(b"").map(|o| o.kind),
            Some(PageKind::Incapsula),
            "naive oracle must agree on the degenerate set"
        );
    }

    #[test]
    fn hits_ones_reports_ascending_pattern_ids() {
        let compiled = CompiledFingerprintSet::paper();
        let hits = compiled.scan(rendered(PageKind::Baidu, 1).body.as_bytes());
        let ones = hits.ones();
        assert!(!ones.is_empty());
        assert!(ones.windows(2).all(|w| w[0] < w[1]));
        for &p in &ones {
            assert!(hits.contains(p));
        }
    }
}
