//! The 14 page types of Table 2 plus the evasion-era additions (JS
//! interstitial, tiered CAPTCHA, fronting mismatch), and their
//! classification.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::provider::Provider;

/// How a recognised page should be interpreted by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// The page text explicitly attributes the denial to the requester's
    /// geographic location. Only these pages enter the geoblocking counts
    /// (§4.2: "we restrict our analysis only to pages that explicitly
    /// signal that they are blocking due to geolocation").
    ExplicitGeoblock,
    /// A denial page also served for abuse/bot blocking; geoblocking can
    /// only be inferred via consistency analysis (§5.2.2).
    AmbiguousBlock,
    /// A CAPTCHA interstitial — access is conditioned, not denied.
    Captcha,
    /// A JavaScript computational challenge (Cloudflare's "checking your
    /// browser" page).
    JsChallenge,
    /// A stock web-server error page with no attribution at all.
    GenericError,
    /// A CDN edge refusing a domain-fronted request: the TLS connection
    /// named one customer while the `Host` header named another. Not a geo
    /// policy — it fires identically from every country.
    FrontingMismatch,
}

/// One of the 17 block/challenge page types: Table 2's 14 rows plus the
/// three evasion-workload pages (Akamai Bot Manager JS challenge, the
/// Incapsula CAPTCHA tier, and CloudFront's fronting-mismatch 403).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PageKind {
    /// Akamai "Access Denied" (ambiguous: geo or abuse).
    Akamai,
    /// Cloudflare error 1009 country-block page (explicit).
    Cloudflare,
    /// Google App Engine sanctions block page (explicit).
    AppEngine,
    /// Cloudflare CAPTCHA interstitial.
    CloudflareCaptcha,
    /// Cloudflare JavaScript challenge ("checking your browser").
    CloudflareJs,
    /// Amazon CloudFront geo-restriction page (explicit).
    CloudFront,
    /// Baidu Yunjiasu CAPTCHA interstitial.
    BaiduCaptcha,
    /// Baidu Yunjiasu country-block page (explicit; nearly identical in
    /// content to Cloudflare's).
    Baidu,
    /// Incapsula incident page (ambiguous).
    Incapsula,
    /// SOASTA denial page (ambiguous).
    Soasta,
    /// Airbnb's custom geo block page (explicit: Crimea, Iran, Syria, North
    /// Korea).
    Airbnb,
    /// Distil Networks "Pardon Our Interruption" CAPTCHA.
    DistilCaptcha,
    /// Stock nginx 403 Forbidden page.
    Nginx403,
    /// Stock Varnish 403 "Guru Meditation" page.
    Varnish403,
    /// Akamai Bot Manager JS-challenge interstitial (served by the second
    /// detection tier to clients that cannot run its verification script).
    AkamaiBotManager,
    /// Incapsula "additional security check" CAPTCHA (the third detection
    /// tier; distinct from the incident denial page).
    IncapsulaCaptcha,
    /// Amazon CloudFront's 403 for a domain-fronted request whose `Host`
    /// header does not match the certificate of the TLS connection.
    CloudFrontFronting,
}

impl PageKind {
    /// All 17 kinds: Table 2's rows in row order, then the evasion-era
    /// additions.
    pub const ALL: [PageKind; 17] = [
        PageKind::Akamai,
        PageKind::Cloudflare,
        PageKind::AppEngine,
        PageKind::CloudflareCaptcha,
        PageKind::CloudflareJs,
        PageKind::CloudFront,
        PageKind::BaiduCaptcha,
        PageKind::Baidu,
        PageKind::Incapsula,
        PageKind::Soasta,
        PageKind::Airbnb,
        PageKind::DistilCaptcha,
        PageKind::Nginx403,
        PageKind::Varnish403,
        PageKind::AkamaiBotManager,
        PageKind::IncapsulaCaptcha,
        PageKind::CloudFrontFronting,
    ];

    /// The service responsible for serving this page.
    pub fn provider(&self) -> Provider {
        match self {
            PageKind::Akamai | PageKind::AkamaiBotManager => Provider::Akamai,
            PageKind::Cloudflare | PageKind::CloudflareCaptcha | PageKind::CloudflareJs => {
                Provider::Cloudflare
            }
            PageKind::AppEngine => Provider::AppEngine,
            PageKind::CloudFront | PageKind::CloudFrontFronting => Provider::CloudFront,
            PageKind::Baidu | PageKind::BaiduCaptcha => Provider::Baidu,
            PageKind::Incapsula | PageKind::IncapsulaCaptcha => Provider::Incapsula,
            PageKind::Soasta => Provider::Soasta,
            PageKind::Airbnb => Provider::Airbnb,
            PageKind::DistilCaptcha => Provider::Distil,
            PageKind::Nginx403 => Provider::Nginx,
            PageKind::Varnish403 => Provider::Varnish,
        }
    }

    /// How the pipeline interprets an observation of this page.
    pub fn class(&self) -> PageClass {
        match self {
            PageKind::Cloudflare
            | PageKind::AppEngine
            | PageKind::CloudFront
            | PageKind::Baidu
            | PageKind::Airbnb => PageClass::ExplicitGeoblock,
            PageKind::Akamai | PageKind::Incapsula | PageKind::Soasta => PageClass::AmbiguousBlock,
            PageKind::CloudflareCaptcha
            | PageKind::BaiduCaptcha
            | PageKind::DistilCaptcha
            | PageKind::IncapsulaCaptcha => PageClass::Captcha,
            PageKind::CloudflareJs | PageKind::AkamaiBotManager => PageClass::JsChallenge,
            PageKind::Nginx403 | PageKind::Varnish403 => PageClass::GenericError,
            PageKind::CloudFrontFronting => PageClass::FrontingMismatch,
        }
    }

    /// Whether the page text explicitly attributes denial to geolocation.
    pub fn is_explicit_geoblock(&self) -> bool {
        self.class() == PageClass::ExplicitGeoblock
    }

    /// Table 2 row label.
    pub fn label(&self) -> &'static str {
        match self {
            PageKind::Akamai => "Akamai",
            PageKind::Cloudflare => "Cloudflare",
            PageKind::AppEngine => "AppEngine",
            PageKind::CloudflareCaptcha => "Cloudflare Captcha",
            PageKind::CloudflareJs => "Cloudflare JavaScript",
            PageKind::CloudFront => "Amazon CloudFront",
            PageKind::BaiduCaptcha => "Baidu Captcha",
            PageKind::Baidu => "Baidu",
            PageKind::Incapsula => "Incapsula",
            PageKind::Soasta => "Soasta",
            PageKind::Airbnb => "Airbnb",
            PageKind::DistilCaptcha => "Distil Captcha",
            PageKind::Nginx403 => "nginx",
            PageKind::Varnish403 => "Varnish",
            PageKind::AkamaiBotManager => "Akamai Bot Manager",
            PageKind::IncapsulaCaptcha => "Incapsula Captcha",
            PageKind::CloudFrontFronting => "CloudFront Fronting Mismatch",
        }
    }
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_five_explicit_geoblock_pages() {
        let explicit: Vec<_> = PageKind::ALL
            .iter()
            .filter(|k| k.is_explicit_geoblock())
            .collect();
        assert_eq!(explicit.len(), 5);
    }

    #[test]
    fn four_captcha_kinds() {
        assert_eq!(
            PageKind::ALL
                .iter()
                .filter(|k| k.class() == PageClass::Captcha)
                .count(),
            4
        );
    }

    #[test]
    fn evasion_kinds_are_never_geoblock_classed() {
        // The tiered bot-detection and fronting pages must not leak into
        // the geoblocking counts of §4.2.
        for k in [
            PageKind::AkamaiBotManager,
            PageKind::IncapsulaCaptcha,
            PageKind::CloudFrontFronting,
        ] {
            assert!(!k.is_explicit_geoblock(), "{k}");
        }
        assert_eq!(
            PageKind::CloudFrontFronting.class(),
            PageClass::FrontingMismatch
        );
        assert_eq!(PageKind::AkamaiBotManager.class(), PageClass::JsChallenge);
    }

    #[test]
    fn provider_consistency() {
        // Explicit pages must come from explicit-geoblocker providers.
        for k in PageKind::ALL {
            if k.is_explicit_geoblock() {
                assert!(
                    k.provider().is_explicit_geoblocker(),
                    "{k}: provider {} is not an explicit geoblocker",
                    k.provider()
                );
            }
            if k.class() == PageClass::AmbiguousBlock {
                assert!(k.provider().is_ambiguous_blocker());
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        use std::collections::HashSet;
        let labels: HashSet<_> = PageKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), PageKind::ALL.len());
    }
}
