//! CDN block-page knowledge: templates and fingerprints.
//!
//! The paper's clustering phase (§4.1.3) discovered 14 distinct page types
//! served in place of real content: explicit geoblock pages from five
//! services (Cloudflare, Amazon CloudFront, Baidu, Google AppEngine, and
//! Airbnb), ambiguous block pages that double as abuse blocks (Akamai,
//! Incapsula, SOASTA), CAPTCHA interstitials (Cloudflare, Baidu, Distil
//! Networks), the Cloudflare JavaScript challenge, and the stock nginx and
//! Varnish 403 pages.
//!
//! This crate holds both sides of that knowledge:
//!
//! * [`templates`] — parameterised HTML generators for each page type, used
//!   by the simulated CDN edges to *serve* realistic block pages (with
//!   varying ray IDs, incident IDs, client IPs, and timestamps, so that the
//!   discovery clustering faces realistic near-duplicate documents);
//! * [`fingerprints`] — the signature matchers the measurement pipeline uses
//!   to *recognise* each page type in a response, mirroring the signatures
//!   the authors extracted from their 119 hand-examined clusters.
//!
//! The two sides are tested against each other: every rendered template must
//! match exactly its own fingerprint (see the crate's property tests).

pub mod compiled;
pub mod fingerprints;
pub mod kind;
pub mod provider;
pub mod templates;

pub use compiled::{CompiledFingerprintSet, PatternHits, Scanner};
pub use fingerprints::{Fingerprint, FingerprintSet, MatchOutcome};
pub use kind::{PageClass, PageKind};
pub use provider::Provider;
pub use templates::{render, PageParams};
