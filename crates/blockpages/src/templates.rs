//! Parameterised HTML templates for every block/challenge page type.
//!
//! The simulated CDN edges call [`render`] to serve a page. Variable parts
//! (ray IDs, incident IDs, client IPs, timestamps) are derived from a nonce,
//! so repeated observations of the same page type are *near*-duplicates —
//! exactly the situation the TF-IDF clustering of §4.1.3 has to handle —
//! while remaining fully deterministic for a given nonce.

use geoblock_http::{Response, ResponseBuilder, StatusCode};
use serde::{Deserialize, Serialize};

use crate::kind::PageKind;

/// Inputs for rendering a page instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageParams {
    /// The domain the client asked for (appears verbatim on most pages).
    pub domain: String,
    /// Human-readable country name of the client, for pages that echo it.
    pub country: String,
    /// The client IP as the edge saw it.
    pub client_ip: String,
    /// Determines all variable identifiers on the page.
    pub nonce: u64,
}

impl PageParams {
    /// Convenience constructor.
    pub fn new(domain: &str, country: &str, client_ip: &str, nonce: u64) -> PageParams {
        PageParams {
            domain: domain.to_string(),
            country: country.to_string(),
            client_ip: client_ip.to_string(),
            nonce,
        }
    }
}

/// splitmix64 step — a tiny deterministic id stream without a rand dep.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn hex_id(nonce: u64, salt: u64, len: usize) -> String {
    let mut out = String::with_capacity(len);
    let mut state = mix(nonce ^ salt);
    while out.len() < len {
        out.push_str(&format!("{state:016x}"));
        state = mix(state);
    }
    out.truncate(len);
    out
}

/// Render a page instance: status code, provider headers, and HTML body.
pub fn render(kind: PageKind, params: &PageParams) -> ResponseBuilder {
    match kind {
        PageKind::Cloudflare => cloudflare_1009(params),
        PageKind::CloudflareCaptcha => cloudflare_captcha(params),
        PageKind::CloudflareJs => cloudflare_js(params),
        PageKind::Akamai => akamai_denied(params),
        PageKind::AppEngine => appengine_block(params),
        PageKind::CloudFront => cloudfront_block(params),
        PageKind::Baidu => baidu_block(params),
        PageKind::BaiduCaptcha => baidu_captcha(params),
        PageKind::Incapsula => incapsula_incident(params),
        PageKind::Soasta => soasta_denied(params),
        PageKind::Airbnb => airbnb_block(params),
        PageKind::DistilCaptcha => distil_captcha(params),
        PageKind::Nginx403 => nginx_403(params),
        PageKind::Varnish403 => varnish_403(params),
        PageKind::AkamaiBotManager => akamai_botmanager(params),
        PageKind::IncapsulaCaptcha => incapsula_captcha(params),
        PageKind::CloudFrontFronting => cloudfront_fronting(params),
    }
}

fn cloudflare_ray(params: &PageParams) -> String {
    format!("{}-{}", hex_id(params.nonce, 0xc1, 16), "IAD")
}

fn cloudflare_1009(params: &PageParams) -> ResponseBuilder {
    let ray = cloudflare_ray(params);
    let body = format!(
        r#"<!DOCTYPE html>
<html lang="en-US">
<head><title>Access denied | {domain} used Cloudflare to restrict access</title></head>
<body>
<div id="cf-wrapper">
  <h1><span class="cf-error-type">Error</span> <span class="cf-error-code">1009</span></h1>
  <h2 class="cf-subheadline">Access denied</h2>
  <section>
    <p>The owner of this website ({domain}) has banned the country or region your
    IP address is in ({country}) from accessing this website.</p>
  </section>
  <div class="cf-error-footer">
    <p>Cloudflare Ray ID: <strong>{ray}</strong> &bull; Your IP: {ip} &bull;
    Performance &amp; security by Cloudflare</p>
  </div>
</div>
</body>
</html>"#,
        domain = params.domain,
        country = params.country,
        ray = ray,
        ip = params.client_ip,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "cloudflare")
        .header("CF-RAY", ray)
        .body(body)
}

fn cloudflare_captcha(params: &PageParams) -> ResponseBuilder {
    let ray = cloudflare_ray(params);
    let body = format!(
        r#"<!DOCTYPE html>
<html lang="en-US">
<head><title>Attention Required! | Cloudflare</title></head>
<body>
<div id="cf-wrapper">
  <h1>One more step</h1>
  <h2>Please complete the security check to access {domain}</h2>
  <form id="challenge-form" class="challenge-form" action="/cdn-cgi/l/chk_captcha" method="get">
    <div class="g-recaptcha" data-sitekey="{sitekey}"></div>
  </form>
  <p>Why do I have to complete a CAPTCHA? Completing the CAPTCHA proves you are a human
  and gives you temporary access to the web property.</p>
  <div class="cf-error-footer">Cloudflare Ray ID: <strong>{ray}</strong> &bull; Your IP: {ip}</div>
</div>
</body>
</html>"#,
        domain = params.domain,
        sitekey = hex_id(params.nonce, 0xca, 40),
        ray = ray,
        ip = params.client_ip,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "cloudflare")
        .header("CF-RAY", ray)
        .header("CF-Chl-Bypass", "1")
        .body(body)
}

fn cloudflare_js(params: &PageParams) -> ResponseBuilder {
    let ray = cloudflare_ray(params);
    let body = format!(
        r#"<!DOCTYPE html>
<html lang="en-US">
<head>
<title>Just a moment...</title>
<meta http-equiv="refresh" content="8">
</head>
<body>
<table width="100%" height="100%" cellpadding="20">
<tr><td align="center" valign="middle">
  <h1>Checking your browser before accessing {domain}.</h1>
  <p>This process is automatic. Your browser will redirect to your requested content shortly.</p>
  <p>Please allow up to 5 seconds&hellip;</p>
  <form id="challenge-form" action="/cdn-cgi/l/chk_jschl" method="get">
    <input type="hidden" name="jschl_vc" value="{vc}"/>
    <input type="hidden" name="pass" value="{pass}"/>
  </form>
  <p>DDoS protection by Cloudflare. Ray ID: {ray}</p>
</td></tr>
</table>
</body>
</html>"#,
        domain = params.domain,
        vc = hex_id(params.nonce, 0x15, 32),
        pass = hex_id(params.nonce, 0x16, 24),
        ray = ray,
    );
    Response::builder(StatusCode::SERVICE_UNAVAILABLE)
        .header("Server", "cloudflare")
        .header("CF-RAY", ray)
        .header("Refresh", "8")
        .body(body)
}

fn akamai_denied(params: &PageParams) -> ResponseBuilder {
    // Reference IDs look like 18.2d4d1502.1532026924.14272a5
    let reference = format!(
        "18.{}.{}.{}",
        hex_id(params.nonce, 0xa1, 8),
        1_530_000_000u64 + (mix(params.nonce) % 10_000_000),
        hex_id(params.nonce, 0xa2, 7),
    );
    let body = format!(
        r#"<html><head><title>Access Denied</title></head>
<body>
<h1>Access Denied</h1>
You don't have permission to access "http&#58;&#47;&#47;{domain}&#47;" on this server.<p>
Reference&#32;&#35;{reference}
</body>
</html>"#,
        domain = params.domain,
        reference = reference,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "AkamaiGHost")
        .header("Mime-Version", "1.0")
        .body(body)
}

fn appengine_block(params: &PageParams) -> ResponseBuilder {
    let body = format!(
        r#"<html><head>
<meta http-equiv="content-type" content="text/html;charset=utf-8">
<title>403 Forbidden</title>
</head>
<body text=#000000 bgcolor=#ffffff>
<h1>Error: Forbidden</h1>
<h2>Your client does not have permission to get URL <code>/</code> from this server.
({domain} is not available in your country)</h2>
<h2></h2>
</body></html>"#,
        domain = params.domain,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "Google Frontend")
        .body(body)
}

fn cloudfront_block(params: &PageParams) -> ResponseBuilder {
    let request_id = hex_id(params.nonce, 0xcf, 56);
    let body = format!(
        r#"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN" "http://www.w3.org/TR/html4/loose.dtd">
<html><head><meta http-equiv="Content-Type" content="text/html; charset=iso-8859-1">
<title>ERROR: The request could not be satisfied</title>
</head><body>
<h1>403 ERROR</h1>
<h2>The request could not be satisfied.</h2>
<hr noshade size="1px">
The Amazon CloudFront distribution is configured to block access from your country.
We can't connect to the server for this app or website at this time.
<br clear="all">
<hr noshade size="1px">
<pre>
Generated by cloudfront (CloudFront)
Request ID: {request_id}
</pre>
</body></html>"#,
        request_id = request_id,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "CloudFront")
        .header("X-Amz-Cf-Id", request_id)
        .header("X-Cache", "Error from cloudfront")
        .body(body)
}

fn baidu_block(params: &PageParams) -> ResponseBuilder {
    let ray = hex_id(params.nonce, 0xb0, 16);
    let body = format!(
        r#"<!DOCTYPE html>
<html lang="zh-CN">
<head><title>Access denied | {domain} used Yunjiasu to restrict access</title></head>
<body>
<div id="yjs-wrapper">
  <h1><span>Error</span> <span>1009</span></h1>
  <h2>Access denied</h2>
  <p>The owner of this website ({domain}) has banned the country or region your
  IP address is in ({country}) from accessing this website.</p>
  <p>Baidu Yunjiasu Ray ID: {ray} &bull; Your IP: {ip}</p>
</div>
</body>
</html>"#,
        domain = params.domain,
        country = params.country,
        ray = ray,
        ip = params.client_ip,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "yunjiasu-nginx")
        .body(body)
}

fn baidu_captcha(params: &PageParams) -> ResponseBuilder {
    let body = format!(
        r#"<!DOCTYPE html>
<html lang="zh-CN">
<head><title>安全验证 - Yunjiasu</title></head>
<body>
<div id="yjs-captcha">
  <h1>One more step</h1>
  <h2>Please complete the security check to access {domain}</h2>
  <div class="yjs-captcha-box" data-key="{key}"></div>
  <p>安全检查由百度云加速提供 (Security check by Baidu Yunjiasu)</p>
</div>
</body>
</html>"#,
        domain = params.domain,
        key = hex_id(params.nonce, 0xb1, 32),
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "yunjiasu-nginx")
        .body(body)
}

fn incapsula_incident(params: &PageParams) -> ResponseBuilder {
    let incident = format!(
        "{}-{}",
        mix(params.nonce ^ 0x11) % 1_000_000_000,
        mix(params.nonce ^ 0x12) % 1_000_000_000,
    );
    let body = format!(
        r#"<html>
<head><meta http-equiv="Content-Type" content="text/html; charset=utf-8"></head>
<body style="margin:0px;padding:0px;">
<iframe src="//content.incapsula.com/jsTest.html" id="gaIframe" style="display:none"></iframe>
<h1>Request unsuccessful. Incapsula incident ID: {incident}</h1>
</body>
</html>"#,
        incident = incident,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header(
            "X-Iinfo",
            format!("{}-{}", hex_id(params.nonce, 0x13, 8), incident),
        )
        .header("X-CDN", "Incapsula")
        .body(body)
}

fn soasta_denied(params: &PageParams) -> ResponseBuilder {
    let body = format!(
        r#"<html><head><title>Access denied</title></head>
<body>
<h1>Access denied</h1>
<p>The requested resource on host {domain} is not available from your network location.</p>
<p>SOASTA mPulse edge &mdash; request {id}</p>
</body></html>"#,
        domain = params.domain,
        id = hex_id(params.nonce, 0x50, 12),
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "SOASTA")
        .body(body)
}

fn airbnb_block(params: &PageParams) -> ResponseBuilder {
    let body = r#"<!DOCTYPE html>
<html>
<head><title>Airbnb: Unsupported Region</title></head>
<body>
<div class="error-page">
  <h1>Sorry, Airbnb is not available where you are.</h1>
  <p>Due to trade restrictions, Airbnb products and services are not available to
  users in Crimea, Iran, Syria, and North Korea. We apologize for any inconvenience
  this may cause.</p>
  <p>If you believe you are seeing this message in error, please contact support.</p>
</div>
</body>
</html>"#
        .to_string();
    let _ = params;
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "nginx")
        .body(body)
}

fn distil_captcha(params: &PageParams) -> ResponseBuilder {
    let body = format!(
        r#"<html style="height:100%">
<head><title>Pardon Our Interruption</title></head>
<body style="height:100%; margin:0">
<div id="distil-wrapper">
  <h1>Pardon Our Interruption...</h1>
  <p>As you were browsing <strong>{domain}</strong> something about your browser made us
  think you were a bot. There are a few reasons this might happen:</p>
  <ul>
    <li>You're a power user moving through this website with super-human speed.</li>
    <li>You've disabled JavaScript in your web browser.</li>
    <li>A third-party browser plugin, such as Ghostery or NoScript, is preventing
    JavaScript from running.</li>
  </ul>
  <p>To request an unblock, please fill out the form below and we will review it as
  soon as possible. Reference ID: {id}</p>
</div>
</body>
</html>"#,
        domain = params.domain,
        id = hex_id(params.nonce, 0xd1, 20),
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("X-Distil-CS", hex_id(params.nonce, 0xd2, 16))
        .body(body)
}

fn nginx_403(params: &PageParams) -> ResponseBuilder {
    let _ = params;
    let body = r#"<html>
<head><title>403 Forbidden</title></head>
<body bgcolor="white">
<center><h1>403 Forbidden</h1></center>
<hr><center>nginx</center>
</body>
</html>"#
        .to_string();
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "nginx")
        .body(body)
}

fn varnish_403(params: &PageParams) -> ResponseBuilder {
    let xid = mix(params.nonce ^ 0x7a) % 1_000_000_000;
    let body = format!(
        r#"<?xml version="1.0" encoding="utf-8"?>
<!DOCTYPE html>
<html>
<head><title>403 Forbidden</title></head>
<body>
<h1>Error 403 Forbidden</h1>
<p>Forbidden</p>
<h3>Guru Meditation:</h3>
<p>XID: {xid}</p>
<hr>
<p>Varnish cache server</p>
</body>
</html>"#,
        xid = xid,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Via", "1.1 varnish")
        .body(body)
}

fn akamai_botmanager(params: &PageParams) -> ResponseBuilder {
    // Bot Manager's interstitial: a script the client must execute and a
    // verification token to post back. No geography anywhere on the page.
    let token = hex_id(params.nonce, 0xba, 44);
    let body = format!(
        r#"<html><head>
<title>Verifying your browser&hellip;</title>
<script type="text/javascript" src="/_bm/challenge.js?v={script_v}"></script>
</head>
<body>
<h1>Verifying your browser</h1>
<p>Please wait while we verify that you are not a robot. This check runs
automatically in your browser and {domain} will load once it completes.</p>
<form id="bm-challenge" action="/_bm/verify" method="post">
  <input type="hidden" name="bm-verify" value="{token}"/>
</form>
<noscript><p>JavaScript is required to pass this check.</p></noscript>
</body>
</html>"#,
        script_v = hex_id(params.nonce, 0xbb, 12),
        domain = params.domain,
        token = token,
    );
    Response::builder(StatusCode::SERVICE_UNAVAILABLE)
        .header("Server", "AkamaiGHost")
        .header("Akamai-BM-Token", token)
        .body(body)
}

fn incapsula_captcha(params: &PageParams) -> ResponseBuilder {
    // The CAPTCHA tier, distinct from the incident denial page: no
    // "Incapsula incident ID" marker appears here.
    let body = format!(
        r#"<html>
<head><meta http-equiv="Content-Type" content="text/html; charset=utf-8"></head>
<body style="margin:0px;padding:0px;">
<h1>Additional security check is required</h1>
<p>To access {domain}, please complete the check below.</p>
<iframe src="/_Incapsula_Resource?CWUDNSAI={resource}&xinfo=captcha" frameborder="0"
 width="100%" height="100%" marginheight="0px" marginwidth="0px"></iframe>
<div class="g-recaptcha" data-sitekey="{sitekey}"></div>
</body>
</html>"#,
        domain = params.domain,
        resource = hex_id(params.nonce, 0x21, 10),
        sitekey = hex_id(params.nonce, 0x22, 40),
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header(
            "X-Iinfo",
            format!("{}-captcha", hex_id(params.nonce, 0x23, 8)),
        )
        .header("X-CDN", "Incapsula")
        .body(body)
}

fn cloudfront_fronting(params: &PageParams) -> ResponseBuilder {
    let request_id = hex_id(params.nonce, 0xcf + 1, 56);
    let body = format!(
        r#"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN" "http://www.w3.org/TR/html4/loose.dtd">
<html><head><meta http-equiv="Content-Type" content="text/html; charset=iso-8859-1">
<title>ERROR: The request could not be satisfied</title>
</head><body>
<h1>403 ERROR</h1>
<h2>The request could not be satisfied.</h2>
<hr noshade size="1px">
The distribution does not match the certificate for which the HTTPS connection
was established with. ({domain} was requested over a connection for another
distribution.)
<br clear="all">
<hr noshade size="1px">
<pre>
Generated by cloudfront (CloudFront)
Request ID: {request_id}
</pre>
</body></html>"#,
        domain = params.domain,
        request_id = request_id,
    );
    Response::builder(StatusCode::FORBIDDEN)
        .header("Server", "CloudFront")
        .header("X-Amz-Cf-Id", request_id)
        .header("X-Cache", "Error from cloudfront")
        .body(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::Url;

    fn params(nonce: u64) -> PageParams {
        PageParams::new("example.com", "Iran", "5.22.199.10", nonce)
    }

    fn finish(kind: PageKind, nonce: u64) -> geoblock_http::Response {
        render(kind, &params(nonce)).finish(Url::http("example.com"))
    }

    #[test]
    fn all_kinds_render_nonempty_html() {
        for kind in PageKind::ALL {
            let resp = finish(kind, 7);
            assert!(!resp.body.is_empty(), "{kind} rendered empty body");
            assert!(
                resp.body.as_text().contains("<h"),
                "{kind} lacks an HTML heading"
            );
        }
    }

    #[test]
    fn rendering_is_deterministic_in_nonce() {
        for kind in PageKind::ALL {
            assert_eq!(finish(kind, 42), finish(kind, 42));
        }
    }

    #[test]
    fn different_nonces_vary_identifier_bearing_pages() {
        // Pages with ray/incident IDs must differ across nonces…
        for kind in [
            PageKind::Cloudflare,
            PageKind::Akamai,
            PageKind::Incapsula,
            PageKind::CloudFront,
            PageKind::Varnish403,
        ] {
            assert_ne!(finish(kind, 1).body, finish(kind, 2).body, "{kind}");
        }
        // …while the fully static nginx page does not.
        assert_eq!(
            finish(PageKind::Nginx403, 1).body,
            finish(PageKind::Nginx403, 2).body
        );
    }

    #[test]
    fn status_codes_match_page_semantics() {
        // JS interstitials are 503 ("come back once the check passes");
        // every denial and CAPTCHA page is a plain 403.
        let js = [PageKind::CloudflareJs, PageKind::AkamaiBotManager];
        for kind in js {
            assert_eq!(
                finish(kind, 3).status,
                StatusCode::SERVICE_UNAVAILABLE,
                "{kind}"
            );
        }
        for kind in PageKind::ALL {
            if !js.contains(&kind) {
                assert_eq!(finish(kind, 3).status, StatusCode::FORBIDDEN, "{kind}");
            }
        }
    }

    #[test]
    fn incapsula_captcha_is_not_the_incident_page() {
        let text = finish(PageKind::IncapsulaCaptcha, 5)
            .body
            .as_text()
            .to_string();
        assert!(text.contains("Additional security check is required"));
        assert!(!text.contains("Incapsula incident ID"));
    }

    #[test]
    fn fronting_page_names_the_certificate_mismatch_not_geography() {
        let text = finish(PageKind::CloudFrontFronting, 5)
            .body
            .as_text()
            .to_string();
        assert!(text.contains("does not match the certificate"));
        assert!(!text.contains("block access from your country"));
    }

    #[test]
    fn cloudflare_pages_carry_ray_header() {
        for kind in [
            PageKind::Cloudflare,
            PageKind::CloudflareCaptcha,
            PageKind::CloudflareJs,
        ] {
            assert!(finish(kind, 9).headers.contains("cf-ray"), "{kind}");
        }
    }

    #[test]
    fn explicit_pages_mention_geography() {
        // Every explicit geoblock page contains location-attribution text.
        for (kind, marker) in [
            (PageKind::Cloudflare, "country or region"),
            (PageKind::Baidu, "country or region"),
            (PageKind::AppEngine, "not available in your country"),
            (PageKind::CloudFront, "block access from your country"),
            (PageKind::Airbnb, "Crimea, Iran, Syria, and North Korea"),
        ] {
            let text = finish(kind, 11).body.as_text().to_string();
            assert!(text.contains(marker), "{kind} missing {marker:?}");
        }
    }
}
