//! Block-page fingerprints — the measurement side.
//!
//! After hand-examining 119 clusters, the authors extracted signatures for
//! each blocking behaviour (§4.1.3). A fingerprint here is a conjunction of
//! required body substrings, optional forbidden substrings (to split
//! near-identical families like Cloudflare/Baidu), an optional status-code
//! constraint, and an optional required response header. The set is
//! evaluated in specificity order; the first full match wins.
//!
//! Jones et al.'s page-length + word-frequency features are what the
//! *discovery* phase uses; these fingerprints are the precise classifiers
//! distilled from discovery, and Table 2 measures how well the length
//! heuristic alone would have recalled each of them.

use geoblock_http::{Response, StatusCode};
use serde::{Deserialize, Serialize};

use crate::kind::PageKind;

/// A signature for one page type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fingerprint {
    /// The page type this signature recognises.
    pub kind: PageKind,
    /// Substrings that must all appear in the body.
    pub all_of: Vec<String>,
    /// Substrings that must not appear (disambiguators).
    pub none_of: Vec<String>,
    /// Status the response must carry, if constrained.
    pub status: Option<StatusCode>,
    /// A header that must be present, if constrained.
    pub required_header: Option<String>,
}

impl Fingerprint {
    fn new(kind: PageKind, all_of: &[&str]) -> Fingerprint {
        Fingerprint {
            kind,
            all_of: all_of.iter().map(|s| s.to_string()).collect(),
            none_of: Vec::new(),
            status: None,
            required_header: None,
        }
    }

    fn none_of(mut self, patterns: &[&str]) -> Fingerprint {
        self.none_of = patterns.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Whether `body` (with optional `response` context) satisfies this
    /// signature. Matching is on the body text, with the status/header
    /// constraints applied only when a full response is available — the
    /// OONI corpus scan (§7.1) matches on recorded bodies and headers.
    pub fn matches_text(&self, body: &str) -> bool {
        self.all_of.iter().all(|p| body.contains(p.as_str()))
            && !self.none_of.iter().any(|p| body.contains(p.as_str()))
    }

    /// Byte-level matching: substring search over the raw body, no UTF-8
    /// decode. For ASCII markers (the whole paper set) this agrees with
    /// [`Fingerprint::matches_text`] on lossy-decoded text, because lossy
    /// decoding preserves ASCII bytes verbatim and replacement characters
    /// introduce none. This is the differential oracle for the compiled
    /// automaton.
    pub fn matches_bytes(&self, body: &[u8]) -> bool {
        self.all_of
            .iter()
            .all(|p| contains_bytes(body, p.as_bytes()))
            && !self
                .none_of
                .iter()
                .any(|p| contains_bytes(body, p.as_bytes()))
    }

    /// Full-response matching, including status and header constraints.
    /// The body is matched as raw bytes — no lossy decode, no allocation.
    pub fn matches(&self, response: &Response) -> bool {
        if let Some(status) = self.status {
            if response.status != status {
                return false;
            }
        }
        if let Some(h) = &self.required_header {
            if !response.headers.contains(h) {
                return false;
            }
        }
        self.matches_bytes(response.body.as_bytes())
    }
}

/// Naive byte-substring search, matching `str::contains` semantics (an
/// empty needle matches everything). Quadratic worst case — this is the
/// oracle, not the kernel; the compiled automaton is the fast path.
fn contains_bytes(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// The result of matching a response against the full fingerprint set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchOutcome {
    /// The recognised page type.
    pub kind: PageKind,
}

/// The ordered set of all 17 fingerprints.
#[derive(Debug, Clone)]
pub struct FingerprintSet {
    fingerprints: Vec<Fingerprint>,
}

impl Default for FingerprintSet {
    fn default() -> Self {
        FingerprintSet::paper()
    }
}

impl FingerprintSet {
    /// The signature set extracted in §4.1.3, in specificity order: the
    /// most narrowly-worded signatures are tried first so generic patterns
    /// (plain nginx 403) cannot shadow specific ones (Airbnb, which also
    /// fronts with nginx).
    pub fn paper() -> FingerprintSet {
        let fps = vec![
            // Airbnb before anything generic: its page is served by nginx.
            Fingerprint::new(
                PageKind::Airbnb,
                &["Airbnb", "Crimea, Iran, Syria, and North Korea"],
            ),
            // Cloudflare vs Baidu: nearly identical text, split on branding.
            Fingerprint::new(
                PageKind::Cloudflare,
                &["has banned the country or region", "Cloudflare Ray ID"],
            )
            .none_of(&["Yunjiasu"]),
            Fingerprint::new(
                PageKind::Baidu,
                &["has banned the country or region", "Yunjiasu"],
            ),
            Fingerprint::new(
                PageKind::CloudflareCaptcha,
                &[
                    "Attention Required! | Cloudflare",
                    "complete the security check",
                ],
            ),
            Fingerprint::new(
                PageKind::BaiduCaptcha,
                &["Yunjiasu", "complete the security check"],
            ),
            Fingerprint::new(
                PageKind::CloudflareJs,
                &["Checking your browser before accessing", "jschl"],
            ),
            // The Bot Manager interstitial: JS challenge, never geoblock.
            Fingerprint::new(
                PageKind::AkamaiBotManager,
                &["Verifying your browser", "bm-verify"],
            ),
            Fingerprint::new(PageKind::DistilCaptcha, &["Pardon Our Interruption"]),
            // The Incapsula CAPTCHA tier, before the incident page it must
            // never be confused with.
            Fingerprint::new(
                PageKind::IncapsulaCaptcha,
                &[
                    "Additional security check is required",
                    "_Incapsula_Resource",
                ],
            ),
            Fingerprint::new(
                PageKind::AppEngine,
                &[
                    "Your client does not have permission to get URL",
                    "not available in your country",
                ],
            ),
            // Fronting mismatch before the CloudFront geo page: both carry
            // the generic "could not be satisfied" banner and are split on
            // their attribution line.
            Fingerprint::new(
                PageKind::CloudFrontFronting,
                &[
                    "The request could not be satisfied",
                    "does not match the certificate",
                ],
            ),
            Fingerprint::new(
                PageKind::CloudFront,
                &[
                    "The request could not be satisfied",
                    "configured to block access from your country",
                ],
            ),
            Fingerprint::new(
                PageKind::Akamai,
                &[
                    "Access Denied",
                    "You don't have permission to access",
                    "Reference&#32;&#35;",
                ],
            ),
            Fingerprint::new(PageKind::Incapsula, &["Incapsula incident ID"]),
            Fingerprint::new(
                PageKind::Soasta,
                &["SOASTA", "not available from your network location"],
            ),
            Fingerprint::new(
                PageKind::Varnish403,
                &["Guru Meditation", "Varnish cache server"],
            ),
            // Most generic last.
            Fingerprint::new(
                PageKind::Nginx403,
                &[
                    "<center><h1>403 Forbidden</h1></center>",
                    "<center>nginx</center>",
                ],
            ),
        ];
        FingerprintSet { fingerprints: fps }
    }

    /// All fingerprints in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = &Fingerprint> {
        self.fingerprints.iter()
    }

    /// Match a full response; first full match wins.
    pub fn classify(&self, response: &Response) -> Option<MatchOutcome> {
        self.fingerprints
            .iter()
            .find(|f| f.matches(response))
            .map(|f| MatchOutcome { kind: f.kind })
    }

    /// Match recorded body text only (status/header constraints skipped) —
    /// the mode used when scanning archival corpora such as OONI reports.
    pub fn classify_text(&self, body: &str) -> Option<MatchOutcome> {
        self.fingerprints
            .iter()
            .find(|f| f.matches_text(body))
            .map(|f| MatchOutcome { kind: f.kind })
    }

    /// Match raw body bytes only — the naive counterpart of
    /// [`crate::CompiledFingerprintSet::classify_bytes`], retained as the
    /// differential-testing oracle.
    pub fn classify_bytes(&self, body: &[u8]) -> Option<MatchOutcome> {
        self.fingerprints
            .iter()
            .find(|f| f.matches_bytes(body))
            .map(|f| MatchOutcome { kind: f.kind })
    }

    /// Serialise the signature set as JSON. Block pages drift over time;
    /// deployments can persist tuned sets instead of recompiling.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.fingerprints).expect("fingerprints serialise")
    }

    /// Load a signature set from JSON (evaluation order = array order, so
    /// keep specific signatures before generic ones).
    pub fn from_json(json: &str) -> Result<FingerprintSet, serde_json::Error> {
        Ok(FingerprintSet {
            fingerprints: serde_json::from_str(json)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{render, PageParams};
    use geoblock_http::Url;

    fn rendered(kind: PageKind, nonce: u64) -> Response {
        let params = PageParams::new("shop.example.com", "Syria", "5.0.0.1", nonce);
        render(kind, &params).finish(Url::http("shop.example.com"))
    }

    #[test]
    fn every_template_classified_as_itself() {
        let set = FingerprintSet::paper();
        for kind in PageKind::ALL {
            for nonce in [0u64, 1, 99, 12345] {
                let resp = rendered(kind, nonce);
                let outcome = set.classify(&resp);
                assert_eq!(
                    outcome.map(|o| o.kind),
                    Some(kind),
                    "template {kind} (nonce {nonce}) misclassified as {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn text_only_classification_agrees() {
        let set = FingerprintSet::paper();
        for kind in PageKind::ALL {
            let resp = rendered(kind, 7);
            assert_eq!(
                set.classify_text(&resp.body.as_text()).map(|o| o.kind),
                Some(kind),
                "{kind}"
            );
        }
    }

    #[test]
    fn ordinary_pages_do_not_match() {
        let set = FingerprintSet::paper();
        let page = "<html><head><title>Welcome to Example Shop</title></head>\
                    <body><h1>Daily deals</h1><p>Buy more things.</p></body></html>";
        assert!(set.classify_text(page).is_none());
    }

    #[test]
    fn near_miss_pages_do_not_match() {
        let set = FingerprintSet::paper();
        // A 403-ish page that names no provider and no signature phrasing.
        let page = "<html><body><h1>403 Forbidden</h1><p>Access is restricted.</p></body></html>";
        assert!(set.classify_text(page).is_none());
        // Mentions Cloudflare but is a blog post, not a block page.
        let blog = "<html><body><p>Today we migrated our site to Cloudflare.</p></body></html>";
        assert!(set.classify_text(blog).is_none());
    }

    #[test]
    fn disambiguators_split_cloudflare_and_baidu() {
        let set = FingerprintSet::paper();
        let cf = rendered(PageKind::Cloudflare, 3);
        let baidu = rendered(PageKind::Baidu, 3);
        assert_eq!(set.classify(&cf).unwrap().kind, PageKind::Cloudflare);
        assert_eq!(set.classify(&baidu).unwrap().kind, PageKind::Baidu);
    }

    #[test]
    fn airbnb_takes_priority_over_nginx() {
        // Airbnb page is served by nginx; the specific fingerprint must win.
        let set = FingerprintSet::paper();
        let resp = rendered(PageKind::Airbnb, 5);
        assert_eq!(set.classify(&resp).unwrap().kind, PageKind::Airbnb);
    }

    #[test]
    fn json_round_trip_preserves_classification() {
        let set = FingerprintSet::paper();
        let json = set.to_json();
        let back = FingerprintSet::from_json(&json).expect("round trip");
        for kind in PageKind::ALL {
            let resp = rendered(kind, 3);
            assert_eq!(
                back.classify(&resp).map(|o| o.kind),
                set.classify(&resp).map(|o| o.kind),
                "{kind}"
            );
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(FingerprintSet::from_json("not json").is_err());
        assert!(FingerprintSet::from_json("{}").is_err());
    }

    #[test]
    fn custom_sets_can_tighten_signatures() {
        // Drop everything except the Cloudflare signature: only Cloudflare
        // pages classify.
        let set = FingerprintSet::paper();
        let only_cf: Vec<&Fingerprint> = set
            .iter()
            .filter(|f| f.kind == PageKind::Cloudflare)
            .collect();
        let json = serde_json::to_string(&only_cf).expect("serialise");
        let custom = FingerprintSet::from_json(&json).expect("load");
        assert!(custom
            .classify(&rendered(PageKind::Cloudflare, 1))
            .is_some());
        assert!(custom.classify(&rendered(PageKind::Akamai, 1)).is_none());
    }

    #[test]
    fn set_covers_all_seventeen_kinds() {
        let set = FingerprintSet::paper();
        let mut kinds: Vec<_> = set.iter().map(|f| f.kind).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), PageKind::ALL.len());
    }

    #[test]
    fn fronting_and_geo_cloudfront_pages_never_cross_match() {
        let set = FingerprintSet::paper();
        let geo = rendered(PageKind::CloudFront, 4);
        let fronting = rendered(PageKind::CloudFrontFronting, 4);
        assert_eq!(set.classify(&geo).unwrap().kind, PageKind::CloudFront);
        assert_eq!(
            set.classify(&fronting).unwrap().kind,
            PageKind::CloudFrontFronting
        );
    }

    #[test]
    fn incapsula_captcha_never_matches_the_incident_signature() {
        let set = FingerprintSet::paper();
        let captcha = rendered(PageKind::IncapsulaCaptcha, 8);
        assert_eq!(
            set.classify(&captcha).unwrap().kind,
            PageKind::IncapsulaCaptcha
        );
    }
}
