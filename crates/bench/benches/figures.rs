//! Criterion benches for the figure-regenerating computations: the
//! Figure 1/3 subsampling experiments, the Figure 2 histogram, Figure 4's
//! agreement CDF, and Figure 5's cumulative rule series.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use geoblock_analysis::figures::{Figure1, Figure2, Figure3, Figure4, Figure5};
use geoblock_analysis::sampling::{consistency_experiment, false_negative_experiment};
use geoblock_bench::{Harness, Scale};
use geoblock_worldgen::{cc, RulesSnapshot};

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime")
}

fn bench_figures(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let artifacts = rt.block_on(h.top10k());
    let (store, pairs) = rt.block_on(h.hundred_sample_populations(&artifacts));
    let sizes = [1usize, 3, 5, 10, 20, 50];

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_consistency_experiment_500_draws", |b| {
        b.iter(|| black_box(consistency_experiment(&store, &pairs, &sizes, 500, 7)))
    });
    let consistencies = consistency_experiment(&store, &pairs, &sizes, 500, 7);
    g.bench_function("fig1_cdf_build", |b| {
        b.iter(|| black_box(Figure1::new(&consistencies)))
    });
    g.bench_function("fig2_histogram", |b| {
        b.iter(|| black_box(Figure2::new(&artifacts.outliers, 20)))
    });
    g.bench_function("fig3_false_negative_experiment", |b| {
        b.iter(|| {
            black_box(Figure3::new(false_negative_experiment(
                &store, &pairs, &sizes, 500, 7,
            )))
        })
    });
    g.bench_function("fig4_agreement_cdf", |b| {
        b.iter(|| black_box(Figure4::new(&artifacts.result.store)))
    });
    let snapshot = RulesSnapshot::generate(42, 0.05);
    let countries = [cc("KP"), cc("IR"), cc("SY"), cc("SD"), cc("CU")];
    g.bench_function("fig5_cumulative_series", |b| {
        b.iter(|| black_box(Figure5::new(&snapshot, &countries)))
    });
    g.finish();
}

criterion_group!(figures_benches, bench_figures);
criterion_main!(figures_benches);
