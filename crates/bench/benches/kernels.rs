//! Criterion benches for the computational kernels: fingerprint
//! classification, TF-IDF + clustering, block-page rendering, the outlier
//! heuristic, and the simulated request path.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use geoblock_blockpages::{render, FingerprintSet, PageKind, PageParams};
use geoblock_core::observation::{Obs, SampleStore};
use geoblock_core::outliers::{extract_outliers, OutlierConfig};
use geoblock_http::{HeaderProfile, Request, Url};
use geoblock_netsim::{ClientContext, SimInternet};
use geoblock_textmine::{single_link, TfIdfVectorizer};
use geoblock_worldgen::{cc, World, WorldConfig};

fn bench_fingerprints(c: &mut Criterion) {
    let set = FingerprintSet::paper();
    let params = PageParams::new("shop.example.com", "Iran", "5.1.2.3", 7);
    let pages: Vec<(PageKind, String)> = PageKind::ALL
        .iter()
        .map(|k| {
            let resp = render(*k, &params).finish(Url::http("shop.example.com"));
            (*k, resp.body.as_text().to_string())
        })
        .collect();
    let ordinary = "<html><body>".to_string() + &"regular content ".repeat(400) + "</body></html>";

    let mut g = c.benchmark_group("fingerprints");
    g.throughput(Throughput::Elements(pages.len() as u64));
    g.bench_function("classify_all_block_pages", |b| {
        b.iter(|| {
            for (_, body) in &pages {
                black_box(set.classify_text(body));
            }
        })
    });
    g.throughput(Throughput::Elements(1));
    g.bench_function("classify_ordinary_page", |b| {
        b.iter(|| black_box(set.classify_text(&ordinary)))
    });
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let params = PageParams::new("shop.example.com", "Syria", "5.9.9.9", 3);
    let mut g = c.benchmark_group("blockpage_render");
    for kind in [PageKind::Cloudflare, PageKind::Akamai, PageKind::CloudFront] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| black_box(render(kind, &params).finish(Url::http("x.com"))))
        });
    }
    g.finish();
}

fn bench_clustering(c: &mut Criterion) {
    // A realistic discovery corpus: 3 block-page families with unique ids.
    let params = |i: u64| PageParams::new(&format!("d{i}.com"), "Iran", "5.0.0.1", i);
    let mut docs = Vec::new();
    for i in 0..400u64 {
        for kind in [PageKind::Cloudflare, PageKind::Akamai, PageKind::Incapsula] {
            let resp = render(kind, &params(i)).finish(Url::http("x.com"));
            docs.push(resp.body.as_text().to_string());
        }
    }
    let mut g = c.benchmark_group("discovery");
    g.sample_size(20);
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.bench_function("tfidf_1200_docs", |b| {
        b.iter(|| black_box(TfIdfVectorizer::fit_transform(&docs, 2)))
    });
    let (_, vectors) = TfIdfVectorizer::fit_transform(&docs, 2);
    g.bench_function("single_link_1200_docs", |b| {
        b.iter(|| black_box(single_link(&vectors, 0.35)))
    });
    g.finish();
}

fn bench_outliers(c: &mut Criterion) {
    // 2,000 domains × 20 countries × 3 samples of compact observations.
    let domains: Vec<String> = (0..2000).map(|i| format!("d{i}.com")).collect();
    let countries: Vec<_> = geoblock_worldgen::country::luminati_countries()
        .into_iter()
        .take(20)
        .collect();
    let mut store = SampleStore::new(domains, countries.clone());
    for d in 0..2000usize {
        for ci in 0..20usize {
            for s in 0..3u32 {
                let blocked = d % 37 == 0 && ci < 4;
                store.push(
                    d,
                    ci,
                    Obs::Response {
                        status: if blocked { 403 } else { 200 },
                        len: if blocked { 1500 } else { 12_000 + (s * 301) },
                        page: blocked.then_some(PageKind::Cloudflare),
                    },
                );
            }
        }
    }
    let config = OutlierConfig {
        cutoff: 0.30,
        rep_countries: countries,
    };
    let mut g = c.benchmark_group("outliers");
    g.throughput(Throughput::Elements(store.total_samples() as u64));
    g.bench_function("extract_120k_samples", |b| {
        b.iter(|| black_box(extract_outliers(&store, &config)))
    });
    g.finish();
}

fn bench_sim_request(c: &mut Criterion) {
    let world = Arc::new(World::build(WorldConfig::tiny(42)));
    let net = SimInternet::new(world.clone());
    let name = world.population.spec(3).name.clone();
    let request = Request::get(format!("http://{name}/").parse().unwrap())
        .headers(&HeaderProfile::FullBrowser.headers());
    let client = ClientContext {
        ip: "5.9.1.1".into(),
        country: cc("US"),
        region: None,
        residential: true,
        seq_nonce: None,
    };
    let mut g = c.benchmark_group("netsim");
    g.throughput(Throughput::Elements(1));
    g.bench_function("request_real_page", |b| {
        b.iter(|| black_box(net.request(&request, &client)))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_fingerprints,
    bench_render,
    bench_clustering,
    bench_outliers,
    bench_sim_request
);
criterion_main!(kernels);
