//! Criterion benches timing the stages that regenerate the paper's tables:
//! the baseline probing pass, confirmation, population identification, the
//! table builders, and the Cloudflare rules snapshot (Table 9).
//!
//! `cargo run --release -p geoblock-bench --bin repro` regenerates the
//! *contents* of every table; these benches measure how long each stage
//! takes at quick scale.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use geoblock_analysis::{tables, Fortiguard};
use geoblock_bench::{Harness, Scale};
use geoblock_core::population::{identify_populations, PopulationProbe};
use geoblock_core::{ConfirmConfig, StudyConfig, StudySession};
use geoblock_netsim::VpsTransport;
use geoblock_worldgen::{cc, RulesSnapshot};

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime")
}

/// Baseline probing (the Table 4/5/6 data source): 150 domains × 12
/// countries × 3 samples through the full proxy/edge stack.
fn bench_baseline(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let fg = Fortiguard::new(&h.world);
    let domains: Vec<String> = fg.safe_toplist(200).into_iter().take(150).collect();
    let countries: Vec<_> = h.countries().into_iter().take(12).collect();
    let rep = countries[..4].to_vec();

    let mut g = c.benchmark_group("study");
    g.sample_size(10);
    g.bench_function("baseline_150x12x3", |b| {
        b.iter(|| {
            let mut session = StudySession::new(
                h.engine.clone(),
                StudyConfig::builder()
                    .countries(countries.clone())
                    .rep_countries(rep.clone())
                    .build()
                    .expect("bench study config is valid"),
            );
            rt.block_on(session.baseline(&domains))
        })
    });
    g.finish();
}

/// Population identification (§5.1.1 / Table 7-8 prerequisite).
fn bench_population(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let domains: Vec<String> = (1..=2_000)
        .map(|r| h.world.population.spec(r).name)
        .collect();

    let mut g = c.benchmark_group("population");
    g.sample_size(10);
    g.bench_function("identify_2000_domains", |b| {
        b.iter(|| {
            let vps = Arc::new(VpsTransport::new(h.internet.clone(), cc("US")));
            rt.block_on(identify_populations(
                vps,
                h.dns.as_ref(),
                &domains,
                &PopulationProbe {
                    country: cc("US"),
                    concurrency: 128,
                },
            ))
        })
    });
    g.finish();
}

/// Table builders over a realistic verdict set.
fn bench_table_builders(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let artifacts = rt.block_on(h.top10k());
    let fg = Fortiguard::new(&h.world);

    let mut g = c.benchmark_group("tables");
    g.bench_function("verdicts", |b| {
        b.iter(|| black_box(artifacts.result.verdicts(&ConfirmConfig::default())))
    });
    g.bench_function("table3_categories_by_cdn", |b| {
        b.iter(|| black_box(tables::table3(&artifacts.verdicts, &fg)))
    });
    g.bench_function("table4_categories", |b| {
        b.iter(|| {
            black_box(tables::table_categories(
                "Table 4",
                &artifacts.verdicts,
                &fg,
                &artifacts.safe_domains,
            ))
        })
    });
    g.bench_function("table5_tlds_countries", |b| {
        b.iter(|| black_box(tables::table5(&artifacts.verdicts)))
    });
    g.bench_function("table6_country_provider", |b| {
        b.iter(|| {
            black_box(tables::table_country_provider(
                "Table 6",
                &artifacts.verdicts,
            ))
        })
    });
    g.finish();
}

/// Table 9: snapshot generation and rate computation.
fn bench_table9(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloudflare_rules");
    g.sample_size(10);
    g.bench_function("generate_snapshot_2pct", |b| {
        b.iter(|| black_box(RulesSnapshot::generate(42, 0.02)))
    });
    let snapshot = RulesSnapshot::generate(42, 0.02);
    g.bench_function("table9_rates", |b| {
        b.iter(|| black_box(tables::table9(&snapshot)))
    });
    g.finish();
}

criterion_group!(
    tables_benches,
    bench_baseline,
    bench_population,
    bench_table_builders,
    bench_table9
);
criterion_main!(tables_benches);
