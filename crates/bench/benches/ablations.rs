//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `ablation_length_metric` — percentage vs raw-byte length cutoffs
//!   (§4.1.5: "raw length differences is not as effective");
//! * `ablation_cutoff_sweep` — recall across 5%–50% cutoffs (Figure 2's
//!   "relatively arbitrary" observation);
//! * `ablation_headers` — Akamai false-positive rate per header profile
//!   (§3.2: "merely setting User-Agent is insufficient");
//! * `ablation_confirmation` — false negatives vs initial sample size
//!   (the 3/20/80% design of §4.1.4);
//! * `ablation_clustering` — 1-gram vs 1+2-gram features and the
//!   single-link threshold sweep;
//! * `ablation_fault_hardening` — naive (no-retry) vs hardened probing
//!   under the standard fault plan (§3.2's reliability machinery);
//! * `ablation_streaming` — chunked barrier-batch vs the streaming probe
//!   pipeline under a straggler-heavy fault plan: wall-clock and peak
//!   in-flight targets.
//!
//! Each bench `eprintln!`s its measured ablation result once during setup,
//! so `cargo bench` output doubles as the ablation report.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use geoblock_analysis::sampling::false_negative_experiment;
use geoblock_bench::{Harness, Scale};
use geoblock_blockpages::{render, FingerprintSet, PageKind, PageParams};
use geoblock_core::exploration::sweep;
use geoblock_core::outliers::is_outlier;
use geoblock_http::{HeaderProfile, Url};
use geoblock_lumscan::RetryPolicy;
use geoblock_netsim::VpsTransport;
use geoblock_proxynet::FaultPlan;
use geoblock_textmine::{single_link, TfIdfVectorizer};
use geoblock_worldgen::cc;

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("tokio runtime")
}

/// Percentage vs raw-byte cutoffs for the outlier rule.
fn ablation_length_metric(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let artifacts = rt.block_on(h.top10k());
    let report = &artifacts.outliers;

    // Evaluate recall under both rules from the stored size series.
    let pct_recall = |cutoff: f64| {
        let (mut rec, mut act) = (0u32, 0u32);
        for (diff, blocked) in &report.size_diffs {
            if *blocked {
                act += 1;
                if *diff as f64 >= cutoff {
                    rec += 1;
                }
            }
        }
        rec as f64 / act.max(1) as f64
    };
    // Raw rule: a fixed byte difference. Long pages always pass, tiny
    // pages never do — which is why the paper rejects it.
    let raw_recall = |bytes: f64| {
        let (mut rec, mut act) = (0u32, 0u32);
        for (diff, blocked) in &report.size_diffs {
            if *blocked {
                act += 1;
                // diff = 1 - len/rep ⇒ rep - len = diff × rep; approximate
                // rep with the corpus median representative.
                let rep = 12_000.0;
                if (*diff as f64) * rep >= bytes {
                    rec += 1;
                }
            }
        }
        rec as f64 / act.max(1) as f64
    };
    eprintln!("\nablation_length_metric (recall of block pages):");
    eprintln!(
        "  percent cutoff 30%      : {:.1}%",
        100.0 * pct_recall(0.30)
    );
    eprintln!(
        "  raw cutoff 4,000 bytes  : {:.1}%",
        100.0 * raw_recall(4_000.0)
    );
    eprintln!(
        "  raw cutoff 10,000 bytes : {:.1}%",
        100.0 * raw_recall(10_000.0)
    );

    c.bench_function("ablation_length_metric", |b| {
        b.iter(|| black_box((pct_recall(0.30), raw_recall(4_000.0))))
    });
}

/// Recall across cutoffs 5%–50%.
fn ablation_cutoff_sweep(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(43));
    let artifacts = rt.block_on(h.top10k());
    let report = artifacts.outliers;

    eprintln!("\nablation_cutoff_sweep (block-page recall by cutoff):");
    for cutoff in [0.05, 0.10, 0.20, 0.30, 0.40, 0.50] {
        let (mut rec, mut act) = (0u32, 0u32);
        for (diff, blocked) in &report.size_diffs {
            if *blocked {
                act += 1;
                if *diff as f64 >= cutoff {
                    rec += 1;
                }
            }
        }
        eprintln!(
            "  cutoff {:>4.0}% : recall {:.1}%",
            cutoff * 100.0,
            100.0 * rec as f64 / act.max(1) as f64
        );
    }

    c.bench_function("ablation_cutoff_sweep", |b| {
        b.iter(|| {
            let mut total = 0u32;
            for cutoff in [0.05f64, 0.10, 0.20, 0.30, 0.40, 0.50] {
                for (diff, blocked) in &report.size_diffs {
                    if *blocked
                        && is_outlier(((1.0 - *diff as f64) * 10_000.0) as u32, 10_000, cutoff)
                    {
                        total += 1;
                    }
                }
            }
            black_box(total)
        })
    });
}

/// Bot-detection false positives per header profile (VPS sweep of the
/// NS-identified Akamai customers from a US control box).
fn ablation_headers(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let domains: Vec<String> = (1..=4_000)
        .map(|r| h.world.population.spec(r))
        .filter(|s| s.uses(geoblock_blockpages::Provider::Akamai))
        .map(|s| s.name)
        .collect();
    eprintln!(
        "\nablation_headers ({} Akamai customers from a US VPS):",
        domains.len()
    );
    let mut rates = Vec::new();
    for profile in [
        HeaderProfile::Bare,
        HeaderProfile::Curl,
        HeaderProfile::ZgrabUserAgentOnly,
        HeaderProfile::FullBrowser,
    ] {
        let vps = Arc::new(VpsTransport::new(h.internet.clone(), cc("US")));
        let result = rt.block_on(sweep(
            vps,
            cc("US"),
            &domains,
            profile,
            &[PageKind::Akamai],
            128,
        ));
        let rate = result.flagged.len() as f64 / domains.len().max(1) as f64;
        eprintln!(
            "  {profile:?}: {:.1}% of domains serve the Akamai denial page",
            100.0 * rate
        );
        rates.push(rate);
    }
    assert!(
        rates[0] >= rates[3],
        "bare headers must trip more detection than a full browser"
    );

    c.bench_function("ablation_headers_sweep", |b| {
        b.iter(|| {
            let vps = Arc::new(VpsTransport::new(h.internet.clone(), cc("US")));
            rt.block_on(sweep(
                vps,
                cc("US"),
                &domains,
                HeaderProfile::ZgrabUserAgentOnly,
                &[PageKind::Akamai],
                128,
            ))
        })
    });
}

/// False-negative rate of the baseline pass vs initial sample size.
fn ablation_confirmation(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let artifacts = rt.block_on(h.top10k());
    let (store, pairs) = rt.block_on(h.hundred_sample_populations(&artifacts));
    let sizes = [1usize, 2, 3, 5, 10, 20];
    let fns = false_negative_experiment(&store, &pairs, &sizes, 500, 7);
    eprintln!("\nablation_confirmation (baseline FN rate by sample count):");
    for (size, rate) in &fns {
        eprintln!("  {size:>2} samples : {:.2}% missed", 100.0 * rate);
    }

    c.bench_function("ablation_confirmation", |b| {
        b.iter(|| black_box(false_negative_experiment(&store, &pairs, &sizes, 500, 7)))
    });
}

/// Unigram vs 1+2-gram features and threshold sweep for discovery.
fn ablation_clustering(c: &mut Criterion) {
    // Corpus: 3 block-page families + near-identical Cloudflare/Baidu pair
    // (the family bigrams are needed to separate).
    let mut docs = Vec::new();
    for i in 0..250u64 {
        for kind in [
            PageKind::Cloudflare,
            PageKind::Baidu,
            PageKind::Akamai,
            PageKind::Incapsula,
        ] {
            let params = PageParams::new(&format!("d{i}.com"), "Iran", "5.0.0.1", i);
            docs.push(
                render(kind, &params)
                    .finish(Url::http("x.com"))
                    .body
                    .as_text()
                    .to_string(),
            );
        }
    }
    let truth = FingerprintSet::paper();
    let purity = |bigrams: bool, tau: f32| {
        let (_, vectors) = TfIdfVectorizer::fit_transform_opts(&docs, 2, bigrams);
        let clustering = single_link(&vectors, tau);
        // Weighted purity by modal fingerprint.
        let mut pure = 0usize;
        for members in &clustering.members {
            let mut votes = std::collections::HashMap::new();
            for &m in members {
                let label = truth.classify_text(&docs[m as usize]).map(|o| o.kind);
                *votes.entry(label).or_insert(0usize) += 1;
            }
            pure += votes.values().max().copied().unwrap_or(0);
        }
        (clustering.len(), pure as f64 / docs.len() as f64)
    };
    eprintln!("\nablation_clustering (clusters / purity):");
    for tau in [0.15f32, 0.25, 0.35, 0.50] {
        let (c1, p1) = purity(false, tau);
        let (c2, p2) = purity(true, tau);
        eprintln!(
            "  tau {tau:.2}: 1-gram {c1} clusters ({:.1}% pure) | 1+2-gram {c2} clusters ({:.1}% pure)",
            100.0 * p1,
            100.0 * p2
        );
    }

    let mut g = c.benchmark_group("ablation_clustering");
    g.sample_size(10);
    g.bench_function("unigram", |b| b.iter(|| black_box(purity(false, 0.35))));
    g.bench_function("bigram", |b| b.iter(|| black_box(purity(true, 0.35))));
    g.finish();
}

/// Naive vs hardened probing under injected faults: what the retry /
/// breaker / enforcement stack buys, and what it costs in attempts.
fn ablation_fault_hardening(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let r = rt.block_on(h.reliability(FaultPlan::standard(7)));
    eprintln!("\nablation_fault_hardening (standard fault plan, seed 7):");
    eprintln!(
        "  clean ceiling : {}/{} responded",
        r.clean.responded, r.clean.total
    );
    eprintln!(
        "  naive         : {}/{} responded ({} lost to faults)",
        r.naive.responded,
        r.naive.total,
        r.naive_losses()
    );
    eprintln!(
        "  hardened      : {}/{} responded, {:.1}% of losses recovered, {} retried probes, {} exits quarantined",
        r.hardened.responded,
        r.hardened.total,
        100.0 * r.recovered_share(),
        r.hardened.recovered,
        r.hardened.quarantined_exits
    );

    let mut g = c.benchmark_group("ablation_fault_hardening");
    g.sample_size(10);
    g.bench_function("naive", |b| {
        b.iter(|| rt.block_on(h.reliability_leg(FaultPlan::standard(7), RetryPolicy::none())))
    });
    g.bench_function("hardened", |b| {
        b.iter(|| {
            rt.block_on(h.reliability_leg(FaultPlan::standard(7), RetryPolicy::with_max_retries(4)))
        })
    });
    g.finish();
}

/// Chunked barrier-batch vs the streaming pipeline under stragglers: the
/// batch leg pays every chunk's slowest stall chain at the barrier, the
/// streaming leg overlaps stalls across the whole run in O(concurrency)
/// memory.
fn ablation_streaming(c: &mut Criterion) {
    let rt = runtime();
    let h = Harness::new(Scale::quick(42));
    let s = rt.block_on(h.streaming(FaultPlan::straggler(11)));
    eprintln!("\nablation_streaming (straggler fault plan, seed 11):");
    eprintln!(
        "  batch (chunks of {:>3}) : {:.0?} wall, {:.0} probes/s, {} targets held per chunk",
        s.chunk,
        s.batch_wall,
        s.throughput(s.batch_wall),
        s.chunk
    );
    eprintln!(
        "  streaming             : {:.0?} wall, {:.0} probes/s, peak {} in-flight (cap {})",
        s.stream_wall,
        s.throughput(s.stream_wall),
        s.peak_in_flight,
        s.concurrency
    );
    eprintln!("  streaming speedup     : {:.2}×", s.speedup());
    assert!(s.peak_in_flight <= s.concurrency);

    let mut g = c.benchmark_group("ablation_streaming");
    g.sample_size(10);
    g.bench_function("batch_vs_stream", |b| {
        b.iter(|| rt.block_on(h.streaming(FaultPlan::straggler(11))))
    });
    g.finish();
}

criterion_group!(
    ablations,
    ablation_length_metric,
    ablation_cutoff_sweep,
    ablation_headers,
    ablation_confirmation,
    ablation_clustering,
    ablation_fault_hardening,
    ablation_streaming
);
criterion_main!(ablations);
