//! The reproduction harness: one object that stands up the full simulated
//! stack and runs every experiment of the paper at a configurable scale.
//!
//! The `repro` binary drives [`Harness`] end to end and prints every table
//! and figure with paper-vs-measured columns; the Criterion benches in
//! `benches/` time the computational kernels and the experiment stages.

pub mod harness;
pub mod report;

pub use harness::{Harness, Scale};
