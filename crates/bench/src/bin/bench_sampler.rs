//! The sampling-policy ablation, emitted as a committable JSON baseline.
//!
//! ```text
//! cargo run --release -p geoblock-bench --bin bench_sampler \
//!     [-- --smoke] [OUTPUT.json]
//! ```
//!
//! Fixed vs adaptive at **equal probe budget**, over a deterministic
//! synthetic world (no network, no async runtime): domains are
//! adjudicated in rank order, each through the real
//! [`SamplingPolicy`] round loop, drawing samples from a seeded pure
//! function of `(domain, country, sample)` — so both policies see the
//! *identical* sample sequence on any pair they probe to the same depth.
//! The run stops when the budget cannot fund another domain's opening
//! grid round.
//!
//! Three claims are asserted in every mode, not just reported:
//!
//! * **coverage** — [`AdaptiveBandit`] adjudicates ≥2× the domains
//!   [`PaperExact`] covers on the same budget;
//! * **agreement** — over the domains both policies covered, the verdict
//!   sets are identical (the early-stopped probes were spent on pairs
//!   that never had a verdict to give);
//! * **floor** — `geoblock_simtest::check_flagged_floor` proves no pair
//!   that ever showed a blocking signal was judged on fewer than the
//!   full `baseline + confirm` samples.
//!
//! The world mixes three pair classes: always-blocked (explicit block
//! page every sample), flaky (blocks ~3/8 of samples — flagged and
//! floored, but never near the 80% agreement bar), and clean. `--smoke`
//! runs a reduced world and asserts the three claims without writing
//! the baseline.

use std::collections::BTreeMap;
use std::time::Instant;

use geoblock_blockpages::PageKind;
use geoblock_core::confirm::flagged_explicit_pairs;
use geoblock_core::{
    AdaptiveBandit, BodyArchive, EvidenceState, Obs, PaperExact, ProbeBudget, SampleRequest,
    SampleStore, SamplingPolicy, StudyConfig, StudyResult,
};
use geoblock_simtest::check_flagged_floor;
use geoblock_worldgen::{cc, CountryCode};

/// splitmix-style avalanche over the probe coordinates: every sample is a
/// pure function of `(seed, domain, country, sample)`, so a pair probed to
/// the same depth by different policies yields the identical evidence.
fn mix(seed: u64, d: u64, c: u64, k: u64) -> u64 {
    let mut h = seed
        ^ d.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ c.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ k.wrapping_mul(0x1656_67B1_9E37_79F9);
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

#[derive(Clone, Copy, PartialEq)]
enum PairClass {
    /// Explicit block page on every sample (2% of pairs).
    Blocked,
    /// Blocks ~3/8 of samples: flagged and floored, but far below the 80%
    /// agreement bar, so neither policy certifies a verdict (4% of pairs).
    Flaky,
    /// Content every time.
    Clean,
}

fn class_of(seed: u64, d: usize, c: usize) -> PairClass {
    match mix(seed, d as u64, c as u64, u64::MAX) % 1000 {
        0..=19 => PairClass::Blocked,
        20..=59 => PairClass::Flaky,
        _ => PairClass::Clean,
    }
}

fn world_obs(seed: u64, d: usize, c: usize, k: usize) -> Obs {
    let blocked = match class_of(seed, d, c) {
        PairClass::Blocked => true,
        PairClass::Flaky => mix(seed, d as u64, c as u64, k as u64) & 7 < 3,
        PairClass::Clean => false,
    };
    if blocked {
        Obs::Response {
            status: 403,
            len: 1500,
            page: Some(PageKind::Cloudflare),
        }
    } else {
        // Constant length: a clean pair's samples must stay unanimous.
        Obs::Response {
            status: 200,
            len: 9000,
            page: None,
        }
    }
}

fn panel() -> Vec<CountryCode> {
    [
        "IR", "SY", "CN", "RU", "US", "DE", "FR", "GB", "BR", "IN", "JP", "KR", "TR", "SA", "EG",
        "NG", "ZA", "AU", "CA", "MX",
    ]
    .iter()
    .map(|c| cc(c))
    .collect()
}

/// Drive one domain through the policy's round loop against the synthetic
/// world, charging `budget`. Returns `None` — without probing — when the
/// budget cannot fund the domain's opening grid round (how a run ends);
/// pair rounds always run, mirroring the policies' own semantics (the
/// adaptive floor, and PaperExact's unconditional confirmation, both
/// spend past a cap by design).
fn adjudicate_domain(
    seed: u64,
    d: usize,
    countries: &[CountryCode],
    config: &StudyConfig,
    policy: &mut dyn SamplingPolicy,
    budget: &mut ProbeBudget,
) -> Option<StudyResult> {
    let mut store = SampleStore::new(vec![format!("site-{d}.example")], countries.to_vec());
    for round in 0.. {
        let request = {
            let evidence = EvidenceState::new(&store, config, round);
            policy.next_round(&evidence, budget)
        };
        if request.is_done() {
            break;
        }
        let probes = request.probes(1, countries.len()) as u64;
        if matches!(request, SampleRequest::Grid { .. })
            && budget.remaining().is_some_and(|r| r < probes)
        {
            return None;
        }
        match &request {
            SampleRequest::Grid { samples } => {
                for c in 0..countries.len() {
                    for _ in 0..*samples {
                        let k = store.cell(0, c).len();
                        store.push(0, c, world_obs(seed, d, c, k));
                    }
                }
            }
            SampleRequest::Pairs { pairs, samples } => {
                for &(pd, c) in pairs {
                    for _ in 0..*samples {
                        let k = store.cell(pd, c).len();
                        store.push(pd, c, world_obs(seed, d, c, k));
                    }
                }
            }
            SampleRequest::Done => unreachable!("is_done handled above"),
        }
        budget.charge(round, probes);
        assert!(round < 64, "policy failed to terminate on domain {d}");
    }
    Some(StudyResult {
        store,
        archive: BodyArchive::new(),
    })
}

struct RunStats {
    name: &'static str,
    domains_covered: usize,
    probes_spent: u64,
    flagged_pairs: usize,
    /// (domain index, country) → (kind, block_count, total).
    verdicts: BTreeMap<(usize, String), (String, u32, u32)>,
    floor_violations: usize,
    elapsed_ns: u128,
}

impl RunStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"policy\": \"{}\", \"domains_covered\": {}, \"probes_spent\": {}, \
             \"flagged_pairs\": {}, \"verdicts\": {}, \"floor_violations\": {}, \
             \"elapsed_ms\": {:.1}, \"probes_per_domain\": {:.1}}}",
            self.name,
            self.domains_covered,
            self.probes_spent,
            self.flagged_pairs,
            self.verdicts.len(),
            self.floor_violations,
            self.elapsed_ns as f64 / 1e6,
            self.probes_spent as f64 / self.domains_covered.max(1) as f64,
        )
    }
}

fn run_policy(
    name: &'static str,
    make: &dyn Fn() -> Box<dyn SamplingPolicy>,
    seed: u64,
    pool: usize,
    cap: u64,
    countries: &[CountryCode],
    config: &StudyConfig,
) -> RunStats {
    let mut budget = ProbeBudget::capped(cap);
    let mut stats = RunStats {
        name,
        domains_covered: 0,
        probes_spent: 0,
        flagged_pairs: 0,
        verdicts: BTreeMap::new(),
        floor_violations: 0,
        elapsed_ns: 0,
    };
    let start = Instant::now();
    for d in 0..pool {
        if budget.exhausted() {
            break;
        }
        let mut policy = make();
        let Some(result) =
            adjudicate_domain(seed, d, countries, config, policy.as_mut(), &mut budget)
        else {
            break;
        };
        stats.domains_covered += 1;
        stats.flagged_pairs += flagged_explicit_pairs(&result.store).len();
        stats.floor_violations += check_flagged_floor(&result, config).len();
        for v in result.verdicts(&config.confirm) {
            stats.verdicts.insert(
                (d, v.country.to_string()),
                (format!("{:?}", v.kind), v.block_count, v.total),
            );
        }
        stats.elapsed_ns = start.elapsed().as_nanos();
    }
    stats.probes_spent = budget.spent;
    stats
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_sampler.json".to_string());
    let seed: u64 = std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let countries = panel();
    let config = StudyConfig::new(countries.clone(), vec![cc("IR"), cc("SY")]);
    let (pool, cap) = if smoke { (600, 8_200) } else { (6_000, 82_000) };

    let fixed = run_policy(
        "paper-exact",
        &|| Box::new(PaperExact),
        seed,
        pool,
        cap,
        &countries,
        &config,
    );
    let adaptive = run_policy(
        "adaptive-bandit",
        &|| Box::new(AdaptiveBandit::default()),
        seed,
        pool,
        cap,
        &countries,
        &config,
    );
    for stats in [&fixed, &adaptive] {
        println!(
            "{:<16} {:>5} domains  {:>8} probes  {:>4} flagged  {:>3} verdicts  \
             {:>2} floor violations  {:>8.1} ms",
            stats.name,
            stats.domains_covered,
            stats.probes_spent,
            stats.flagged_pairs,
            stats.verdicts.len(),
            stats.floor_violations,
            stats.elapsed_ns as f64 / 1e6,
        );
    }

    // Claim 1: ≥2× coverage at equal budget.
    let ratio = adaptive.domains_covered as f64 / fixed.domains_covered.max(1) as f64;
    assert!(
        ratio >= 2.0,
        "adaptive covered only {ratio:.2}x the fixed protocol's domains"
    );

    // Claim 2: identical verdicts over the domains both policies covered.
    let shared = fixed.domains_covered.min(adaptive.domains_covered);
    let restrict = |s: &RunStats| -> BTreeMap<(usize, String), (String, u32, u32)> {
        s.verdicts
            .iter()
            .filter(|((d, _), _)| *d < shared)
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    };
    let (fixed_shared, adaptive_shared) = (restrict(&fixed), restrict(&adaptive));
    assert_eq!(
        fixed_shared, adaptive_shared,
        "verdicts diverge on the shared {shared} domains"
    );

    // Claim 3: the adaptive policy never under-sampled a flagged pair.
    assert_eq!(
        adaptive.floor_violations, 0,
        "adaptive run broke the 23-sample floor"
    );

    println!(
        "coverage {ratio:.2}x, {} shared verdicts identical, floor holds",
        fixed_shared.len()
    );
    if smoke {
        println!("smoke ok");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"sampler_ablation\",\n  \"measured\": true,\n  \
         \"seed\": {seed},\n  \"budget_probes\": {cap},\n  \
         \"world\": {{\"domain_pool\": {pool}, \"countries\": {}, \
         \"blocked_pair_rate\": 0.02, \"flaky_pair_rate\": 0.04}},\n  \
         \"coverage_ratio\": {ratio:.2},\n  \
         \"shared_domains\": {shared},\n  \
         \"shared_verdicts_identical\": true,\n  \
         \"note\": \"equal-budget fixed-vs-adaptive ablation; regenerate with: \
         cargo run --release -p geoblock-bench --bin bench_sampler\",\n  \
         \"rows\": [\n    {},\n    {}\n  ]\n}}\n",
        countries.len(),
        fixed.to_json(),
        adaptive.to_json(),
    );
    std::fs::write(&out, &json).expect("write baseline");
    println!("wrote {out}");
}
