//! The classifier-kernel ablation, emitted as a committable JSON baseline.
//!
//! ```text
//! cargo run --release -p geoblock-bench --bin bench_classifier \
//!     [-- --smoke] [OUTPUT.json]
//! ```
//!
//! Demonstrates the two claims of the zero-copy refactor on each body
//! class:
//!
//! * **single pass** — `CompiledFingerprintSet::classify_bytes` (one
//!   automaton scan) vs the naive `FingerprintSet::classify_bytes`
//!   (N marker substring searches per body);
//! * **zero copy** — matching raw bytes vs the old pipeline's per-match
//!   lossy UTF-8 materialisation (`String::from_utf8_lossy(..).into_owned()`
//!   before every classification).
//!
//! Body classes cover a rendered block page (small, matching), ordinary
//! content at two sizes (the no-match hot path, where the naive matcher
//! must exhaust every marker), and a non-UTF-8 binary body with an
//! embedded marker (where the lossy copy also has to transcode).
//!
//! `--smoke` runs a reduced iteration count and asserts the differential
//! property (compiled ≡ naive on every body) without writing the baseline
//! — the CI hook that keeps the kernel honest. This binary is fully
//! synchronous: no async runtime, no RNG crate (a fixed LCG), and no JSON
//! library at runtime, so it runs identically under the offline sandbox's
//! stubbed dependency set.

use std::time::Instant;

use geoblock_blockpages::{render, CompiledFingerprintSet, FingerprintSet, PageKind, PageParams};
use geoblock_http::Url;

/// Deterministic byte stream (Numerical Recipes LCG) — keeps bodies
/// identical across runs without an RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn next_byte(&mut self) -> u8 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u8
    }
}

struct BodyClass {
    name: &'static str,
    body: Vec<u8>,
    expect: Option<PageKind>,
}

fn body_classes(seed: u64) -> Vec<BodyClass> {
    let params = PageParams::new("shop.example.com", "Syria", "5.0.0.1", seed);
    let block_small = render(PageKind::Cloudflare, &params)
        .finish(Url::http("shop.example.com"))
        .body
        .into_bytes()
        .as_ref()
        .to_vec();

    // Ordinary HTML that matches nothing: the worst case for the naive
    // matcher, which must run every marker search to completion.
    let paragraph = b"<p>Daily deals on everything you can imagine, shipped \
                      worldwide from our warehouses. No restrictions apply \
                      to this perfectly ordinary storefront page.</p>\n";
    let content = |target: usize| -> Vec<u8> {
        let mut b = b"<html><head><title>Example Shop</title></head><body>".to_vec();
        while b.len() < target {
            b.extend_from_slice(paragraph);
        }
        b.extend_from_slice(b"</body></html>");
        b
    };
    let content_medium = content(64 * 1024);
    let content_large = content(512 * 1024);

    // Invalid UTF-8 throughout, with one real marker embedded: classifies
    // under byte matching, and forces the copy path to transcode.
    let mut lcg = Lcg(seed | 1);
    let mut binary: Vec<u8> = (0..64 * 1024).map(|_| lcg.next_byte()).collect();
    let at = binary.len() / 2;
    binary.splice(at..at, b"Incapsula incident ID".iter().copied());

    vec![
        BodyClass {
            name: "block_small",
            body: block_small,
            expect: Some(PageKind::Cloudflare),
        },
        BodyClass {
            name: "content_medium",
            body: content_medium,
            expect: None,
        },
        BodyClass {
            name: "content_large",
            body: content_large,
            expect: None,
        },
        BodyClass {
            name: "binary_nonutf8",
            body: binary,
            expect: Some(PageKind::Incapsula),
        },
    ]
}

/// Time `f` over `iters` calls, returning mean ns/op.
fn time_ns(iters: u64, mut f: impl FnMut() -> Option<PageKind>) -> f64 {
    // One warm-up call keeps first-touch page faults out of the window.
    let mut guard = f();
    let start = Instant::now();
    for _ in 0..iters {
        guard = f();
    }
    let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(guard);
    elapsed
}

struct Row {
    class: &'static str,
    bytes: usize,
    naive_copy_ns: f64,
    naive_bytes_ns: f64,
    compiled_copy_ns: f64,
    compiled_bytes_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_copy_ns / self.compiled_bytes_ns.max(1e-9)
    }

    fn throughput_mb_s(&self) -> f64 {
        self.bytes as f64 / self.compiled_bytes_ns.max(1e-9) * 1e3
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"class\": \"{}\", \"bytes\": {}, \
             \"naive_utf8_copy_ns\": {:.1}, \"naive_bytes_ns\": {:.1}, \
             \"compiled_utf8_copy_ns\": {:.1}, \"compiled_bytes_ns\": {:.1}, \
             \"speedup_vs_old_path\": {:.2}, \"compiled_throughput_mb_s\": {:.1}}}",
            self.class,
            self.bytes,
            self.naive_copy_ns,
            self.naive_bytes_ns,
            self.compiled_copy_ns,
            self.compiled_bytes_ns,
            self.speedup(),
            self.throughput_mb_s(),
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_classifier.json".to_string());
    let seed: u64 = std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let naive = FingerprintSet::paper();
    let compiled = CompiledFingerprintSet::compile(&naive);
    let classes = body_classes(seed);

    // The differential check runs in every mode: the ablation is
    // meaningless if the two matchers disagree.
    for class in &classes {
        let n = naive.classify_bytes(&class.body).map(|o| o.kind);
        let c = compiled.classify_bytes(&class.body).map(|o| o.kind);
        assert_eq!(n, c, "matchers disagree on {}", class.name);
        assert_eq!(c, class.expect, "unexpected verdict on {}", class.name);
    }

    let mut rows = Vec::new();
    for class in &classes {
        // Size-scaled iteration counts keep wall time flat across classes.
        let budget: u64 = if smoke { 1 << 22 } else { 1 << 28 };
        let iters = (budget / class.body.len() as u64).clamp(4, 20_000);
        let body = &class.body[..];
        let row = Row {
            class: class.name,
            bytes: body.len(),
            naive_copy_ns: time_ns(iters, || {
                // The pre-refactor pipeline: lossy-materialise, then N
                // per-marker rescans.
                let text = String::from_utf8_lossy(body).into_owned();
                naive.classify_text(&text).map(|o| o.kind)
            }),
            naive_bytes_ns: time_ns(iters, || naive.classify_bytes(body).map(|o| o.kind)),
            compiled_copy_ns: time_ns(iters, || {
                let text = String::from_utf8_lossy(body).into_owned();
                compiled.classify_bytes(text.as_bytes()).map(|o| o.kind)
            }),
            compiled_bytes_ns: time_ns(iters, || compiled.classify_bytes(body).map(|o| o.kind)),
        };
        println!(
            "{:<16} {:>8} B  naive+copy {:>12.0} ns  naive {:>12.0} ns  \
             compiled+copy {:>12.0} ns  compiled {:>12.0} ns  ({:.1}x, {:.0} MB/s)",
            row.class,
            row.bytes,
            row.naive_copy_ns,
            row.naive_bytes_ns,
            row.compiled_copy_ns,
            row.compiled_bytes_ns,
            row.speedup(),
            row.throughput_mb_s(),
        );
        rows.push(row);
    }

    if smoke {
        println!(
            "smoke ok: compiled ≡ naive on all {} body classes",
            classes.len()
        );
        return;
    }

    let row_json: Vec<String> = rows.iter().map(Row::to_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"classifier_kernel\",\n  \"measured\": true,\n  \
         \"seed\": {seed},\n  \"patterns\": {},\n  \"fingerprints\": {},\n  \
         \"note\": \"ns/op, mean over size-scaled iterations; regenerate with: \
         cargo run --release -p geoblock-bench --bin bench_classifier\",\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        compiled.pattern_count(),
        naive.iter().count(),
        row_json.join(",\n    "),
    );
    std::fs::write(&out, &json).expect("write baseline");
    println!("wrote {out}");
}
