//! The monitoring query-layer benchmark: commit latency and cached-query
//! latency under a dashboard polling workload, emitted as a committable
//! JSON baseline.
//!
//! ```text
//! cargo run --release -p geoblock-bench --bin bench_monitor \
//!     [-- --smoke] [OUTPUT.json]
//! ```
//!
//! Synthesizes a deterministic drifting timeline — the same policy
//! function the monitor's DST tests scan: every third site blocks IR
//! throughout, every fourth also blocks SY until day 2 (then retreats),
//! and sites ≡ 1 (mod 5) start blocking IR from day 2 — and commits one
//! [`ScanSnapshot`] per scan to a [`QueryService`], timing each
//! build-and-publish. Between commits it replays a polling workload
//! against the service — the same dashboard keys queried round after
//! round, the way a monitoring UI refreshes. Reports query p50/p95
//! latency and the cache hit rate, and asserts the hit rate stays ≥ 0.9:
//! within one generation every repeat of a key must be served from
//! cache.
//!
//! The query service's async surface never actually awaits — every
//! future is ready on its first poll — so the whole benchmark runs on a
//! one-poll no-op-waker executor: no async runtime, and identical
//! behaviour under the offline sandbox's stubbed dependency set.
//!
//! `--smoke` runs a reduced scale and asserts the same invariants without
//! rewriting the committed `BENCH_monitor.json` baseline.

use std::future::Future;
use std::pin::pin;
use std::task::{Context, Poll, Waker};
use std::time::Instant;

use geoblock_blockpages::PageKind;
use geoblock_core::{diff_studies, GeoblockVerdict};
use geoblock_monitor::{QueryService, ScanMode, ScanSnapshot};
use geoblock_worldgen::{cc, CountryCode};

/// Resolve a query future on its first poll. [`QueryService`]'s methods
/// never await anything (their locks are synchronous), so a ready-on-first
/// -poll executor is exact, not an approximation.
fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    match pin!(fut).poll(&mut cx) {
        Poll::Ready(out) => out,
        Poll::Pending => unreachable!("query futures are ready on first poll"),
    }
}

/// The drift policy, a pure function of (site index, day, country).
fn blocks(i: usize, day: u32, country: CountryCode) -> bool {
    (i.is_multiple_of(3) && country == cc("IR"))
        || (i.is_multiple_of(4) && day < 2 && country == cc("SY"))
        || (i % 5 == 1 && day >= 2 && country == cc("IR"))
}

/// One scan's confirmed verdicts under the drift policy, in study order.
fn scan_verdicts(domains: &[String], day: u32) -> Vec<GeoblockVerdict> {
    let mut verdicts = Vec::new();
    for (i, domain) in domains.iter().enumerate() {
        for country in [cc("IR"), cc("SY"), cc("US")] {
            if blocks(i, day, country) {
                verdicts.push(GeoblockVerdict {
                    domain: domain.clone(),
                    country,
                    kind: PageKind::Cloudflare,
                    block_count: 23,
                    total: 23,
                });
            }
        }
    }
    verdicts
}

struct Workload {
    scans: u32,
    domains: usize,
    /// Polling rounds per committed scan; each round touches every key.
    rounds: usize,
}

struct Measured {
    scan_wall_ms: Vec<f64>,
    latencies_ns: Vec<u64>,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1e3
}

fn run(w: &Workload) -> Measured {
    let domains: Vec<String> = (0..w.domains)
        .map(|i| format!("site-{i}.example"))
        .collect();
    let query = QueryService::new();

    // The dashboard's working set: a handful of domain panels, both
    // censor-side country views, and the latest-changes feed.
    let panel: Vec<String> = domains.iter().take(6).cloned().collect();
    let mut timeline: Vec<ScanSnapshot> = Vec::new();
    let mut scan_wall_ms = Vec::new();
    let mut latencies_ns: Vec<u64> = Vec::new();

    for scan in 0..w.scans {
        // The commit path: derive the scan's verdicts, diff against the
        // previous snapshot, hash, append, publish — everything a
        // committed scan does downstream of the probe pass.
        let t = Instant::now();
        let verdicts = scan_verdicts(&domains, scan);
        let previous: &[GeoblockVerdict] = timeline
            .last()
            .map(|s| s.verdicts.as_slice())
            .unwrap_or_default();
        let diff = diff_studies(previous, &verdicts);
        timeline.push(ScanSnapshot::new(
            scan,
            scan,
            ScanMode::Full,
            verdicts,
            diff,
        ));
        block_on(query.publish(&timeline));
        scan_wall_ms.push(t.elapsed().as_secs_f64() * 1e3);

        // The polling workload: every key, round after round, against the
        // freshly published generation.
        for _ in 0..w.rounds {
            for domain in &panel {
                let t = Instant::now();
                let history = block_on(query.domain_history(domain));
                latencies_ns.push(t.elapsed().as_nanos() as u64);
                assert_eq!(history.scans.len(), scan as usize + 1);
            }
            for country in [cc("IR"), cc("SY")] {
                let t = Instant::now();
                let _ = block_on(query.country_dashboard(country));
                latencies_ns.push(t.elapsed().as_nanos() as u64);
            }
            let t = Instant::now();
            let feed = block_on(query.changes_since(scan));
            latencies_ns.push(t.elapsed().as_nanos() as u64);
            assert!(feed.since == scan);
        }
    }

    let stats = query.cache_stats();
    latencies_ns.sort_unstable();
    Measured {
        scan_wall_ms,
        latencies_ns,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
    }
}

fn to_json(w: &Workload, m: &Measured) -> String {
    let walls: Vec<String> = m.scan_wall_ms.iter().map(|ms| format!("{ms:.3}")).collect();
    format!(
        "{{\n  \"bench\": \"monitor_query\",\n  \"measured\": true,\n  \
         \"domains\": {},\n  \"scans\": {},\n  \"polling_rounds_per_scan\": {},\n  \
         \"scan_wall_ms\": [{}],\n  \"scan_wall_total_ms\": {:.3},\n  \
         \"queries\": {},\n  \"query_p50_us\": {:.3},\n  \"query_p95_us\": {:.3},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4}\n}}\n",
        w.domains,
        w.scans,
        w.rounds,
        walls.join(", "),
        m.scan_wall_ms.iter().sum::<f64>(),
        m.latencies_ns.len(),
        percentile(&m.latencies_ns, 0.50),
        percentile(&m.latencies_ns, 0.95),
        m.hits,
        m.misses,
        m.hit_rate,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_monitor.json".to_string());

    let workload = if smoke {
        Workload {
            scans: 3,
            domains: 12,
            rounds: 20,
        }
    } else {
        Workload {
            scans: 6,
            domains: 48,
            rounds: 50,
        }
    };
    println!(
        "monitor bench — {} domains, {} scans, {} polling rounds/scan",
        workload.domains, workload.scans, workload.rounds
    );

    let m = run(&workload);
    for (i, ms) in m.scan_wall_ms.iter().enumerate() {
        println!("  scan {i} commit: {ms:.3} ms");
    }
    println!(
        "  {} queries: p50 {:.1} µs, p95 {:.1} µs — cache {}/{} hit rate {:.3}",
        m.latencies_ns.len(),
        percentile(&m.latencies_ns, 0.50),
        percentile(&m.latencies_ns, 0.95),
        m.hits,
        m.hits + m.misses,
        m.hit_rate
    );
    assert!(
        m.hit_rate >= 0.9,
        "polling workload must be served ≥90% from cache, got {:.3}",
        m.hit_rate
    );

    if smoke {
        println!(
            "smoke ok: cache hit rate {:.3} ≥ 0.9, baseline untouched",
            m.hit_rate
        );
        return;
    }
    let json = to_json(&workload, &m);
    std::fs::write(&out, json).expect("write baseline JSON");
    println!("  wrote {out}");
}
