//! The monitoring-daemon benchmark: scan wall-clock and cached-query
//! latency under a dashboard polling workload, emitted as a committable
//! JSON baseline.
//!
//! ```text
//! cargo run --release -p geoblock-bench --bin bench_monitor \
//!     [-- --smoke] [OUTPUT.json]
//! ```
//!
//! Drives a [`Monitor`] over a deterministic drifting web, timing each
//! committed scan, and between commits replays a polling workload against
//! the [`QueryService`] — the same dashboard keys queried round after
//! round, the way a monitoring UI refreshes. Reports query p50/p95
//! latency and the cache hit rate, and asserts the hit rate stays ≥ 0.9:
//! within one generation every repeat of a key must be served from cache.
//!
//! `--smoke` runs a reduced scale and asserts the same invariants without
//! rewriting the committed `BENCH_monitor.json` baseline.

use std::sync::Arc;
use std::time::Instant;

use geoblock_blockpages::{render, PageKind, PageParams};
use geoblock_core::StudyConfig;
use geoblock_http::{FetchError, Response, StatusCode};
use geoblock_lumscan::{Lumscan, LumscanConfig, Transport, TransportRequest};
use geoblock_monitor::{Monitor, MonitorConfig, QueryService, SnapshotStore};
use geoblock_worldgen::{cc, CountryCode};

/// A deterministic drifting web, scan day injected by the engine factory.
/// Policies are a pure function of (domain index, day): every third site
/// blocks IR throughout, every fourth also blocks SY until day 2 (then
/// retreats), and sites ≡ 1 (mod 5) start blocking IR from day 2.
struct DriftWeb {
    day: u32,
}

fn site_index(host: &str) -> usize {
    host.strip_prefix("site-")
        .and_then(|rest| rest.strip_suffix(".example"))
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(usize::MAX)
}

impl DriftWeb {
    fn blocks(&self, host: &str, country: CountryCode) -> bool {
        let i = site_index(host);
        if i == usize::MAX {
            return false;
        }
        (i.is_multiple_of(3) && country == cc("IR"))
            || (i.is_multiple_of(4) && self.day < 2 && country == cc("SY"))
            || (i % 5 == 1 && self.day >= 2 && country == cc("IR"))
    }
}

impl Transport for DriftWeb {
    async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
        let host = req.request.effective_host();
        if self.blocks(&host, req.country) {
            let params = PageParams::new(&host, "Iran", "5.1.1.1", 1);
            return Ok(render(PageKind::Cloudflare, &params).finish(req.request.url));
        }
        Ok(Response::builder(StatusCode::OK)
            .body(format!(
                "<html><body>{host} content {}</body></html>",
                "filler ".repeat(400)
            ))
            .finish(req.request.url))
    }
}

struct Workload {
    scans: u32,
    domains: usize,
    /// Polling rounds per committed scan; each round touches every key.
    rounds: usize,
}

struct Measured {
    scan_wall_ms: Vec<f64>,
    latencies_ns: Vec<u64>,
    hits: u64,
    misses: u64,
    hit_rate: f64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1e3
}

async fn run(w: &Workload) -> Measured {
    let domains: Vec<String> = (0..w.domains)
        .map(|i| format!("site-{i}.example"))
        .collect();
    let study = StudyConfig::builder()
        .countries([cc("IR"), cc("SY"), cc("US")])
        .rep_countries([cc("IR")])
        .work_unit_domains(4)
        .build()
        .expect("valid study config");
    let query = QueryService::new();
    let mut store = SnapshotStore::in_memory();

    // The dashboard's working set: a handful of domain panels, both
    // censor-side country views, and the latest-changes feed.
    let panel: Vec<String> = domains.iter().take(6).cloned().collect();
    let mut scan_wall_ms = Vec::new();
    let mut latencies_ns: Vec<u64> = Vec::new();

    for scan in 0..w.scans {
        // `run` commits every scan the store is still missing; asking for
        // `scan + 1` performs exactly one and publishes it.
        let monitor = Monitor::new(
            |day: u32| Arc::new(Lumscan::new(DriftWeb { day }, LumscanConfig::default())),
            domains.clone(),
            study.clone(),
            MonitorConfig::default().scans(scan + 1).full_every(3),
        );
        let t = Instant::now();
        let report = monitor.run(&mut store, Some(&query)).await.expect("scan");
        scan_wall_ms.push(t.elapsed().as_secs_f64() * 1e3);
        assert!(!report.interrupted);

        // The polling workload: every key, round after round, against the
        // freshly published generation.
        for _ in 0..w.rounds {
            for domain in &panel {
                let t = Instant::now();
                let history = query.domain_history(domain).await;
                latencies_ns.push(t.elapsed().as_nanos() as u64);
                assert_eq!(history.scans.len(), scan as usize + 1);
            }
            for country in [cc("IR"), cc("SY")] {
                let t = Instant::now();
                let _ = query.country_dashboard(country).await;
                latencies_ns.push(t.elapsed().as_nanos() as u64);
            }
            let t = Instant::now();
            let feed = query.changes_since(scan).await;
            latencies_ns.push(t.elapsed().as_nanos() as u64);
            assert!(feed.since == scan);
        }
    }

    let stats = query.cache_stats();
    latencies_ns.sort_unstable();
    Measured {
        scan_wall_ms,
        latencies_ns,
        hits: stats.hits,
        misses: stats.misses,
        hit_rate: stats.hit_rate(),
    }
}

fn to_json(w: &Workload, m: &Measured) -> String {
    let walls: Vec<String> = m.scan_wall_ms.iter().map(|ms| format!("{ms:.3}")).collect();
    format!(
        "{{\n  \"bench\": \"monitor_query\",\n  \"measured\": true,\n  \
         \"domains\": {},\n  \"scans\": {},\n  \"polling_rounds_per_scan\": {},\n  \
         \"scan_wall_ms\": [{}],\n  \"scan_wall_total_ms\": {:.3},\n  \
         \"queries\": {},\n  \"query_p50_us\": {:.3},\n  \"query_p95_us\": {:.3},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_hit_rate\": {:.4}\n}}\n",
        w.domains,
        w.scans,
        w.rounds,
        walls.join(", "),
        m.scan_wall_ms.iter().sum::<f64>(),
        m.latencies_ns.len(),
        percentile(&m.latencies_ns, 0.50),
        percentile(&m.latencies_ns, 0.95),
        m.hits,
        m.misses,
        m.hit_rate,
    )
}

#[tokio::main]
async fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_monitor.json".to_string());

    let workload = if smoke {
        Workload {
            scans: 3,
            domains: 12,
            rounds: 20,
        }
    } else {
        Workload {
            scans: 6,
            domains: 48,
            rounds: 50,
        }
    };
    println!(
        "monitor bench — {} domains, {} scans, {} polling rounds/scan",
        workload.domains, workload.scans, workload.rounds
    );

    let m = run(&workload).await;
    for (i, ms) in m.scan_wall_ms.iter().enumerate() {
        println!("  scan {i}: {ms:.1} ms");
    }
    println!(
        "  {} queries: p50 {:.1} µs, p95 {:.1} µs — cache {}/{} hit rate {:.3}",
        m.latencies_ns.len(),
        percentile(&m.latencies_ns, 0.50),
        percentile(&m.latencies_ns, 0.95),
        m.hits,
        m.hits + m.misses,
        m.hit_rate
    );
    assert!(
        m.hit_rate >= 0.9,
        "polling workload must be served ≥90% from cache, got {:.3}",
        m.hit_rate
    );

    if smoke {
        println!(
            "smoke ok: cache hit rate {:.3} ≥ 0.9, baseline untouched",
            m.hit_rate
        );
        return;
    }
    let json = to_json(&workload, &m);
    std::fs::write(&out, json).expect("write baseline JSON");
    println!("  wrote {out}");
}
