//! Regenerate every table and figure of the paper, printing
//! paper-vs-measured comparisons.
//!
//! ```text
//! REPRO_SCALE=quick|mid|full cargo run --release -p geoblock-bench --bin repro
//! ```
//!
//! The default scale is `mid`; the EXPERIMENTS.md numbers come from a
//! `full` run. The scale shrinks the world, the country panel, and the
//! corpora together, so relative rates (the paper's shapes) are preserved
//! while absolute counts scale down.

use std::collections::BTreeMap;

use geoblock_analysis::figures::{Figure1, Figure2, Figure3, Figure4, Figure5};
use geoblock_analysis::ooni_scan;
use geoblock_analysis::sampling::{consistency_experiment, false_negative_experiment};
use geoblock_analysis::tables;
use geoblock_analysis::Fortiguard;
use geoblock_bench::report::{comparison, section, series, table};
use geoblock_bench::{Harness, Scale};
use geoblock_blockpages::{CompiledFingerprintSet, PageKind, Provider};
use geoblock_core::consistency::confirmed_geoblockers;
use geoblock_core::population::PopulationReport;
use geoblock_proxynet::FaultPlan;
use geoblock_worldgen::cc;

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[tokio::main]
async fn main() {
    let scale_name = std::env::var("REPRO_SCALE").unwrap_or_else(|_| "mid".to_string());
    let seed: u64 = std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let scale = Scale::by_name(&scale_name, seed);
    println!(
        "geoblock repro — scale={} seed={} (population {}, top-list {}, {} countries)",
        scale.name,
        seed,
        scale.population,
        scale.top_n,
        scale.countries.min(177)
    );
    let harness = Harness::new(scale);

    exploration(&harness).await;
    reliability(&harness).await;
    streaming(&harness).await;
    let top10k = run_top10k(&harness).await;
    timeouts(&harness, &top10k);
    figures_1_to_4(&harness, &top10k).await;
    let population = population_scan(&harness, &top10k).await;
    top1m(&harness, &population).await;
    cloudflare(&harness);
    ooni(&harness);

    println!(
        "\ndone. Lumscan issued {} requests.",
        harness.engine.requests_issued()
    );
}

async fn exploration(h: &Harness) {
    section("§3 — Exploration and validation (16 VPSes, ZGrab profile)");
    let a = h.exploration().await;
    let ir = a
        .sweeps
        .iter()
        .filter_map(|s| s.status_403.get(&cc("IR")))
        .sum::<usize>();
    let us = a
        .sweeps
        .iter()
        .filter_map(|s| s.status_403.get(&cc("US")))
        .sum::<usize>();
    let flagged: usize = a.sweeps.iter().map(|s| s.flagged.len()).sum();
    let fp_providers = a.verification.fp_by_provider();
    let fp_all_akamai = fp_providers.keys().all(|p| *p == Provider::Akamai);
    comparison(
        "§3.1",
        &[
            (
                "NS-identified CF/Akamai customers",
                format!("{} / {}", a.ns_cloudflare.len(), a.ns_akamai.len()),
            ),
            ("403s from Iran vs US", format!("{ir} vs {us}")),
            (
                "flagged pairs → genuine",
                format!("{flagged} → {}", a.verification.genuine.len()),
            ),
            (
                "false-positive rate (all Akamai)",
                format!(
                    "{} (all Akamai: {fp_all_akamai})",
                    pct(a.verification.fp_rate())
                ),
            ),
        ],
    );
}

async fn reliability(h: &Harness) {
    section("§3.2 — Probing reliability under injected faults");
    let r = h.reliability(FaultPlan::standard(h.scale.seed)).await;

    let mut t = geoblock_analysis::TextTable::new(
        "Reliability: one batch, three engines (standard fault plan)",
        &["Engine", "Responded", "Attempts", "Retried", "Quarantined"],
    );
    for (name, stats) in [
        ("clean ceiling", &r.clean),
        ("naive (no retries)", &r.naive),
        ("hardened", &r.hardened),
    ] {
        t.row(&[
            name.to_string(),
            format!("{}/{}", stats.responded, stats.total),
            stats.attempts.to_string(),
            stats.recovered.to_string(),
            stats.quarantined_exits.to_string(),
        ]);
    }
    table(&t);

    let hist = &r.hardened.attempts_histogram;
    let hist_str = hist
        .iter()
        .enumerate()
        .map(|(i, n)| format!("{}×{}", i + 1, n))
        .collect::<Vec<_>>()
        .join(" ");
    let faults = r
        .hardened
        .fault_counts
        .iter()
        .map(|(k, n)| format!("{k}:{n}"))
        .collect::<Vec<_>>()
        .join(" ");
    comparison(
        "§3.2",
        &[
            ("naive probes lost to faults", r.naive_losses().to_string()),
            ("losses recovered by hardening", pct(r.recovered_share())),
            ("hardened attempts histogram", hist_str),
            ("absorbed faults by class", faults),
            (
                "injected (naive → hardened)",
                format!(
                    "{} → {}",
                    r.naive_faults.faulted(),
                    r.hardened_faults.faulted()
                ),
            ),
        ],
    );
}

async fn streaming(h: &Harness) {
    section("Pipeline — chunked batch vs streaming under straggler faults");
    let s = h
        .streaming(geoblock_proxynet::FaultPlan::straggler(h.scale.seed))
        .await;
    let mut t = geoblock_analysis::TextTable::new(
        "Probe pipeline architectures (straggler fault plan, same targets)",
        &[
            "Pipeline",
            "Wall-clock",
            "Probes/s",
            "Peak targets held",
            "Responded",
        ],
    );
    t.row(&[
        "batch (chunked)".to_string(),
        format!("{:.0?}", s.batch_wall),
        format!("{:.0}", s.throughput(s.batch_wall)),
        s.chunk.to_string(),
        format!("{}/{}", s.batch_stats.responded, s.batch_stats.total),
    ]);
    t.row(&[
        "streaming".to_string(),
        format!("{:.0?}", s.stream_wall),
        format!("{:.0}", s.throughput(s.stream_wall)),
        s.peak_in_flight.to_string(),
        format!("{}/{}", s.stream_stats.responded, s.stream_stats.total),
    ]);
    table(&t);
    comparison(
        "pipeline",
        &[
            ("streaming speedup", format!("{:.2}×", s.speedup())),
            (
                "peak in-flight targets (batch → stream)",
                format!(
                    "{} → {} (concurrency cap {})",
                    s.chunk, s.peak_in_flight, s.concurrency
                ),
            ),
        ],
    );
}

async fn run_top10k(h: &Harness) -> geoblock_bench::harness::Top10kArtifacts {
    section("§4 — Alexa Top-10K study");
    let a = h.top10k().await;
    let fg = Fortiguard::new(&h.world);

    // Table 1.
    let t1 = tables::Table1 {
        initial_domains: h.scale.top_n as usize,
        safe_domains: a.safe_domains.len(),
        initial_samples: a.safe_domains.len() * a.result.store.countries.len(),
        clustered_pages: a.discovery.corpus_size,
        clusters: a.discovery.clusters.len(),
        discovered: a.discovery.discovered_providers().len(),
    };
    table(&t1.table());
    comparison(
        "Table 1",
        &[
            ("initial domains", t1.initial_domains.to_string()),
            ("safe domains", t1.safe_domains.to_string()),
            ("initial samples (pairs)", t1.initial_samples.to_string()),
            ("clustered pages", t1.clustered_pages.to_string()),
            ("clusters", t1.clusters.to_string()),
            ("discovered CDNs/hosts", t1.discovered.to_string()),
        ],
    );

    // Table 2.
    table(&tables::table2(&a.outliers));
    let (r, act) = a.outliers.total_recall();
    let recall_of = |k: PageKind| {
        a.outliers
            .recall
            .get(&k)
            .map(|(r, a)| pct(*r as f64 / (*a).max(1) as f64))
            .unwrap_or_else(|| "n/a".into())
    };
    comparison(
        "Table 2",
        &[
            ("overall recall", pct(r as f64 / act.max(1) as f64)),
            ("Cloudflare recall", recall_of(PageKind::Cloudflare)),
            ("Akamai recall", recall_of(PageKind::Akamai)),
        ],
    );
    comparison(
        "§4.1.2",
        &[(
            "outlier rate (top-20 countries)",
            pct(a.outliers.outlier_rate()),
        )],
    );

    // Coverage (§4.1.1): the ten least-covered countries.
    let mut cov = geoblock_analysis::TextTable::new(
        "§4.1.1: least-covered countries (fraction of domains with ≥1 valid response)",
        &["Country", "Coverage"],
    );
    for (country, rate) in a.coverage.country_response_rates.iter().take(10) {
        cov.row(&[
            country.info().map(|i| i.name).unwrap_or("?").to_string(),
            pct(*rate),
        ]);
    }
    table(&cov);
    let worst = a.coverage.worst_country();
    comparison(
        "§4.1.1",
        &[
            (
                "never-responding domains",
                a.coverage.never_responded.to_string(),
            ),
            (
                "Luminati-refused domains",
                a.coverage.proxy_refused_domains.to_string(),
            ),
            ("90th-pct domain error rate", pct(a.coverage.error_rate_p90)),
            (
                "worst-covered country",
                worst
                    .map(|(c, r)| {
                        format!("{} ({})", c.info().map(|i| i.name).unwrap_or("?"), pct(r))
                    })
                    .unwrap_or_default(),
            ),
        ],
    );

    // Headline (§4.2), with domain-resampling bootstrap CIs (extension).
    let main = tables::main_study(&a.verdicts);
    let unique = tables::unique_domains(&main);
    let owned_main: Vec<geoblock_core::GeoblockVerdict> =
        main.iter().map(|v| (*v).clone()).collect();
    let ci = geoblock_analysis::bootstrap::instances_interval(&owned_main, 400, h.scale.seed);
    comparison(
        "§4.2",
        &[
            (
                "Top-10K instances",
                format!("{} (95% CI {:.0}–{:.0})", main.len(), ci.lo, ci.hi),
            ),
            ("Top-10K unique domains", unique.len().to_string()),
            (
                "instances eliminated by 80% rule",
                format!(
                    "{} ({})",
                    a.eliminated,
                    pct(a.eliminated as f64 / a.flagged.max(1) as f64)
                ),
            ),
        ],
    );

    // Tables 3–6.
    table(&tables::table3(&a.verdicts, &fg));
    let (t4, _, _) = tables::table_categories(
        "Table 4: Geoblocked sites by category (Top 10K)",
        &a.verdicts,
        &fg,
        &a.safe_domains,
    );
    table(&t4);
    table(&tables::table5(&a.verdicts));
    let by_country = tables::instances_by_country(&main);
    comparison(
        "Table 5",
        &[
            (
                "most blocked country",
                by_country
                    .first()
                    .map(|(c, k)| format!("{} ({k})", c.info().map(|i| i.name).unwrap_or("?")))
                    .unwrap_or_default(),
            ),
            (
                "2nd–4th",
                by_country
                    .iter()
                    .skip(1)
                    .take(3)
                    .map(|(c, k)| format!("{} {k}", c.info().map(|i| i.name).unwrap_or("?")))
                    .collect::<Vec<_>>()
                    .join(", "),
            ),
        ],
    );
    table(&tables::table_country_provider(
        "Table 6: Geoblocking among Top 10K sites, by country",
        &a.verdicts,
    ));
    let provider_total = |p: Provider| main.iter().filter(|v| v.kind.provider() == p).count();
    comparison(
        "Table 6",
        &[(
            "provider totals (CF/CFront/GAE)",
            format!(
                "{}/{}/{}",
                provider_total(Provider::Cloudflare),
                provider_total(Provider::CloudFront),
                provider_total(Provider::AppEngine)
            ),
        )],
    );

    // Other observations (§4.2.2): Airbnb, Baidu.
    let other = tables::other_observations(&a.verdicts);
    println!(
        "\n  other observations: {} instances outside the headline tables ({} Airbnb, {} Baidu)",
        other.len(),
        other.iter().filter(|v| v.kind == PageKind::Airbnb).count(),
        other.iter().filter(|v| v.kind == PageKind::Baidu).count(),
    );

    a
}

fn timeouts(h: &Harness, a: &geoblock_bench::harness::Top10kArtifacts) {
    // §7.3 future work, implemented: country-selective consistent timeouts.
    let suspects = geoblock_core::timeouts::find_suspects(&a.result.store);
    let geo_like = suspects
        .iter()
        .filter(|s| s.geoblock_likeness >= 0.5)
        .count();
    println!(
        "\n  §7.3 timeout analysis: {} domains with country-selective consistent timeouts; \
         {} have a geoblocking-shaped dark set",
        suspects.len(),
        geo_like
    );
    for s in suspects.iter().take(5) {
        let dark: Vec<String> = s
            .dark_countries
            .iter()
            .take(6)
            .map(|c| c.to_string())
            .collect();
        println!(
            "    {} dark in [{}] (likeness {:.2})",
            s.domain,
            dark.join(", "),
            s.geoblock_likeness
        );
    }
    let _ = h;
}

async fn figures_1_to_4(h: &Harness, a: &geoblock_bench::harness::Top10kArtifacts) {
    section("Figures 1–4 — sampling design evaluation");
    let (store, pairs) = h.hundred_sample_populations(a).await;
    let sizes = [1usize, 2, 3, 5, 10, 15, 20, 30, 50];
    let consistencies = consistency_experiment(&store, &pairs, &sizes, 500, h.scale.seed);
    let fig1 = Figure1::new(&consistencies);
    if let Some(cdf) = fig1.per_size.get(&20) {
        series("Figure 1 (CDF of consistency, size 20)", &cdf.points(12));
    }
    comparison(
        "Fig 1",
        &[(
            "draws <80% at size 20",
            fig1.below_80(20).map(pct).unwrap_or_else(|| "n/a".into()),
        )],
    );

    let fig2 = Figure2::new(&a.outliers, 20);
    let blocked_total: usize = fig2.blocked.iter().sum();
    let ordinary_total: usize = fig2.ordinary.iter().sum();
    println!(
        "\n  Figure 2: size-difference histogram ({blocked_total} blocked, {ordinary_total} ordinary×7)"
    );
    println!(
        "    blocked : {}",
        geoblock_analysis::figures::sparkline(
            &fig2.blocked.iter().map(|&c| c as f64).collect::<Vec<_>>()
        )
    );
    println!(
        "    ordinary: {}",
        geoblock_analysis::figures::sparkline(
            &fig2.ordinary.iter().map(|&c| c as f64).collect::<Vec<_>>()
        )
    );
    comparison(
        "Fig 2",
        &[(
            "FN across 5%–50% cutoffs",
            format!(
                "{} – {}",
                pct(1.0 - fig2.blocked_beyond(0.05)),
                pct(1.0 - fig2.blocked_beyond(0.50))
            ),
        )],
    );

    let fns = false_negative_experiment(&store, &pairs, &sizes, 500, h.scale.seed);
    let fig3 = Figure3::new(fns);
    series(
        "Figure 3 (FN rate vs sample size)",
        &fig3
            .series
            .iter()
            .map(|(s, r)| (*s as f64, *r))
            .collect::<Vec<_>>(),
    );
    comparison(
        "Fig 3",
        &[(
            "FN rate at 3 samples",
            fig3.at(3).map(pct).unwrap_or_else(|| "n/a".into()),
        )],
    );

    let fig4 = Figure4::new(&a.result.store);
    series("Figure 4 (CDF of per-pair agreement)", &fig4.cdf.points(12));
    comparison("Fig 4", &[("pairs >80% agreement", pct(fig4.above_80()))]);
}

async fn population_scan(
    h: &Harness,
    top10k: &geoblock_bench::harness::Top10kArtifacts,
) -> PopulationReport {
    section("§5.1.1 — CDN population identification");
    let report = h.population_scan().await;
    let netblocks = geoblock_core::population::discover_appengine_netblocks(h.dns.as_ref());
    comparison(
        "§5.1.1",
        &[
            (
                "Top-1M Cloudflare customers",
                report.of(Provider::Cloudflare).len().to_string(),
            ),
            (
                "Top-1M CloudFront customers",
                report.of(Provider::CloudFront).len().to_string(),
            ),
            (
                "Top-1M Incapsula customers",
                report.of(Provider::Incapsula).len().to_string(),
            ),
            (
                "Top-1M Akamai customers",
                report.of(Provider::Akamai).len().to_string(),
            ),
            (
                "Top-1M AppEngine customers",
                report.of(Provider::AppEngine).len().to_string(),
            ),
            ("unique CDN customers", report.total_unique().to_string()),
            ("dual-service domains", report.dual.len().to_string()),
            ("AppEngine netblocks", netblocks.len().to_string()),
        ],
    );

    // §4.2.1: provider populations within the top list. The paper's
    // denominators are raw customer counts; its numerators are the safe
    // (probed) blockers.
    let top_n = h.scale.top_n;
    let in_top = |d: &String| {
        h.world
            .population
            .rank_of(d)
            .map(|r| r <= top_n)
            .unwrap_or(false)
    };
    let counts: BTreeMap<Provider, usize> = [
        Provider::Cloudflare,
        Provider::CloudFront,
        Provider::AppEngine,
    ]
    .into_iter()
    .map(|p| (p, report.of(p).iter().filter(|d| in_top(d)).count()))
    .collect();
    let main = tables::main_study(&top10k.verdicts);
    let blockers_of = |p: Provider| {
        let mut d: Vec<&str> = main
            .iter()
            .filter(|v| v.kind.provider() == p)
            .map(|v| v.domain.as_str())
            .collect();
        d.sort();
        d.dedup();
        d.len()
    };
    comparison(
        "§4.2.1",
        &[
            (
                "Top-10K CDN populations (CF/CFront/GAE)",
                format!(
                    "{}/{}/{}",
                    counts[&Provider::Cloudflare],
                    counts[&Provider::CloudFront],
                    counts[&Provider::AppEngine]
                ),
            ),
            (
                "GAE customers geoblocking",
                pct(blockers_of(Provider::AppEngine) as f64
                    / counts[&Provider::AppEngine].max(1) as f64),
            ),
            (
                "CF customers geoblocking",
                pct(blockers_of(Provider::Cloudflare) as f64
                    / counts[&Provider::Cloudflare].max(1) as f64),
            ),
            (
                "CloudFront customers geoblocking",
                pct(blockers_of(Provider::CloudFront) as f64
                    / counts[&Provider::CloudFront].max(1) as f64),
            ),
        ],
    );
    report
}

async fn top1m(h: &Harness, population: &PopulationReport) {
    section("§5 — Alexa Top-1M study (5% sample of CDN customers)");
    let a = h.top1m(population).await;
    let fg = Fortiguard::new(&h.world);

    let main = tables::main_study(&a.verdicts);
    let unique = tables::unique_domains(&main);
    let by_country = tables::instances_by_country(&main);
    let median = {
        let mut counts: Vec<usize> = by_country.iter().map(|(_, k)| *k).collect();
        counts.sort_unstable();
        counts.get(counts.len() / 2).copied().unwrap_or(0)
    };

    let sample_of = |p: Provider| {
        a.sample
            .iter()
            .filter(|d| population.of(p).binary_search(d).is_ok())
            .count()
    };
    let blockers_of = |p: Provider| {
        let mut d: Vec<&str> = main
            .iter()
            .filter(|v| v.kind.provider() == p)
            .map(|v| v.domain.as_str())
            .collect();
        d.sort();
        d.dedup();
        d.len()
    };
    let rate = |p: Provider| {
        let s = sample_of(p);
        format!(
            "{} ({}/{})",
            pct(blockers_of(p) as f64 / s.max(1) as f64),
            blockers_of(p),
            s
        )
    };
    let safe_customers = {
        let mut customers: Vec<String> =
            population.by_provider.values().flatten().cloned().collect();
        customers.sort();
        customers.dedup();
        customers.iter().filter(|d| fg.safe(d)).count()
    };
    comparison(
        "§5.1.2",
        &[
            ("safe CDN customers", safe_customers.to_string()),
            ("5% sample size", a.sample.len().to_string()),
        ],
    );
    comparison(
        "§5.2.1",
        &[
            ("Top-1M instances", main.len().to_string()),
            ("Top-1M unique domains", unique.len().to_string()),
            ("median blocked per country", median.to_string()),
            ("GAE sample geoblocking rate", rate(Provider::AppEngine)),
            ("CloudFront sample rate", rate(Provider::CloudFront)),
            ("Cloudflare sample rate", rate(Provider::Cloudflare)),
        ],
    );

    table(&tables::table_country_provider(
        "Table 7: Geoblocking among Top 1M sites, by country",
        &a.verdicts,
    ));
    comparison(
        "Table 7",
        &[(
            "top countries",
            by_country
                .iter()
                .take(4)
                .map(|(c, k)| format!("{} {k}", c.info().map(|i| i.name).unwrap_or("?")))
                .collect::<Vec<_>>()
                .join(", "),
        )],
    );

    let (t8, tested_total, blocked_total) = tables::table_categories(
        "Table 8: Geoblocked sites by top category (Top 1M)",
        &a.verdicts,
        &fg,
        &a.sample,
    );
    table(&t8);
    let shopping = {
        let tested = a
            .sample
            .iter()
            .filter(|d| fg.category(d) == geoblock_worldgen::Category::Shopping)
            .count();
        let blocked = unique
            .iter()
            .filter(|d| fg.category(d) == geoblock_worldgen::Category::Shopping)
            .count();
        pct(blocked as f64 / tested.max(1) as f64)
    };
    comparison(
        "Table 8",
        &[
            (
                "overall blocked share",
                format!(
                    "{} ({}/{})",
                    pct(blocked_total as f64 / tested_total.max(1) as f64),
                    blocked_total,
                    tested_total
                ),
            ),
            ("Shopping blocked share", shopping),
        ],
    );

    // §5.2.2 consistency analysis.
    let confirmed_ak: Vec<_> = confirmed_geoblockers(&a.akamai)
        .into_iter()
        .cloned()
        .collect();
    table(&tables::table_consistency(
        "§5.2.2: Akamai domains by consistency score",
        &confirmed_ak,
    ));
    let ak_confirmed = confirmed_geoblockers(&a.akamai).len();
    let in_confirmed = confirmed_geoblockers(&a.incapsula).len();
    let perfect = |reports: &[geoblock_core::consistency::ConsistencyReport]| {
        let n = reports.len().max(1);
        let p = reports.iter().filter(|r| r.score >= 1.0).count();
        pct(p as f64 / n as f64)
    };
    comparison(
        "§5.2.2",
        &[
            (
                "Akamai confirmed blockers",
                format!("{ak_confirmed} of {} showing pages", a.akamai.len()),
            ),
            (
                "Incapsula confirmed blockers",
                format!("{in_confirmed} of {} showing pages", a.incapsula.len()),
            ),
            ("Akamai at 100% consistency", perfect(&a.akamai)),
        ],
    );
}

fn cloudflare(h: &Harness) {
    section("§6 — Cloudflare firewall-rules ground truth");
    let snapshot = h.cloudflare_snapshot();
    table(&tables::table9(&snapshot));
    let total_zones: u64 = snapshot.zones_per_tier.iter().map(|(_, n)| n).sum();
    let weighted: f64 = snapshot
        .zones_per_tier
        .iter()
        .map(|(tier, n)| snapshot.baseline_rate(*tier) * *n as f64)
        .sum::<f64>()
        / total_zones.max(1) as f64;
    comparison(
        "Table 9",
        &[
            ("baseline (all tiers)", pct(weighted)),
            (
                "Enterprise baseline",
                pct(snapshot.baseline_rate(geoblock_worldgen::CfTier::Enterprise)),
            ),
            (
                "Enterprise KP rate",
                pct(snapshot.rate(geoblock_worldgen::CfTier::Enterprise, cc("KP"))),
            ),
        ],
    );

    let fig5_countries = [
        cc("KP"),
        cc("IR"),
        cc("SY"),
        cc("SD"),
        cc("CU"),
        cc("RU"),
        cc("CN"),
    ];
    let fig5 = Figure5::new(&snapshot, &fig5_countries);
    println!("\n  Figure 5: cumulative Enterprise block-rule activations");
    let last = geoblock_worldgen::cloudflare_rules::day_number(2018, 7, 15);
    for country in fig5_countries {
        let points: Vec<f64> = (0..=12)
            .map(|i| fig5.cumulative(country, last * i / 12) as f64)
            .collect();
        println!(
            "    {}: {} (total {})",
            country,
            geoblock_analysis::figures::sparkline(&points),
            fig5.cumulative(country, last)
        );
    }
}

fn ooni(h: &Harness) {
    section("§7.1 — OONI corpus cross-check");
    let corpus = h.ooni_corpus();
    let report = ooni_scan::scan(
        &corpus,
        &CompiledFingerprintSet::paper(),
        h.world.citizenlab.len(),
    );
    comparison(
        "§7.1",
        &[
            (
                "OONI fingerprint matches",
                format!(
                    "{} in {} countries (of {} scanned)",
                    report.explicit_matches,
                    report.countries.len(),
                    report.scanned
                ),
            ),
            (
                "test-list domains matched",
                format!("{} ({})", report.domains.len(), pct(report.domain_share())),
            ),
            (
                "control-403 on CDN infra",
                report.control_403_cdn.to_string(),
            ),
            (
                "local-blocked / control-ok",
                report.local_blocked_control_ok.to_string(),
            ),
        ],
    );
}
