//! The prober-bias (evasion) ablation, emitted as a committable JSON
//! baseline.
//!
//! ```text
//! cargo run --release -p geoblock-bench --bin bench_evasion \
//!     [-- --smoke] [OUTPUT.json]
//! ```
//!
//! Every canonical client profile — full browser, headless browser, ZGrab,
//! curl, bare socket — probes the *same* synthetic panel of bot-defended
//! domains, whose ground-truth policy contains **no geoblocking at all**.
//! The panel is synthesized directly ([`Harness::evasion`]), so the tiered
//! detection pipeline in `netsim::edge` is the only thing under
//! measurement: every fingerprinted page any profile observes is a
//! prober-induced false block, and the per-profile `false_block_rate` is
//! exactly the bias a study run with that client would bake into its
//! numbers (§3.1's ~30% ZGrab false-positive observation, generalized
//! across the four detection tiers).
//!
//! Four claims are asserted in every mode, not just reported:
//!
//! * **clean browser** — the full-browser profile is never blocked: its
//!   study is the ground truth;
//! * **monotone bias** — the false-block rate only grows as the client
//!   sheds browser likeness, JS capability, and a browser TLS stack;
//! * **no laundering** — not one detection-tier or fronting page
//!   classifies as *explicit geoblocking*;
//! * **fronting split** — fronted requests are rejected with the
//!   dedicated mismatch page by the fronting-intolerant edge and served
//!   normally by the tolerant one.
//!
//! `--smoke` runs a reduced panel and asserts the claims without writing
//! the baseline.

use geoblock_bench::harness::EvasionArtifacts;
use geoblock_bench::Harness;
use geoblock_worldgen::{cc, CountryCode};

fn panel() -> Vec<CountryCode> {
    [
        "US", "DE", "NL", "GB", "FR", "IR", "RU", "CN", "BR", "IN", "JP", "TR",
    ]
    .map(cc)
    .to_vec()
}

fn assert_claims(a: &EvasionArtifacts) {
    assert!(a.pairs > 0, "the panel produced no live pairs");
    assert_eq!(a.rows[0].profile, "browser");
    assert_eq!(
        a.rows[0].false_blocked, 0,
        "a full browser must pass every detection tier"
    );
    for pair in a.rows.windows(2) {
        assert!(
            pair[0].false_block_rate <= pair[1].false_block_rate,
            "bias regressed between {} ({:.4}) and {} ({:.4})",
            pair[0].profile,
            pair[0].false_block_rate,
            pair[1].profile,
            pair[1].false_block_rate,
        );
    }
    let bare = a.rows.last().expect("five profile rows");
    assert!(
        bare.false_block_rate > a.rows[0].false_block_rate,
        "the ablation must measure a nonzero bias spread"
    );
    assert_eq!(
        a.misclassified_geoblock, 0,
        "a bot-detection or fronting page classified as explicit geoblocking"
    );
    assert!(a.fronting.mismatch_pages > 0, "no fronting rejections seen");
    assert!(a.fronting.routed > 0, "no tolerant fronting routing seen");
    assert_eq!(
        a.fronting.fronted_requests,
        a.fronting.mismatch_pages + a.fronting.routed,
        "every fronted response must be a mismatch page or a normal serve"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_evasion.json".to_string());
    let seed: u64 = std::env::var("REPRO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let countries = panel();
    let domains = if smoke { 48 } else { 240 };
    let start = std::time::Instant::now();
    let artifacts = Harness::evasion(seed, domains, &countries);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    for row in &artifacts.rows {
        println!(
            "{:<9} likeness {:.2}  js {:<5}  scanner-tls {:<5}  {:>4}/{} false-blocked \
             ({:>4} challenged, {:>4} denied)  rate {:.4}",
            row.profile,
            row.likeness,
            row.js_capable,
            row.scanner_tls,
            row.false_blocked,
            artifacts.pairs,
            row.challenged,
            row.denied,
            row.false_block_rate,
        );
    }
    println!(
        "fronting: {} fronted, {} mismatch pages, {} routed; {} geoblock misclassifications",
        artifacts.fronting.fronted_requests,
        artifacts.fronting.mismatch_pages,
        artifacts.fronting.routed,
        artifacts.misclassified_geoblock,
    );

    assert_claims(&artifacts);
    println!("browser clean, bias monotone, no geoblock laundering, fronting split holds");
    if smoke {
        println!("smoke ok");
        return;
    }

    let rows: Vec<String> = artifacts
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"profile\": \"{}\", \"likeness\": {:.2}, \"js_capable\": {}, \
                 \"scanner_tls\": {}, \"false_blocked\": {}, \"challenged\": {}, \
                 \"denied\": {}, \"false_block_rate\": {:.4}}}",
                r.profile,
                r.likeness,
                r.js_capable,
                r.scanner_tls,
                r.false_blocked,
                r.challenged,
                r.denied,
                r.false_block_rate,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"evasion_ablation\",\n  \"measured\": true,\n  \
         \"seed\": {seed},\n  \
         \"world\": {{\"panel_domains\": {domains}, \"countries\": {}, \
         \"bot_sensitive_rate\": 0.7, \"ground_truth_geoblocks\": 0}},\n  \
         \"clean_pairs\": {},\n  \
         \"misclassified_geoblock\": {},\n  \
         \"fronting\": {{\"fronted_requests\": {}, \"mismatch_pages\": {}, \
         \"routed\": {}}},\n  \
         \"elapsed_ms\": {elapsed_ms:.1},\n  \
         \"note\": \"per-profile false-block bias over a geoblock-free panel; \
         regenerate with: cargo run --release -p geoblock-bench --bin bench_evasion\",\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        countries.len(),
        artifacts.pairs,
        artifacts.misclassified_geoblock,
        artifacts.fronting.fronted_requests,
        artifacts.fronting.mismatch_pages,
        artifacts.fronting.routed,
        rows.join(",\n    "),
    );
    std::fs::write(&out, &json).expect("write baseline");
    println!("wrote {out}");
}
