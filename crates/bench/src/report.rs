//! Paper-vs-measured reporting for the repro binary.

use geoblock_analysis::paper::for_experiment;
use geoblock_analysis::TextTable;

/// Print a section header.
pub fn section(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Print a rendered table.
pub fn table(t: &TextTable) {
    println!("\n{}", t.render());
}

/// Print the paper's published values for an experiment, followed by the
/// measured values supplied by the caller.
pub fn comparison(experiment: &str, measured: &[(&str, String)]) {
    println!("\n  paper vs measured — {experiment}");
    println!("  {:<44} {:<28} measured", "metric", "paper");
    let paper_values = for_experiment(experiment);
    for (metric, value) in measured {
        let paper = paper_values
            .iter()
            .find(|p| p.metric == *metric)
            .map(|p| p.value)
            .unwrap_or("—");
        println!("  {:<44} {:<28} {}", metric, paper, value);
    }
}

/// Render a CDF-ish series as `x=…: y` lines prefixed with a sparkline.
pub fn series(label: &str, points: &[(f64, f64)]) {
    let ys: Vec<f64> = points.iter().map(|(_, y)| *y).collect();
    println!("  {label}: {}", geoblock_analysis::figures::sparkline(&ys));
    for chunk in points.chunks(6) {
        let row: Vec<String> = chunk
            .iter()
            .map(|(x, y)| format!("({x:.2}, {y:.3})"))
            .collect();
        println!("    {}", row.join(" "));
    }
}
