//! The staged experiment harness.

use std::sync::Arc;
use std::time::{Duration, Instant};

use geoblock_analysis::coverage::CoverageStats;
use geoblock_analysis::Fortiguard;
use geoblock_blockpages::{FingerprintSet, PageClass, PageKind, Provider};
use geoblock_core::confirm::{eliminated, flagged_explicit_pairs};
use geoblock_core::consistency::{consistency_scores, ConsistencyReport};
use geoblock_core::discovery::{discover, DiscoveryConfig, DiscoveryReport};
use geoblock_core::exploration::{sweep, verify_in_browser, SweepResult, Verification};
use geoblock_core::outliers::{extract_outliers, OutlierConfig, OutlierReport};
use geoblock_core::population::{
    identify_by_ns, identify_populations, PopulationProbe, PopulationReport,
};
use geoblock_core::{ConfirmConfig, GeoblockVerdict, StudyConfig, StudyResult, StudySession};
use geoblock_http::{ClientProfile, HeaderProfile, Request, TlsClientClass, Url};
use geoblock_lumscan::{BatchStats, GaugeSink, Lumscan, LumscanConfig, RetryPolicy};
use geoblock_netsim::origin::OriginCache;
use geoblock_netsim::{edge, ClientContext, DnsDb, SimInternet, VpsTransport};
use geoblock_proxynet::{FaultPlan, FaultStatsSnapshot, FaultyTransport, LuminatiNetwork};
use geoblock_worldgen::country::vps_countries;
use geoblock_worldgen::{
    cc, ooni, Category, CountryCode, DomainPolicy, DomainSpec, OoniConfig, OoniMeasurement,
    RulesSnapshot, World, WorldConfig,
};

/// Experiment scale. The paper's scale is `full`; smaller scales shrink
/// every axis proportionally so the whole suite runs in seconds.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Scale label.
    pub name: &'static str,
    /// World seed.
    pub seed: u64,
    /// Alexa population size.
    pub population: u32,
    /// Top-list size for the §4 study.
    pub top_n: u32,
    /// Number of vantage countries (sanctioned + high-abuse first).
    pub countries: usize,
    /// Representative ("top blocking") country count.
    pub rep_countries: usize,
    /// Top-1M sampling fraction (§5.1.2: 5%).
    pub sample_frac: f64,
    /// Population-scan depth into the Alexa list.
    pub scan_depth: u32,
    /// OONI corpus size.
    pub ooni_measurements: usize,
    /// Cloudflare snapshot scale.
    pub cf_scale: f64,
    /// Citizen-Lab scan depth.
    pub citizenlab_scan: u32,
}

impl Scale {
    /// Paper scale: 1M domains, 177 countries, 5% sample.
    pub fn full(seed: u64) -> Scale {
        Scale {
            name: "full",
            seed,
            population: 1_000_000,
            top_n: 10_000,
            countries: usize::MAX,
            rep_countries: 20,
            sample_frac: 0.05,
            scan_depth: 1_000_000,
            ooni_measurements: 500_000,
            cf_scale: 1.0,
            citizenlab_scan: 40_000,
        }
    }

    /// Mid scale: ~1/5 of everything; minutes become seconds.
    pub fn mid(seed: u64) -> Scale {
        Scale {
            name: "mid",
            seed,
            population: 200_000,
            top_n: 4_000,
            countries: 60,
            rep_countries: 14,
            sample_frac: 0.05,
            scan_depth: 200_000,
            ooni_measurements: 150_000,
            cf_scale: 0.2,
            citizenlab_scan: 12_000,
        }
    }

    /// Quick scale for CI and Criterion.
    pub fn quick(seed: u64) -> Scale {
        Scale {
            name: "quick",
            seed,
            population: 20_000,
            top_n: 1_000,
            countries: 24,
            rep_countries: 8,
            sample_frac: 0.20,
            scan_depth: 20_000,
            ooni_measurements: 30_000,
            cf_scale: 0.05,
            citizenlab_scan: 2_000,
        }
    }

    /// Resolve a scale by name (`REPRO_SCALE` env var in the binary).
    pub fn by_name(name: &str, seed: u64) -> Scale {
        match name {
            "full" => Scale::full(seed),
            "mid" => Scale::mid(seed),
            _ => Scale::quick(seed),
        }
    }
}

/// Everything the §4 study produces.
pub struct Top10kArtifacts {
    /// The safety-filtered test list.
    pub safe_domains: Vec<String>,
    /// Raw study data (baseline + confirmation).
    pub result: StudyResult,
    /// Confirmed verdicts.
    pub verdicts: Vec<GeoblockVerdict>,
    /// Pairs flagged for confirmation.
    pub flagged: usize,
    /// Flagged pairs eliminated by the 80% rule.
    pub eliminated: usize,
    /// The outlier heuristic's report (Table 2, Figure 2).
    pub outliers: OutlierReport,
    /// Discovery clustering (Table 1).
    pub discovery: DiscoveryReport,
    /// Coverage statistics (§4.1.1).
    pub coverage: CoverageStats,
    /// The representative countries used.
    pub rep_countries: Vec<CountryCode>,
}

/// Everything the §5 study produces.
pub struct Top1mArtifacts {
    /// The 5% sample probed.
    pub sample: Vec<String>,
    /// Raw study data.
    pub result: StudyResult,
    /// Confirmed explicit verdicts.
    pub verdicts: Vec<GeoblockVerdict>,
    /// Consistency analyses for Akamai and Incapsula.
    pub akamai: Vec<ConsistencyReport>,
    pub incapsula: Vec<ConsistencyReport>,
    /// Coverage statistics (§5.1.3).
    pub coverage: CoverageStats,
}

/// The reliability ablation: one probe batch, three engines.
///
/// `clean` probes without faults (the ceiling), `naive` probes through the
/// fault plan with retries disabled (what §3.2's machinery exists to
/// prevent), `hardened` probes through the same plan with the full retry /
/// breaker / geolocation-enforcement stack.
pub struct ReliabilityArtifacts {
    /// The injected fault plan.
    pub plan: FaultPlan,
    /// No faults, no retries — the achievable ceiling.
    pub clean: BatchStats,
    /// Faults on, retries off.
    pub naive: BatchStats,
    /// Faults on, full retry stack.
    pub hardened: BatchStats,
    /// What the fault layer injected during the naive run.
    pub naive_faults: FaultStatsSnapshot,
    /// What the fault layer injected during the hardened run (higher —
    /// retries draw more requests through the same weather).
    pub hardened_faults: FaultStatsSnapshot,
}

impl ReliabilityArtifacts {
    /// Probes the faults cost the naive engine (vs the clean ceiling).
    pub fn naive_losses(&self) -> usize {
        self.clean.responded.saturating_sub(self.naive.responded)
    }

    /// Share of the naive losses the hardened engine won back, in [0, 1].
    /// The acceptance bar for this reproduction is ≥ 0.95.
    pub fn recovered_share(&self) -> f64 {
        let lost = self.naive_losses();
        if lost == 0 {
            return 1.0;
        }
        let won_back = self
            .hardened
            .responded
            .saturating_sub(self.naive.responded)
            .min(lost);
        won_back as f64 / lost as f64
    }
}

/// The batch-vs-streaming architecture ablation: the same probe load under
/// the same straggler-heavy fault plan, driven two ways. The batch leg
/// replays the old architecture — materialize a chunk of targets, barrier
/// on `probe_all`, repeat — so every chunk pays its slowest straggler's
/// tail. The streaming leg pulls the same targets through one
/// `probe_stream`, overlapping stalls across the whole run.
pub struct StreamingArtifacts {
    /// The injected fault plan (straggler-heavy).
    pub plan: FaultPlan,
    /// Total probe targets in each leg.
    pub targets: usize,
    /// Engine concurrency for both legs.
    pub concurrency: usize,
    /// Targets materialized per batch chunk — the batch leg's peak
    /// in-flight target count.
    pub chunk: usize,
    /// Wall-clock of the chunked batch leg.
    pub batch_wall: Duration,
    /// Wall-clock of the streaming leg.
    pub stream_wall: Duration,
    /// Batch-leg outcome statistics.
    pub batch_stats: BatchStats,
    /// Streaming-leg outcome statistics.
    pub stream_stats: BatchStats,
    /// Peak concurrent in-flight probes the streaming leg's gauge saw —
    /// the streaming leg's peak target count, bounded by `concurrency`.
    pub peak_in_flight: usize,
}

impl StreamingArtifacts {
    /// Batch wall-clock over streaming wall-clock (> 1 means streaming is
    /// faster).
    pub fn speedup(&self) -> f64 {
        self.batch_wall.as_secs_f64() / self.stream_wall.as_secs_f64().max(1e-9)
    }

    /// Probes per second for a leg.
    pub fn throughput(&self, wall: Duration) -> f64 {
        self.targets as f64 / wall.as_secs_f64().max(1e-9)
    }
}

/// The sharded-vs-single orchestration ablation: the same baseline pass
/// run as one plain streaming study and through the orchestrator at
/// several shard counts, under the same straggler-heavy fault plan.
/// Correctness first — every sharded run must merge to the identical
/// study — then wall-clock, since each shard drives its own full-
/// concurrency probe stream.
pub struct ShardingArtifacts {
    /// The injected fault plan (straggler-heavy).
    pub plan: FaultPlan,
    /// Domains in the ablation's baseline pass.
    pub domains: usize,
    /// Domains per work unit.
    pub work_unit_domains: usize,
    /// Work units in the shard plan.
    pub total_units: usize,
    /// Probes per run.
    pub probes: usize,
    /// Shard counts measured, with each run's wall-clock.
    pub runs: Vec<(usize, Duration)>,
    /// Wall-clock of the plain single-stream `StudySession::baseline`.
    pub single_wall: Duration,
    /// Whether every sharded run's merged store and archive were
    /// identical to the single-stream run's — the determinism claim.
    pub identical: bool,
}

impl ShardingArtifacts {
    /// Single-stream wall over the fastest sharded wall (> 1 means
    /// sharding pays).
    pub fn best_speedup(&self) -> f64 {
        let best = self
            .runs
            .iter()
            .map(|(_, w)| *w)
            .min()
            .unwrap_or(self.single_wall);
        self.single_wall.as_secs_f64() / best.as_secs_f64().max(1e-9)
    }

    /// Wall-clock for a given shard count, if measured.
    pub fn wall(&self, shards: usize) -> Option<Duration> {
        self.runs
            .iter()
            .find(|(s, _)| *s == shards)
            .map(|(_, w)| *w)
    }
}

/// §3 exploration artefacts.
pub struct ExplorationArtifacts {
    /// NS-identified Cloudflare customers.
    pub ns_cloudflare: Vec<String>,
    /// NS-identified Akamai customers.
    pub ns_akamai: Vec<String>,
    /// Per-VPS sweep results.
    pub sweeps: Vec<SweepResult>,
    /// Browser verification of flagged instances.
    pub verification: Verification,
}

/// One client profile's measured bias in the evasion ablation: how many
/// ground-truth-clean (domain, country) pairs the profile saw a block or
/// challenge page on, split by whether the edge challenged (JS
/// interstitial / CAPTCHA) or denied outright.
pub struct EvasionTierRow {
    /// Profile label (`browser`, `headless`, `zgrab`, `curl`, `bare`).
    pub profile: &'static str,
    /// Header-level browser likeness the profile presents.
    pub likeness: f64,
    /// Whether the profile executes JS challenges.
    pub js_capable: bool,
    /// Whether the profile's TLS stack reads as a scanner ClientHello.
    pub scanner_tls: bool,
    /// Clean pairs on which the profile observed any fingerprinted page.
    pub false_blocked: usize,
    /// Of those, pairs answered with a challenge (JS interstitial or
    /// CAPTCHA) — recoverable by a more capable client.
    pub challenged: usize,
    /// Of those, pairs answered with a hard denial page.
    pub denied: usize,
    /// `false_blocked` over the clean-pair count, in [0, 1].
    pub false_block_rate: f64,
}

/// The domain-fronting leg of the evasion ablation: the same fronted
/// browser-profile request against fronting-intolerant (CloudFront) and
/// fronting-tolerant (Cloudflare) edges.
pub struct FrontingArtifacts {
    /// Fronted requests issued per provider class.
    pub fronted_requests: usize,
    /// Intolerant-edge responses classified as the fronting-mismatch page.
    pub mismatch_pages: usize,
    /// Tolerant-edge responses that routed on `Host` and served normally
    /// (no fingerprint matched).
    pub routed: usize,
}

/// The prober-bias ablation: the tiered bot-detection pipeline measured
/// under every canonical [`ClientProfile`], against a panel whose ground
/// truth has **no geoblocking at all** — so every fingerprinted page any
/// profile observes is prober-induced, and a naive study crediting those
/// pages as geoblocking would be wrong by exactly `false_block_rate`.
pub struct EvasionArtifacts {
    /// Clean (domain, country) pairs measured (dead/broken pairs, which
    /// fail identically for every profile, are excluded up front).
    pub pairs: usize,
    /// Per-profile rows, most to least browser-like.
    pub rows: Vec<EvasionTierRow>,
    /// Observations whose classified page reads as *explicit geoblocking*
    /// — must be zero: the detection tiers serve challenge/denial pages
    /// whose classes are never `ExplicitGeoblock`.
    pub misclassified_geoblock: usize,
    /// The domain-fronting leg.
    pub fronting: FrontingArtifacts,
}

/// The assembled stack.
pub struct Harness {
    /// Scale in use.
    pub scale: Scale,
    /// The world.
    pub world: Arc<World>,
    /// The simulated Internet.
    pub internet: Arc<SimInternet>,
    /// The Lumscan engine over the Luminati network.
    pub engine: Arc<Lumscan<LuminatiNetwork>>,
    /// The DNS view.
    pub dns: Arc<DnsDb>,
}

impl Harness {
    /// Stand up the stack at `scale`.
    pub fn new(scale: Scale) -> Harness {
        let world = Arc::new(World::build(WorldConfig {
            seed: scale.seed,
            population_size: scale.population,
            citizenlab_scan: scale.citizenlab_scan,
        }));
        let internet = Arc::new(SimInternet::new(world.clone()));
        let luminati = LuminatiNetwork::new(internet.clone());
        let config = LumscanConfig::builder()
            .build()
            .expect("default engine config is valid");
        let engine = Arc::new(Lumscan::new(luminati, config));
        let dns = Arc::new(DnsDb::new(world.clone()));
        Harness {
            scale,
            world,
            internet,
            engine,
            dns,
        }
    }

    /// The vantage panel: sanctioned countries first, then by abuse score,
    /// then the rest — truncated to the scale's country budget.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut all: Vec<CountryCode> = geoblock_worldgen::country::luminati_countries();
        all.sort_by(|a, b| {
            let ia = a.info().expect("registered");
            let ib = b.info().expect("registered");
            ib.sanctioned
                .cmp(&ia.sanctioned)
                .then(ib.abuse.partial_cmp(&ia.abuse).expect("no NaN"))
                .then(a.cmp(b))
        });
        all.truncate(self.scale.countries.min(all.len()));
        all
    }

    /// The §4 study, end to end: pre-pass country ranking, safety filter,
    /// baseline, clock advance, confirmation, outliers, discovery.
    pub async fn top10k(&self) -> Top10kArtifacts {
        let fg = Fortiguard::new(&self.world);
        let safe_domains = fg.safe_toplist(self.scale.top_n);
        let countries = self.countries();

        // Pre-pass: rank countries by observed blocking over the
        // NS-identified CDN customers (the paper seeded its top-20 from the
        // earlier Akamai/Cloudflare experiment).
        let ns_domains: Vec<String> = {
            let scan: Vec<String> = (1..=self.scale.top_n.min(2_000))
                .map(|r| self.world.population.spec(r).name)
                .collect();
            let (cf, ak) = identify_by_ns(self.dns.as_ref(), &scan);
            cf.into_iter().chain(ak).take(150).collect()
        };
        let rep_countries = if ns_domains.is_empty() {
            countries
                .iter()
                .take(self.scale.rep_countries)
                .copied()
                .collect()
        } else {
            StudySession::new(
                self.engine.clone(),
                StudyConfig::new(countries.clone(), Vec::new()),
            )
            .rank_countries(&ns_domains, &countries, self.scale.rep_countries)
            .await
        };

        let config = StudyConfig::builder()
            .countries(countries)
            .rep_countries(rep_countries.clone())
            .build()
            .expect("ranked rep countries come from the vantage panel");
        let mut session = StudySession::new(self.engine.clone(), config);
        let mut result = session.baseline(&safe_domains).await;

        // Outlier extraction, discovery, and coverage are computed on the
        // baseline data, as in the paper (the 30%-metric evaluation of
        // §4.1.5 predates the confirmation resample).
        let outliers = extract_outliers(
            &result.store,
            &OutlierConfig {
                cutoff: 0.30,
                rep_countries: rep_countries.clone(),
            },
        );
        let discovery = discover(
            &outliers.outliers,
            &result.archive,
            &geoblock_blockpages::CompiledFingerprintSet::paper(),
            &DiscoveryConfig::default(),
        );
        let coverage = CoverageStats::compute(&result.store);

        // "Several days later": arm the makro.co.za policy flip.
        self.internet.clock().advance_days(3);

        let flagged = session.confirm(&mut result).await;
        let verdicts = result.verdicts(&ConfirmConfig::default());
        let eliminated = eliminated(&result.store, &ConfirmConfig::default());

        Top10kArtifacts {
            safe_domains,
            result,
            verdicts,
            flagged,
            eliminated,
            outliers,
            discovery,
            coverage,
            rep_countries,
        }
    }

    /// 100-sample populations for the Figure 1 / Figure 3 experiments:
    /// clones the store and resamples every flagged pair.
    pub async fn hundred_sample_populations(
        &self,
        artifacts: &Top10kArtifacts,
    ) -> (geoblock_core::SampleStore, Vec<(usize, usize)>) {
        let mut session = StudySession::new(
            self.engine.clone(),
            StudyConfig::builder()
                .countries(artifacts.result.store.countries.clone())
                .rep_countries(artifacts.rep_countries.clone())
                .build()
                .expect("store countries cover the rep panel"),
        );
        let pairs: Vec<(usize, usize)> = artifacts
            .verdicts
            .iter()
            .filter_map(|v| {
                let d = artifacts.result.store.domain_index(&v.domain)?;
                let c = artifacts.result.store.country_index(v.country)?;
                Some((d, c))
            })
            .collect();
        let mut temp = StudyResult {
            store: geoblock_core::SampleStore::new(
                artifacts.result.store.domains.clone(),
                artifacts.result.store.countries.clone(),
            ),
            archive: geoblock_core::BodyArchive::new(),
        };
        session.resample(&mut temp, &pairs, 100).await;
        (temp.store, pairs)
    }

    /// §5.1.1 population identification over the first `scan_depth` ranks.
    pub async fn population_scan(&self) -> PopulationReport {
        let domains: Vec<String> = (1..=self.scale.scan_depth.min(self.scale.population))
            .map(|r| self.world.population.spec(r).name)
            .collect();
        let vps = Arc::new(VpsTransport::new(self.internet.clone(), cc("US")));
        identify_populations(
            vps,
            self.dns.as_ref(),
            &domains,
            &PopulationProbe {
                country: cc("US"),
                concurrency: 256,
            },
        )
        .await
    }

    /// The §5 study over the CDN-customer sample.
    pub async fn top1m(&self, population: &PopulationReport) -> Top1mArtifacts {
        let fg = Fortiguard::new(&self.world);
        let mut customers: Vec<String> =
            population.by_provider.values().flatten().cloned().collect();
        customers.sort();
        customers.dedup();
        let sample = fg.filter_and_sample(&customers, self.scale.sample_frac, self.scale.seed);

        let countries = self.countries();
        let config = StudyConfig::builder()
            .rep_countries(countries.iter().copied().take(6))
            .countries(countries)
            .build()
            .expect("rep panel is a prefix of the vantage panel");
        let mut session = StudySession::new(self.engine.clone(), config);
        let mut result = session.baseline(&sample).await;
        session.confirm(&mut result).await;
        session
            .confirm_ambiguous(&mut result, &[PageKind::Akamai, PageKind::Incapsula])
            .await;

        let verdicts = result.verdicts(&ConfirmConfig::default());
        let akamai = consistency_scores(&result.store, PageKind::Akamai);
        let incapsula = consistency_scores(&result.store, PageKind::Incapsula);
        let coverage = CoverageStats::compute(&result.store);
        Top1mArtifacts {
            sample,
            result,
            verdicts,
            akamai,
            incapsula,
            coverage,
        }
    }

    /// The §3 VPS exploration: NS identification, 16-country ZGrab sweep,
    /// browser verification.
    pub async fn exploration(&self) -> ExplorationArtifacts {
        let depth = self.scale.scan_depth.min(self.scale.population);
        let domains: Vec<String> = (1..=depth)
            .map(|r| self.world.population.spec(r).name)
            .collect();
        let (ns_cloudflare, ns_akamai) = identify_by_ns(self.dns.as_ref(), &domains);
        let targets: Vec<String> = ns_cloudflare
            .iter()
            .chain(ns_akamai.iter())
            .cloned()
            .collect();

        let mut sweeps = Vec::new();
        for country in vps_countries() {
            let vps = Arc::new(VpsTransport::new(self.internet.clone(), country));
            sweeps.push(
                sweep(
                    vps,
                    country,
                    &targets,
                    HeaderProfile::ZgrabUserAgentOnly,
                    // Pre-discovery, only these two pages were known.
                    &[PageKind::Akamai, PageKind::Cloudflare],
                    256,
                )
                .await,
            );
        }
        let flagged: Vec<_> = sweeps.iter().flat_map(|s| s.flagged.clone()).collect();
        let internet = self.internet.clone();
        let verification = verify_in_browser(
            move |country| Arc::new(VpsTransport::new(internet.clone(), country)),
            &flagged,
        )
        .await;

        ExplorationArtifacts {
            ns_cloudflare,
            ns_akamai,
            sweeps,
            verification,
        }
    }

    /// One probe batch for the reliability ablation: a slice of the top
    /// list across a handful of vantage countries.
    fn reliability_targets(&self) -> Vec<geoblock_lumscan::ProbeTarget> {
        let domains: Vec<String> = (1..=self.scale.top_n.min(200))
            .map(|r| self.world.population.spec(r).name)
            .collect();
        let countries: Vec<CountryCode> = self.countries().into_iter().take(6).collect();
        let mut targets = Vec::with_capacity(domains.len() * countries.len());
        for domain in &domains {
            for country in &countries {
                targets.push(geoblock_lumscan::ProbeTarget::http(domain, *country));
            }
        }
        targets
    }

    /// Run one leg of the reliability ablation: the batch through a fresh
    /// Luminati network wrapped in `plan`, probed under `policy`.
    pub async fn reliability_leg(
        &self,
        plan: FaultPlan,
        policy: RetryPolicy,
    ) -> (BatchStats, FaultStatsSnapshot) {
        let luminati = LuminatiNetwork::new(self.internet.clone());
        let faulty = FaultyTransport::new(luminati, plan);
        let config = LumscanConfig::builder()
            .retry(policy)
            .build()
            .expect("ablation config is valid");
        let engine = Arc::new(Lumscan::new(faulty, config));
        // Drain the stream: only the aggregate matters here, so each
        // result is folded into the stats and dropped as it lands.
        let stats = engine
            .probe_stream(self.reliability_targets())
            .drain()
            .await;
        (stats, engine.transport().stats())
    }

    /// The full reliability ablation (clean ceiling, naive, hardened) under
    /// `plan` — the repro binary's reliability table and the acceptance
    /// check's ≥95% recovery bar both come from here.
    pub async fn reliability(&self, plan: FaultPlan) -> ReliabilityArtifacts {
        let (clean, _) = self
            .reliability_leg(FaultPlan::none(plan.seed), RetryPolicy::none())
            .await;
        let (naive, naive_faults) = self
            .reliability_leg(plan.clone(), RetryPolicy::none())
            .await;
        let (hardened, hardened_faults) = self
            .reliability_leg(plan.clone(), RetryPolicy::with_max_retries(4))
            .await;
        ReliabilityArtifacts {
            plan,
            clean,
            naive,
            hardened,
            naive_faults,
            hardened_faults,
        }
    }

    /// The batch-vs-streaming ablation under `plan` (use
    /// [`FaultPlan::straggler`]): same targets, same weather, chunked
    /// barrier-batch vs one lazy stream. Measures wall-clock and peak
    /// in-flight targets for both architectures.
    pub async fn streaming(&self, plan: FaultPlan) -> StreamingArtifacts {
        const CONCURRENCY: usize = 32;
        const CHUNK: usize = 192;
        let targets = self.reliability_targets();
        let make_engine = || {
            let luminati = LuminatiNetwork::new(self.internet.clone());
            let faulty = FaultyTransport::new(luminati, plan.clone());
            let config = LumscanConfig::builder()
                .concurrency(CONCURRENCY)
                .build()
                .expect("ablation config is valid");
            Arc::new(Lumscan::new(faulty, config))
        };

        // Batch leg: the old architecture. Every chunk is materialized and
        // barriered on, so each chunk's wall-clock is its slowest chain.
        let engine = make_engine();
        let start = Instant::now();
        let mut batch_stats = BatchStats::default();
        for chunk in targets.chunks(CHUNK) {
            for result in &engine.probe_all(chunk).await {
                batch_stats.record(result);
            }
        }
        batch_stats.quarantined_exits = engine.breaker().quarantined_count();
        let batch_wall = start.elapsed();

        // Streaming leg: identical targets pulled lazily through one
        // stream; stragglers overlap instead of gating a chunk boundary.
        let engine = make_engine();
        let mut gauge = GaugeSink::new();
        let start = Instant::now();
        let stream_stats = engine
            .probe_stream_with(targets.iter().cloned(), &mut gauge)
            .drain()
            .await;
        let stream_wall = start.elapsed();

        StreamingArtifacts {
            plan,
            targets: targets.len(),
            concurrency: CONCURRENCY,
            chunk: CHUNK,
            batch_wall,
            stream_wall,
            batch_stats,
            stream_stats,
            peak_in_flight: gauge.peak_in_flight,
        }
    }

    /// The sharded-vs-single orchestration ablation under `plan` (use
    /// [`FaultPlan::straggler`]): one baseline pass, run plain and then
    /// through the orchestrator at each of `shard_counts`, on fresh
    /// engines each time so breaker and invocation state never leak
    /// between legs. Asserts nothing itself; `identical` reports whether
    /// every sharded merge reproduced the single-stream study.
    pub async fn sharded(&self, plan: FaultPlan, shard_counts: &[usize]) -> ShardingArtifacts {
        use geoblock_orchestrator::{Orchestrator, OrchestratorConfig};

        const WORK_UNIT_DOMAINS: usize = 4;
        let domains: Vec<String> = (1..=self.scale.top_n.min(64))
            .map(|r| self.world.population.spec(r).name)
            .collect();
        let countries: Vec<CountryCode> = self.countries().into_iter().take(6).collect();
        let config = StudyConfig::builder()
            .rep_countries(countries.iter().copied().take(2))
            .countries(countries)
            .work_unit_domains(WORK_UNIT_DOMAINS)
            .build()
            .expect("ablation study config is valid");
        let make_engine = || {
            let luminati = LuminatiNetwork::new(self.internet.clone());
            let faulty = FaultyTransport::new(luminati, plan.clone());
            let engine_config = LumscanConfig::builder()
                .concurrency(8)
                .build()
                .expect("ablation config is valid");
            Arc::new(Lumscan::new(faulty, engine_config))
        };

        // Reference leg: the plain streaming baseline.
        let mut session = StudySession::new(make_engine(), config.clone());
        let start = Instant::now();
        let reference = session.baseline(&domains).await;
        let single_wall = start.elapsed();
        let reference_digest = result_digest(&reference);

        let mut runs = Vec::new();
        let mut identical = true;
        let mut total_units = 0;
        for &shards in shard_counts {
            let orch = Orchestrator::new(
                make_engine(),
                config.clone(),
                OrchestratorConfig::default().shards(shards),
            );
            total_units = orch.shard_plan(&domains).total_units();
            let start = Instant::now();
            let run = orch
                .baseline(&domains)
                .await
                .expect("ablation baseline never checkpoints, so it cannot fail");
            runs.push((shards, start.elapsed()));
            identical &= result_digest(&run.result) == reference_digest;
        }

        ShardingArtifacts {
            plan,
            domains: domains.len(),
            work_unit_domains: WORK_UNIT_DOMAINS,
            total_units,
            probes: domains.len() * config.countries.len() * config.baseline_samples as usize,
            runs,
            single_wall,
            identical,
        }
    }

    /// The §6 Cloudflare rules snapshot.
    pub fn cloudflare_snapshot(&self) -> RulesSnapshot {
        RulesSnapshot::generate(self.scale.seed, self.scale.cf_scale)
    }

    /// The §7.1 OONI corpus.
    pub fn ooni_corpus(&self) -> Vec<OoniMeasurement> {
        ooni::generate(
            self.scale.seed,
            &self.world.population,
            &self.world.citizenlab,
            &OoniConfig {
                measurements: self.scale.ooni_measurements,
                ..OoniConfig::default()
            },
        )
    }

    /// Figure 4's flagged-pair count for a store.
    pub fn flagged_pairs(store: &geoblock_core::SampleStore) -> usize {
        flagged_explicit_pairs(store).len()
    }

    /// The prober-bias (evasion) ablation. An associated fn, not a method:
    /// the panel is synthesized directly with a known-clean ground truth
    /// (no geoblocking anywhere) rather than drawn from `self.world`, so
    /// the measurement isolates the tiered detection pipeline in
    /// [`edge::serve`] and replays bit-for-bit from `(seed, domains)`.
    ///
    /// Every canonical [`ClientProfile`] probes every live (domain,
    /// country) pair once, with the same request sequence number, so the
    /// only variable across rows is the client's presented identity. Any
    /// fingerprinted page is therefore a prober-induced false block. The
    /// fronting leg sends the same fronted browser request at
    /// fronting-intolerant (CloudFront) and fronting-tolerant (Cloudflare)
    /// edges and classifies what comes back.
    pub fn evasion(seed: u64, domains: usize, countries: &[CountryCode]) -> EvasionArtifacts {
        const FRONTING_DOMAINS: usize = 24;
        let set = FingerprintSet::paper();
        let cache = OriginCache::new(512);
        let profiles: [(&'static str, ClientProfile); 5] = [
            ("browser", ClientProfile::browser()),
            ("headless", ClientProfile::headless()),
            ("zgrab", ClientProfile::zgrab()),
            ("curl", ClientProfile::curl()),
            ("bare", ClientProfile::bare()),
        ];
        let mut rows: Vec<EvasionTierRow> = profiles
            .iter()
            .map(|(name, p)| EvasionTierRow {
                profile: name,
                likeness: edge::browser_likeness(&p.header_map()),
                js_capable: p.js_capable,
                scanner_tls: p.tls == TlsClientClass::ScannerStack,
                false_blocked: 0,
                challenged: 0,
                denied: 0,
                false_block_rate: 0.0,
            })
            .collect();

        let mut pairs = 0;
        let mut misclassified_geoblock = 0;
        for d in 0..domains {
            let spec = evasion_spec(seed, d);
            for &country in countries {
                let client = ClientContext {
                    ip: "198.51.100.77".to_string(),
                    country,
                    region: None,
                    residential: false,
                    seq_nonce: None,
                };
                let chash = ((country.0[0] as u64) << 8) | country.0[1] as u64;
                let seq = splitmix(spec.policy_seed ^ chash ^ 0x5e9);
                let probe = |profile: &ClientProfile| {
                    let request =
                        Request::get(Url::http(spec.name.as_str())).client_profile(profile);
                    edge::serve(&spec, &cache, &request, &client, 0, seq)
                };
                // Dead sites and broken pairs fail identically for every
                // profile (they precede the detection tiers), so a pair the
                // browser cannot reach is excluded rather than measured.
                if probe(&ClientProfile::browser()).is_none() {
                    continue;
                }
                pairs += 1;
                for (row, (_, profile)) in rows.iter_mut().zip(&profiles) {
                    let response = probe(profile).expect("liveness is profile-independent");
                    if let Some(outcome) = set.classify(&response) {
                        row.false_blocked += 1;
                        if matches!(
                            outcome.kind.class(),
                            PageClass::Captcha | PageClass::JsChallenge
                        ) {
                            row.challenged += 1;
                        } else {
                            row.denied += 1;
                        }
                        if outcome.kind.is_explicit_geoblock() {
                            misclassified_geoblock += 1;
                        }
                    }
                }
            }
        }
        for row in &mut rows {
            row.false_block_rate = row.false_blocked as f64 / pairs.max(1) as f64;
        }

        // Fronting leg: a fresh index space so names never collide with the
        // bot-detection panel, detection disabled so only the certificate
        // check is in play.
        let mut fronting = FrontingArtifacts {
            fronted_requests: 0,
            mismatch_pages: 0,
            routed: 0,
        };
        let vantage = countries.first().copied().unwrap_or_else(|| cc("US"));
        for (i, &provider) in [Provider::CloudFront, Provider::Cloudflare]
            .iter()
            .enumerate()
        {
            for d in 0..FRONTING_DOMAINS {
                let mut spec = evasion_spec(seed, domains + i * FRONTING_DOMAINS + d);
                spec.providers = vec![provider];
                spec.policy.bot_sensitive = false;
                let client = ClientContext {
                    ip: "198.51.100.77".to_string(),
                    country: vantage,
                    region: None,
                    residential: false,
                    seq_nonce: None,
                };
                let request = Request::get(Url::http(spec.name.as_str()))
                    .client_profile(&ClientProfile::browser())
                    .fronted("front-door.example");
                let seq = splitmix(spec.policy_seed ^ 0xf207);
                // The edge is looked up by the Host header's customer, as a
                // fronting client intends; `request.url.host` carries the
                // front. NB: `serve` sees the mismatch before any policy.
                if let Some(response) = edge::serve(&spec, &cache, &request, &client, 0, seq) {
                    fronting.fronted_requests += 1;
                    match set.classify(&response) {
                        Some(outcome) => {
                            if outcome.kind == PageKind::CloudFrontFronting {
                                fronting.mismatch_pages += 1;
                            }
                            if outcome.kind.is_explicit_geoblock() {
                                misclassified_geoblock += 1;
                            }
                        }
                        None => fronting.routed += 1,
                    }
                }
            }
        }

        EvasionArtifacts {
            pairs,
            rows,
            misclassified_geoblock,
            fronting,
        }
    }
}

/// splitmix64 avalanche for the evasion panel's synthesis.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One synthesized panel domain: a benign-category site fronted by one of
/// the bot-detection providers, ~70% of them bot-sensitive, with *no*
/// geoblocking, challenging, or origin blocks — the clean ground truth the
/// false-block rate is measured against.
fn evasion_spec(seed: u64, d: usize) -> DomainSpec {
    let h = splitmix(seed ^ (d as u64).wrapping_mul(0x9e3779b97f4a7c15));
    let provider = match d % 3 {
        0 => Provider::Akamai,
        1 => Provider::Incapsula,
        _ => Provider::Distil,
    };
    DomainSpec {
        name: format!("evasion-{d}.example"),
        rank: d as u32 + 1,
        category: Category::Business,
        providers: vec![provider],
        cf_tier: None,
        base_page_bytes: 30_000 + (h % 20_000) as u32,
        on_citizenlab: false,
        policy: DomainPolicy {
            bot_sensitive: h % 10 < 7,
            ..DomainPolicy::default()
        },
        policy_seed: splitmix(h ^ 0xe7a_510),
    }
}

/// A canonical text digest of a study's data — cells in store order,
/// archived bodies sorted by key — so two results compare by string
/// equality regardless of how they were assembled.
fn result_digest(result: &StudyResult) -> String {
    let mut out = String::new();
    for (d, c, samples) in result.store.iter_cells() {
        out.push_str(&format!("{d}/{c}:{samples:?}\n"));
    }
    let mut docs: Vec<String> = result
        .archive
        .iter()
        .map(|((d, c, s), body)| format!("{d}/{c}/{s}|{}", String::from_utf8_lossy(body)))
        .collect();
    docs.sort();
    out.push_str(&docs.join("\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_blockpages::Provider;

    #[test]
    fn evasion_ablation_bias_is_monotone_and_never_reads_as_geoblocking() {
        let countries: Vec<CountryCode> = ["US", "DE", "NL", "IR", "RU", "BR", "IN", "JP"]
            .map(cc)
            .to_vec();
        let a = Harness::evasion(42, 160, &countries);
        assert!(a.pairs > 0, "the panel must have live pairs");

        // A full browser passes every tier: its measured study is the
        // ground truth (all clean).
        assert_eq!(a.rows[0].profile, "browser");
        assert_eq!(a.rows[0].false_blocked, 0);

        // Bias grows monotonically as the client sheds browser-likeness,
        // JS capability, and a browser TLS stack — the rows are ordered
        // most to least evasive, and the tier-failure sets nest.
        for pair in a.rows.windows(2) {
            assert!(
                pair[0].false_block_rate <= pair[1].false_block_rate,
                "{} ({:.3}) must not out-block {} ({:.3})",
                pair[0].profile,
                pair[0].false_block_rate,
                pair[1].profile,
                pair[1].false_block_rate,
            );
        }
        let bare = a.rows.last().expect("five rows");
        assert!(
            bare.false_block_rate > 0.5,
            "bare trips every bot-sensitive pair"
        );

        // The detection tiers and the fronting check must never be
        // classified as explicit geoblocking.
        assert_eq!(a.misclassified_geoblock, 0);

        // Fronting: CloudFront rejects with the mismatch page, Cloudflare
        // routes on Host and serves normally.
        assert!(a.fronting.mismatch_pages > 0);
        assert!(a.fronting.routed > 0);
        assert_eq!(
            a.fronting.fronted_requests,
            a.fronting.mismatch_pages + a.fronting.routed
        );

        // Bit-for-bit replay from the same seed.
        let b = Harness::evasion(42, 160, &countries);
        assert_eq!(a.pairs, b.pairs);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.false_blocked, y.false_blocked);
        }
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn quick_scale_top10k_produces_artifacts() {
        let h = Harness::new(Scale::quick(42));
        let a = h.top10k().await;
        assert!(!a.safe_domains.is_empty());
        assert!(!a.verdicts.is_empty(), "no verdicts at quick scale");
        assert!(a.outliers.inspected > 0);
        assert!(a.discovery.corpus_size > 0);
        assert_eq!(a.rep_countries.len(), h.scale.rep_countries);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn quick_scale_reliability_ablation_recovers_losses() {
        let h = Harness::new(Scale::quick(42));
        let r = h.reliability(FaultPlan::standard(7)).await;
        assert!(
            r.naive_losses() > 0,
            "standard plan must visibly hurt naive probing"
        );
        assert!(
            r.recovered_share() >= 0.95,
            "hardened probing recovered only {:.1}% of {} naive losses",
            r.recovered_share() * 100.0,
            r.naive_losses()
        );
        assert!(r.hardened.recovered > 0);
        assert!(r.hardened_faults.faulted() >= r.naive_faults.faulted() / 2);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn quick_scale_streaming_ablation_beats_batch() {
        let h = Harness::new(Scale::quick(42));
        let s = h.streaming(FaultPlan::straggler(11)).await;
        assert_eq!(
            s.batch_stats.total, s.stream_stats.total,
            "legs probed different loads"
        );
        assert!(
            s.batch_stats.total >= 1000,
            "ablation load too small to mean anything"
        );
        assert!(
            s.peak_in_flight <= s.concurrency,
            "streaming peak in-flight {} exceeded concurrency {}",
            s.peak_in_flight,
            s.concurrency
        );
        assert!(
            s.stream_wall <= s.batch_wall,
            "streaming ({:?}) slower than batch ({:?}) under stragglers",
            s.stream_wall,
            s.batch_wall
        );
        // Both legs must actually get responses through the weather.
        assert!(s.stream_stats.responded * 10 >= s.stream_stats.total * 9);
        assert!(s.batch_stats.responded * 10 >= s.batch_stats.total * 9);
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn quick_scale_sharding_ablation_is_lossless() {
        let h = Harness::new(Scale::quick(42));
        let s = h.sharded(FaultPlan::straggler(13), &[1, 2, 8]).await;
        assert!(
            s.identical,
            "a sharded merge diverged from the single-stream baseline"
        );
        assert_eq!(s.runs.len(), 3);
        assert!(s.total_units > 8, "want more units than shards");
        assert!(s.probes >= 1000, "ablation load too small to mean anything");
    }

    #[tokio::test(flavor = "multi_thread")]
    async fn quick_scale_population_scan_finds_all_providers() {
        let h = Harness::new(Scale::quick(42));
        let report = h.population_scan().await;
        for p in [
            Provider::Cloudflare,
            Provider::CloudFront,
            Provider::Akamai,
            Provider::Incapsula,
            Provider::AppEngine,
        ] {
            assert!(!report.of(p).is_empty(), "no {p} customers found");
        }
        assert!(report.total_unique() > 500);
    }
}
