//! HTTP/1.1 wire (de)serialisation for request and response heads.
//!
//! The simulator passes typed values around in-process, but the wire codec
//! keeps the model honest: every request/response the simulation produces
//! can be rendered to valid HTTP/1.1 text and parsed back. Examples use it
//! to show raw exchanges, and property tests round-trip through it.

use std::fmt::Write as _;

use crate::error::FetchError;
use crate::headers::HeaderMap;
use crate::method::Method;
use crate::request::Request;
use crate::response::{Body, Response};
use crate::status::StatusCode;
use crate::url::Url;

/// Render a request head (+ blank line) as HTTP/1.1 text.
pub fn write_request(req: &Request) -> String {
    let mut out = String::new();
    let target = if req.url.query.is_some() {
        format!("{}?{}", req.url.path, req.url.query.as_deref().unwrap())
    } else {
        req.url.path.clone()
    };
    let _ = writeln!(out, "{} {} HTTP/1.1\r", req.method, target);
    if !req.headers.contains("host") {
        match req.url.port {
            Some(port) => {
                let _ = writeln!(out, "Host: {}:{port}\r", req.url.host);
            }
            None => {
                let _ = writeln!(out, "Host: {}\r", req.url.host);
            }
        }
    }
    for (name, value) in req.headers.iter() {
        let _ = writeln!(out, "{}: {}\r", canonical_case(name.as_str()), value);
    }
    out.push_str("\r\n");
    out
}

/// Render a response (head + body) as HTTP/1.1 text.
pub fn write_response(resp: &Response) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "HTTP/1.1 {} {}\r",
        resp.status.as_u16(),
        resp.status.reason()
    );
    for (name, value) in resp.headers.iter() {
        let _ = writeln!(out, "{}: {}\r", canonical_case(name.as_str()), value);
    }
    if !resp.headers.contains("content-length") {
        let _ = writeln!(out, "Content-Length: {}\r", resp.body.len());
    }
    out.push_str("\r\n");
    out.push_str(&resp.body.as_text());
    out
}

/// Parse an HTTP/1.1 request head produced by [`write_request`].
pub fn parse_request(text: &str, scheme: &str) -> Result<Request, FetchError> {
    let malformed = |detail: &str| FetchError::MalformedResponse {
        detail: detail.to_string(),
    };
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or_else(|| malformed("empty request"))?;
    let mut parts = request_line.split(' ');
    let method: Method = parts
        .next()
        .ok_or_else(|| malformed("missing method"))?
        .parse()
        .map_err(|_| malformed("bad method"))?;
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let headers = parse_headers(lines)?;
    let host = headers
        .get("host")
        .ok_or_else(|| malformed("missing Host header"))?;
    let url: Url = format!("{scheme}://{host}{target}")
        .parse()
        .map_err(|_| malformed("bad target"))?;
    let mut headers = headers;
    headers.remove("host");
    // TLS class and JS capability are client-side simulation metadata and
    // do not survive a wire round trip; parsed requests get the defaults.
    Ok(Request {
        method,
        url,
        headers,
        tls: Default::default(),
        js_capable: false,
    })
}

/// Parse an HTTP/1.1 response produced by [`write_response`]. `url` is the
/// request URL the response answers (not carried on the wire).
pub fn parse_response(text: &str, url: Url) -> Result<Response, FetchError> {
    let malformed = |detail: &str| FetchError::MalformedResponse {
        detail: detail.to_string(),
    };
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| malformed("missing head/body separator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| malformed("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(malformed("bad HTTP version"));
    }
    let code: u16 = parts
        .next()
        .ok_or_else(|| malformed("missing status"))?
        .parse()
        .map_err(|_| malformed("non-numeric status"))?;
    let status = StatusCode::new(code).ok_or_else(|| malformed("status out of range"))?;
    let mut headers = parse_headers(lines)?;
    headers.remove("content-length");
    Ok(Response {
        status,
        headers,
        body: Body::from(body),
        url,
    })
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<HeaderMap, FetchError> {
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or(FetchError::MalformedResponse {
            detail: format!("bad header line: {line:?}"),
        })?;
        if name.is_empty() || name.contains(' ') {
            return Err(FetchError::MalformedResponse {
                detail: format!("bad header name: {name:?}"),
            });
        }
        headers.append(name, value.trim());
    }
    Ok(headers)
}

/// Render a lower-cased name in conventional Train-Case for the wire.
fn canonical_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    for ch in name.chars() {
        if upper_next {
            out.extend(ch.to_uppercase());
        } else {
            out.push(ch);
        }
        upper_next = ch == '-';
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::get("http://example.com/a?b=1".parse().unwrap())
            .header("User-Agent", "Lumscan/1.0")
            .header("Accept", "*/*");
        let wire = write_request(&req);
        assert!(wire.starts_with("GET /a?b=1 HTTP/1.1\r\n"));
        assert!(wire.contains("Host: example.com\r\n"));
        let parsed = parse_request(&wire, "http").unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_round_trip() {
        let url: Url = "http://example.com/".parse().unwrap();
        let resp = Response::builder(StatusCode::FORBIDDEN)
            .header("Server", "cloudflare")
            .header("CF-RAY", "41f1-IAD")
            .body("<html>error code: 1009</html>")
            .finish(url.clone());
        let wire = write_response(&resp);
        assert!(wire.starts_with("HTTP/1.1 403 Forbidden\r\n"));
        assert!(wire.contains("Content-Length: 29\r\n"));
        let parsed = parse_response(&wire, url).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn canonical_case_restores_convention() {
        assert_eq!(canonical_case("cf-ray"), "Cf-Ray");
        assert_eq!(canonical_case("user-agent"), "User-Agent");
        assert_eq!(canonical_case("x-iinfo"), "X-Iinfo");
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_response("garbage", "http://a.com/".parse().unwrap()).is_err());
        assert!(parse_response("HTTP/2 200 OK\r\n\r\n", "http://a.com/".parse().unwrap()).is_err());
        assert!(parse_request("GET /\r\n\r\n", "http").is_err()); // no Host
    }
}
