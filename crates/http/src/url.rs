//! Minimal URL type: scheme, host, port, path, query.
//!
//! The measurement lists are domain names (Alexa ranks); URLs appear when
//! following redirect chains (`Location:` may be absolute, scheme-relative,
//! or path-relative) and when extracting TLDs for Table 5.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// The host portion of a URL. Registered names only — the simulated Internet
/// addresses everything by name, and IP-literal targets never occur in the
/// paper's test lists.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Host(String);

impl Host {
    /// Normalise a host name to lower case.
    pub fn new(name: &str) -> Host {
        Host(name.to_ascii_lowercase())
    }

    /// The normalised name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The final label, e.g. `"com"` for `www.example.com`. Used for the
    /// TLD breakdown in Table 5.
    pub fn tld(&self) -> &str {
        self.0.rsplit('.').next().unwrap_or(&self.0)
    }

    /// The registrable domain under a simple public-suffix model: the last
    /// two labels, or the last three when the suffix is a two-level country
    /// suffix like `co.za` / `com.br`.
    pub fn registrable_domain(&self) -> String {
        let labels: Vec<&str> = self.0.split('.').collect();
        if labels.len() <= 2 {
            return self.0.clone();
        }
        let last2 = format!("{}.{}", labels[labels.len() - 2], labels[labels.len() - 1]);
        let two_level_suffix = matches!(
            last2.as_str(),
            "co.za"
                | "co.uk"
                | "co.jp"
                | "co.in"
                | "co.kr"
                | "com.br"
                | "com.au"
                | "com.cn"
                | "com.sg"
                | "com.tr"
                | "net.au"
                | "org.uk"
                | "ac.uk"
                | "gov.uk"
        );
        let take = if two_level_suffix { 3 } else { 2 };
        labels[labels.len() - take..].join(".")
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &Host) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(&other.0)
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }
}

impl fmt::Display for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Host {
    fn from(s: &str) -> Self {
        Host::new(s)
    }
}

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Host name.
    pub host: Host,
    /// Explicit port, if present.
    pub port: Option<u16>,
    /// Path, always beginning with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
}

impl Url {
    /// Build an `http://host/` URL for a bare domain, the way the study
    /// requests each test-list entry.
    pub fn http(host: impl Into<Host>) -> Url {
        Url {
            scheme: "http".to_string(),
            host: host.into(),
            port: None,
            path: "/".to_string(),
            query: None,
        }
    }

    /// Build an `https://host/` URL.
    pub fn https(host: impl Into<Host>) -> Url {
        Url {
            scheme: "https".to_string(),
            host: host.into(),
            ..Url::http("x")
        }
    }

    /// Effective port (explicit, or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port
            .unwrap_or(if self.scheme == "https" { 443 } else { 80 })
    }

    /// Resolve a `Location:` header value against this URL per RFC 3986
    /// (restricted to the absolute / scheme-relative / absolute-path /
    /// relative-path forms that occur in practice).
    pub fn join(&self, location: &str) -> Result<Url, UrlParseError> {
        if location.contains("://") {
            return location.parse();
        }
        if let Some(rest) = location.strip_prefix("//") {
            return format!("{}://{}", self.scheme, rest).parse();
        }
        let mut out = self.clone();
        out.query = None;
        if let Some(abs) = location.strip_prefix('/') {
            let (path, query) = split_query(abs);
            out.path = format!("/{path}");
            out.query = query;
        } else {
            let base = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            let (path, query) = split_query(location);
            out.path = format!("{base}{path}");
            out.query = query;
        }
        Ok(out)
    }
}

fn split_query(s: &str) -> (String, Option<String>) {
    match s.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (s.to_string(), None),
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        f.write_str(&self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

/// Error produced when URL parsing fails.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UrlParseError {
    /// The offending input.
    pub input: String,
    /// Human-readable cause.
    pub reason: &'static str,
}

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse URL {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for UrlParseError {}

impl FromStr for Url {
    type Err = UrlParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = |reason| UrlParseError {
            input: s.to_string(),
            reason,
        };
        let (scheme, rest) = s.split_once("://").ok_or_else(|| err("missing scheme"))?;
        if scheme != "http" && scheme != "https" {
            return Err(err("unsupported scheme"));
        }
        if rest.is_empty() {
            return Err(err("empty authority"));
        }
        let (authority, path_and_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(err("empty authority"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| err("invalid port"))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host.is_empty()
            || !host
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'.')
        {
            return Err(err("invalid host"));
        }
        let (path, query) = split_query(path_and_query);
        Ok(Url {
            scheme: scheme.to_string(),
            host: Host::new(host),
            port,
            path,
            query,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_domain() {
        let u: Url = "http://Example.COM".parse().unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host.as_str(), "example.com");
        assert_eq!(u.path, "/");
        assert_eq!(u.effective_port(), 80);
    }

    #[test]
    fn parses_port_path_query() {
        let u: Url = "https://example.com:8443/a/b?x=1&y=2".parse().unwrap();
        assert_eq!(u.port, Some(8443));
        assert_eq!(u.effective_port(), 8443);
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.query.as_deref(), Some("x=1&y=2"));
        assert_eq!(u.to_string(), "https://example.com:8443/a/b?x=1&y=2");
    }

    #[test]
    fn rejects_garbage() {
        assert!("example.com".parse::<Url>().is_err());
        assert!("ftp://example.com".parse::<Url>().is_err());
        assert!("http://".parse::<Url>().is_err());
        assert!("http://ex ample.com/".parse::<Url>().is_err());
        assert!("http://example.com:notaport/".parse::<Url>().is_err());
    }

    #[test]
    fn join_absolute() {
        let base: Url = "http://a.com/x".parse().unwrap();
        let j = base.join("https://b.com/y").unwrap();
        assert_eq!(j.to_string(), "https://b.com/y");
    }

    #[test]
    fn join_scheme_relative() {
        let base: Url = "https://a.com/x".parse().unwrap();
        let j = base.join("//b.com/y").unwrap();
        assert_eq!(j.to_string(), "https://b.com/y");
    }

    #[test]
    fn join_absolute_path() {
        let base: Url = "http://a.com/x/y?q=1".parse().unwrap();
        let j = base.join("/z?w=2").unwrap();
        assert_eq!(j.to_string(), "http://a.com/z?w=2");
    }

    #[test]
    fn join_relative_path() {
        let base: Url = "http://a.com/dir/page".parse().unwrap();
        let j = base.join("other").unwrap();
        assert_eq!(j.to_string(), "http://a.com/dir/other");
    }

    #[test]
    fn tld_extraction() {
        assert_eq!(Host::new("www.example.com").tld(), "com");
        assert_eq!(Host::new("makro.co.za").tld(), "za");
    }

    #[test]
    fn registrable_domain_rules() {
        assert_eq!(
            Host::new("www.example.com").registrable_domain(),
            "example.com"
        );
        assert_eq!(
            Host::new("shop.makro.co.za").registrable_domain(),
            "makro.co.za"
        );
        assert_eq!(Host::new("example.com").registrable_domain(), "example.com");
        assert_eq!(Host::new("localhost").registrable_domain(), "localhost");
    }

    #[test]
    fn subdomain_relation() {
        let parent = Host::new("example.com");
        assert!(Host::new("www.example.com").is_subdomain_of(&parent));
        assert!(Host::new("example.com").is_subdomain_of(&parent));
        assert!(!Host::new("badexample.com").is_subdomain_of(&parent));
        assert!(!Host::new("example.org").is_subdomain_of(&parent));
    }
}
