//! HTTP response model.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::headers::HeaderMap;
use crate::status::StatusCode;
use crate::url::Url;

/// A response body.
///
/// Bodies are HTML documents in this system; [`Bytes`] keeps clones cheap
/// when the same block page is observed hundreds of thousands of times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Body(Bytes);

impl Body {
    /// An empty body (e.g. `HEAD` responses, 204s).
    pub fn empty() -> Body {
        Body(Bytes::new())
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// The backing [`Bytes`] handle — clone it to share the body without
    /// copying (the zero-copy probe→classify→archive path).
    pub fn bytes(&self) -> &Bytes {
        &self.0
    }

    /// Take the backing [`Bytes`] out of the body without copying.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }

    /// Body length in bytes — the unit of the paper's page-length heuristic.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Lossy UTF-8 view, for text mining and display only. Fingerprint
    /// matching runs on [`Body::as_bytes`]; keep this off the match path —
    /// it allocates whenever the body is not valid UTF-8.
    pub fn as_text(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.0)
    }
}

impl From<String> for Body {
    fn from(s: String) -> Self {
        Body(Bytes::from(s))
    }
}

impl From<&str> for Body {
    fn from(s: &str) -> Self {
        Body(Bytes::copy_from_slice(s.as_bytes()))
    }
}

impl From<Bytes> for Body {
    fn from(b: Bytes) -> Self {
        Body(b)
    }
}

impl From<Body> for Bytes {
    fn from(b: Body) -> Self {
        b.0
    }
}

impl Serialize for Body {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.as_text())
    }
}

impl<'de> Deserialize<'de> for Body {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Body::from(String::deserialize(deserializer)?))
    }
}

/// An HTTP response as observed by a vantage point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Response headers.
    pub headers: HeaderMap,
    /// Response body.
    pub body: Body,
    /// The URL this response was served for (after any per-hop rewriting).
    pub url: Url,
}

impl Response {
    /// Start building a response with `status`.
    pub fn builder(status: StatusCode) -> ResponseBuilder {
        ResponseBuilder {
            status,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// The redirect target, if this is a 3xx with a `Location` header.
    pub fn redirect_target(&self) -> Option<&str> {
        if self.status.is_redirect() {
            self.headers.get("location")
        } else {
            None
        }
    }

    /// Body length in bytes (the page-length heuristic's measure).
    pub fn body_len(&self) -> usize {
        self.body.len()
    }
}

/// Builder for [`Response`].
#[derive(Debug, Clone)]
pub struct ResponseBuilder {
    status: StatusCode,
    headers: HeaderMap,
    body: Body,
}

impl ResponseBuilder {
    /// Append a header.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> ResponseBuilder {
        self.headers.append(name, value);
        self
    }

    /// Set the body.
    pub fn body(mut self, body: impl Into<Body>) -> ResponseBuilder {
        self.body = body.into();
        self
    }

    /// Finish, attaching the URL the response answers.
    pub fn finish(self, url: Url) -> Response {
        Response {
            status: self.status,
            headers: self.headers,
            body: self.body,
            url,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn builder_assembles_response() {
        let r = Response::builder(StatusCode::FORBIDDEN)
            .header("Server", "cloudflare")
            .body("error code: 1009")
            .finish(url("http://x.com/"));
        assert_eq!(r.status, StatusCode::FORBIDDEN);
        assert_eq!(r.headers.get("server"), Some("cloudflare"));
        assert_eq!(r.body_len(), 16);
    }

    #[test]
    fn redirect_target_requires_3xx_and_location() {
        let r = Response::builder(StatusCode::FOUND)
            .header("Location", "https://x.com/")
            .finish(url("http://x.com/"));
        assert_eq!(r.redirect_target(), Some("https://x.com/"));

        let r = Response::builder(StatusCode::OK)
            .header("Location", "https://x.com/")
            .finish(url("http://x.com/"));
        assert_eq!(r.redirect_target(), None);

        let r = Response::builder(StatusCode::FOUND).finish(url("http://x.com/"));
        assert_eq!(r.redirect_target(), None);
    }

    #[test]
    fn body_bytes_handle_shares_without_copy() {
        let b = Body::from("some block page body");
        let shared: Bytes = b.bytes().clone();
        assert_eq!(&shared[..], b.as_bytes());
        let taken: Bytes = b.into_bytes();
        assert_eq!(shared, taken);
        let back = Body::from(taken);
        assert_eq!(back.as_bytes(), &shared[..]);
    }

    #[test]
    fn body_text_roundtrip() {
        let b = Body::from("héllo");
        assert_eq!(b.as_text(), "héllo");
        assert_eq!(b.len(), 6); // é is two bytes
        assert!(!b.is_empty());
        assert!(Body::empty().is_empty());
    }
}
