//! HTTP request model.

use serde::{Deserialize, Serialize};

use crate::headers::HeaderMap;
use crate::method::Method;
use crate::profile::{ClientProfile, TlsClientClass};
use crate::url::Url;

/// An HTTP request as issued by a probing tool.
///
/// Requests are value types: the probing engines clone and mutate them per
/// retry/hop, so no body streaming is modelled (the measurement tools only
/// send `GET`/`HEAD` with empty bodies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Request headers.
    pub headers: HeaderMap,
    /// TLS client stack presented on the wire (simulation metadata; real
    /// tools express this by their choice of TLS library).
    #[serde(default)]
    pub tls: TlsClientClass,
    /// Whether the issuing client executes JS challenges — consulted by the
    /// simulated edge's JS-interstitial tier, never serialised on the wire.
    #[serde(default)]
    pub js_capable: bool,
}

impl Request {
    /// A `GET` request for `url` with no headers.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
            tls: TlsClientClass::default(),
            js_capable: false,
        }
    }

    /// A `HEAD` request for `url` with no headers.
    pub fn head(url: Url) -> Request {
        Request {
            method: Method::Head,
            ..Request::get(url)
        }
    }

    /// Builder-style header append.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.append(name, value);
        self
    }

    /// Builder-style bulk header merge (used to apply a
    /// [`HeaderProfile`](crate::profile::HeaderProfile)).
    pub fn headers(mut self, headers: &HeaderMap) -> Request {
        self.headers.extend_from(headers);
        self
    }

    /// Builder-style application of a full [`ClientProfile`]: header
    /// bundle, TLS class, and JS capability in one step.
    pub fn client_profile(mut self, profile: &ClientProfile) -> Request {
        self.headers.extend_from(&profile.header_map());
        self.tls = profile.tls;
        self.js_capable = profile.js_capable;
        self
    }

    /// The `Host` to contact — either an explicit `Host` header or the URL
    /// host. CDN edges route on this value.
    pub fn effective_host(&self) -> String {
        self.headers
            .get("host")
            .map(str::to_string)
            .unwrap_or_else(|| self.url.host.as_str().to_string())
    }

    /// Rewrite this request for domain fronting: the connection (URL host,
    /// the SNI analogue) goes to `front` while the `Host` header keeps
    /// naming the true target, which is what CDN edges route on.
    pub fn fronted(mut self, front: &str) -> Request {
        let target = self.url.host.as_str().to_string();
        self.url.host = crate::url::Host::new(front);
        self.header("Host", target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn get_builder() {
        let r = Request::get(url("http://example.com/"))
            .header("User-Agent", "Lumscan/1.0")
            .header("Accept", "*/*");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.headers.get("user-agent"), Some("Lumscan/1.0"));
        assert_eq!(r.headers.len(), 2);
    }

    #[test]
    fn effective_host_prefers_header() {
        let r = Request::get(url("http://a.com/"));
        assert_eq!(r.effective_host(), "a.com");
        let r = r.header("Host", "b.com");
        assert_eq!(r.effective_host(), "b.com");
    }

    #[test]
    fn client_profile_sets_all_three_axes() {
        let r = Request::get(url("http://a.com/")).client_profile(&ClientProfile::browser());
        assert!(r.headers.contains("accept-language"));
        assert_eq!(r.tls, TlsClientClass::BrowserStack);
        assert!(r.js_capable);
        let bare = Request::get(url("http://a.com/"));
        assert_eq!(bare.tls, TlsClientClass::GenericTls);
        assert!(!bare.js_capable);
    }

    #[test]
    fn fronted_requests_split_sni_from_host_header() {
        let r = Request::get(url("http://blocked.com/")).fronted("benign.com");
        assert_eq!(r.url.host.as_str(), "benign.com");
        assert_eq!(r.effective_host(), "blocked.com");
    }

    #[test]
    fn bulk_headers_merge() {
        let profile: HeaderMap = [("Accept", "*/*"), ("Accept-Language", "en")]
            .into_iter()
            .collect();
        let r = Request::get(url("http://a.com/")).headers(&profile);
        assert_eq!(r.headers.len(), 2);
    }
}
