//! HTTP request model.

use serde::{Deserialize, Serialize};

use crate::headers::HeaderMap;
use crate::method::Method;
use crate::url::Url;

/// An HTTP request as issued by a probing tool.
///
/// Requests are value types: the probing engines clone and mutate them per
/// retry/hop, so no body streaming is modelled (the measurement tools only
/// send `GET`/`HEAD` with empty bodies).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Request headers.
    pub headers: HeaderMap,
}

impl Request {
    /// A `GET` request for `url` with no headers.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: HeaderMap::new(),
        }
    }

    /// A `HEAD` request for `url` with no headers.
    pub fn head(url: Url) -> Request {
        Request {
            method: Method::Head,
            ..Request::get(url)
        }
    }

    /// Builder-style header append.
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.append(name, value);
        self
    }

    /// Builder-style bulk header merge (used to apply a
    /// [`HeaderProfile`](crate::profile::HeaderProfile)).
    pub fn headers(mut self, headers: &HeaderMap) -> Request {
        self.headers.extend_from(headers);
        self
    }

    /// The `Host` to contact — either an explicit `Host` header or the URL
    /// host. CDN edges route on this value.
    pub fn effective_host(&self) -> String {
        self.headers
            .get("host")
            .map(str::to_string)
            .unwrap_or_else(|| self.url.host.as_str().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    #[test]
    fn get_builder() {
        let r = Request::get(url("http://example.com/"))
            .header("User-Agent", "Lumscan/1.0")
            .header("Accept", "*/*");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.headers.get("user-agent"), Some("Lumscan/1.0"));
        assert_eq!(r.headers.len(), 2);
    }

    #[test]
    fn effective_host_prefers_header() {
        let r = Request::get(url("http://a.com/"));
        assert_eq!(r.effective_host(), "a.com");
        let r = r.header("Host", "b.com");
        assert_eq!(r.effective_host(), "b.com");
    }

    #[test]
    fn bulk_headers_merge() {
        let profile: HeaderMap = [("Accept", "*/*"), ("Accept-Language", "en")]
            .into_iter()
            .collect();
        let r = Request::get(url("http://a.com/")).headers(&profile);
        assert_eq!(r.headers.len(), 2);
    }
}
