//! Lightweight HTTP model for the geoblock measurement stack.
//!
//! This crate defines the HTTP vocabulary shared by every other crate in the
//! workspace: [`Method`], [`StatusCode`], [`HeaderMap`], [`Url`], [`Request`],
//! [`Response`], redirect-[`chain`]s, and the [`FetchError`] taxonomy observed
//! by the probing tools.
//!
//! The paper's measurement pipeline ("403 Forbidden: A Global View of CDN
//! Geoblocking", IMC 2018) classifies HTTP responses fetched from hundreds of
//! vantage points. Everything downstream — block-page fingerprinting, the
//! page-length outlier heuristic, CDN population identification via response
//! headers — consumes these types. They are intentionally simulator-friendly:
//! cheaply clonable, deterministic, and with no I/O of their own.
//!
//! # Example
//!
//! ```
//! use geoblock_http::{Method, Request, Response, StatusCode, Url};
//!
//! let url: Url = "http://example.com/".parse().unwrap();
//! let req = Request::get(url.clone()).header("User-Agent", "Lumscan/1.0");
//! assert_eq!(req.method, Method::Get);
//!
//! let resp = Response::builder(StatusCode::FORBIDDEN)
//!     .header("CF-RAY", "41f1a3b0c00d2b5e-IAD")
//!     .body("error code: 1009")
//!     .finish(url);
//! assert!(resp.status.is_client_error());
//! assert!(resp.headers.contains("cf-ray"));
//! ```

pub mod chain;
pub mod error;
pub mod headers;
pub mod method;
pub mod profile;
pub mod request;
pub mod response;
pub mod status;
pub mod url;
pub mod wire;

pub use chain::{FetchOutcome, Hop, RedirectChain};
pub use error::{FetchError, Retryability};
pub use headers::{HeaderMap, HeaderName};
pub use method::Method;
pub use profile::{ClientProfile, HeaderProfile, TlsClientClass};
pub use request::Request;
pub use response::{Body, Response, ResponseBuilder};
pub use status::StatusCode;
pub use url::{Host, Url, UrlParseError};
