//! Client header profiles.
//!
//! §3.1/§3.2 of the paper show that header completeness is load-bearing:
//! ZGrab configured with only a Firefox `User-Agent` tripped Akamai's bot
//! detection on ~30% of domains, while "merely setting User-Agent is
//! insufficient to suppress bot detection" — Lumscan therefore sends a full
//! browser header set. These profiles are the concrete header bundles used
//! by the probing tools and by the `ablation_headers` bench.

use serde::{Deserialize, Serialize};

use crate::headers::HeaderMap;

/// A named bundle of request headers emulating a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderProfile {
    /// Bare `curl` defaults: `User-Agent: curl/…` and `Accept: */*`.
    Curl,
    /// ZGrab configured as in the VPS study: a Firefox-on-macOS
    /// `User-Agent` but nothing else — the configuration with the ~30%
    /// Akamai false-positive rate.
    ZgrabUserAgentOnly,
    /// A complete Firefox-on-macOS header set (Accept, Accept-Language,
    /// Accept-Encoding, Connection, Upgrade-Insecure-Requests) — what
    /// Lumscan sends to suppress bot detection.
    FullBrowser,
    /// No headers at all; trips bot detection most aggressively.
    Bare,
}

/// The Firefox-on-macOS UA string the study mimicked.
pub const FIREFOX_MACOS_UA: &str =
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0";

impl HeaderProfile {
    /// Materialise this profile as a header map.
    pub fn headers(&self) -> HeaderMap {
        match self {
            HeaderProfile::Bare => HeaderMap::new(),
            HeaderProfile::Curl => [("User-Agent", "curl/7.61.0"), ("Accept", "*/*")]
                .into_iter()
                .collect(),
            HeaderProfile::ZgrabUserAgentOnly => {
                [("User-Agent", FIREFOX_MACOS_UA)].into_iter().collect()
            }
            HeaderProfile::FullBrowser => [
                ("User-Agent", FIREFOX_MACOS_UA),
                (
                    "Accept",
                    "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
                ),
                ("Accept-Language", "en-US,en;q=0.5"),
                ("Accept-Encoding", "gzip, deflate"),
                ("Connection", "keep-alive"),
                ("Upgrade-Insecure-Requests", "1"),
            ]
            .into_iter()
            .collect(),
        }
    }

    /// How "browser-like" the profile looks to a bot-detection heuristic, in
    /// [0, 1]. CDN edge simulations use this as the suppression factor for
    /// their bot-detection false positives.
    pub fn browser_likeness(&self) -> f64 {
        match self {
            HeaderProfile::Bare => 0.0,
            HeaderProfile::Curl => 0.05,
            HeaderProfile::ZgrabUserAgentOnly => 0.35,
            HeaderProfile::FullBrowser => 0.98,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_browser_superset_of_ua_only() {
        let full = HeaderProfile::FullBrowser.headers();
        let ua = HeaderProfile::ZgrabUserAgentOnly.headers();
        assert_eq!(full.get("user-agent"), ua.get("user-agent"));
        assert!(full.len() > ua.len());
        assert!(full.contains("accept-language"));
        assert!(!ua.contains("accept-language"));
    }

    #[test]
    fn likeness_is_monotone_in_completeness() {
        assert!(
            HeaderProfile::Bare.browser_likeness()
                < HeaderProfile::ZgrabUserAgentOnly.browser_likeness()
        );
        assert!(
            HeaderProfile::ZgrabUserAgentOnly.browser_likeness()
                < HeaderProfile::FullBrowser.browser_likeness()
        );
    }

    #[test]
    fn bare_is_empty() {
        assert!(HeaderProfile::Bare.headers().is_empty());
    }
}
