//! Client header profiles.
//!
//! §3.1/§3.2 of the paper show that header completeness is load-bearing:
//! ZGrab configured with only a Firefox `User-Agent` tripped Akamai's bot
//! detection on ~30% of domains, while "merely setting User-Agent is
//! insufficient to suppress bot detection" — Lumscan therefore sends a full
//! browser header set. These profiles are the concrete header bundles used
//! by the probing tools and by the `ablation_headers` bench.

use serde::{Deserialize, Serialize};

use crate::headers::HeaderMap;

/// A named bundle of request headers emulating a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderProfile {
    /// Bare `curl` defaults: `User-Agent: curl/…` and `Accept: */*`.
    Curl,
    /// ZGrab configured as in the VPS study: a Firefox-on-macOS
    /// `User-Agent` but nothing else — the configuration with the ~30%
    /// Akamai false-positive rate.
    ZgrabUserAgentOnly,
    /// A complete Firefox-on-macOS header set (Accept, Accept-Language,
    /// Accept-Encoding, Connection, Upgrade-Insecure-Requests) — what
    /// Lumscan sends to suppress bot detection.
    FullBrowser,
    /// No headers at all; trips bot detection most aggressively.
    Bare,
}

/// The Firefox-on-macOS UA string the study mimicked.
pub const FIREFOX_MACOS_UA: &str =
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) Gecko/20100101 Firefox/61.0";

impl HeaderProfile {
    /// Materialise this profile as a header map.
    pub fn headers(&self) -> HeaderMap {
        match self {
            HeaderProfile::Bare => HeaderMap::new(),
            HeaderProfile::Curl => [("User-Agent", "curl/7.61.0"), ("Accept", "*/*")]
                .into_iter()
                .collect(),
            HeaderProfile::ZgrabUserAgentOnly => {
                [("User-Agent", FIREFOX_MACOS_UA)].into_iter().collect()
            }
            HeaderProfile::FullBrowser => [
                ("User-Agent", FIREFOX_MACOS_UA),
                (
                    "Accept",
                    "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8",
                ),
                ("Accept-Language", "en-US,en;q=0.5"),
                ("Accept-Encoding", "gzip, deflate"),
                ("Connection", "keep-alive"),
                ("Upgrade-Insecure-Requests", "1"),
            ]
            .into_iter()
            .collect(),
        }
    }

    /// How "browser-like" the profile looks to a bot-detection heuristic, in
    /// [0, 1]. CDN edge simulations use this as the suppression factor for
    /// their bot-detection false positives.
    pub fn browser_likeness(&self) -> f64 {
        match self {
            HeaderProfile::Bare => 0.0,
            HeaderProfile::Curl => 0.05,
            HeaderProfile::ZgrabUserAgentOnly => 0.35,
            HeaderProfile::FullBrowser => 0.98,
        }
    }
}

/// TLS client-stack fingerprint classes, the wire-level analogue of the
/// header bundle: a JA3-style grouping of ClientHello shapes. Edges that
/// deploy client-fingerprint scoring (the deepest detection tier) compare
/// this against the claimed `User-Agent`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TlsClientClass {
    /// A real browser's TLS stack (NSS/BoringSSL ClientHello with GREASE,
    /// ALPN h2, a browser cipher ordering).
    BrowserStack,
    /// A generic TLS library (OpenSSL defaults — curl, python-requests,
    /// most probing tools). Suspicious but common enough not to be scored
    /// on its own.
    #[default]
    GenericTls,
    /// A scanner's minimal stack (ZGrab/masscan-style ClientHello); the
    /// fingerprint-scoring tier denies these outright.
    ScannerStack,
}

/// A full selectable client identity: header bundle, TLS-fingerprint class,
/// and whether the client executes JavaScript challenges.
///
/// [`HeaderProfile`] captures only what rides in the request headers; the
/// tiered bot-detection pipeline of `netsim::edge` also scores the TLS
/// stack and serves JS interstitials, so a study phase must declare all
/// three axes to know which tiers it passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClientProfile {
    /// The header bundle sent with every probe.
    pub headers: HeaderProfile,
    /// The TLS client stack presented on the wire.
    pub tls: TlsClientClass,
    /// Whether the client runs JS challenges to completion (real browsers
    /// and headful automation do; HTTP probers do not).
    pub js_capable: bool,
}

impl ClientProfile {
    /// A real browser: full headers, browser TLS stack, JS-capable. Passes
    /// every detection tier — the profile the paper's manual verification
    /// and Lumscan's evasion posture correspond to.
    pub fn browser() -> ClientProfile {
        ClientProfile {
            headers: HeaderProfile::FullBrowser,
            tls: TlsClientClass::BrowserStack,
            js_capable: true,
        }
    }

    /// A headless HTTP prober wearing full browser headers (Lumscan
    /// without JS): passes header scoring but fails JS interstitials.
    pub fn headless() -> ClientProfile {
        ClientProfile {
            headers: HeaderProfile::FullBrowser,
            tls: TlsClientClass::GenericTls,
            js_capable: false,
        }
    }

    /// ZGrab as configured in the §3 VPS sweeps: UA-only headers, scanner
    /// TLS stack, no JS.
    pub fn zgrab() -> ClientProfile {
        ClientProfile {
            headers: HeaderProfile::ZgrabUserAgentOnly,
            tls: TlsClientClass::ScannerStack,
            js_capable: false,
        }
    }

    /// Stock `curl`: its own UA, generic TLS, no JS.
    pub fn curl() -> ClientProfile {
        ClientProfile {
            headers: HeaderProfile::Curl,
            tls: TlsClientClass::GenericTls,
            js_capable: false,
        }
    }

    /// No headers at all on a scanner stack; trips every tier.
    pub fn bare() -> ClientProfile {
        ClientProfile {
            headers: HeaderProfile::Bare,
            tls: TlsClientClass::ScannerStack,
            js_capable: false,
        }
    }

    /// The header bundle this profile sends.
    pub fn header_map(&self) -> HeaderMap {
        self.headers.headers()
    }

    /// Header-level browser likeness (what tier 1 of the edge pipeline
    /// scores). TLS class and JS capability are scored by later tiers.
    pub fn browser_likeness(&self) -> f64 {
        self.headers.browser_likeness()
    }
}

/// Lift a bare header profile into the matching full client identity,
/// preserving pre-profile behaviour: `FullBrowser` maps to the
/// all-tiers-passing browser, the scanner bundles to their scanner
/// profiles.
impl From<HeaderProfile> for ClientProfile {
    fn from(headers: HeaderProfile) -> ClientProfile {
        match headers {
            HeaderProfile::FullBrowser => ClientProfile::browser(),
            HeaderProfile::ZgrabUserAgentOnly => ClientProfile::zgrab(),
            HeaderProfile::Curl => ClientProfile::curl(),
            HeaderProfile::Bare => ClientProfile::bare(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_browser_superset_of_ua_only() {
        let full = HeaderProfile::FullBrowser.headers();
        let ua = HeaderProfile::ZgrabUserAgentOnly.headers();
        assert_eq!(full.get("user-agent"), ua.get("user-agent"));
        assert!(full.len() > ua.len());
        assert!(full.contains("accept-language"));
        assert!(!ua.contains("accept-language"));
    }

    #[test]
    fn likeness_is_monotone_in_completeness() {
        assert!(
            HeaderProfile::Bare.browser_likeness()
                < HeaderProfile::ZgrabUserAgentOnly.browser_likeness()
        );
        assert!(
            HeaderProfile::ZgrabUserAgentOnly.browser_likeness()
                < HeaderProfile::FullBrowser.browser_likeness()
        );
    }

    #[test]
    fn bare_is_empty() {
        assert!(HeaderProfile::Bare.headers().is_empty());
    }

    #[test]
    fn client_profiles_order_by_evasiveness() {
        // The five canonical profiles, most to least browser-like.
        let browser = ClientProfile::browser();
        let headless = ClientProfile::headless();
        let zgrab = ClientProfile::zgrab();
        assert!(browser.js_capable && !headless.js_capable);
        assert_eq!(browser.browser_likeness(), headless.browser_likeness());
        assert!(headless.browser_likeness() > zgrab.browser_likeness());
        assert!(zgrab.browser_likeness() > ClientProfile::curl().browser_likeness());
        assert!(
            ClientProfile::curl().browser_likeness() > ClientProfile::bare().browser_likeness()
        );
        assert_eq!(zgrab.tls, TlsClientClass::ScannerStack);
    }

    #[test]
    fn header_profile_lifts_to_behaviour_preserving_client_profile() {
        // Pre-profile code that passed FullBrowser must keep passing every
        // detection tier after the lift.
        let lifted: ClientProfile = HeaderProfile::FullBrowser.into();
        assert_eq!(lifted, ClientProfile::browser());
        let scanner: ClientProfile = HeaderProfile::ZgrabUserAgentOnly.into();
        assert!(!scanner.js_capable);
        assert_eq!(lifted.header_map(), HeaderProfile::FullBrowser.headers());
    }
}
