//! HTTP request methods.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// An HTTP request method.
///
/// The measurement tools only ever issue `GET` and `HEAD` requests, but the
/// full RFC 7231 set is modelled so origin/CDN simulations can reject other
/// methods realistically (e.g. `405 Method Not Allowed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Get,
    Head,
    Post,
    Put,
    Delete,
    Options,
    Trace,
    Patch,
}

impl Method {
    /// Canonical upper-case token, e.g. `"GET"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Trace => "TRACE",
            Method::Patch => "PATCH",
        }
    }

    /// Whether the method is *safe* in the RFC 7231 §4.2.1 sense
    /// (read-only; no server-side state change expected).
    pub fn is_safe(&self) -> bool {
        matches!(
            self,
            Method::Get | Method::Head | Method::Options | Method::Trace
        )
    }

    /// Whether a response to this method carries a body (`HEAD` does not).
    pub fn response_has_body(&self) -> bool {
        !matches!(self, Method::Head)
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error returned when parsing an unknown method token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidMethod(pub String);

impl fmt::Display for InvalidMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid HTTP method: {:?}", self.0)
    }
}

impl std::error::Error for InvalidMethod {}

impl FromStr for Method {
    type Err = InvalidMethod;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "GET" => Ok(Method::Get),
            "HEAD" => Ok(Method::Head),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "DELETE" => Ok(Method::Delete),
            "OPTIONS" => Ok(Method::Options),
            "TRACE" => Ok(Method::Trace),
            "PATCH" => Ok(Method::Patch),
            other => Err(InvalidMethod(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_methods() {
        for m in [
            Method::Get,
            Method::Head,
            Method::Post,
            Method::Put,
            Method::Delete,
            Method::Options,
            Method::Trace,
            Method::Patch,
        ] {
            assert_eq!(m.as_str().parse::<Method>().unwrap(), m);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("get".parse::<Method>().unwrap(), Method::Get);
        assert_eq!("hEaD".parse::<Method>().unwrap(), Method::Head);
    }

    #[test]
    fn rejects_unknown_token() {
        assert!("FETCH".parse::<Method>().is_err());
    }

    #[test]
    fn safety_classification() {
        assert!(Method::Get.is_safe());
        assert!(Method::Head.is_safe());
        assert!(!Method::Post.is_safe());
        assert!(!Method::Delete.is_safe());
    }

    #[test]
    fn head_has_no_response_body() {
        assert!(!Method::Head.response_has_body());
        assert!(Method::Get.response_has_body());
    }
}
