//! Case-insensitive, order-preserving HTTP header map.
//!
//! Header *presence* is a first-class measurement signal in the paper: the
//! Top-1M CDN populations are identified by `CF-RAY` (Cloudflare),
//! `X-Amz-Cf-Id` (CloudFront), `X-Iinfo` (Incapsula), the Akamai cache
//! headers elicited by a `Pragma` debug request, and Luminati surfaces its
//! own refusals via `X-Luminati-Error`. The map therefore preserves insertion
//! order (so wire serialisation is stable) while comparing names
//! ASCII-case-insensitively, like every real HTTP implementation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A validated, lower-cased header name.
///
/// Names are normalised to lower case at construction so lookups are O(n)
/// string-equality over already-folded bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HeaderName(String);

impl HeaderName {
    /// Normalise a name. Header names are token characters only; we accept
    /// any printable ASCII without whitespace/colon and fold case.
    pub fn new(name: &str) -> HeaderName {
        debug_assert!(
            !name.is_empty() && name.bytes().all(|b| b.is_ascii_graphic() && b != b':'),
            "invalid header name: {name:?}"
        );
        HeaderName(name.to_ascii_lowercase())
    }

    /// The normalised (lower-case) name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for HeaderName {
    fn from(s: &str) -> Self {
        HeaderName::new(s)
    }
}

/// An insertion-ordered multimap of HTTP headers with case-insensitive names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(HeaderName, String)>,
}

impl HeaderMap {
    /// An empty header map.
    pub fn new() -> HeaderMap {
        HeaderMap::default()
    }

    /// Number of header fields (counting repeats separately).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Append a header, keeping any existing fields with the same name
    /// (HTTP permits repeated fields, e.g. `Set-Cookie`).
    pub fn append(&mut self, name: impl Into<HeaderName>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// Replace all fields named `name` with a single field.
    pub fn set(&mut self, name: impl Into<HeaderName>, value: impl Into<String>) {
        let name = name.into();
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, value.into()));
    }

    /// First value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let name = HeaderName::new(name);
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a str> {
        let name = HeaderName::new(name);
        self.entries
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether at least one field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all fields named `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let name = HeaderName::new(name);
        let before = self.entries.len();
        self.entries.retain(|(n, _)| *n != name);
        before - self.entries.len()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&HeaderName, &str)> {
        self.entries.iter().map(|(n, v)| (n, v.as_str()))
    }

    /// Merge another map into this one by appending all of its fields.
    pub fn extend_from(&mut self, other: &HeaderMap) {
        for (n, v) in other.iter() {
            self.entries.push((n.clone(), v.to_string()));
        }
    }
}

impl<N: Into<HeaderName>, V: Into<String>> FromIterator<(N, V)> for HeaderMap {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut map = HeaderMap::new();
        for (n, v) in iter {
            map.append(n, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut h = HeaderMap::new();
        h.append("CF-RAY", "abc-IAD");
        assert_eq!(h.get("cf-ray"), Some("abc-IAD"));
        assert_eq!(h.get("Cf-Ray"), Some("abc-IAD"));
        assert!(h.contains("CF-RAY"));
    }

    #[test]
    fn append_keeps_repeats_and_order() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        let all: Vec<_> = h.get_all("set-cookie").collect();
        assert_eq!(all, vec!["a=1", "b=2"]);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn set_replaces_all() {
        let mut h = HeaderMap::new();
        h.append("X-Test", "1");
        h.append("X-Test", "2");
        h.set("x-test", "3");
        let all: Vec<_> = h.get_all("X-Test").collect();
        assert_eq!(all, vec!["3"]);
    }

    #[test]
    fn remove_returns_count() {
        let mut h = HeaderMap::new();
        h.append("A", "1");
        h.append("a", "2");
        h.append("B", "3");
        assert_eq!(h.remove("A"), 2);
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove("A"), 0);
    }

    #[test]
    fn from_iterator_collects() {
        let h: HeaderMap = [("User-Agent", "x"), ("Accept", "*/*")]
            .into_iter()
            .collect();
        assert_eq!(h.get("user-agent"), Some("x"));
        assert_eq!(h.get("accept"), Some("*/*"));
    }

    #[test]
    fn extend_from_appends() {
        let mut a: HeaderMap = [("A", "1")].into_iter().collect();
        let b: HeaderMap = [("B", "2")].into_iter().collect();
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("b"), Some("2"));
    }
}
