//! Redirect chains and fetch outcomes.
//!
//! The paper inspects *the whole redirect chain*: a domain counts as a CDN
//! customer if the CDN's identifying header appears "anywhere in the redirect
//! chain" (§5.1.1), because any hop gives the CDN an opportunity to block.

use serde::{Deserialize, Serialize};

use crate::error::FetchError;
use crate::request::Request;
use crate::response::Response;

/// One request/response hop in a redirect chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The request that was sent.
    pub request: Request,
    /// The response received.
    pub response: Response,
}

/// A completed redirect chain: zero or more 3xx hops followed by a final
/// non-redirect response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedirectChain {
    /// All hops in order; the last hop holds the final response.
    pub hops: Vec<Hop>,
}

impl RedirectChain {
    /// Wrap a list of hops. Panics in debug builds if empty.
    pub fn new(hops: Vec<Hop>) -> RedirectChain {
        debug_assert!(!hops.is_empty(), "a chain must contain at least one hop");
        RedirectChain { hops }
    }

    /// The final (non-redirect) response.
    pub fn final_response(&self) -> &Response {
        &self.hops.last().expect("chain is non-empty").response
    }

    /// Number of redirects followed (hops minus the final response).
    pub fn redirect_count(&self) -> usize {
        self.hops.len() - 1
    }

    /// Whether `header` appears in *any* hop's response — the CDN-population
    /// detection rule.
    pub fn any_hop_has_header(&self, header: &str) -> bool {
        self.hops
            .iter()
            .any(|h| h.response.headers.contains(header))
    }

    /// First value of `header` across hops in order, if present anywhere.
    pub fn first_header_value(&self, header: &str) -> Option<&str> {
        self.hops
            .iter()
            .find_map(|h| h.response.headers.get(header))
    }
}

/// The result of a full fetch attempt: either a chain ending in a final
/// response, or one of the [`FetchError`] failures.
pub type FetchOutcome = Result<RedirectChain, FetchError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Response, StatusCode, Url};

    fn url(s: &str) -> Url {
        s.parse().unwrap()
    }

    fn hop(u: &str, status: StatusCode, location: Option<&str>) -> Hop {
        let mut b = Response::builder(status);
        if let Some(l) = location {
            b = b.header("Location", l);
        }
        Hop {
            request: Request::get(url(u)),
            response: b.finish(url(u)),
        }
    }

    #[test]
    fn final_response_is_last_hop() {
        let chain = RedirectChain::new(vec![
            hop("http://a.com/", StatusCode::FOUND, Some("https://a.com/")),
            hop("https://a.com/", StatusCode::OK, None),
        ]);
        assert_eq!(chain.redirect_count(), 1);
        assert_eq!(chain.final_response().status, StatusCode::OK);
    }

    #[test]
    fn header_search_spans_all_hops() {
        let mut first = hop("http://a.com/", StatusCode::FOUND, Some("https://a.com/"));
        first.response.headers.append("CF-RAY", "abc-IAD");
        let chain = RedirectChain::new(vec![first, hop("https://a.com/", StatusCode::OK, None)]);
        // Header only on the *redirect* hop still counts.
        assert!(chain.any_hop_has_header("cf-ray"));
        assert_eq!(chain.first_header_value("cf-ray"), Some("abc-IAD"));
        assert!(!chain.any_hop_has_header("x-iinfo"));
    }
}
