//! The fetch-error taxonomy observed by the probing tools.
//!
//! §4.1.1 of the paper defines "error" as *"we were unable to get a response
//! from the site, either due to proxy errors or errors such as timeouts and
//! lengthy redirect chains"*. This enum is that taxonomy; the coverage
//! statistics (90th-percentile error rates, per-country valid-response rates)
//! are computed over it.
//!
//! Each error also carries a [`Retryability`] class, which is what the
//! Lumscan retry layer consumes: *transient* failures are worth repeating on
//! a fresh exit, *exit-fatal* failures additionally condemn the exit machine
//! they happened on (its circuit breaker quarantines the session), and
//! *permanent* failures will not improve no matter how often they are
//! retried, so retrying them only burns the per-exit request budget.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::url::UrlParseError;

/// How the retry layer should treat a failure class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Retryability {
    /// A fresh attempt (on a fresh exit) has a real chance of succeeding.
    Transient,
    /// The *exit machine* is at fault — retry elsewhere, and quarantine the
    /// session so the load balancer stops handing it out.
    ExitFatal,
    /// No retry will change the outcome; fail fast.
    Permanent,
}

impl Retryability {
    /// Whether another attempt should be made at all.
    pub fn should_retry(self) -> bool {
        !matches!(self, Retryability::Permanent)
    }

    /// Whether the failure condemns the exit it happened on.
    pub fn poisons_exit(self) -> bool {
        matches!(self, Retryability::ExitFatal)
    }
}

impl fmt::Display for Retryability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Retryability::Transient => "transient",
            Retryability::ExitFatal => "exit-fatal",
            Retryability::Permanent => "permanent",
        })
    }
}

/// Why a fetch failed to produce a final response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchError {
    /// DNS lookup failed for the given host.
    DnsFailure { host: String },
    /// TCP connection could not be established.
    ConnectionRefused,
    /// Connection established but no response within the deadline. The paper
    /// notes consistent timeouts as a *possible* geoblocking mechanism that
    /// is indistinguishable from censorship without more work (§7.3).
    Timeout,
    /// Connection reset mid-transfer (e.g. by a censoring middlebox).
    ConnectionReset,
    /// The redirect chain exceeded the follow limit (the study allows 10).
    TooManyRedirects { limit: usize },
    /// The proxy layer failed before reaching the target (superproxy error,
    /// exit node vanished, tunnel failure).
    ProxyError { detail: String },
    /// Luminati itself refused to carry the request; surfaced to clients via
    /// the `X-Luminati-Error` response header.
    ProxyRefused { reason: String },
    /// No exit node was available in the requested country.
    NoExitAvailable { country: String },
    /// A malformed response that could not be parsed.
    MalformedResponse { detail: String },
    /// A redirect pointed at a `Location` that does not parse as a URL.
    /// Unlike [`FetchError::MalformedResponse`] this keeps the structured
    /// parse failure, so `source()` exposes the underlying [`UrlParseError`].
    BadRedirect {
        location: String,
        cause: UrlParseError,
    },
    /// The body was cut short mid-transfer (fewer bytes than the declared
    /// length). Residential exits drop connections routinely; a truncated
    /// block page would poison fingerprinting, so it is surfaced as an
    /// error and retried rather than parsed.
    TruncatedBody { received: usize, expected: usize },
    /// The exit's verified geolocation does not match the requested country.
    /// The measurement from this household would be attributed to the wrong
    /// vantage (§4.2 discrepancies), so the attempt is rejected and the exit
    /// quarantined.
    GeolocationMismatch { wanted: String, got: String },
    /// The probe task itself panicked. The streaming pipeline catches the
    /// unwind and surfaces it as a probe-fatal outcome for that slot instead
    /// of poisoning the whole batch; `detail` carries the panic message.
    ProbePanicked { detail: String },
}

impl FetchError {
    /// Classify the failure for the retry layer.
    pub fn retryability(&self) -> Retryability {
        match self {
            // Retrying cannot help: the proxy's policy, the country's exit
            // pool, the site's redirect behaviour, and its DNS registration
            // are all stable across attempts.
            FetchError::ProxyRefused { .. }
            | FetchError::NoExitAvailable { .. }
            | FetchError::TooManyRedirects { .. }
            | FetchError::BadRedirect { .. }
            | FetchError::DnsFailure { .. } => Retryability::Permanent,
            // The retry loop is what unwound — there is nothing left to
            // drive another attempt for this slot.
            FetchError::ProbePanicked { .. } => Retryability::Permanent,
            // The household itself is the problem: it claims to be
            // somewhere it is not. Every request through it is tainted.
            FetchError::GeolocationMismatch { .. } => Retryability::ExitFatal,
            // Everything else is network weather.
            FetchError::ConnectionRefused
            | FetchError::Timeout
            | FetchError::ConnectionReset
            | FetchError::ProxyError { .. }
            | FetchError::MalformedResponse { .. }
            | FetchError::TruncatedBody { .. } => Retryability::Transient,
        }
    }

    /// Whether the Lumscan retry policy should retry this failure at all.
    /// Shorthand for `self.retryability().should_retry()`.
    pub fn is_retryable(&self) -> bool {
        self.retryability().should_retry()
    }

    /// Whether the failure happened in the proxy layer rather than on the
    /// path to (or at) the target site.
    pub fn is_proxy_side(&self) -> bool {
        matches!(
            self,
            FetchError::ProxyError { .. }
                | FetchError::ProxyRefused { .. }
                | FetchError::NoExitAvailable { .. }
                | FetchError::GeolocationMismatch { .. }
        )
    }

    /// Short stable label for aggregation in error-rate tables.
    pub fn kind(&self) -> &'static str {
        match self {
            FetchError::DnsFailure { .. } => "dns",
            FetchError::ConnectionRefused => "refused",
            FetchError::Timeout => "timeout",
            FetchError::ConnectionReset => "reset",
            FetchError::TooManyRedirects { .. } => "redirect-loop",
            FetchError::ProxyError { .. } => "proxy",
            FetchError::ProxyRefused { .. } => "proxy-refused",
            FetchError::NoExitAvailable { .. } => "no-exit",
            FetchError::MalformedResponse { .. } => "malformed",
            FetchError::BadRedirect { .. } => "bad-redirect",
            FetchError::TruncatedBody { .. } => "truncated",
            FetchError::GeolocationMismatch { .. } => "geo-mismatch",
            FetchError::ProbePanicked { .. } => "panic",
        }
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::DnsFailure { host } => write!(f, "DNS lookup failed for {host}"),
            FetchError::ConnectionRefused => write!(f, "connection refused"),
            FetchError::Timeout => write!(f, "request timed out"),
            FetchError::ConnectionReset => write!(f, "connection reset"),
            FetchError::TooManyRedirects { limit } => {
                write!(f, "redirect chain exceeded {limit} hops")
            }
            FetchError::ProxyError { detail } => write!(f, "proxy error: {detail}"),
            FetchError::ProxyRefused { reason } => {
                write!(f, "proxy refused request (X-Luminati-Error: {reason})")
            }
            FetchError::NoExitAvailable { country } => {
                write!(f, "no exit node available in {country}")
            }
            FetchError::MalformedResponse { detail } => {
                write!(f, "malformed response: {detail}")
            }
            FetchError::BadRedirect { location, .. } => {
                write!(f, "redirect to unparseable Location {location:?}")
            }
            FetchError::TruncatedBody { received, expected } => {
                write!(f, "body truncated: {received} of {expected} bytes")
            }
            FetchError::GeolocationMismatch { wanted, got } => {
                write!(f, "exit geolocated in {got}, wanted {wanted}")
            }
            FetchError::ProbePanicked { detail } => {
                write!(f, "probe task panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for FetchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FetchError::BadRedirect { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_refusals_are_permanent() {
        assert!(!FetchError::ProxyRefused {
            reason: "blocked domain".into()
        }
        .is_retryable());
        assert!(FetchError::Timeout.is_retryable());
        assert!(FetchError::ProxyError { detail: "x".into() }.is_retryable());
    }

    #[test]
    fn proxy_side_classification() {
        assert!(FetchError::NoExitAvailable {
            country: "KP".into()
        }
        .is_proxy_side());
        assert!(!FetchError::Timeout.is_proxy_side());
        assert!(!FetchError::DnsFailure { host: "x".into() }.is_proxy_side());
    }

    #[test]
    fn retryability_classes() {
        use Retryability::*;
        assert_eq!(FetchError::Timeout.retryability(), Transient);
        assert_eq!(
            FetchError::TruncatedBody {
                received: 10,
                expected: 100
            }
            .retryability(),
            Transient
        );
        assert_eq!(
            FetchError::GeolocationMismatch {
                wanted: "IR".into(),
                got: "DE".into()
            }
            .retryability(),
            ExitFatal
        );
        assert_eq!(
            FetchError::DnsFailure { host: "x".into() }.retryability(),
            Permanent
        );
        assert_eq!(
            FetchError::TooManyRedirects { limit: 10 }.retryability(),
            Permanent
        );
        assert_eq!(
            FetchError::ProbePanicked {
                detail: "boom".into()
            }
            .retryability(),
            Permanent
        );
        assert!(ExitFatal.should_retry());
        assert!(ExitFatal.poisons_exit());
        assert!(!Transient.poisons_exit());
        assert!(!Permanent.should_retry());
    }

    #[test]
    fn bad_redirect_exposes_source() {
        use std::error::Error as _;
        let cause = "::".parse::<crate::Url>().unwrap_err();
        let err = FetchError::BadRedirect {
            location: "::".into(),
            cause,
        };
        assert!(err.source().is_some());
        assert_eq!(err.retryability(), Retryability::Permanent);
        assert!(FetchError::Timeout.source().is_none());
    }

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let errs = [
            FetchError::DnsFailure { host: "h".into() },
            FetchError::ConnectionRefused,
            FetchError::Timeout,
            FetchError::ConnectionReset,
            FetchError::TooManyRedirects { limit: 10 },
            FetchError::ProxyError { detail: "d".into() },
            FetchError::ProxyRefused { reason: "r".into() },
            FetchError::NoExitAvailable {
                country: "KP".into(),
            },
            FetchError::MalformedResponse { detail: "d".into() },
            FetchError::BadRedirect {
                location: "::".into(),
                cause: "::".parse::<crate::Url>().unwrap_err(),
            },
            FetchError::TruncatedBody {
                received: 1,
                expected: 2,
            },
            FetchError::GeolocationMismatch {
                wanted: "IR".into(),
                got: "DE".into(),
            },
            FetchError::ProbePanicked {
                detail: "boom".into(),
            },
        ];
        let kinds: HashSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }
}
