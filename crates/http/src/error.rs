//! The fetch-error taxonomy observed by the probing tools.
//!
//! §4.1.1 of the paper defines "error" as *"we were unable to get a response
//! from the site, either due to proxy errors or errors such as timeouts and
//! lengthy redirect chains"*. This enum is that taxonomy; the coverage
//! statistics (90th-percentile error rates, per-country valid-response rates)
//! are computed over it.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why a fetch failed to produce a final response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FetchError {
    /// DNS lookup failed for the given host.
    DnsFailure { host: String },
    /// TCP connection could not be established.
    ConnectionRefused,
    /// Connection established but no response within the deadline. The paper
    /// notes consistent timeouts as a *possible* geoblocking mechanism that
    /// is indistinguishable from censorship without more work (§7.3).
    Timeout,
    /// Connection reset mid-transfer (e.g. by a censoring middlebox).
    ConnectionReset,
    /// The redirect chain exceeded the follow limit (the study allows 10).
    TooManyRedirects { limit: usize },
    /// The proxy layer failed before reaching the target (superproxy error,
    /// exit node vanished, tunnel failure).
    ProxyError { detail: String },
    /// Luminati itself refused to carry the request; surfaced to clients via
    /// the `X-Luminati-Error` response header.
    ProxyRefused { reason: String },
    /// No exit node was available in the requested country.
    NoExitAvailable { country: String },
    /// A malformed response that could not be parsed.
    MalformedResponse { detail: String },
}

impl FetchError {
    /// Whether the Lumscan retry policy should retry this failure.
    /// Proxy-side refusals are permanent (Luminati policy), everything
    /// transient is worth retrying.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, FetchError::ProxyRefused { .. })
    }

    /// Whether the failure happened in the proxy layer rather than on the
    /// path to (or at) the target site.
    pub fn is_proxy_side(&self) -> bool {
        matches!(
            self,
            FetchError::ProxyError { .. }
                | FetchError::ProxyRefused { .. }
                | FetchError::NoExitAvailable { .. }
        )
    }

    /// Short stable label for aggregation in error-rate tables.
    pub fn kind(&self) -> &'static str {
        match self {
            FetchError::DnsFailure { .. } => "dns",
            FetchError::ConnectionRefused => "refused",
            FetchError::Timeout => "timeout",
            FetchError::ConnectionReset => "reset",
            FetchError::TooManyRedirects { .. } => "redirect-loop",
            FetchError::ProxyError { .. } => "proxy",
            FetchError::ProxyRefused { .. } => "proxy-refused",
            FetchError::NoExitAvailable { .. } => "no-exit",
            FetchError::MalformedResponse { .. } => "malformed",
        }
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::DnsFailure { host } => write!(f, "DNS lookup failed for {host}"),
            FetchError::ConnectionRefused => write!(f, "connection refused"),
            FetchError::Timeout => write!(f, "request timed out"),
            FetchError::ConnectionReset => write!(f, "connection reset"),
            FetchError::TooManyRedirects { limit } => {
                write!(f, "redirect chain exceeded {limit} hops")
            }
            FetchError::ProxyError { detail } => write!(f, "proxy error: {detail}"),
            FetchError::ProxyRefused { reason } => {
                write!(f, "proxy refused request (X-Luminati-Error: {reason})")
            }
            FetchError::NoExitAvailable { country } => {
                write!(f, "no exit node available in {country}")
            }
            FetchError::MalformedResponse { detail } => {
                write!(f, "malformed response: {detail}")
            }
        }
    }
}

impl std::error::Error for FetchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_refusals_are_permanent() {
        assert!(!FetchError::ProxyRefused {
            reason: "blocked domain".into()
        }
        .is_retryable());
        assert!(FetchError::Timeout.is_retryable());
        assert!(FetchError::ProxyError { detail: "x".into() }.is_retryable());
    }

    #[test]
    fn proxy_side_classification() {
        assert!(FetchError::NoExitAvailable { country: "KP".into() }.is_proxy_side());
        assert!(!FetchError::Timeout.is_proxy_side());
        assert!(!FetchError::DnsFailure { host: "x".into() }.is_proxy_side());
    }

    #[test]
    fn kinds_are_distinct() {
        use std::collections::HashSet;
        let errs = [
            FetchError::DnsFailure { host: "h".into() },
            FetchError::ConnectionRefused,
            FetchError::Timeout,
            FetchError::ConnectionReset,
            FetchError::TooManyRedirects { limit: 10 },
            FetchError::ProxyError { detail: "d".into() },
            FetchError::ProxyRefused { reason: "r".into() },
            FetchError::NoExitAvailable { country: "KP".into() },
            FetchError::MalformedResponse { detail: "d".into() },
        ];
        let kinds: HashSet<_> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errs.len());
    }
}
