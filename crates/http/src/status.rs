//! HTTP status codes.
//!
//! The paper leans heavily on a small set of codes: `403 Forbidden` (RFC 7231,
//! "understood the request but refuses to authorize it") is the signature of
//! most CDN geoblocks; `451 Unavailable For Legal Reasons` (RFC 7725) is the
//! purpose-built legal-blocking code the authors observed only twice; `503` is
//! what Cloudflare serves with its CAPTCHA/JavaScript challenge interstitials.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An HTTP status code (100–599).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(u16);

impl StatusCode {
    pub const OK: StatusCode = StatusCode(200);
    pub const MOVED_PERMANENTLY: StatusCode = StatusCode(301);
    pub const FOUND: StatusCode = StatusCode(302);
    pub const SEE_OTHER: StatusCode = StatusCode(303);
    pub const TEMPORARY_REDIRECT: StatusCode = StatusCode(307);
    pub const PERMANENT_REDIRECT: StatusCode = StatusCode(308);
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    pub const METHOD_NOT_ALLOWED: StatusCode = StatusCode(405);
    pub const TOO_MANY_REQUESTS: StatusCode = StatusCode(429);
    /// RFC 7725 "Unavailable For Legal Reasons" — the sanctions-blocking code
    /// that had seen almost no adoption at the time of the study.
    pub const UNAVAILABLE_FOR_LEGAL_REASONS: StatusCode = StatusCode(451);
    pub const INTERNAL_SERVER_ERROR: StatusCode = StatusCode(500);
    pub const BAD_GATEWAY: StatusCode = StatusCode(502);
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);
    pub const GATEWAY_TIMEOUT: StatusCode = StatusCode(504);

    /// Construct a status code, returning `None` outside 100–599.
    pub fn new(code: u16) -> Option<StatusCode> {
        if (100..=599).contains(&code) {
            Some(StatusCode(code))
        } else {
            None
        }
    }

    /// The numeric code.
    pub fn as_u16(&self) -> u16 {
        self.0
    }

    /// 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 3xx.
    pub fn is_redirect(&self) -> bool {
        (300..400).contains(&self.0)
    }

    /// 4xx.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.0)
    }

    /// 5xx.
    pub fn is_server_error(&self) -> bool {
        (500..600).contains(&self.0)
    }

    /// Whether this is one of the codes a blocking page is plausibly served
    /// with. CDN geoblocks are overwhelmingly 403s, but challenge pages ride
    /// on 503 and legal blocks may (rarely) use 451.
    pub fn is_blockish(&self) -> bool {
        matches!(self.0, 403 | 451 | 503)
    }

    /// Canonical reason phrase for well-known codes.
    pub fn reason(&self) -> &'static str {
        match self.0 {
            200 => "OK",
            204 => "No Content",
            301 => "Moved Permanently",
            302 => "Found",
            303 => "See Other",
            307 => "Temporary Redirect",
            308 => "Permanent Redirect",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            405 => "Method Not Allowed",
            429 => "Too Many Requests",
            451 => "Unavailable For Legal Reasons",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

impl TryFrom<u16> for StatusCode {
    type Error = InvalidStatusCode;

    fn try_from(code: u16) -> Result<Self, Self::Error> {
        StatusCode::new(code).ok_or(InvalidStatusCode(code))
    }
}

/// Error for out-of-range status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidStatusCode(pub u16);

impl fmt::Display for InvalidStatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "status code out of range: {}", self.0)
    }
}

impl std::error::Error for InvalidStatusCode {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_bands() {
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::FOUND.is_redirect());
        assert!(StatusCode::FORBIDDEN.is_client_error());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_server_error());
    }

    #[test]
    fn blockish_codes() {
        assert!(StatusCode::FORBIDDEN.is_blockish());
        assert!(StatusCode::UNAVAILABLE_FOR_LEGAL_REASONS.is_blockish());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_blockish());
        assert!(!StatusCode::OK.is_blockish());
        assert!(!StatusCode::NOT_FOUND.is_blockish());
    }

    #[test]
    fn range_validation() {
        assert!(StatusCode::new(99).is_none());
        assert!(StatusCode::new(600).is_none());
        assert!(StatusCode::new(100).is_some());
        assert!(StatusCode::new(599).is_some());
        assert_eq!(StatusCode::try_from(403).unwrap(), StatusCode::FORBIDDEN);
        assert!(StatusCode::try_from(1000).is_err());
    }

    #[test]
    fn display_includes_reason() {
        assert_eq!(StatusCode::FORBIDDEN.to_string(), "403 Forbidden");
        assert_eq!(
            StatusCode::UNAVAILABLE_FOR_LEGAL_REASONS.to_string(),
            "451 Unavailable For Legal Reasons"
        );
    }
}
