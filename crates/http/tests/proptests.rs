//! Property-based tests for the HTTP model: URL and wire round-trips,
//! header-map semantics.

use geoblock_http::{wire, HeaderMap, Method, Request, Response, StatusCode, Url};
use proptest::prelude::*;

fn host_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,8}", 1..4).prop_map(|labels| labels.join("."))
}

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_-]{1,6}", 0..4)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

fn url_strategy() -> impl Strategy<Value = Url> {
    (
        prop_oneof![Just("http"), Just("https")],
        host_strategy(),
        proptest::option::of(1u16..65535),
        path_strategy(),
        proptest::option::of("[a-z0-9=&]{1,12}"),
    )
        .prop_map(|(scheme, host, port, path, query)| Url {
            scheme: scheme.to_string(),
            host: host.as_str().into(),
            port,
            path,
            query,
        })
}

fn header_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9-]{0,14}"
}

fn header_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,;=/.]{0,24}".prop_map(|s| s.trim().to_string())
}

proptest! {
    #[test]
    fn url_display_parse_round_trip(url in url_strategy()) {
        let rendered = url.to_string();
        let parsed: Url = rendered.parse().expect("rendered URLs parse");
        prop_assert_eq!(parsed, url);
    }

    #[test]
    fn url_join_absolute_path_stays_on_host(url in url_strategy(), seg in "[a-z]{1,8}") {
        let joined = url.join(&format!("/{seg}")).expect("absolute path joins");
        prop_assert_eq!(&joined.host, &url.host);
        prop_assert_eq!(joined.path, format!("/{seg}"));
        prop_assert_eq!(joined.scheme, url.scheme);
    }

    #[test]
    fn header_get_returns_first_appended(
        name in header_name(),
        values in proptest::collection::vec(header_value(), 1..5),
    ) {
        let mut h = HeaderMap::new();
        for v in &values {
            h.append(name.as_str(), v.clone());
        }
        prop_assert_eq!(h.get(&name), Some(values[0].as_str()));
        prop_assert_eq!(h.get_all(&name).count(), values.len());
        // Case-insensitive access.
        prop_assert_eq!(h.get(&name.to_uppercase()), Some(values[0].as_str()));
    }

    #[test]
    fn header_set_then_get_is_identity(
        name in header_name(),
        v1 in header_value(),
        v2 in header_value(),
    ) {
        let mut h = HeaderMap::new();
        h.append(name.as_str(), v1);
        h.set(name.as_str(), v2.clone());
        prop_assert_eq!(h.get_all(&name).count(), 1);
        prop_assert_eq!(h.get(&name), Some(v2.as_str()));
    }

    #[test]
    fn request_wire_round_trip(
        url in url_strategy(),
        headers in proptest::collection::vec((header_name(), header_value()), 0..5),
    ) {
        let mut request = Request::get(url);
        for (n, v) in &headers {
            // `host` on the wire merges with the URL host; skip to keep the
            // property crisp.
            if n.eq_ignore_ascii_case("host") {
                continue;
            }
            request.headers.append(n.as_str(), v.clone());
        }
        let scheme = request.url.scheme.clone();
        let wire_text = wire::write_request(&request);
        let parsed = wire::parse_request(&wire_text, &scheme).expect("round trip");
        prop_assert_eq!(parsed, request);
    }

    #[test]
    fn response_wire_round_trip(
        url in url_strategy(),
        status in 100u16..599,
        body in "[ -~]{0,200}",
    ) {
        let response = Response::builder(StatusCode::new(status).expect("in range"))
            .header("Server", "test")
            .body(body)
            .finish(url.clone());
        let wire_text = wire::write_response(&response);
        let parsed = wire::parse_response(&wire_text, url).expect("round trip");
        prop_assert_eq!(parsed, response);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_input(
        junk in "[ -~\r\n]{0,300}",
        url in url_strategy(),
    ) {
        // Robustness: malformed wire data must produce errors, not panics.
        let _ = wire::parse_response(&junk, url.clone());
        let _ = wire::parse_request(&junk, "http");
        let _ = junk.parse::<Url>();
        let _ = url.join(&junk);
    }

    #[test]
    fn methods_round_trip(method in prop_oneof![
        Just(Method::Get), Just(Method::Head), Just(Method::Post), Just(Method::Put),
        Just(Method::Delete), Just(Method::Options), Just(Method::Trace), Just(Method::Patch),
    ]) {
        prop_assert_eq!(method.as_str().parse::<Method>().unwrap(), method);
    }
}
