//! The sampling-protocol layer: who gets probed next, and how many times.
//!
//! The paper's fixed 3-baseline / 20-confirmation protocol used to be
//! hard-coded in three places that each re-derived phase arithmetic their
//! own way — the session's `baseline`/`confirm` methods, the
//! orchestrator's whole-grid work units, and the monitor's delta rescans.
//! A [`SamplingPolicy`] turns the protocol into data: given the evidence
//! collected so far ([`EvidenceState`]) and the probe spend to date
//! ([`ProbeBudget`]), it emits the next [`SampleRequest`] — a round —
//! until it answers [`SampleRequest::Done`]. The session executes rounds;
//! policies only decide them.
//!
//! Three policies ship:
//!
//! * [`PaperExact`] — the default everywhere. Round 0 is the full
//!   `baseline_samples` grid, round 1 confirms every flagged pair at
//!   `confirm_samples`, then done. Probe for probe, in order, this is
//!   exactly the pre-policy protocol, so every golden trace and
//!   fingerprint is bit-identical unless another policy is opted into.
//! * [`AdaptiveBandit`] — successive-halving in the spirit of ROADMAP
//!   item 4: pairs whose samples agree unanimously with no blocking
//!   signal are early-stopped after a single clean scout sample, freed
//!   budget goes to the pairs whose inter-sample disagreement is highest,
//!   and any pair that **ever** shows an explicit blocking signal keeps
//!   the hard floor of the full `baseline + confirm` sample count — the
//!   paper's 23-sample/80% evidence bar is preserved exactly where
//!   verdicts are claimed.
//! * [`DeltaPolicy`] — the monitor's delta scan as a policy: one round
//!   re-probing a fixed pair list at full baseline + confirmation depth.
//!
//! Budget spend is a first-class ledger so orchestrated runs can
//! checkpoint it and prove a resumed run replays to the identical spend
//! (see the orchestrator's `run_policy`).

use serde::{Deserialize, Serialize};

use crate::confirm::flagged_explicit_pairs;
use crate::observation::SampleStore;
use crate::study::StudyConfig;

/// Per-(domain, country) evidence summary a policy decides from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairEvidence {
    /// Domain index.
    pub domain: usize,
    /// Country index.
    pub country: usize,
    /// Samples collected so far.
    pub samples: usize,
    /// Samples that showed an explicit geoblock page.
    pub block_samples: usize,
    /// Distinct stable labels among the samples — 0 or 1 means the pair
    /// has never disagreed with itself.
    pub distinct_labels: usize,
}

impl PairEvidence {
    /// Whether the pair has ever shown an explicit blocking signal.
    pub fn flagged(&self) -> bool {
        self.block_samples > 0
    }

    /// Whether every sample so far told the same story (vacuously false
    /// for an unsampled pair — nothing has been established yet).
    pub fn unanimous(&self) -> bool {
        self.samples > 0 && self.distinct_labels <= 1
    }

    /// Inter-sample disagreement: how many label changes the samples show.
    pub fn disagreement(&self) -> usize {
        self.distinct_labels.saturating_sub(1)
    }
}

/// A read-only view over the evidence a study has collected, handed to
/// [`SamplingPolicy::next_round`]: the sample store, the study
/// configuration (phase depths), and the number of rounds already run.
#[derive(Debug, Clone, Copy)]
pub struct EvidenceState<'a> {
    store: &'a SampleStore,
    config: &'a StudyConfig,
    round: usize,
}

impl<'a> EvidenceState<'a> {
    /// Evidence after `round` completed rounds over `store`.
    pub fn new(store: &'a SampleStore, config: &'a StudyConfig, round: usize) -> EvidenceState<'a> {
        EvidenceState {
            store,
            config,
            round,
        }
    }

    /// Completed rounds so far (the next request is round `round()`).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The study configuration (phase depths, confirmation policy).
    pub fn config(&self) -> &StudyConfig {
        self.config
    }

    /// The raw sample store, for policies that need more than summaries.
    pub fn store(&self) -> &SampleStore {
        self.store
    }

    /// Per-pair evidence summaries in domain-major order. Only pairs with
    /// at least one sample appear — an unprobed pair has no evidence to
    /// summarize (policies cover the whole grid in their opening round).
    pub fn pairs(&self) -> impl Iterator<Item = PairEvidence> + 'a {
        self.store.iter_cells().map(|(domain, country, samples)| {
            let block_samples = samples.iter().filter(|o| o.explicit_geoblock()).count();
            let mut labels: Vec<String> = samples.iter().map(|o| o.stable_label()).collect();
            labels.sort_unstable();
            labels.dedup();
            PairEvidence {
                domain,
                country,
                samples: samples.len(),
                block_samples,
                distinct_labels: labels.len(),
            }
        })
    }

    /// Pairs whose evidence shows any explicit geoblock page, in
    /// domain-major order — the confirmation set.
    pub fn flagged_explicit(&self) -> Vec<(usize, usize)> {
        flagged_explicit_pairs(self.store)
    }
}

/// One round of probing a policy asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleRequest {
    /// Probe the full `domains × countries` grid, `samples` per pair,
    /// archiving representative-country bodies (a baseline-shaped pass).
    Grid {
        /// Samples per (domain, country) pair.
        samples: usize,
    },
    /// Probe the listed (domain index, country index) pairs, `samples`
    /// each, in pair order (a confirmation-shaped pass; no archiving).
    Pairs {
        /// The pairs to probe, in order.
        pairs: Vec<(usize, usize)>,
        /// Samples per pair.
        samples: usize,
    },
    /// The protocol is complete.
    Done,
}

impl SampleRequest {
    /// Whether this request ends the protocol.
    pub fn is_done(&self) -> bool {
        matches!(self, SampleRequest::Done)
    }

    /// Probes this request will spend over a `domains × countries` grid.
    pub fn probes(&self, domains: usize, countries: usize) -> usize {
        match self {
            SampleRequest::Grid { samples } => domains * countries * samples,
            SampleRequest::Pairs { pairs, samples } => pairs.len() * samples,
            SampleRequest::Done => 0,
        }
    }
}

/// One round's spend in a [`ProbeBudget`] ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundSpend {
    /// Round index.
    pub round: u32,
    /// Probes charged to the round.
    pub probes: u64,
}

/// A probe-spend ledger: an optional hard cap plus a per-round record of
/// every charge. The ledger is plain serde data so checkpoints can carry
/// it, and equality is structural — a resumed run proving it replayed to
/// the identical ledger is `assert_eq!` on two of these.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeBudget {
    /// Probe ceiling, when capped.
    pub cap: Option<u64>,
    /// Probes spent so far.
    pub spent: u64,
    /// Per-round spend, in charge order (consecutive charges to the same
    /// round merge into one entry).
    pub rounds: Vec<RoundSpend>,
}

impl ProbeBudget {
    /// A ledger with no ceiling.
    pub fn unlimited() -> ProbeBudget {
        ProbeBudget::default()
    }

    /// A ledger that runs out after `cap` probes.
    pub fn capped(cap: u64) -> ProbeBudget {
        ProbeBudget {
            cap: Some(cap),
            ..ProbeBudget::default()
        }
    }

    /// Charge `probes` to `round`.
    pub fn charge(&mut self, round: usize, probes: u64) {
        self.spent += probes;
        match self.rounds.last_mut() {
            Some(last) if last.round == round as u32 => last.probes += probes,
            _ => self.rounds.push(RoundSpend {
                round: round as u32,
                probes,
            }),
        }
    }

    /// Probes left under the cap; `None` means unlimited.
    pub fn remaining(&self) -> Option<u64> {
        self.cap.map(|cap| cap.saturating_sub(self.spent))
    }

    /// Whether a capped ledger has nothing left to spend.
    pub fn exhausted(&self) -> bool {
        self.remaining() == Some(0)
    }
}

/// Decides study rounds from evidence. Implementations must be
/// deterministic functions of `(evidence, budget)` plus their own
/// configuration: a killed-and-resumed run re-asks the same questions and
/// must get the same answers.
pub trait SamplingPolicy: Send {
    /// The policy's stable name (budget ledgers and logs carry it).
    fn name(&self) -> &'static str;

    /// The next round to run, or [`SampleRequest::Done`].
    fn next_round(&mut self, evidence: &EvidenceState<'_>, budget: &ProbeBudget) -> SampleRequest;
}

/// The paper's protocol, exactly: a `baseline_samples` grid, then one
/// `confirm_samples` pass over every flagged pair (in domain-major order —
/// the order `flagged_explicit_pairs` reports), then done. This is the
/// default policy everywhere, and it is probe-for-probe identical to the
/// pre-policy `baseline` + `confirm` pipeline, including the empty
/// confirmation pass when nothing was flagged.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperExact;

impl SamplingPolicy for PaperExact {
    fn name(&self) -> &'static str {
        "paper-exact"
    }

    fn next_round(&mut self, evidence: &EvidenceState<'_>, _budget: &ProbeBudget) -> SampleRequest {
        match evidence.round() {
            0 => SampleRequest::Grid {
                samples: evidence.config().baseline_samples as usize,
            },
            // Always emitted, even when no pair was flagged: the legacy
            // confirm pass ran (an empty resample) either way, and
            // bit-identity extends to what attached observers see.
            1 => SampleRequest::Pairs {
                pairs: evidence.flagged_explicit(),
                samples: evidence.config().confirm.confirm_samples as usize,
            },
            _ => SampleRequest::Done,
        }
    }
}

/// Budget-aware successive halving over the pair population.
///
/// Round 0 scouts the whole grid with `scout_samples` (default 1) probes
/// per pair. From then on, each round re-probes only the pairs still
/// worth money: pairs that showed a blocking signal, and pairs whose
/// samples disagree with each other, ordered by disagreement (highest
/// first) so a capped budget is spent where the evidence is noisiest.
/// Pairs that answered unanimously-clean are never probed again — that is
/// where the savings come from. Once no pair needs baseline work, every
/// flagged pair is topped up to the full `baseline + confirm` sample
/// count: the hard floor. Floor rounds ignore the cap — a flagged pair
/// short of 23 samples would be a verdict the paper's methodology never
/// certified.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveBandit {
    /// Samples per pair in the scouting round (default 1).
    pub scout_samples: usize,
}

impl Default for AdaptiveBandit {
    fn default() -> AdaptiveBandit {
        AdaptiveBandit { scout_samples: 1 }
    }
}

impl SamplingPolicy for AdaptiveBandit {
    fn name(&self) -> &'static str {
        "adaptive-bandit"
    }

    fn next_round(&mut self, evidence: &EvidenceState<'_>, budget: &ProbeBudget) -> SampleRequest {
        let base = evidence.config().baseline_samples as usize;
        let full = base + evidence.config().confirm.confirm_samples as usize;
        if evidence.round() == 0 {
            return SampleRequest::Grid {
                samples: self.scout_samples.clamp(1, base),
            };
        }

        // Baseline continuation: pairs that are flagged or self-disagreeing
        // and still short of the baseline depth get one more sample each,
        // noisiest first. A capped budget truncates this set (never the
        // floor below): the cheap scout already bought every pair a look.
        let mut active: Vec<PairEvidence> = evidence
            .pairs()
            .filter(|e| e.samples < base && (e.flagged() || !e.unanimous()))
            .collect();
        if !active.is_empty() {
            active.sort_by_key(|e| (std::cmp::Reverse(e.disagreement()), e.domain, e.country));
            if let Some(remaining) = budget.remaining() {
                active.truncate(remaining as usize);
            }
            if !active.is_empty() {
                return SampleRequest::Pairs {
                    pairs: active.iter().map(|e| (e.domain, e.country)).collect(),
                    samples: 1,
                };
            }
        }

        // The hard floor: every pair that ever showed a blocking signal
        // reaches the full protocol's sample count, cap or no cap. Rounds
        // are uniform (the smallest outstanding deficit), so pairs flagged
        // at different depths converge over a couple of rounds.
        let deficient: Vec<PairEvidence> = evidence
            .pairs()
            .filter(|e| e.flagged() && e.samples < full)
            .collect();
        if let Some(step) = deficient.iter().map(|e| full - e.samples).min() {
            return SampleRequest::Pairs {
                pairs: deficient.iter().map(|e| (e.domain, e.country)).collect(),
                samples: step,
            };
        }
        SampleRequest::Done
    }
}

/// The monitor's delta scan as a policy: one round re-probing a fixed
/// pair list at full baseline + confirmation depth (so delta verdicts
/// meet the same 23-sample evidence bar as full-scan ones), then done.
#[derive(Debug, Clone)]
pub struct DeltaPolicy {
    pairs: Vec<(usize, usize)>,
}

impl DeltaPolicy {
    /// A delta pass over `pairs` (previous-snapshot order).
    pub fn new(pairs: Vec<(usize, usize)>) -> DeltaPolicy {
        DeltaPolicy { pairs }
    }
}

impl SamplingPolicy for DeltaPolicy {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn next_round(&mut self, evidence: &EvidenceState<'_>, _budget: &ProbeBudget) -> SampleRequest {
        if evidence.round() == 0 {
            let config = evidence.config();
            SampleRequest::Pairs {
                pairs: self.pairs.clone(),
                samples: (config.baseline_samples + config.confirm.confirm_samples) as usize,
            }
        } else {
            SampleRequest::Done
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Obs;
    use geoblock_blockpages::PageKind;
    use geoblock_worldgen::cc;

    fn block() -> Obs {
        Obs::Response {
            status: 403,
            len: 1500,
            page: Some(PageKind::Cloudflare),
        }
    }

    fn ok() -> Obs {
        Obs::Response {
            status: 200,
            len: 9000,
            page: None,
        }
    }

    fn config() -> StudyConfig {
        StudyConfig::builder()
            .countries([cc("IR"), cc("US")])
            .build()
            .unwrap()
    }

    fn store(domains: usize) -> SampleStore {
        SampleStore::new(
            (0..domains).map(|i| format!("d{i}.example")).collect(),
            vec![cc("IR"), cc("US")],
        )
    }

    /// Drive a policy to completion over a deterministic obs oracle,
    /// returning (final store, budget).
    fn drive(
        policy: &mut dyn SamplingPolicy,
        config: &StudyConfig,
        domains: usize,
        oracle: impl Fn(usize, usize) -> Obs,
        cap: Option<u64>,
    ) -> (SampleStore, ProbeBudget) {
        let mut s = store(domains);
        let mut budget = cap.map(ProbeBudget::capped).unwrap_or_default();
        for round in 0.. {
            let request = policy.next_round(&EvidenceState::new(&s, config, round), &budget);
            let probes = request.probes(s.domains.len(), s.countries.len());
            match request {
                SampleRequest::Done => break,
                SampleRequest::Grid { samples } => {
                    for d in 0..s.domains.len() {
                        for c in 0..s.countries.len() {
                            for _ in 0..samples {
                                s.push(d, c, oracle(d, c));
                            }
                        }
                    }
                }
                SampleRequest::Pairs { pairs, samples } => {
                    for (d, c) in pairs {
                        for _ in 0..samples {
                            s.push(d, c, oracle(d, c));
                        }
                    }
                }
            }
            budget.charge(round, probes as u64);
            assert!(round < 64, "policy failed to terminate");
        }
        (s, budget)
    }

    #[test]
    fn paper_exact_replays_the_fixed_protocol() {
        let config = config();
        // Domain 0 blocks IR; everything else is clean.
        let oracle = |d: usize, c: usize| if d == 0 && c == 0 { block() } else { ok() };
        let (s, budget) = drive(&mut PaperExact, &config, 3, oracle, None);
        // Every pair gets 3 baseline samples; the one flagged pair 23.
        for (d, c, cell) in s.iter_cells() {
            let expected = if (d, c) == (0, 0) { 23 } else { 3 };
            assert_eq!(cell.len(), expected, "cell ({d}, {c})");
        }
        // Ledger: grid round then confirmation round.
        assert_eq!(budget.spent, (3 * 2 * 3 + 20) as u64);
        assert_eq!(budget.rounds.len(), 2);
        assert_eq!(budget.rounds[0].probes, 18);
        assert_eq!(budget.rounds[1].probes, 20);
    }

    #[test]
    fn paper_exact_confirm_round_is_emitted_even_when_empty() {
        // Bit-identity with the legacy pipeline includes the empty
        // confirmation resample observers used to see.
        let config = config();
        let s = store(1);
        let mut seeded = s;
        for c in 0..2 {
            for _ in 0..3 {
                seeded.push(0, c, ok());
            }
        }
        let request = PaperExact.next_round(
            &EvidenceState::new(&seeded, &config, 1),
            &ProbeBudget::default(),
        );
        assert_eq!(
            request,
            SampleRequest::Pairs {
                pairs: Vec::new(),
                samples: 20
            }
        );
    }

    #[test]
    fn bandit_early_stops_clean_pairs_and_floors_flagged_ones() {
        let config = config();
        let oracle = |d: usize, c: usize| if d == 0 && c == 0 { block() } else { ok() };
        let (s, budget) = drive(&mut AdaptiveBandit::default(), &config, 4, oracle, None);
        for (d, c, cell) in s.iter_cells() {
            if (d, c) == (0, 0) {
                assert_eq!(cell.len(), 23, "flagged pair must reach the full floor");
            } else {
                assert_eq!(cell.len(), 1, "clean unanimous pairs stop after 1 sample");
            }
        }
        // 8 scout probes + 22 top-ups ≪ the fixed protocol's 8*3 + 20.
        assert_eq!(budget.spent, 8 + 22);
    }

    #[test]
    fn bandit_spends_on_disagreement_but_never_past_baseline_for_clean_pairs() {
        let config = config();
        // Pair (1, 1) flips between two answers; never a block signal. A
        // 2-sample scout catches the flip in the opening round.
        let flip = std::cell::Cell::new(false);
        let oracle = move |d: usize, c: usize| {
            if (d, c) == (1, 1) {
                flip.set(!flip.get());
                if flip.get() {
                    ok()
                } else {
                    Obs::Response {
                        status: 500,
                        len: 100,
                        page: None,
                    }
                }
            } else {
                ok()
            }
        };
        let mut policy = AdaptiveBandit { scout_samples: 2 };
        let (s, _) = drive(&mut policy, &config, 2, oracle, None);
        assert_eq!(
            s.cell(1, 1).len(),
            3,
            "disagreeing unflagged pairs resolve at baseline depth"
        );
        assert_eq!(s.cell(0, 0).len(), 2, "unanimous pairs stop at the scout");
    }

    #[test]
    fn bandit_floor_ignores_an_exhausted_cap() {
        let config = config();
        let oracle = |d: usize, c: usize| if d == 0 && c == 0 { block() } else { ok() };
        // Cap below even the scout cost: baseline continuation is starved,
        // but the flagged pair still reaches the full 23-sample bar.
        let (s, budget) = drive(&mut AdaptiveBandit::default(), &config, 4, oracle, Some(6));
        assert_eq!(s.cell(0, 0).len(), 23);
        assert!(budget.spent > 6, "floor rounds spend past the cap");
    }

    #[test]
    fn delta_policy_is_one_full_depth_pass() {
        let config = config();
        let mut policy = DeltaPolicy::new(vec![(1, 0), (0, 1)]);
        let oracle = |_: usize, _: usize| block();
        let (s, budget) = drive(&mut policy, &config, 2, oracle, None);
        assert_eq!(s.cell(1, 0).len(), 23);
        assert_eq!(s.cell(0, 1).len(), 23);
        assert_eq!(s.cell(0, 0).len(), 0);
        assert_eq!(budget.rounds.len(), 1);
        assert_eq!(budget.spent, 46);
    }

    #[test]
    fn budget_ledger_merges_same_round_charges_and_serializes() {
        let mut budget = ProbeBudget::capped(100);
        budget.charge(0, 30);
        budget.charge(0, 10);
        budget.charge(1, 5);
        assert_eq!(budget.spent, 45);
        assert_eq!(budget.remaining(), Some(55));
        assert_eq!(budget.rounds.len(), 2);
        assert_eq!(
            budget.rounds[0],
            RoundSpend {
                round: 0,
                probes: 40
            }
        );
        let json = serde_json::to_string(&budget).unwrap();
        let back: ProbeBudget = serde_json::from_str(&json).unwrap();
        assert_eq!(back, budget);

        assert!(!ProbeBudget::unlimited().exhausted());
        assert_eq!(ProbeBudget::unlimited().remaining(), None);
        let mut tiny = ProbeBudget::capped(2);
        tiny.charge(0, 2);
        assert!(tiny.exhausted());
    }

    #[test]
    fn evidence_summaries_count_blocks_and_labels() {
        let config = config();
        let mut s = store(1);
        s.push(0, 0, block());
        s.push(0, 0, ok());
        let ev = EvidenceState::new(&s, &config, 1);
        let pairs: Vec<PairEvidence> = ev.pairs().collect();
        // Unsampled pairs have no evidence and do not appear.
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].samples, 2);
        assert_eq!(pairs[0].block_samples, 1);
        assert!(pairs[0].flagged());
        assert!(!pairs[0].unanimous());
        assert_eq!(pairs[0].disagreement(), 1);
        let unsampled = PairEvidence {
            domain: 0,
            country: 1,
            samples: 0,
            block_samples: 0,
            distinct_labels: 0,
        };
        assert!(!unsampled.unanimous(), "an unsampled pair proves nothing");
        assert_eq!(ev.flagged_explicit(), vec![(0, 0)]);
    }
}
