//! Compact probe observations and their store.
//!
//! A full Top-10K study holds ~4.2M samples; observations are therefore
//! 16-byte records (status, length, fingerprint, error), and raw HTML is
//! retained only where the discovery phase can possibly need it (the
//! [`BodyArchive`] retention rule).

use bytes::Bytes;
use geoblock_blockpages::PageKind;
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Compact error taxonomy for storage (projection of
/// [`geoblock_http::FetchError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrKind {
    Dns,
    Refused,
    Timeout,
    Reset,
    RedirectLoop,
    Proxy,
    ProxyRefused,
    NoExit,
    Malformed,
    Truncated,
    GeoMismatch,
    Panic,
}

impl From<&geoblock_http::FetchError> for ErrKind {
    fn from(e: &geoblock_http::FetchError) -> ErrKind {
        use geoblock_http::FetchError::*;
        match e {
            DnsFailure { .. } => ErrKind::Dns,
            ConnectionRefused => ErrKind::Refused,
            Timeout => ErrKind::Timeout,
            ConnectionReset => ErrKind::Reset,
            TooManyRedirects { .. } => ErrKind::RedirectLoop,
            ProxyError { .. } => ErrKind::Proxy,
            ProxyRefused { .. } => ErrKind::ProxyRefused,
            NoExitAvailable { .. } => ErrKind::NoExit,
            MalformedResponse { .. } => ErrKind::Malformed,
            BadRedirect { .. } => ErrKind::RedirectLoop,
            TruncatedBody { .. } => ErrKind::Truncated,
            GeolocationMismatch { .. } => ErrKind::GeoMismatch,
            ProbePanicked { .. } => ErrKind::Panic,
        }
    }
}

/// One observation of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Obs {
    /// The probe failed.
    Error(ErrKind),
    /// A final response was received.
    Response {
        /// HTTP status of the final response.
        status: u16,
        /// Final-response body length in bytes.
        len: u32,
        /// Which block-page fingerprint the body matched, if any.
        page: Option<PageKind>,
    },
}

impl Obs {
    /// Whether a final response was received ("valid response" in §4.1.1).
    pub fn responded(&self) -> bool {
        matches!(self, Obs::Response { .. })
    }

    /// The matched block-page kind, if any.
    pub fn page(&self) -> Option<PageKind> {
        match self {
            Obs::Response { page, .. } => *page,
            Obs::Error(_) => None,
        }
    }

    /// Body length, if a response was received.
    pub fn body_len(&self) -> Option<u32> {
        match self {
            Obs::Response { len, .. } => Some(*len),
            Obs::Error(_) => None,
        }
    }

    /// Whether the observation matched an *explicit* geoblock fingerprint.
    pub fn explicit_geoblock(&self) -> bool {
        self.page()
            .map(|k| k.is_explicit_geoblock())
            .unwrap_or(false)
    }

    /// A short stable label: `resp:<status>:<len>:<page>` for responses
    /// (`-` when no block page matched), `err:<kind>` for errors. Byte-
    /// stable across runs and platforms, so it can participate in trace
    /// lines and checkpoint integrity hashes.
    pub fn stable_label(&self) -> String {
        match self {
            Obs::Error(kind) => format!("err:{kind:?}"),
            Obs::Response { status, len, page } => {
                let page = page.map(|p| p.label()).unwrap_or("-");
                format!("resp:{status}:{len}:{page}")
            }
        }
    }
}

/// All samples of a study pass, indexed `[domain][country] -> Vec<Obs>`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleStore {
    /// Probed domains, in index order.
    pub domains: Vec<String>,
    /// Probed countries, in index order.
    pub countries: Vec<CountryCode>,
    cells: Vec<Vec<Obs>>,
}

impl SampleStore {
    /// An empty store over the given axes.
    pub fn new(domains: Vec<String>, countries: Vec<CountryCode>) -> SampleStore {
        let cells = vec![Vec::new(); domains.len() * countries.len()];
        SampleStore {
            domains,
            countries,
            cells,
        }
    }

    fn idx(&self, domain: usize, country: usize) -> usize {
        domain * self.countries.len() + country
    }

    /// Append an observation.
    pub fn push(&mut self, domain: usize, country: usize, obs: Obs) {
        let idx = self.idx(domain, country);
        self.cells[idx].push(obs);
    }

    /// Samples of one (domain, country) cell.
    pub fn cell(&self, domain: usize, country: usize) -> &[Obs] {
        &self.cells[self.idx(domain, country)]
    }

    /// Iterate `(domain_idx, country_idx, samples)` over non-empty cells.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, &[Obs])> {
        let nc = self.countries.len();
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(move |(i, v)| (i / nc, i % nc, v.as_slice()))
    }

    /// Total number of stored observations.
    pub fn total_samples(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Number of (domain, country) pairs probed (cells with ≥1 sample).
    pub fn pairs(&self) -> usize {
        self.cells.iter().filter(|v| !v.is_empty()).count()
    }

    /// Index of a domain by name.
    pub fn domain_index(&self, name: &str) -> Option<usize> {
        self.domains.iter().position(|d| d == name)
    }

    /// Index of a country.
    pub fn country_index(&self, country: CountryCode) -> Option<usize> {
        self.countries.iter().position(|c| *c == country)
    }

    /// Merge confirmation-pass observations into this store.
    pub fn merge(&mut self, other: &SampleStore) {
        for (d, c, samples) in other.iter_cells() {
            let name = &other.domains[d];
            let country = other.countries[c];
            if let (Some(di), Some(ci)) = (self.domain_index(name), self.country_index(country)) {
                for obs in samples {
                    self.push(di, ci, *obs);
                }
            }
        }
    }

    /// Per-domain error rate: fraction of samples that failed.
    pub fn domain_error_rate(&self, domain: usize) -> f64 {
        let (mut total, mut errors) = (0usize, 0usize);
        for country in 0..self.countries.len() {
            for obs in self.cell(domain, country) {
                total += 1;
                if !obs.responded() {
                    errors += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        }
    }
}

/// Retained raw documents for the discovery phase.
///
/// Retention rule: a body is kept (truncated to [`BodyArchive::DOC_CAP`])
/// when it is plausibly a block page or a length outlier — shorter than
/// 6 KB absolutely, or ≥28% shorter than the longest response seen so far
/// for its domain. Everything else can never enter the clustering corpus,
/// so storing it would only burn memory.
///
/// Documents are stored as [`Bytes`]: retaining a body is a refcount bump
/// plus a zero-copy prefix slice, so the archive shares the allocation the
/// transport made rather than copying every offered body.
#[derive(Debug, Default)]
pub struct BodyArchive {
    docs: HashMap<(u32, u16, u16), Bytes>,
    max_len: HashMap<u32, u32>,
}

impl BodyArchive {
    /// Stored-document prefix cap, in bytes.
    pub const DOC_CAP: usize = 2048;

    /// Absolute retention bound.
    pub const SMALL_DOC: u32 = 6 * 1024;

    /// An empty archive.
    pub fn new() -> BodyArchive {
        BodyArchive::default()
    }

    /// Offer a body for retention. Retaining never copies: the stored
    /// document is a zero-copy slice of the offered [`Bytes`] handle.
    pub fn offer(&mut self, domain: u32, country: u16, sample: u16, len: u32, body: &Bytes) {
        let max = self.max_len.entry(domain).or_insert(0);
        let keep = len < Self::SMALL_DOC || (*max > 0 && (len as f64) < 0.72 * *max as f64);
        if len > *max {
            *max = len;
        }
        if keep {
            let doc = body.slice(..Self::DOC_CAP.min(body.len()));
            self.docs.insert((domain, country, sample), doc);
        }
    }

    /// Insert an already-retained document verbatim, bypassing the
    /// retention rule. This is how a sharded run's merge step rebuilds the
    /// global archive: each work unit applied [`offer`](BodyArchive::offer)
    /// with its own per-domain length ceilings, and its decisions are
    /// final — re-judging them against another shard's ceilings would make
    /// retention depend on shard geometry.
    pub fn insert(&mut self, domain: u32, country: u16, sample: u16, body: Bytes) {
        self.docs.insert((domain, country, sample), body);
    }

    /// Retrieve a retained document's raw bytes.
    pub fn get(&self, domain: u32, country: u16, sample: u16) -> Option<&[u8]> {
        self.docs
            .get(&(domain, country, sample))
            .map(|b| b.as_ref())
    }

    /// Retrieve a retained document as lossy text — the textmine/display
    /// boundary, where UTF-8 decoding is allowed to allocate.
    pub fn get_text(
        &self,
        domain: u32,
        country: u16,
        sample: u16,
    ) -> Option<std::borrow::Cow<'_, str>> {
        self.docs
            .get(&(domain, country, sample))
            .map(|b| String::from_utf8_lossy(b))
    }

    /// Iterate every retained document as `((domain, country, sample), body)`,
    /// in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = ((u32, u16, u16), &Bytes)> {
        self.docs.iter().map(|(k, v)| (*k, v))
    }

    /// Number of retained documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn resp(status: u16, len: u32, page: Option<PageKind>) -> Obs {
        Obs::Response { status, len, page }
    }

    #[test]
    fn store_push_and_cell() {
        let mut s = SampleStore::new(
            vec!["a.com".into(), "b.com".into()],
            vec![cc("US"), cc("IR")],
        );
        s.push(0, 1, resp(403, 1500, Some(PageKind::Cloudflare)));
        s.push(0, 1, Obs::Error(ErrKind::Timeout));
        assert_eq!(s.cell(0, 1).len(), 2);
        assert!(s.cell(0, 0).is_empty());
        assert_eq!(s.total_samples(), 2);
        assert_eq!(s.pairs(), 1);
    }

    #[test]
    fn iter_cells_reports_coordinates() {
        let mut s = SampleStore::new(vec!["a.com".into()], vec![cc("US"), cc("IR")]);
        s.push(0, 1, resp(200, 100, None));
        let cells: Vec<_> = s.iter_cells().collect();
        assert_eq!(cells.len(), 1);
        assert_eq!((cells[0].0, cells[0].1), (0, 1));
    }

    #[test]
    fn merge_aligns_by_name_and_country() {
        let mut base = SampleStore::new(
            vec!["a.com".into(), "b.com".into()],
            vec![cc("US"), cc("IR")],
        );
        base.push(1, 1, resp(403, 900, Some(PageKind::Cloudflare)));
        let mut confirm = SampleStore::new(vec!["b.com".into()], vec![cc("IR")]);
        for _ in 0..20 {
            confirm.push(0, 0, resp(403, 900, Some(PageKind::Cloudflare)));
        }
        base.merge(&confirm);
        assert_eq!(base.cell(1, 1).len(), 21);
    }

    #[test]
    fn error_rate_counts_failures() {
        let mut s = SampleStore::new(vec!["a.com".into()], vec![cc("US")]);
        s.push(0, 0, resp(200, 100, None));
        s.push(0, 0, Obs::Error(ErrKind::Proxy));
        assert!((s.domain_error_rate(0) - 0.5).abs() < 1e-9);
        assert_eq!(s.domain_error_rate(0), 0.5);
    }

    fn doc(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn archive_retains_small_and_outlier_bodies() {
        let mut a = BodyArchive::new();
        // First sample: large page establishes the max.
        a.offer(1, 0, 0, 20_000, &doc("big page"));
        assert!(a.get(1, 0, 0).is_none());
        // A 30%-shorter sample is retained.
        a.offer(1, 0, 1, 13_000, &doc("shorter variant"));
        assert!(a.get(1, 0, 1).is_some());
        // A near-full-length sample is not.
        a.offer(1, 0, 2, 19_000, &doc("nearly full"));
        assert!(a.get(1, 0, 2).is_none());
        // A tiny block page is always retained.
        a.offer(1, 5, 0, 1500, &doc("error code: 1009"));
        assert_eq!(a.get(1, 5, 0), Some(b"error code: 1009".as_slice()));
        assert_eq!(a.get_text(1, 5, 0).as_deref(), Some("error code: 1009"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn archive_truncates_to_cap_without_copying() {
        let mut a = BodyArchive::new();
        let long = doc(&"x".repeat(10_000));
        a.offer(2, 0, 0, 3000, &long);
        assert_eq!(a.get(2, 0, 0).unwrap().len(), BodyArchive::DOC_CAP);
    }

    #[test]
    fn archive_insert_bypasses_retention() {
        let mut a = BodyArchive::new();
        a.offer(1, 0, 0, 20_000, &doc("big page"));
        assert!(a.get(1, 0, 0).is_none());
        // A sharded merge re-inserts another shard's retained doc verbatim,
        // even where this archive's own ceiling would have rejected it.
        a.insert(1, 0, 1, doc("kept elsewhere"));
        assert_eq!(a.get(1, 0, 1), Some(b"kept elsewhere".as_slice()));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn archive_non_utf8_bodies_survive_byte_for_byte() {
        let mut a = BodyArchive::new();
        let raw = Bytes::copy_from_slice(b"\xff\xfeincomplete \xe2\x82 page");
        a.offer(3, 0, 0, raw.len() as u32, &raw);
        assert_eq!(a.get(3, 0, 0), Some(&raw[..]));
        // Lossy decoding happens only at the text boundary.
        assert!(a.get_text(3, 0, 0).unwrap().contains("incomplete"));
    }

    #[test]
    fn stable_labels_are_fixed_format() {
        assert_eq!(resp(200, 64, None).stable_label(), "resp:200:64:-");
        assert_eq!(
            resp(403, 1500, Some(PageKind::Cloudflare)).stable_label(),
            format!("resp:403:1500:{}", PageKind::Cloudflare.label())
        );
        assert_eq!(Obs::Error(ErrKind::Timeout).stable_label(), "err:Timeout");
    }

    #[test]
    fn obs_projections() {
        let o = resp(403, 1200, Some(PageKind::AppEngine));
        assert!(o.responded());
        assert!(o.explicit_geoblock());
        assert_eq!(o.body_len(), Some(1200));
        let e = Obs::Error(ErrKind::Dns);
        assert!(!e.responded());
        assert_eq!(e.page(), None);
        assert_eq!(e.body_len(), None);
        let captcha = resp(403, 1200, Some(PageKind::CloudflareCaptcha));
        assert!(!captcha.explicit_geoblock());
    }

    #[test]
    fn errkind_projection_is_total() {
        use geoblock_http::FetchError::*;
        let all = [
            DnsFailure { host: "h".into() },
            ConnectionRefused,
            Timeout,
            ConnectionReset,
            TooManyRedirects { limit: 10 },
            ProxyError { detail: "d".into() },
            ProxyRefused { reason: "r".into() },
            NoExitAvailable {
                country: "KP".into(),
            },
            MalformedResponse { detail: "d".into() },
        ];
        let kinds: std::collections::HashSet<ErrKind> = all.iter().map(ErrKind::from).collect();
        assert_eq!(kinds.len(), all.len());
    }
}
