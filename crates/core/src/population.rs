//! CDN customer identification (§3.1, §5.1.1).
//!
//! Four techniques, matching the paper:
//!
//! * **response headers** anywhere in the redirect chain: `CF-RAY` →
//!   Cloudflare, `X-Amz-Cf-Id` → CloudFront, `X-Iinfo` → Incapsula;
//! * **the Akamai `Pragma` poke**: sending
//!   `Pragma: akamai-x-cache-on, akamai-x-get-cache-key` makes Akamai edges
//!   emit cache-debug headers;
//! * **AppEngine netblocks**: recursively resolve
//!   `_cloud-netblocks.googleusercontent.com` TXT records into IP blocks
//!   and match each domain's A record;
//! * **NS delegation** (the §3 method): NS records under `akam.net` /
//!   `ns.cloudflare.com` — exposes only a biased fraction of customers.

use std::collections::BTreeMap;
use std::sync::Arc;

use geoblock_blockpages::Provider;
use geoblock_http::{ClientProfile, Request, Url};
use geoblock_lumscan::{follow_redirects, SessionId, Transport};
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};
use tokio::task::JoinSet;

/// A DNS view the identifier can query.
pub trait Resolver: Send + Sync {
    /// NS records for a name.
    fn ns(&self, name: &str) -> Vec<String>;
    /// A records for a name.
    fn a(&self, name: &str) -> Vec<String>;
    /// TXT records for a name.
    fn txt(&self, name: &str) -> Vec<String>;
}

/// Identified populations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopulationReport {
    /// Customers per provider (sorted domain lists).
    pub by_provider: BTreeMap<Provider, Vec<String>>,
    /// Domains identified as customers of two services.
    pub dual: Vec<String>,
    /// Domains that answered the probe at all.
    pub responding: usize,
}

impl PopulationReport {
    /// Unique customer domains across all providers (§5.1.1: 152,001).
    pub fn total_unique(&self) -> usize {
        let mut all: Vec<&String> = self.by_provider.values().flatten().collect();
        all.sort();
        all.dedup();
        all.len()
    }

    /// Customers of one provider.
    pub fn of(&self, provider: Provider) -> &[String] {
        self.by_provider
            .get(&provider)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Walk the `_cloud-netblocks` TXT tree, returning the discovered CIDR
/// blocks (§5.1.1 found 65).
pub fn discover_appengine_netblocks(resolver: &dyn Resolver) -> Vec<String> {
    let mut blocks = Vec::new();
    for root_txt in resolver.txt("_cloud-netblocks.googleusercontent.com") {
        for include in parse_spf(&root_txt, "include:") {
            for txt in resolver.txt(&include) {
                blocks.extend(parse_spf(&txt, "ip4:"));
            }
        }
    }
    blocks.sort();
    blocks.dedup();
    blocks
}

fn parse_spf(txt: &str, prefix: &str) -> Vec<String> {
    txt.split_whitespace()
        .filter_map(|tok| tok.strip_prefix(prefix))
        .map(str::to_string)
        .collect()
}

/// Whether a dotted-quad address falls in a `/16` CIDR.
fn in_block(ip: &str, cidr: &str) -> bool {
    let Some((prefix, "16")) = cidr.split_once('/') else {
        return false;
    };
    let p: Vec<&str> = prefix.splitn(4, '.').collect();
    let i: Vec<&str> = ip.splitn(4, '.').collect();
    p.len() == 4 && i.len() == 4 && p[0] == i[0] && p[1] == i[1]
}

/// A probe task's yield: domain index and identified providers (None on a
/// failed probe).
type ProbeYield = (usize, Option<Vec<Provider>>);

/// NS-delegation identification (§3.1). Returns `(cloudflare, akamai)`
/// customer lists — "only a fraction" of the real populations, biased
/// toward enterprise zones.
pub fn identify_by_ns(resolver: &dyn Resolver, domains: &[String]) -> (Vec<String>, Vec<String>) {
    let mut cloudflare = Vec::new();
    let mut akamai = Vec::new();
    for d in domains {
        for ns in resolver.ns(d) {
            if ns.ends_with(".ns.cloudflare.com") {
                cloudflare.push(d.clone());
                break;
            }
            if ns.ends_with(".akam.net") {
                akamai.push(d.clone());
                break;
            }
        }
    }
    (cloudflare, akamai)
}

/// Probe configuration for header-based identification.
#[derive(Debug, Clone)]
pub struct PopulationProbe {
    /// The vantage country (a control location; the US in the paper).
    pub country: CountryCode,
    /// Concurrent probes.
    pub concurrency: usize,
}

/// Identify CDN customers among `domains` by probing each once (HEAD with
/// the Akamai `Pragma` poke) and checking headers on every redirect hop,
/// plus the AppEngine netblock match on A records.
pub async fn identify_populations<T: Transport + 'static>(
    transport: Arc<T>,
    resolver: &dyn Resolver,
    domains: &[String],
    probe: &PopulationProbe,
) -> PopulationReport {
    let netblocks = Arc::new(discover_appengine_netblocks(resolver));

    let mut report = PopulationReport::default();
    let mut join: JoinSet<ProbeYield> = JoinSet::new();
    let mut next = 0usize;
    let mut found: Vec<Option<Vec<Provider>>> = vec![None; domains.len()];

    // A-record matching is synchronous; do it inline first.
    let mut appengine: Vec<bool> = Vec::with_capacity(domains.len());
    for d in domains {
        let hit = resolver
            .a(d)
            .iter()
            .any(|ip| netblocks.iter().any(|b| in_block(ip, b)));
        appengine.push(hit);
    }

    while next < domains.len() || !join.is_empty() {
        while next < domains.len() && join.len() < probe.concurrency.max(1) {
            let transport = Arc::clone(&transport);
            let domain = domains[next].clone();
            let idx = next;
            let country = probe.country;
            next += 1;
            join.spawn(async move {
                // The identification pass probes as a full browser so the
                // edge's bot-detection tiers never swallow the identifying
                // headers it is looking for.
                let request = Request::head(Url::http(domain.as_str()))
                    .client_profile(&ClientProfile::browser())
                    .header("Pragma", "akamai-x-cache-on, akamai-x-get-cache-key");
                match follow_redirects(
                    transport.as_ref(),
                    request,
                    country,
                    SessionId(idx as u64),
                    10,
                )
                .await
                {
                    Err(_) => (idx, None),
                    Ok(chain) => {
                        let mut providers = Vec::new();
                        if chain.any_hop_has_header("cf-ray") {
                            providers.push(Provider::Cloudflare);
                        }
                        if chain.any_hop_has_header("x-amz-cf-id") {
                            providers.push(Provider::CloudFront);
                        }
                        if chain.any_hop_has_header("x-iinfo") {
                            providers.push(Provider::Incapsula);
                        }
                        if chain.any_hop_has_header("x-check-cacheable") {
                            providers.push(Provider::Akamai);
                        }
                        (idx, Some(providers))
                    }
                }
            });
        }
        if let Some(done) = join.join_next().await {
            let (idx, providers) = done.expect("population probe panicked");
            found[idx] = providers;
        }
    }

    for (idx, providers) in found.into_iter().enumerate() {
        let mut providers = providers.unwrap_or_default();
        let responded = !providers.is_empty() || appengine[idx];
        if responded {
            report.responding += 1;
        }
        if appengine[idx] {
            providers.push(Provider::AppEngine);
        }
        if providers.len() >= 2 {
            report.dual.push(domains[idx].clone());
        }
        for p in providers {
            report
                .by_provider
                .entry(p)
                .or_default()
                .push(domains[idx].clone());
        }
    }
    for list in report.by_provider.values_mut() {
        list.sort();
    }
    report.dual.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_http::{FetchError, Response, StatusCode};
    use geoblock_lumscan::TransportRequest;
    use geoblock_worldgen::cc;

    /// Test double: a resolver + transport with a scripted world of four
    /// domains.
    struct FakeWorld;

    impl Resolver for FakeWorld {
        fn ns(&self, name: &str) -> Vec<String> {
            match name {
                "cf.com" => vec!["ada1.ns.cloudflare.com".into()],
                "ak.com" => vec!["a3-64.akam.net".into()],
                _ => vec!["ns1.other.net".into()],
            }
        }

        fn a(&self, name: &str) -> Vec<String> {
            match name {
                "gae.com" => vec!["172.103.9.9".into()],
                _ => vec!["198.51.1.1".into()],
            }
        }

        fn txt(&self, name: &str) -> Vec<String> {
            match name {
                "_cloud-netblocks.googleusercontent.com" => {
                    vec!["v=spf1 include:_cloud-netblocks1.googleusercontent.com ?all".into()]
                }
                "_cloud-netblocks1.googleusercontent.com" => {
                    vec!["v=spf1 ip4:172.103.0.0/16 ip4:172.104.0.0/16 ?all".into()]
                }
                _ => vec![],
            }
        }
    }

    impl Transport for FakeWorld {
        async fn fetch_one(&self, req: TransportRequest) -> Result<Response, FetchError> {
            let host = req.request.effective_host();
            let mut b = Response::builder(StatusCode::OK);
            match host.as_str() {
                "cf.com" => b = b.header("CF-RAY", "x"),
                "ak.com"
                    if req
                        .request
                        .headers
                        .get_all("pragma")
                        .any(|v| v.contains("akamai")) =>
                {
                    b = b.header("X-Check-Cacheable", "YES");
                }
                "dual.com" => b = b.header("X-Iinfo", "i").header("X-Check-Cacheable", "YES"),
                _ => {}
            }
            Ok(b.finish(req.request.url))
        }
    }

    fn domains() -> Vec<String> {
        ["cf.com", "ak.com", "gae.com", "dual.com", "plain.com"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn netblock_walk_collects_blocks() {
        let blocks = discover_appengine_netblocks(&FakeWorld);
        assert_eq!(blocks, vec!["172.103.0.0/16", "172.104.0.0/16"]);
    }

    #[test]
    fn ns_identification_splits_providers() {
        let (cf, ak) = identify_by_ns(&FakeWorld, &domains());
        assert_eq!(cf, vec!["cf.com"]);
        assert_eq!(ak, vec!["ak.com"]);
    }

    #[tokio::test]
    async fn header_identification_covers_all_methods() {
        let report = identify_populations(
            Arc::new(FakeWorld),
            &FakeWorld,
            &domains(),
            &PopulationProbe {
                country: cc("US"),
                concurrency: 4,
            },
        )
        .await;
        assert_eq!(report.of(Provider::Cloudflare), ["cf.com"]);
        assert_eq!(report.of(Provider::Akamai), ["ak.com", "dual.com"]);
        assert_eq!(report.of(Provider::AppEngine), ["gae.com"]);
        assert_eq!(report.of(Provider::Incapsula), ["dual.com"]);
        assert_eq!(report.dual, ["dual.com"]);
        assert_eq!(report.total_unique(), 4);
    }

    #[test]
    fn in_block_requires_slash_16_match() {
        assert!(in_block("172.103.1.2", "172.103.0.0/16"));
        assert!(!in_block("172.105.1.2", "172.103.0.0/16"));
        assert!(!in_block("junk", "172.103.0.0/16"));
    }
}
