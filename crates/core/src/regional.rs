//! Sub-country (regional) blocking analysis (§4.2.2 / §7.3).
//!
//! The paper's one counterexample to country-granular blocking is
//! `geniusdisplay.com`: an nginx page across Russia, but Google AppEngine's
//! sanctions page specifically from *Crimean* exits inside Ukraine. The
//! paper flags region-granular measurement as future work; this module
//! implements the analysis: probe one (domain, country) pair many times,
//! attribute each observation to the exit's address, and test whether
//! block pages concentrate in an address subrange (a region) rather than
//! being uniform across the country.

use geoblock_blockpages::{FingerprintSet, PageKind};
use geoblock_http::{ClientProfile, Request, Url};
use geoblock_lumscan::{follow_redirects, SessionId, Transport};
use geoblock_worldgen::CountryCode;
use serde::{Deserialize, Serialize};

/// One attributed observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionalObservation {
    /// The exit's address as reported by the echo service.
    pub exit_ip: String,
    /// Block page seen, if any.
    pub page: Option<PageKind>,
}

/// Result of a regional probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionalReport {
    /// The probed domain.
    pub domain: String,
    /// The probed country.
    pub country: CountryCode,
    /// All attributed observations.
    pub observations: Vec<RegionalObservation>,
}

impl RegionalReport {
    /// Fraction of observations showing a block page.
    pub fn block_rate(&self) -> f64 {
        let blocks = self
            .observations
            .iter()
            .filter(|o| o.page.is_some())
            .count();
        blocks as f64 / self.observations.len().max(1) as f64
    }

    /// Split observations by an address predicate (e.g. "is this a Crimean
    /// prefix") and return `(inside_rate, outside_rate)`.
    pub fn split_rates(&self, in_region: impl Fn(&str) -> bool) -> (f64, f64) {
        let (mut in_b, mut in_n, mut out_b, mut out_n) = (0u32, 0u32, 0u32, 0u32);
        for o in &self.observations {
            if in_region(&o.exit_ip) {
                in_n += 1;
                in_b += u32::from(o.page.is_some());
            } else {
                out_n += 1;
                out_b += u32::from(o.page.is_some());
            }
        }
        (
            in_b as f64 / in_n.max(1) as f64,
            out_b as f64 / out_n.max(1) as f64,
        )
    }

    /// Whether blocking is regional: a sub-population of exits (by the
    /// predicate) blocks at a high rate while the rest of the country does
    /// not.
    pub fn is_region_granular(&self, in_region: impl Fn(&str) -> bool) -> bool {
        let (inside, outside) = self.split_rates(in_region);
        inside >= 0.8 && outside <= 0.2
    }
}

/// Probe `domain` from `country` `attempts` times, attributing every
/// observation to its exit address via the proxy-controlled echo page
/// (fetched on the same session, so it reports the same household).
pub async fn probe_regional<T: Transport>(
    transport: &T,
    echo_url: &Url,
    domain: &str,
    country: CountryCode,
    attempts: u64,
) -> RegionalReport {
    let fingerprints = FingerprintSet::paper();
    let mut observations = Vec::new();
    for attempt in 0..attempts {
        let session = SessionId(attempt);
        // Echo first: learn the exit identity for this session.
        let echo = follow_redirects(
            transport,
            Request::get(echo_url.clone()),
            country,
            session,
            4,
        )
        .await;
        let Ok(echo_chain) = echo else { continue };
        let body = echo_chain.final_response().body.as_text().to_string();
        let Some(exit_ip) = body
            .split('&')
            .find_map(|kv| kv.strip_prefix("ip="))
            .map(str::to_string)
        else {
            continue;
        };

        // Probe as a full browser so regional observations reflect geo
        // policy, not the bot-detection tiers.
        let request = Request::get(Url::http(domain)).client_profile(&ClientProfile::browser());
        let Ok(chain) = follow_redirects(transport, request, country, session, 10).await else {
            continue;
        };
        let resp = chain.final_response();
        let page = if resp.status.is_blockish() {
            fingerprints.classify(resp).map(|m| m.kind)
        } else {
            None
        };
        observations.push(RegionalObservation { exit_ip, page });
    }
    RegionalReport {
        domain: domain.to_string(),
        country,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoblock_worldgen::cc;

    fn report(obs: Vec<(&str, Option<PageKind>)>) -> RegionalReport {
        RegionalReport {
            domain: "x.com".into(),
            country: cc("UA"),
            observations: obs
                .into_iter()
                .map(|(ip, page)| RegionalObservation {
                    exit_ip: ip.to_string(),
                    page,
                })
                .collect(),
        }
    }

    #[test]
    fn regional_split_detects_crimea_style_blocking() {
        let r = report(vec![
            ("5.1.0.1", Some(PageKind::AppEngine)),
            ("5.1.0.2", Some(PageKind::AppEngine)),
            ("5.1.9.1", None),
            ("5.1.9.2", None),
            ("5.1.9.3", None),
        ]);
        let in_region = |ip: &str| ip.starts_with("5.1.0.");
        let (inside, outside) = r.split_rates(in_region);
        assert_eq!(inside, 1.0);
        assert_eq!(outside, 0.0);
        assert!(r.is_region_granular(in_region));
        assert!((r.block_rate() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn uniform_blocking_is_not_regional() {
        let r = report(vec![
            ("5.1.0.1", Some(PageKind::Cloudflare)),
            ("5.1.9.1", Some(PageKind::Cloudflare)),
            ("5.1.9.2", Some(PageKind::Cloudflare)),
        ]);
        assert!(!r.is_region_granular(|ip| ip.starts_with("5.1.0.")));
        assert_eq!(r.block_rate(), 1.0);
    }

    #[test]
    fn empty_report_is_harmless() {
        let r = report(vec![]);
        assert_eq!(r.block_rate(), 0.0);
        assert!(!r.is_region_granular(|_| true));
    }
}
